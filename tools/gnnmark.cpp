/**
 * @file
 * The `gnnmark` command-line driver — the front door a downstream user
 * runs, mirroring the run scripts of the original suite.
 *
 *   gnnmark list
 *   gnnmark run <workload> [--scale S] [--iters N] [--inference]
 *                          [--chrome-trace PATH]
 *   gnnmark characterize [--scale S] [--iters N] [--csv]
 *   gnnmark scaling [--scale S] [--weak] [--overlap on|off]
 *                   [--telemetry PATH]
 *   gnnmark ttt [--scale S] [--target F]
 *   gnnmark faults <workload> [--scale S] [--iters N] [--interval K]
 *                             [--plan FILE] [--save-plan FILE]
 *   gnnmark serve [--arrival poisson|bursty|diurnal] [--rps R]
 *                 [--duration S] [--slo-ms MS] [--replicas N]
 *                 [--batch-max K] [--faults SCENARIO] [--plan FILE]
 *                 [--save-plan FILE] [--hedge on|off] [--shed on|off]
 *                 [--fallback on|off] [--seed N] [--json]
 *                 [--telemetry PATH] [--window MS] [--slo-target F]
 *                 [--trace-requests [N]] [--chrome-trace PATH]
 *   gnnmark trace record <workload> [--out PATH] [--scale S] [--iters N]
 *   gnnmark trace replay <file> [--l2 MIB] [--l1 KIB] [--sms N]
 *                               [--chrome-trace PATH]
 *   gnnmark trace info <file>
 *   gnnmark trace diff <a> <b>
 *   gnnmark sweep (<workload> | --trace FILE) [--param l2|l1|sms|world]
 *                 [--points V,V,...] [--overlap on|off]
 *   gnnmark ops [--seed N] [--json] [--telemetry PATH]
 *   gnnmark gen --family rmat|rgg2d|hyperbolic|grid2d [--n N] [--m M]
 *               [--degree D] [--chunks C] [--lookahead L] [--seed N]
 *               [--gamma G] [--grid-rows R] [--grid-cols C] [--wrap]
 *               [--stream] [--stats] [--train-window N] [--json]
 *               [--telemetry PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/io.hh"
#include "base/rng.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"
#include "core/characterization.hh"
#include "core/reports.hh"
#include "core/reports_json.hh"
#include "core/suite.hh"
#include "core/time_to_train.hh"
#include "core/trace_capture.hh"
#include "gen/degree_stats.hh"
#include "gen/edge_stream.hh"
#include "gen/report.hh"
#include "gen/stream_train.hh"
#include "models/ego_net.hh"
#include "multigpu/ddp.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "obs/telemetry.hh"
#include "ops/dispatch.hh"
#include "ops/exec_context.hh"
#include "ops/gemm.hh"
#include "ops/spmm.hh"
#include "profiler/chrome_trace.hh"
#include "profiler/profiler.hh"
#include "tensor/sparse.hh"
#include "serve/cost_model.hh"
#include "serve/server.hh"
#include "sim/fault_plan_io.hh"
#include "sim/gpu_device.hh"
#include "trace/reader.hh"
#include "trace/toolkit.hh"

using namespace gnnmark;

namespace {

struct Args
{
    std::string command;
    std::string sub;      ///< trace subcommand (record/replay/info/diff)
    std::string workload;
    std::vector<std::string> files; ///< positional paths (trace cmds)
    double scale = 1.0;
    int iterations = 6;
    bool iterationsSet = false;
    int interval = 12;
    double target = 0.85;
    bool inference = false;
    bool weak = false;
    bool csv = false;
    bool memstats = false;   ///< --memstats allocator report
    bool opstats = false;    ///< --opstats dispatch report
    std::string out;         ///< --out (trace record)
    std::string tracePath;   ///< --trace (sweep)
    std::string chromePath;  ///< --chrome-trace
    std::string telemetryPath; ///< --telemetry (JSONL sink)
    bool json = false;       ///< --json report documents
    std::string overlap = "on"; ///< --overlap on|off (scaling, sweep)
    std::string param = "l2"; ///< --param (sweep)
    std::string points;      ///< --points (sweep)
    double l2Mib = 0;        ///< --l2 replay override (0 = recorded)
    double l1Kib = 0;        ///< --l1 replay override (0 = recorded)
    int sms = 0;             ///< --sms replay override (0 = recorded)

    /** @{ Serving (serve) and fault-plan options. */
    std::string arrival = "poisson"; ///< --arrival process family
    double rps = 0;           ///< --rps (0 = sized from capacity)
    double durationSec = 2.0; ///< --duration (arrival horizon, sec)
    double sloMs = 0;         ///< --slo-ms (0 = sized from batch cost)
    int replicas = 3;         ///< --replicas
    int batchMax = 8;         ///< --batch-max
    std::string faultsScenario = "none"; ///< --faults scenario
    std::string planPath;     ///< --plan (load a fault plan file)
    std::string savePlanPath; ///< --save-plan (write the plan used)
    std::string hedge = "on";    ///< --hedge on|off
    std::string shed = "on";     ///< --shed on|off
    std::string fallback = "on"; ///< --fallback on|off
    uint64_t seed = 42;       ///< --seed
    double windowMs = 0;      ///< --window (0 = no timeline)
    double sloTarget = 0.99;  ///< --slo-target (burn-rate budget)
    int64_t traceSampleEvery = 0; ///< --trace-requests (0 = off)
    /** @} */

    /** @{ Generation (gen) options; defaults mirror GeneratorConfig. */
    std::string family;       ///< --family (required for gen)
    int64_t genN = 1 << 16;   ///< --n
    int64_t genM = 0;         ///< --m (0 = derive from --degree)
    double degree = 8.0;      ///< --degree
    int chunks = 8;           ///< --chunks
    int lookahead = 4;        ///< --lookahead
    double gamma = 2.8;       ///< --gamma
    int64_t gridRows = 0;     ///< --grid-rows
    int64_t gridCols = 0;     ///< --grid-cols
    bool gridWrap = false;    ///< --wrap
    bool stream = false;      ///< --stream: train over the stream
    bool stats = false;       ///< --stats: degree-distribution shape
    int64_t trainWindow = 0;  ///< --train-window (chunks, 0 = off)
    /** @} */
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: gnnmark <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                       print the suite inventory\n"
        "  run <workload>             train + profile one workload\n"
        "  characterize               profile the whole suite\n"
        "  scaling                    DDP strong scaling over 1/2/4 GPUs\n"
        "  ttt                        MLPerf-style time-to-train\n"
        "  faults <workload>          fault-injected DDP run with\n"
        "                             checkpoint/resume + elastic recovery\n"
        "  serve                      SLO-aware inference serving sim:\n"
        "                             admission control, deadline\n"
        "                             batching, hedging, degradation\n"
        "  trace record <workload>    capture a run into a trace file\n"
        "  trace replay <file>        re-characterize from a trace\n"
        "  trace info <file>          per-op-class trace statistics\n"
        "  trace diff <a> <b>         compare two traces' streams\n"
        "  sweep                      L1/L2/SM sensitivity sweep, live\n"
        "                             (<workload>) or trace-driven\n"
        "                             (--trace FILE)\n"
        "  ops                        operator roofline sweep: run the\n"
        "                             GEMM/SpMM variants over shapes,\n"
        "                             sparsities and storage formats on\n"
        "                             the simulated V100\n"
        "  gen                        chunked parallel graph generation:\n"
        "                             stream synthetic graphs through\n"
        "                             neighbour-sampled minibatch\n"
        "                             training without materializing\n"
        "                             them\n"
        "\n"
        "options:\n"
        "  --scale S      dataset scale factor (default 1.0)\n"
        "  --iters N      measured iterations (default 6; faults: 48)\n"
        "  --interval K   iterations between checkpoints (default 12,\n"
        "                 0 disables; faults only)\n"
        "  --target F     time-to-train loss fraction (default 0.85)\n"
        "  --inference    forward passes only\n"
        "  --memstats     append a host-allocator report (run,\n"
        "                 characterize): peak bytes, steady-state\n"
        "                 alloc calls/iter, arena hit rate. With\n"
        "                 --json the memstats document follows the\n"
        "                 figures document on its own line. Pick the\n"
        "                 allocator with GNNMARK_ALLOC=caching|system\n"
        "  --opstats      append the operator-dispatch report (run,\n"
        "                 characterize): per-variant selection counts\n"
        "                 and the calibration summary, and record\n"
        "                 ops.* counters into --telemetry snapshots.\n"
        "                 Off by default so gated reports never see\n"
        "                 variant-dependent keys. Pin variants with\n"
        "                 GNNMARK_OP_VARIANT=gemm=naive|tiled,\n"
        "                 spmm=scalar|vector\n"
        "  --weak         weak instead of strong scaling\n"
        "  --overlap M    on (default): overlap the bucketed gradient\n"
        "                 all-reduce with backward compute on a comm\n"
        "                 stream; off: legacy fully-serialized comm\n"
        "                 (scaling, sweep --param world)\n"
        "  --csv          machine-readable output where supported\n"
        "  --chrome-trace PATH  write a chrome://tracing timeline JSON\n"
        "                 with device, worker and host-span lanes\n"
        "                 (run, faults, trace replay; serve adds\n"
        "                 per-request lanes with --trace-requests)\n"
        "  --telemetry PATH  append JSONL telemetry: one record per\n"
        "                 iteration plus a run manifest (run,\n"
        "                 characterize), a fault report (faults), or\n"
        "                 one record per workload curve (scaling)\n"
        "  --json         print the report as a JSON document instead\n"
        "                 of tables (run, characterize, scaling,\n"
        "                 faults); progress chatter moves to stderr\n"
        "  --out PATH     trace record output (default <workload>.gnntrace)\n"
        "  --trace FILE   drive the sweep from a recorded trace\n"
        "  --param P      sweep parameter: l2 (MiB), l1 (KiB), sms,\n"
        "                 world (DDP GPU count; trace-driven sweeps\n"
        "                 price comm against the recorded backward\n"
        "                 windows with weak-scaling semantics)\n"
        "  --points V,V   sweep points (default l2: 2,4,6,12 MiB;\n"
        "                 l1: 64,128,192,256 KiB; sms: 40,60,80,108;\n"
        "                 world: 1,2,4)\n"
        "  --l2 MIB / --l1 KIB / --sms N   replay config overrides\n"
        "\n"
        "serving options (serve):\n"
        "  --arrival P    poisson (default) | bursty | diurnal\n"
        "  --rps R        offered load, requests per simulated second\n"
        "                 (default: 70%% of healthy-pool capacity)\n"
        "  --duration S   arrival horizon in simulated seconds (2.0)\n"
        "  --slo-ms MS    per-request SLO (default: 5x the priced\n"
        "                 max-batch cost)\n"
        "  --replicas N   replica pool size (default 3)\n"
        "  --batch-max K  dynamic batching cap (default 8)\n"
        "  --faults F     none (default) | straggler | crash | mixed\n"
        "                 scenario scaled to the duration\n"
        "  --plan FILE    load an explicit fault plan (serve, faults);\n"
        "                 overrides --faults\n"
        "  --save-plan FILE  write the fault plan used (serve, faults)\n"
        "  --hedge M / --shed M / --fallback M   robustness switches,\n"
        "                 on (default) | off\n"
        "  --seed N       traffic/model/generator seed (default 42)\n"
        "  --window MS    tumbling observability windows of MS\n"
        "                 simulated milliseconds: per-window\n"
        "                 p50/p95/p99 latency, goodput and queue-depth\n"
        "                 series plus SLO burn-rate alerts in the\n"
        "                 report and telemetry (0 = off)\n"
        "  --slo-target F  attainment target the burn-rate monitor\n"
        "                 budgets against (default 0.99)\n"
        "  --trace-requests [N]  request-scoped tracing: keep the\n"
        "                 span chain (admission -> queue -> batch ->\n"
        "                 inference -> retries/hedges) for every N-th\n"
        "                 request (default 32) plus all shed,\n"
        "                 timed-out and hedge-won exemplars; lanes\n"
        "                 merge into --chrome-trace\n"
        "\n"
        "generation options (gen):\n"
        "  --family F     rmat | rgg2d | hyperbolic | grid2d (required)\n"
        "  --n N          vertex count (default 65536; rmat rounds up\n"
        "                 to a power of two)\n"
        "  --m M          target edge count (default: --degree * n / 2)\n"
        "  --degree D     target average degree when --m is unset (8)\n"
        "  --chunks C     streaming chunks; more chunks = smaller\n"
        "                 resident window, identical edges (default 8)\n"
        "  --lookahead L  chunks generated ahead in parallel (4)\n"
        "  --gamma G      scale-free degree exponent (hyperbolic, 2.8)\n"
        "  --grid-rows R / --grid-cols C   explicit grid2d shape\n"
        "  --wrap         grid2d torus wrap-around edges\n"
        "  --stream       feed the stream through neighbour-sampled\n"
        "                 minibatch training (never materialized)\n"
        "  --stats        streaming degree-distribution shape check\n"
        "  --train-window N  with --stream: tumbling N-chunk windows\n"
        "                 of edge throughput and training loss in the\n"
        "                 report (0 = off)\n";
    std::exit(2);
}

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        usage();
    args.command = argv[1];
    int i = 2;
    if (args.command == "run" || args.command == "faults") {
        if (argc < 3)
            usage();
        args.workload = argv[2];
        i = 3;
    }
    if (args.command == "trace") {
        if (argc < 3)
            usage();
        args.sub = argv[2];
        if (args.sub != "record" && args.sub != "replay" &&
            args.sub != "info" && args.sub != "diff") {
            std::cerr << "unknown trace subcommand: " << args.sub
                      << "\n";
            usage();
        }
        i = 3;
    }
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a.rfind("--", 0) != 0) {
            // Positional: trace files / the sweep or record workload.
            args.files.push_back(a);
            continue;
        }
        if (a == "--scale") {
            args.scale = std::atof(next());
        } else if (a == "--iters") {
            args.iterations = std::atoi(next());
            args.iterationsSet = true;
        } else if (a == "--interval") {
            args.interval = std::atoi(next());
        } else if (a == "--target") {
            args.target = std::atof(next());
        } else if (a == "--inference") {
            args.inference = true;
        } else if (a == "--memstats") {
            args.memstats = true;
        } else if (a == "--opstats") {
            args.opstats = true;
        } else if (a == "--weak") {
            args.weak = true;
        } else if (a == "--csv") {
            args.csv = true;
        } else if (a == "--out") {
            args.out = next();
        } else if (a == "--trace") {
            args.tracePath = next();
        } else if (a == "--chrome-trace") {
            args.chromePath = next();
        } else if (a == "--telemetry") {
            args.telemetryPath = next();
        } else if (a == "--json") {
            args.json = true;
        } else if (a == "--overlap") {
            args.overlap = next();
            if (args.overlap != "on" && args.overlap != "off") {
                std::cerr << "--overlap expects on or off, got: "
                          << args.overlap << "\n";
                usage();
            }
        } else if (a == "--param") {
            args.param = next();
        } else if (a == "--points") {
            args.points = next();
        } else if (a == "--l2") {
            args.l2Mib = std::atof(next());
        } else if (a == "--l1") {
            args.l1Kib = std::atof(next());
        } else if (a == "--sms") {
            args.sms = std::atoi(next());
        } else if (a == "--arrival") {
            args.arrival = next();
        } else if (a == "--rps") {
            args.rps = std::atof(next());
        } else if (a == "--duration") {
            args.durationSec = std::atof(next());
        } else if (a == "--slo-ms") {
            args.sloMs = std::atof(next());
        } else if (a == "--replicas") {
            args.replicas = std::atoi(next());
        } else if (a == "--batch-max") {
            args.batchMax = std::atoi(next());
        } else if (a == "--faults") {
            args.faultsScenario = next();
        } else if (a == "--plan") {
            args.planPath = next();
        } else if (a == "--save-plan") {
            args.savePlanPath = next();
        } else if (a == "--hedge" || a == "--shed" ||
                   a == "--fallback") {
            std::string &target = a == "--hedge"  ? args.hedge
                                  : a == "--shed" ? args.shed
                                                  : args.fallback;
            target = next();
            if (target != "on" && target != "off") {
                std::cerr << a << " expects on or off, got: " << target
                          << "\n";
                usage();
            }
        } else if (a == "--seed") {
            args.seed = static_cast<uint64_t>(
                std::strtoull(next(), nullptr, 10));
        } else if (a == "--window") {
            args.windowMs = std::atof(next());
        } else if (a == "--slo-target") {
            args.sloTarget = std::atof(next());
            if (args.sloTarget <= 0 || args.sloTarget >= 1) {
                std::cerr << "--slo-target expects a fraction in "
                             "(0, 1), got: " << args.sloTarget << "\n";
                usage();
            }
        } else if (a == "--trace-requests") {
            // Optional numeric argument: sample every N-th request
            // (exemplars are always kept). Bare flag means every 32nd.
            args.traceSampleEvery = 32;
            if (i + 1 < argc) {
                const std::string peek = argv[i + 1];
                if (!peek.empty() &&
                    peek.find_first_not_of("0123456789") ==
                        std::string::npos)
                    args.traceSampleEvery = std::atoll(argv[++i]);
            }
            if (args.traceSampleEvery < 1)
                args.traceSampleEvery = 1;
        } else if (a == "--train-window") {
            args.trainWindow = std::atoll(next());
        } else if (a == "--family") {
            args.family = next();
        } else if (a == "--n") {
            args.genN = std::atoll(next());
        } else if (a == "--m") {
            args.genM = std::atoll(next());
        } else if (a == "--degree") {
            args.degree = std::atof(next());
        } else if (a == "--chunks") {
            args.chunks = std::atoi(next());
        } else if (a == "--lookahead") {
            args.lookahead = std::atoi(next());
        } else if (a == "--gamma") {
            args.gamma = std::atof(next());
        } else if (a == "--grid-rows") {
            args.gridRows = std::atoll(next());
        } else if (a == "--grid-cols") {
            args.gridCols = std::atoll(next());
        } else if (a == "--wrap") {
            args.gridWrap = true;
        } else if (a == "--stream") {
            args.stream = true;
        } else if (a == "--stats") {
            args.stats = true;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage();
        }
    }
    return args;
}

/** Exit through usage() when `name` is not a suite workload. */
void
requireWorkload(const std::string &name)
{
    const std::vector<std::string> names =
        BenchmarkSuite::workloadNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return;
    std::cerr << "unknown workload: " << name << "\nknown workloads:";
    for (const std::string &n : names)
        std::cerr << " " << n;
    std::cerr << "\n";
    usage();
}

RunOptions
runOptions(const Args &args)
{
    RunOptions opt;
    opt.scale = args.scale;
    opt.iterations = args.iterations;
    opt.inferenceOnly = args.inference;
    return opt;
}

/**
 * Progress chatter goes to stderr in --json mode so stdout stays a
 * single parseable document.
 */
std::ostream &
progressStream(const Args &args)
{
    return args.json ? std::cerr : std::cout;
}

/** Open the --telemetry sink, or null when the flag wasn't given. */
std::unique_ptr<obs::TelemetrySink>
openTelemetry(const Args &args)
{
    if (args.telemetryPath.empty())
        return nullptr;
    return std::make_unique<obs::TelemetrySink>(args.telemetryPath);
}

/** Merge the recorded host spans into `chrome` and write it out. */
void
finishChromeTrace(ChromeTraceWriter &chrome, const std::string &path,
                  std::ostream &os)
{
    chrome.addHostSpans(obs::SpanTracer::instance().collect());
    chrome.write(path);
    os << "\nchrome trace (" << chrome.eventCount()
       << " events) written to " << path
       << " — load it in chrome://tracing or Perfetto\n";
}

void
printWorkloadSummary(const WorkloadProfile &p)
{
    auto mix = p.profiler.instructionMix();
    TablePrinter table(p.name + " summary");
    table.setHeader({"Metric", "Value"});
    table.addRow({"loss (first -> last)",
                  strfmt("%.4f -> %.4f", p.losses.front(),
                         p.losses.back())});
    table.addRow({"kernel launches",
                  strfmt("%lld", static_cast<long long>(
                                     p.profiler.totalLaunches()))});
    table.addRow({"kernel time",
                  strfmt("%.3f ms",
                         p.profiler.totalKernelTimeSec() * 1e3)});
    table.addRow({"epoch time (est.)",
                  strfmt("%.3f ms", p.epochTimeSec * 1e3)});
    table.addRow({"GFLOPS / GIOPS",
                  strfmt("%.1f / %.1f", p.profiler.gflops(),
                         p.profiler.giops())});
    table.addRow({"IPC", strfmt("%.2f", p.profiler.avgIpc())});
    table.addRow({"instruction mix",
                  strfmt("int32 %.1f%% fp32 %.1f%%",
                         mix.int32Frac * 100, mix.fp32Frac * 100)});
    table.addRow({"L1 / L2 hit rate",
                  strfmt("%.1f%% / %.1f%%",
                         p.profiler.l1HitRate() * 100,
                         p.profiler.l2HitRate() * 100)});
    table.addRow({"divergent loads",
                  strfmt("%.1f%%",
                         p.profiler.divergentLoadFraction() * 100)});
    table.addRow({"H2D sparsity",
                  strfmt("%.1f%%",
                         p.profiler.avgTransferSparsity() * 100)});
    table.print(std::cout);
    std::cout << "\n";
    reports::printKernelTable(p, std::cout);
}

int
cmdRun(const Args &args)
{
    requireWorkload(args.workload);
    RunOptions opt = runOptions(args);
    ChromeTraceWriter chrome;
    if (!args.chromePath.empty())
        opt.extraObserver = &chrome;
    std::unique_ptr<obs::TelemetrySink> telemetry = openTelemetry(args);
    opt.telemetry = telemetry.get();
    if (args.opstats)
        ops::Dispatch::instance().setMetricsEnabled(true);
    CharacterizationRunner runner(opt);
    std::ostream &progress = progressStream(args);
    progress << (args.inference ? "Profiling (inference mode) "
                                : "Training ")
             << args.workload << " on the simulated V100...\n\n";

    const double host_begin = obs::SpanTracer::instance().nowUs();
    const WorkloadProfile profile = runner.run(args.workload);
    const double host_wall_us =
        obs::SpanTracer::instance().nowUs() - host_begin;

    if (args.json) {
        std::cout << reports::figuresJson({profile}) << "\n";
        if (args.memstats)
            std::cout << reports::memstatsJson({profile}) << "\n";
        if (args.opstats)
            std::cout << reports::opstatsJson() << "\n";
    } else {
        printWorkloadSummary(profile);
        if (args.memstats)
            reports::printMemstats({profile}, std::cout);
        if (args.opstats)
            reports::printOpstats(std::cout);
    }
    if (telemetry != nullptr) {
        telemetry->writeRecord(reports::runManifestJson(
            profile, opt, ThreadPool::instance().threadCount(),
            host_wall_us));
        progress << "\ntelemetry (" << telemetry->recordCount()
                 << " records) written to " << telemetry->path() << "\n";
    }
    if (!args.chromePath.empty())
        finishChromeTrace(chrome, args.chromePath, progress);
    return 0;
}

/** Parse "2,4,6,12"-style sweep points. */
std::vector<double>
parsePoints(const std::string &points)
{
    std::vector<double> out;
    std::stringstream ss(points);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::atof(item.c_str()));
    if (out.empty())
        usage();
    return out;
}

/** Apply one sweep point to a config; returns a printable label. */
std::string
applySweepPoint(GpuConfig &cfg, const std::string &param, double value)
{
    if (param == "l2") {
        cfg.l2SizeBytes = static_cast<uint64_t>(value * MiB);
        return strfmt("L2 %g MiB", value);
    }
    if (param == "l1") {
        cfg.l1SizeBytes = static_cast<uint64_t>(value * KiB);
        return strfmt("L1 %g KiB", value);
    }
    if (param == "sms") {
        cfg.numSms = static_cast<int>(value);
        return strfmt("%d SMs", cfg.numSms);
    }
    std::cerr << "unknown sweep parameter: " << param << "\n";
    usage();
}

void
printSweepRow(TablePrinter &table, const std::string &label,
              const WorkloadProfile &p)
{
    table.addRow({label, strfmt("%.3f", p.epochTimeSec * 1e3),
                  strfmt("%.1f%%", p.profiler.l1HitRate() * 100),
                  strfmt("%.1f%%", p.profiler.l2HitRate() * 100),
                  strfmt("%.2f", p.profiler.avgIpc())});
}

/**
 * `sweep --param world`: price a DDP scaling curve over GPU counts.
 * Live runs use the full DdpTrainer measurement; with --trace the
 * recorded kernel stream is replayed once and its per-iteration
 * backward windows feed the overlap model offline (weak-scaling
 * semantics — the recorded stream is the fixed per-GPU work).
 */
int
cmdSweepWorld(const Args &args)
{
    const std::vector<double> points =
        parsePoints(args.points.empty() ? "1,2,4" : args.points);
    std::vector<int> worlds;
    for (double v : points) {
        const int w = static_cast<int>(v);
        if (w < 1) {
            std::cerr << "world sweep points must be >= 1\n";
            usage();
        }
        worlds.push_back(w);
    }
    DdpOptions ddp_options;
    ddp_options.overlapComm = args.overlap == "on";

    std::vector<ScalingResult> curve;
    if (!args.tracePath.empty()) {
        const trace::RecordedTrace trace =
            trace::readTraceFile(args.tracePath);
        std::cout << "Sweeping world over the recorded "
                  << trace.header.workload << " stream (overlap "
                  << args.overlap << ")...\n\n";
        const trace::ReplayResult replay = trace::replayTrace(trace);
        // The sampler-compatibility flag is a property of the model,
        // not of the recorded stream; recover it from the suite.
        bool compatible = true;
        const std::vector<std::string> names =
            BenchmarkSuite::workloadNames();
        if (std::find(names.begin(), names.end(),
                      trace.header.workload) != names.end()) {
            compatible = BenchmarkSuite::create(trace.header.workload)
                             ->samplerDdpCompatible();
        } else {
            warn("trace workload '%s' is not in the suite; assuming "
                 "a DDP-compatible sampler (no replication penalty)",
                 trace.header.workload.c_str());
        }
        curve = ddp::scalingFromTimelines(
            Interconnect{InterconnectConfig{}}, replay.iterations,
            replay.epochTimeSec,
            static_cast<double>(replay.iterationsPerEpoch),
            replay.parameterBytes, compatible, worlds, ddp_options);
    } else {
        if (args.files.empty())
            usage();
        const std::string workload = args.files.front();
        requireWorkload(workload);
        std::cout << "Sweeping world with live " << workload
                  << " runs (overlap " << args.overlap << ")...\n\n";
        auto wl = BenchmarkSuite::create(workload);
        WorkloadConfig base;
        base.scale = args.scale;
        DdpTrainer trainer(GpuConfig::v100(), InterconnectConfig{},
                           ddp_options);
        curve = trainer.scalingCurve(
            *wl, base, worlds, args.iterationsSet ? args.iterations : 4);
    }

    TablePrinter table(
        strfmt("world sensitivity (overlap %s)", args.overlap.c_str()));
    table.setHeader({"GPUs", "epoch (ms)", "compute (ms)", "comm (ms)",
                     "exposed (ms)", "overlap %", "speedup"});
    for (const ScalingResult &r : curve) {
        table.addRow({strfmt("%d", r.worldSize),
                      strfmt("%.3f", r.epochTimeSec * 1e3),
                      strfmt("%.3f", r.computeTimeSec * 1e3),
                      strfmt("%.3f", r.commTimeSec * 1e3),
                      strfmt("%.3f", r.commExposedSec * 1e3),
                      strfmt("%.1f", r.overlapFrac * 100.0),
                      strfmt("%.2f", r.speedup)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdSweep(const Args &args)
{
    if (args.param == "world")
        return cmdSweepWorld(args);
    const std::string defaults = args.param == "l1" ? "64,128,192,256"
                                 : args.param == "sms" ? "40,60,80,108"
                                                       : "2,4,6,12";
    const std::vector<double> points =
        parsePoints(args.points.empty() ? defaults : args.points);

    TablePrinter table(strfmt("%s sensitivity", args.param.c_str()));
    table.setHeader({"config", "epoch (ms)", "L1 hit", "L2 hit", "IPC"});

    if (!args.tracePath.empty()) {
        // Trace-driven: one recorded run, N cache-model replays.
        const trace::RecordedTrace trace =
            trace::readTraceFile(args.tracePath);
        std::cout << "Sweeping " << args.param << " over the recorded "
                  << trace.header.workload << " trace...\n\n";
        for (double value : points) {
            GpuConfig cfg = trace.header.config;
            const std::string label =
                applySweepPoint(cfg, args.param, value);
            printSweepRow(table, label,
                          toWorkloadProfile(trace::replayTrace(trace, cfg)));
        }
    } else {
        // Live: re-train the workload once per point.
        if (args.files.empty())
            usage();
        const std::string workload = args.files.front();
        requireWorkload(workload);
        std::cout << "Sweeping " << args.param << " with live "
                  << workload << " runs...\n\n";
        for (double value : points) {
            RunOptions opt = runOptions(args);
            const std::string label =
                applySweepPoint(opt.deviceConfig, args.param, value);
            CharacterizationRunner runner(opt);
            printSweepRow(table, label, runner.run(workload));
        }
    }
    table.print(std::cout);
    return 0;
}

int
cmdTrace(const Args &args)
{
    if (args.sub == "record") {
        if (args.files.empty())
            usage();
        const std::string workload = args.files.front();
        requireWorkload(workload);
        const std::string out =
            args.out.empty() ? workload + ".gnntrace" : args.out;
        std::cout << "Recording " << workload << "...\n";
        const trace::RecordedTrace trace =
            recordWorkloadTrace(workload, runOptions(args));
        trace::writeTraceFile(out, trace);
        const uint64_t encoded = trace::serializeTrace(trace).size();
        const uint64_t naive = trace::naiveSizeBytes(trace);
        std::cout << strfmt(
            "%zu events -> %s (%s, %.1fx smaller than raw structs)\n",
            trace.events.size(), out.c_str(),
            formatBytes(static_cast<double>(encoded)).c_str(),
            static_cast<double>(naive) / static_cast<double>(encoded));
        return 0;
    }
    if (args.sub == "info") {
        if (args.files.empty())
            usage();
        const std::vector<uint8_t> bytes =
            readFileBytes(args.files.front());
        const trace::RecordedTrace trace = trace::parseTrace(
            bytes, "trace file '" + args.files.front() + "'");
        trace::printTraceInfo(trace, bytes.size(), std::cout);
        return 0;
    }
    if (args.sub == "replay") {
        if (args.files.empty())
            usage();
        const trace::RecordedTrace trace =
            trace::readTraceFile(args.files.front());
        GpuConfig cfg = trace.header.config;
        if (args.l2Mib > 0)
            cfg.l2SizeBytes = static_cast<uint64_t>(args.l2Mib * MiB);
        if (args.l1Kib > 0)
            cfg.l1SizeBytes = static_cast<uint64_t>(args.l1Kib * KiB);
        if (args.sms > 0)
            cfg.numSms = args.sms;
        ChromeTraceWriter chrome;
        std::vector<KernelObserver *> observers;
        if (!args.chromePath.empty())
            observers.push_back(&chrome);
        std::cout << "Replaying the recorded " << trace.header.workload
                  << " stream...\n\n";
        printWorkloadSummary(
            toWorkloadProfile(trace::replayTrace(trace, cfg, observers)));
        if (!args.chromePath.empty())
            finishChromeTrace(chrome, args.chromePath, std::cout);
        return 0;
    }
    // diff
    if (args.files.size() < 2)
        usage();
    const trace::RecordedTrace a = trace::readTraceFile(args.files[0]);
    const trace::RecordedTrace b = trace::readTraceFile(args.files[1]);
    trace::printTraceDiff(a, b, std::cout);
    return 0;
}

int
cmdCharacterize(const Args &args)
{
    if (args.opstats)
        ops::Dispatch::instance().setMetricsEnabled(true);
    RunOptions opt = runOptions(args);
    std::unique_ptr<obs::TelemetrySink> telemetry = openTelemetry(args);
    opt.telemetry = telemetry.get();
    CharacterizationRunner runner(opt);
    std::ostream &progress = progressStream(args);
    std::vector<WorkloadProfile> profiles;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        progress << "  " << name << "..." << std::flush;
        const double host_begin = obs::SpanTracer::instance().nowUs();
        profiles.push_back(runner.run(name));
        if (telemetry != nullptr) {
            telemetry->writeRecord(reports::runManifestJson(
                profiles.back(), opt,
                ThreadPool::instance().threadCount(),
                obs::SpanTracer::instance().nowUs() - host_begin));
        }
        progress << " done\n";
    }
    progress << "\n";
    if (telemetry != nullptr) {
        progress << "telemetry (" << telemetry->recordCount()
                 << " records) written to " << telemetry->path()
                 << "\n\n";
    }
    if (args.json) {
        std::cout << reports::figuresJson(profiles) << "\n";
        if (args.memstats)
            std::cout << reports::memstatsJson(profiles) << "\n";
        if (args.opstats)
            std::cout << reports::opstatsJson() << "\n";
        return 0;
    }
    reports::printFig2OpBreakdown(profiles, std::cout);
    reports::printFig3InstructionMix(profiles, std::cout);
    reports::printFig4Throughput(profiles, std::cout);
    reports::printFig5Stalls(profiles, std::cout);
    reports::printFig6Cache(profiles, std::cout);
    reports::printFig7Sparsity(profiles, std::cout);
    if (args.memstats)
        reports::printMemstats(profiles, std::cout);
    if (args.opstats)
        reports::printOpstats(std::cout);
    return 0;
}

int
cmdScaling(const Args &args)
{
    WorkloadConfig base;
    base.scale = args.scale;
    DdpOptions ddp_options;
    ddp_options.overlapComm = args.overlap == "on";
    DdpTrainer trainer(GpuConfig::v100(), InterconnectConfig{},
                       ddp_options);
    const int iters = args.iterationsSet ? args.iterations : 4;
    std::unique_ptr<obs::TelemetrySink> telemetry = openTelemetry(args);
    std::ostream &progress = progressStream(args);
    std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        curves;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        if (!wl->supportsMultiGpu())
            continue;
        progress << "  " << name << "..." << std::flush;
        curves.emplace_back(
            name,
            args.weak
                ? trainer.weakScalingCurve(*wl, base, {1, 2, 4}, iters)
                : trainer.scalingCurve(*wl, base, {1, 2, 4}, iters));
        if (telemetry != nullptr) {
            telemetry->writeRecord(reports::scalingRecordJson(
                name, args.weak, ddp_options.overlapComm,
                curves.back().second));
        }
        progress << " done\n";
    }
    progress << "\n";
    if (telemetry != nullptr) {
        progress << "telemetry (" << telemetry->recordCount()
                 << " records) written to " << telemetry->path()
                 << "\n\n";
    }
    if (args.json)
        std::cout << reports::scalingJson(curves) << "\n";
    else
        reports::printFig9Scaling(curves, std::cout);
    return 0;
}

int
cmdTimeToTrain(const Args &args)
{
    TimeToTrainOptions opt;
    opt.scale = args.scale;
    opt.lossFraction = args.target;
    TablePrinter table("Time-to-train");
    table.setHeader({"Workload", "Converged", "Steps", "Sim time (ms)"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        TimeToTrainResult r = measureTimeToTrain(*wl, opt);
        table.addRow({r.name, r.converged ? "yes" : "no",
                      strfmt("%d", r.iterations),
                      strfmt("%.1f", r.simulatedTimeSec * 1e3)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * Built-in serving fault scenarios, scaled to the arrival horizon.
 * "straggler" slows one replica 6x for most of the run, "crash" kills
 * the last replica at 30%, "mixed" layers both plus a second, shorter
 * straggler window — the overload story the robustness ablations are
 * judged against.
 */
FaultPlan
serveScenarioPlan(const std::string &scenario, int replicas,
                  double duration)
{
    std::vector<FaultEvent> events;
    auto straggler = [&](int replica, double at, double len,
                         double mag) {
        FaultEvent e;
        e.kind = FaultKind::Straggler;
        e.timeSec = at;
        e.durationSec = len;
        e.replica = replica;
        e.magnitude = mag;
        events.push_back(e);
    };
    if (scenario == "none")
        return FaultPlan{};
    if (scenario == "straggler" || scenario == "mixed")
        straggler(replicas > 1 ? 1 : 0, 0.15 * duration,
                  0.70 * duration, 6.0);
    if (scenario == "crash" || scenario == "mixed") {
        FaultEvent c;
        c.kind = FaultKind::ReplicaCrash;
        c.timeSec = 0.30 * duration;
        c.replica = replicas - 1;
        events.push_back(c);
    }
    if (scenario == "mixed" && replicas > 2)
        straggler(0, 0.55 * duration, 0.20 * duration, 3.0);
    if (events.empty()) {
        std::cerr << "unknown fault scenario: " << scenario
                  << " (expected none|straggler|crash|mixed)\n";
        usage();
    }
    return FaultPlan(std::move(events));
}

int
cmdServe(const Args &args)
{
    serve::ServeOptions opt;
    if (!serve::parseArrivalProcess(args.arrival, opt.traffic.process)) {
        std::cerr << "unknown arrival process: " << args.arrival
                  << "\n";
        usage();
    }
    if (args.replicas < 1 || args.batchMax < 1 ||
        args.durationSec <= 0) {
        std::cerr << "serve needs --replicas >= 1, --batch-max >= 1 "
                     "and --duration > 0\n";
        usage();
    }
    std::ostream &progress = progressStream(args);

    // Price the batch cost table through the real inference path on
    // the simulated device; everything downstream (SLO defaults,
    // offered-load sizing, the serving event loop) runs off it.
    progress << "Pricing ego-net inference batches on the simulated "
                "V100...\n";
    EgoNetBatchModel model(args.scale, args.seed);
    GpuDevice device(GpuConfig::v100(), args.seed);
    const serve::BatchCostTable table =
        serve::priceBatchCosts(model, device, args.batchMax, args.seed);
    const double batch_cost = table.costSec(args.batchMax);

    opt.replicas = args.replicas;
    opt.maxBatch = args.batchMax;
    opt.traffic.seed = args.seed;
    opt.traffic.durationSec = args.durationSec;
    opt.traffic.catalogItems = model.numItems();
    // Default load: 70% of the healthy pool's max-batch throughput;
    // default SLO: 5x the max-batch cost — tight enough that a 6x
    // straggler blows it, loose enough for healthy batching.
    opt.traffic.ratePerSec =
        args.rps > 0 ? args.rps
                     : 0.7 * args.replicas * args.batchMax / batch_cost;
    opt.traffic.sloSec =
        args.sloMs > 0 ? args.sloMs * 1e-3 : 5.0 * batch_cost;
    opt.hedgeEnabled = args.hedge == "on";
    opt.shedEnabled = args.shed == "on";
    opt.fallbackEnabled = args.fallback == "on";
    if (args.windowMs < 0) {
        std::cerr << "--window expects a non-negative duration\n";
        usage();
    }
    opt.windowSec = args.windowMs * 1e-3;
    opt.sloTarget = args.sloTarget;
    opt.traceSampleEvery = args.traceSampleEvery;

    if (!args.planPath.empty()) {
        opt.faults = loadFaultPlan(args.planPath);
        opt.faultScenario = "plan";
    } else {
        opt.faults = serveScenarioPlan(args.faultsScenario,
                                       args.replicas, args.durationSec);
        opt.faultScenario = args.faultsScenario;
    }
    if (!args.savePlanPath.empty()) {
        saveFaultPlan(args.savePlanPath, opt.faults);
        progress << "fault plan written to " << args.savePlanPath
                 << "\n";
    }

    progress << strfmt(
        "Serving %s arrivals @ %.0f req/s for %.1f s (SLO %.2f ms, "
        "%d replicas, batch <= %d, faults=%s)...\n\n",
        args.arrival.c_str(), opt.traffic.ratePerSec, args.durationSec,
        opt.traffic.sloSec * 1e3, args.replicas, args.batchMax,
        opt.faultScenario.c_str());

    serve::ServingSimulator sim(table, opt);
    const serve::ServingReport report = sim.run();

    if (args.json)
        std::cout << reports::servingJson(report) << "\n";
    else
        reports::printServing(report, std::cout);
    if (std::unique_ptr<obs::TelemetrySink> telemetry =
            openTelemetry(args)) {
        telemetry->writeRecord(
            reports::servingRecordJson("serve", report));
        // One record per coalesced burn-rate alert, so downstream
        // tooling can correlate alerts against the fault plan without
        // re-deriving the windows.
        for (const serve::ServingAlert &alert : report.alerts)
            telemetry->writeRecord(
                reports::sloAlertRecordJson("serve", report, alert));
        progress << "telemetry written to " << telemetry->path()
                 << "\n";
    }
    if (!args.chromePath.empty()) {
        ChromeTraceWriter chrome;
        chrome.addRequestLanes(sim.drainRequestTraces());
        finishChromeTrace(chrome, args.chromePath, progress);
    }
    return 0;
}

int
cmdFaults(const Args &args)
{
    requireWorkload(args.workload);
    auto wl = BenchmarkSuite::create(args.workload);

    WorkloadConfig base;
    base.scale = args.scale;
    DdpTrainer trainer;
    const int world = wl->supportsMultiGpu() ? 4 : 1;

    std::ostream &progress = progressStream(args);

    // Probe the healthy per-iteration time so the injected faults land
    // at fixed fractions of the run regardless of workload or scale.
    // The chrome observer attaches only after the probe so the trace
    // shows the fault-injected run alone.
    ScalingResult probe = trainer.measure(*wl, base, world, 2);
    const double iter_sec =
        probe.epochTimeSec /
        static_cast<double>(wl->iterationsPerEpoch());

    FaultRecoveryOptions opt;
    opt.iterations = args.iterationsSet ? args.iterations : 48;
    opt.checkpointInterval = args.interval;
    const double horizon = iter_sec * opt.iterations;

    std::vector<FaultEvent> events;
    {
        FaultEvent e;
        e.kind = FaultKind::Straggler;
        e.timeSec = 0.20 * horizon;
        e.durationSec = 0.12 * horizon;
        e.replica = world > 1 ? 1 : 0;
        e.magnitude = 2.5;
        events.push_back(e);
    }
    {
        FaultEvent e;
        e.kind = FaultKind::TransientKernel;
        e.timeSec = 0.50 * horizon;
        events.push_back(e);
    }
    if (world > 1) {
        FaultEvent e;
        e.kind = FaultKind::DegradedLink;
        e.timeSec = 0.40 * horizon;
        e.durationSec = 0.12 * horizon;
        e.magnitude = 0.25;
        events.push_back(e);
        FaultEvent c;
        c.kind = FaultKind::ReplicaCrash;
        c.timeSec = 0.65 * horizon;
        c.replica = world - 1;
        events.push_back(c);
    }

    // An explicit --plan overrides the built-in schedule; --save-plan
    // writes whichever plan the run used, so save + load round-trips
    // reproduce the exact same fault sequence.
    FaultPlan plan = !args.planPath.empty()
                         ? loadFaultPlan(args.planPath)
                         : FaultPlan(std::move(events));
    if (!args.savePlanPath.empty()) {
        saveFaultPlan(args.savePlanPath, plan);
        progress << "fault plan written to " << args.savePlanPath
                 << "\n";
    }

    ChromeTraceWriter chrome;
    if (!args.chromePath.empty())
        trainer.setExtraObserver(&chrome);

    progress << "Fault-injected training of " << args.workload
             << " on " << world << " simulated GPU(s)...\n\n";
    FaultToleranceResult result =
        trainer.runWithFaults(*wl, base, world, plan, opt);
    if (args.json)
        std::cout << reports::faultJson(result) << "\n";
    else
        reports::printFaultTolerance(result, std::cout);
    if (std::unique_ptr<obs::TelemetrySink> telemetry =
            openTelemetry(args)) {
        telemetry->writeRecord(reports::faultJson(result));
        progress << "\ntelemetry written to " << telemetry->path()
                 << "\n";
    }
    if (!args.chromePath.empty()) {
        // The DDP model replays rank 0's stream on every replica, so
        // the mirrored lanes are the honest per-rank visualisation.
        chrome.mirrorDeviceLanes(world);
        finishChromeTrace(chrome, args.chromePath, progress);
    }
    return 0;
}


/** One row of the `gnnmark ops` roofline sweep. */
struct OpsRow
{
    std::string op;      ///< "gemm" | "spmm"
    std::string shape;   ///< printable MxNxK / RxCxF
    double density = 1;  ///< nnz fraction of the sparse operand
    std::string format;  ///< "dense" | sparseFormatName()
    std::string variant; ///< dispatcher's pick
    int64_t flops = 0;
    int64_t minBytes = 0; ///< compulsory traffic (operands + result)
    double simSec = 0;
    double hostMs = 0;    ///< human table only, never serialized
};

/** Peak fp32 rate of `cfg` in FLOP/s (FMA counts as two). */
double
peakFlops(const GpuConfig &cfg)
{
    return static_cast<double>(cfg.numSms) * cfg.fp32PortsPerCycle *
           cfg.warpSize * 2.0 * cfg.clockGhz * 1e9;
}

/** Name of the single dispatch counter `fn` increments. */
template <typename Fn>
std::pair<std::string, double>
runDispatched(Fn &&fn)
{
    ops::Dispatch &dispatch = ops::Dispatch::instance();
    dispatch.resetStats();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double host_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const ops::DispatchStats s = dispatch.stats();
    std::string variant = "?";
    if (s.gemmNaive > 0)
        variant = ops::gemmVariantName(ops::GemmVariant::Naive);
    else if (s.gemmTiled > 0)
        variant = ops::gemmVariantName(ops::GemmVariant::Tiled);
    else if (s.spmmCsrScalar > 0)
        variant = ops::spmmVariantName(ops::SpmmVariant::CsrScalar);
    else if (s.spmmCsrVector > 0)
        variant = ops::spmmVariantName(ops::SpmmVariant::CsrVector);
    else if (s.spmmCoo > 0)
        variant = ops::spmmVariantName(ops::SpmmVariant::Coo);
    else if (s.spmmBell > 0)
        variant = ops::spmmVariantName(ops::SpmmVariant::Bell);
    return {variant, host_ms};
}

/** Deterministic dense operand with a given zero fraction. */
Tensor
opsDense(Rng &rng, int64_t rows, int64_t cols, double zero_frac)
{
    Tensor t = Tensor::zeros({rows, cols});
    for (int64_t i = 0; i < t.numel(); ++i) {
        if (!rng.bernoulli(zero_frac))
            t.data()[i] = rng.uniform(-1.0f, 1.0f);
    }
    return t;
}

/** Deterministic sparse operand at the requested density. */
CsrMatrix
opsCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(static_cast<int32_t>(r),
                                     static_cast<int32_t>(c),
                                     rng.uniform(-1.0f, 1.0f));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

/** Serialize the deterministic fields of one sweep row. */
std::string
opsRowJson(const OpsRow &row, const GpuConfig &cfg)
{
    const double intensity =
        static_cast<double>(row.flops) /
        static_cast<double>(std::max<int64_t>(row.minBytes, 1));
    const double achieved =
        row.simSec > 0 ? row.flops / row.simSec / 1e9 : 0.0;
    const double roof =
        std::min(peakFlops(cfg), cfg.dramBandwidth * intensity) / 1e9;
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("ops");
    w.key("op").value(row.op);
    w.key("shape").value(row.shape);
    w.key("density").value(row.density);
    w.key("format").value(row.format);
    w.key("variant").value(row.variant);
    w.key("flops").value(row.flops);
    w.key("min_bytes").value(row.minBytes);
    w.key("intensity").value(intensity);
    w.key("sim_us").value(row.simSec * 1e6);
    w.key("gflops").value(achieved);
    w.key("roofline_gflops").value(roof);
    w.key("roof_frac").value(roof > 0 ? achieved / roof : 0.0);
    w.endObject();
    return w.str();
}

/**
 * `gnnmark ops`: sweep the operator variants over shapes, sparsities
 * and storage formats, reporting a roofline placement per config. The
 * numbers in --json / --telemetry derive only from operand shapes and
 * the deterministic simulator, so two invocations emit byte-identical
 * documents; host wall time appears in the human table alone.
 */
int
cmdOps(const Args &args)
{
    const GpuConfig cfg = GpuConfig::v100();
    ops::Dispatch &dispatch = ops::Dispatch::instance();
    dispatch.setMetricsEnabled(true);
    std::ostream &progress = progressStream(args);
    progress << "Sweeping operator variants on the simulated V100 "
                "(seed " << args.seed << ")...\n\n";

    std::vector<OpsRow> rows;

    // Dense GEMM: square ladders plus a half-zero A that flips the
    // dispatcher back to the skip-friendly naive kernel.
    struct GemmCase { int64_t m, n, k; double zeroFrac; };
    const std::vector<GemmCase> gemm_cases = {
        {64, 64, 64, 0.0},    {128, 128, 128, 0.0},
        {256, 256, 256, 0.0}, {33, 65, 47, 0.0},
        {192, 96, 64, 0.6},
    };
    for (const GemmCase &gc : gemm_cases) {
        Rng rng(args.seed ^ static_cast<uint64_t>(
                                gc.m * 1315423911 + gc.n * 2654435761 +
                                gc.k));
        const Tensor a = opsDense(rng, gc.m, gc.k, gc.zeroFrac);
        const Tensor b = opsDense(rng, gc.k, gc.n, 0.0);
        GpuDevice device(cfg);
        Profiler profiler;
        device.addObserver(&profiler);
        OpsRow row;
        row.op = "gemm";
        row.shape = strfmt("%lldx%lldx%lld", (long long)gc.m,
                           (long long)gc.n, (long long)gc.k);
        row.density = 1.0 - gc.zeroFrac;
        row.format = "dense";
        {
            ContextGuard guard(&device);
            auto [variant, host_ms] =
                runDispatched([&] { ops::gemm(a, b); });
            row.variant = variant;
            row.hostMs = host_ms;
        }
        row.flops = 2 * gc.m * gc.n * gc.k;
        row.minBytes =
            (gc.m * gc.k + gc.k * gc.n + gc.m * gc.n) *
            static_cast<int64_t>(sizeof(float));
        row.simSec = profiler.totalKernelTimeSec();
        rows.push_back(row);
    }

    // SpMM: every storage format over a density ladder.
    struct SpmmCase { int64_t rows, cols, f; double density; };
    const std::vector<SpmmCase> spmm_cases = {
        {512, 512, 32, 0.05},
        {1024, 1024, 64, 0.01},
        {2048, 2048, 128, 0.002},
    };
    const SparseFormat formats[] = {SparseFormat::Csr,
                                    SparseFormat::Coo,
                                    SparseFormat::BlockedEll};
    for (const SpmmCase &sc : spmm_cases) {
        Rng rng(args.seed ^ static_cast<uint64_t>(
                                sc.rows * 40503 + sc.f));
        const CsrMatrix csr =
            opsCsr(rng, sc.rows, sc.cols, sc.density);
        const Tensor b = opsDense(rng, sc.cols, sc.f, 0.0);
        for (SparseFormat format : formats) {
            const SparseMatrix a =
                SparseMatrix::fromCsr(csr, format);
            GpuDevice device(cfg);
            Profiler profiler;
            device.addObserver(&profiler);
            OpsRow row;
            row.op = "spmm";
            row.shape = strfmt("%lldx%lldx%lld", (long long)sc.rows,
                               (long long)sc.cols, (long long)sc.f);
            row.density = sc.density;
            row.format = sparseFormatName(format);
            {
                ContextGuard guard(&device);
                auto [variant, host_ms] =
                    runDispatched([&] { ops::spmm(a, b); });
                row.variant = variant;
                row.hostMs = host_ms;
            }
            row.flops = 2 * a.nnz() * sc.f;
            row.minBytes =
                a.footprintBytes() +
                (sc.cols * sc.f + sc.rows * sc.f) *
                    static_cast<int64_t>(sizeof(float));
            row.simSec = profiler.totalKernelTimeSec();
            rows.push_back(row);
        }
    }

    if (args.json) {
        obs::JsonWriter w;
        w.beginObject();
        w.key("type").value("ops_report");
        w.key("seed").value(static_cast<int64_t>(args.seed));
        w.key("peak_gflops").value(peakFlops(cfg) / 1e9);
        w.key("dram_gbps").value(cfg.dramBandwidth / 1e9);
        w.endObject();
        std::cout << w.str() << "\n";
        for (const OpsRow &row : rows)
            std::cout << opsRowJson(row, cfg) << "\n";
    } else {
        TablePrinter table("Operator roofline (simulated V100)");
        table.setHeader({"Op", "Shape", "Density", "Format", "Variant",
                         "AI (F/B)", "Sim us", "GFLOP/s", "Roof",
                         "%roof", "Host ms"});
        for (const OpsRow &row : rows) {
            const double intensity =
                static_cast<double>(row.flops) /
                static_cast<double>(
                    std::max<int64_t>(row.minBytes, 1));
            const double achieved =
                row.simSec > 0 ? row.flops / row.simSec / 1e9 : 0.0;
            const double roof =
                std::min(peakFlops(cfg),
                         cfg.dramBandwidth * intensity) / 1e9;
            table.addRow(
                {row.op, row.shape, strfmt("%.3g", row.density),
                 row.format, row.variant, strfmt("%.2f", intensity),
                 strfmt("%.2f", row.simSec * 1e6),
                 strfmt("%.1f", achieved), strfmt("%.1f", roof),
                 strfmt("%.1f%%", roof > 0 ? achieved / roof * 100 : 0),
                 strfmt("%.3f", row.hostMs)});
        }
        table.print(std::cout);
    }
    if (std::unique_ptr<obs::TelemetrySink> telemetry =
            openTelemetry(args)) {
        for (const OpsRow &row : rows)
            telemetry->writeRecord(opsRowJson(row, cfg));
        progress << "telemetry written to " << telemetry->path()
                 << "\n";
    }
    return 0;
}

int
cmdGen(const Args &args)
{
    if (args.family.empty()) {
        std::cerr << "gen requires --family\n";
        usage();
    }
    gen::GeneratorConfig cfg;
    if (!gen::parseFamily(args.family, cfg.family)) {
        std::cerr << "unknown family: " << args.family
                  << " (expected rmat|rgg2d|hyperbolic|grid2d)\n";
        usage();
    }
    cfg.n = args.genN;
    cfg.m = args.genM;
    cfg.avgDegree = args.degree;
    cfg.seed = args.seed;
    cfg.chunks = args.chunks;
    cfg.lookahead = args.lookahead;
    cfg.gamma = args.gamma;
    cfg.gridRows = args.gridRows;
    cfg.gridCols = args.gridCols;
    cfg.gridWrap = args.gridWrap;
    const std::string err = gen::validateConfig(cfg);
    if (!err.empty()) {
        std::cerr << "invalid generator config: " << err << "\n";
        usage();
    }

    std::ostream &progress = progressStream(args);
    progress << "Generating a " << args.family << " graph ("
             << gen::resolvedVertices(cfg) << " vertices, ~"
             << gen::resolvedTargetEdges(cfg) << " edges, "
             << cfg.chunks << " chunks"
             << (args.stream ? ", streamed training" : "") << ")...\n\n";

    gen::ChunkedEdgeStream stream(cfg);
    std::unique_ptr<gen::DegreeAccumulator> degrees;
    if (args.stats) {
        degrees = std::make_unique<gen::DegreeAccumulator>(
            gen::resolvedVertices(cfg));
    }

    gen::StreamTrainResult trained;
    if (args.stream) {
        gen::StreamTrainOptions topt;
        topt.seed = cfg.seed;
        topt.windowChunks = args.trainWindow > 0 ? args.trainWindow : 0;
        trained = gen::streamTrain(stream, topt, degrees.get());
    } else {
        gen::EdgeBlock block;
        while (stream.next(block))
            if (degrees)
                degrees->accumulate(block);
    }

    gen::GenReport rep;
    rep.family = gen::familyName(cfg.family);
    rep.requestedVertices = cfg.n;
    rep.vertices = gen::resolvedVertices(cfg);
    rep.targetEdges = gen::resolvedTargetEdges(cfg);
    rep.chunks = stream.chunkCount();
    rep.lookahead = cfg.lookahead;
    rep.seed = cfg.seed;
    rep.threads = ThreadPool::instance().threadCount();
    rep.edges = stream.edgesEmitted();
    rep.chunksEmitted = stream.chunksEmitted();
    rep.checksum = stream.checksum();
    rep.peakResidentBytes = stream.peakResidentBytes();
    rep.residentBudgetBytes = gen::residentBudgetBytes(cfg);
    rep.wallSec = stream.generateSec();
    rep.edgesPerSec = stream.edgesPerSec();
    if (degrees) {
        const gen::DegreeStats stats = degrees->finalize();
        rep.hasDegrees = true;
        rep.degreeVertices = stats.vertices;
        rep.degreeSampleStride = stats.sampleStride;
        rep.minDegree = stats.minDegree;
        rep.maxDegree = stats.maxDegree;
        rep.meanDegree = stats.meanDegree;
        rep.powerLawSlope = stats.powerLawSlope;
        rep.slopeValid = stats.slopeValid;
        rep.modalFraction = stats.modalFraction;
        rep.modalDegree = stats.modalDegree;
        rep.distinctDegrees = stats.distinctDegrees;
    }
    if (args.stream) {
        rep.trained = true;
        rep.trainBatches = trained.batches;
        rep.trainEdgesConsumed = trained.edgesConsumed;
        rep.trainFirstLoss = trained.firstLoss;
        rep.trainLastLoss = trained.lastLoss;
        rep.trainPeakResidentBytes = trained.peakResidentBytes;
        if (args.trainWindow > 0) {
            rep.trainWindowChunks = args.trainWindow;
            // Edge and loss series share the same tumbling windows
            // (chunk ordinal is the clock), so zip them row by row.
            const size_t rows = std::min(trained.edgeWindows.size(),
                                         trained.lossWindows.size());
            for (size_t w = 0; w < rows; ++w) {
                const obs::WindowStats &ew = trained.edgeWindows[w];
                const obs::WindowStats &lw = trained.lossWindows[w];
                gen::GenTrainWindow row;
                row.index = ew.index;
                row.firstChunk = static_cast<int64_t>(ew.startSec);
                row.lastChunk = std::min(
                    static_cast<int64_t>(ew.endSec),
                    static_cast<int64_t>(trained.chunks)) - 1;
                row.chunks = ew.count;
                row.edges = static_cast<int64_t>(ew.sum);
                row.meanLoss = lw.mean();
                row.minLoss = lw.minValue;
                row.maxLoss = lw.maxValue;
                rep.trainWindows.push_back(row);
            }
        }
    }

    if (args.json)
        std::cout << reports::genJson(rep) << "\n";
    else
        reports::printGen(rep, std::cout);
    if (std::unique_ptr<obs::TelemetrySink> telemetry =
            openTelemetry(args)) {
        telemetry->writeRecord(reports::genRecordJson("gen", rep));
        progress << "telemetry written to " << telemetry->path()
                 << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);
    // Any tracing/telemetry export arms host-span recording for the
    // whole process; without either flag GNN_SPAN stays a single
    // relaxed load and the run is bit-identical to an uninstrumented
    // build.
    if (!args.chromePath.empty() || !args.telemetryPath.empty())
        obs::SpanTracer::instance().setEnabled(true);
    // Emit the rate-limiter's "suppressed N duplicates" summary on
    // every exit path that ran a command.
    const auto finish = [](int rc) {
        flushSuppressedWarnings();
        return rc;
    };
    try {
        if (args.command == "list") {
            reports::printTableOne(std::cout);
            return finish(0);
        }
        if (args.command == "run")
            return finish(cmdRun(args));
        if (args.command == "characterize")
            return finish(cmdCharacterize(args));
        if (args.command == "scaling")
            return finish(cmdScaling(args));
        if (args.command == "ttt")
            return finish(cmdTimeToTrain(args));
        if (args.command == "faults")
            return finish(cmdFaults(args));
        if (args.command == "serve")
            return finish(cmdServe(args));
        if (args.command == "trace")
            return finish(cmdTrace(args));
        if (args.command == "sweep")
            return finish(cmdSweep(args));
        if (args.command == "ops")
            return finish(cmdOps(args));
        if (args.command == "gen")
            return finish(cmdGen(args));
    } catch (const IoError &e) {
        std::cerr << "gnnmark: fatal: " << e.what() << "\n";
        return finish(1);
    }
    std::cerr << "unknown command: " << args.command << "\n";
    usage();
}
