/**
 * @file
 * The `gnnmark` command-line driver — the front door a downstream user
 * runs, mirroring the run scripts of the original suite.
 *
 *   gnnmark list
 *   gnnmark run <workload> [--scale S] [--iters N] [--inference]
 *   gnnmark characterize [--scale S] [--iters N] [--csv]
 *   gnnmark scaling [--scale S] [--weak]
 *   gnnmark ttt [--scale S] [--target F]
 *   gnnmark faults <workload> [--scale S] [--iters N] [--interval K]
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/characterization.hh"
#include "core/reports.hh"
#include "core/suite.hh"
#include "core/time_to_train.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

namespace {

struct Args
{
    std::string command;
    std::string workload;
    double scale = 1.0;
    int iterations = 6;
    bool iterationsSet = false;
    int interval = 12;
    double target = 0.85;
    bool inference = false;
    bool weak = false;
    bool csv = false;
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: gnnmark <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                       print the suite inventory\n"
        "  run <workload>             train + profile one workload\n"
        "  characterize               profile the whole suite\n"
        "  scaling                    DDP strong scaling over 1/2/4 GPUs\n"
        "  ttt                        MLPerf-style time-to-train\n"
        "  faults <workload>          fault-injected DDP run with\n"
        "                             checkpoint/resume + elastic recovery\n"
        "\n"
        "options:\n"
        "  --scale S      dataset scale factor (default 1.0)\n"
        "  --iters N      measured iterations (default 6; faults: 48)\n"
        "  --interval K   iterations between checkpoints (default 12,\n"
        "                 0 disables; faults only)\n"
        "  --target F     time-to-train loss fraction (default 0.85)\n"
        "  --inference    forward passes only\n"
        "  --weak         weak instead of strong scaling\n"
        "  --csv          machine-readable output where supported\n";
    std::exit(2);
}

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        usage();
    args.command = argv[1];
    int i = 2;
    if (args.command == "run" || args.command == "faults") {
        if (argc < 3)
            usage();
        args.workload = argv[2];
        i = 3;
    }
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--scale") {
            args.scale = std::atof(next());
        } else if (a == "--iters") {
            args.iterations = std::atoi(next());
            args.iterationsSet = true;
        } else if (a == "--interval") {
            args.interval = std::atoi(next());
        } else if (a == "--target") {
            args.target = std::atof(next());
        } else if (a == "--inference") {
            args.inference = true;
        } else if (a == "--weak") {
            args.weak = true;
        } else if (a == "--csv") {
            args.csv = true;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage();
        }
    }
    return args;
}

/** Exit through usage() when `name` is not a suite workload. */
void
requireWorkload(const std::string &name)
{
    const std::vector<std::string> names =
        BenchmarkSuite::workloadNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return;
    std::cerr << "unknown workload: " << name << "\nknown workloads:";
    for (const std::string &n : names)
        std::cerr << " " << n;
    std::cerr << "\n";
    usage();
}

RunOptions
runOptions(const Args &args)
{
    RunOptions opt;
    opt.scale = args.scale;
    opt.iterations = args.iterations;
    opt.inferenceOnly = args.inference;
    return opt;
}

void
printWorkloadSummary(const WorkloadProfile &p)
{
    auto mix = p.profiler.instructionMix();
    TablePrinter table(p.name + " summary");
    table.setHeader({"Metric", "Value"});
    table.addRow({"loss (first -> last)",
                  strfmt("%.4f -> %.4f", p.losses.front(),
                         p.losses.back())});
    table.addRow({"kernel launches",
                  strfmt("%lld", static_cast<long long>(
                                     p.profiler.totalLaunches()))});
    table.addRow({"kernel time",
                  strfmt("%.3f ms",
                         p.profiler.totalKernelTimeSec() * 1e3)});
    table.addRow({"epoch time (est.)",
                  strfmt("%.3f ms", p.epochTimeSec * 1e3)});
    table.addRow({"GFLOPS / GIOPS",
                  strfmt("%.1f / %.1f", p.profiler.gflops(),
                         p.profiler.giops())});
    table.addRow({"IPC", strfmt("%.2f", p.profiler.avgIpc())});
    table.addRow({"instruction mix",
                  strfmt("int32 %.1f%% fp32 %.1f%%",
                         mix.int32Frac * 100, mix.fp32Frac * 100)});
    table.addRow({"L1 / L2 hit rate",
                  strfmt("%.1f%% / %.1f%%",
                         p.profiler.l1HitRate() * 100,
                         p.profiler.l2HitRate() * 100)});
    table.addRow({"divergent loads",
                  strfmt("%.1f%%",
                         p.profiler.divergentLoadFraction() * 100)});
    table.addRow({"H2D sparsity",
                  strfmt("%.1f%%",
                         p.profiler.avgTransferSparsity() * 100)});
    table.print(std::cout);
    std::cout << "\n";
    reports::printKernelTable(p, std::cout);
}

int
cmdRun(const Args &args)
{
    requireWorkload(args.workload);
    CharacterizationRunner runner(runOptions(args));
    std::cout << (args.inference ? "Profiling (inference mode) "
                                 : "Training ")
              << args.workload << " on the simulated V100...\n\n";
    printWorkloadSummary(runner.run(args.workload));
    return 0;
}

int
cmdCharacterize(const Args &args)
{
    CharacterizationRunner runner(runOptions(args));
    std::vector<WorkloadProfile> profiles;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        profiles.push_back(runner.run(name));
        std::cout << " done\n";
    }
    std::cout << "\n";
    reports::printFig2OpBreakdown(profiles, std::cout);
    reports::printFig3InstructionMix(profiles, std::cout);
    reports::printFig4Throughput(profiles, std::cout);
    reports::printFig5Stalls(profiles, std::cout);
    reports::printFig6Cache(profiles, std::cout);
    reports::printFig7Sparsity(profiles, std::cout);
    return 0;
}

int
cmdScaling(const Args &args)
{
    WorkloadConfig base;
    base.scale = args.scale;
    DdpTrainer trainer;
    std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        curves;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        if (!wl->supportsMultiGpu())
            continue;
        std::cout << "  " << name << "..." << std::flush;
        curves.emplace_back(
            name, args.weak
                      ? trainer.weakScalingCurve(*wl, base, {1, 2, 4})
                      : trainer.scalingCurve(*wl, base, {1, 2, 4}));
        std::cout << " done\n";
    }
    std::cout << "\n";
    reports::printFig9Scaling(curves, std::cout);
    return 0;
}

int
cmdTimeToTrain(const Args &args)
{
    TimeToTrainOptions opt;
    opt.scale = args.scale;
    opt.lossFraction = args.target;
    TablePrinter table("Time-to-train");
    table.setHeader({"Workload", "Converged", "Steps", "Sim time (ms)"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        TimeToTrainResult r = measureTimeToTrain(*wl, opt);
        table.addRow({r.name, r.converged ? "yes" : "no",
                      strfmt("%d", r.iterations),
                      strfmt("%.1f", r.simulatedTimeSec * 1e3)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdFaults(const Args &args)
{
    requireWorkload(args.workload);
    auto wl = BenchmarkSuite::create(args.workload);

    WorkloadConfig base;
    base.scale = args.scale;
    DdpTrainer trainer;
    const int world = wl->supportsMultiGpu() ? 4 : 1;

    // Probe the healthy per-iteration time so the injected faults land
    // at fixed fractions of the run regardless of workload or scale.
    ScalingResult probe = trainer.measure(*wl, base, world, 2);
    const double iter_sec =
        probe.epochTimeSec /
        static_cast<double>(wl->iterationsPerEpoch());

    FaultRecoveryOptions opt;
    opt.iterations = args.iterationsSet ? args.iterations : 48;
    opt.checkpointInterval = args.interval;
    const double horizon = iter_sec * opt.iterations;

    std::vector<FaultEvent> events;
    {
        FaultEvent e;
        e.kind = FaultKind::Straggler;
        e.timeSec = 0.20 * horizon;
        e.durationSec = 0.12 * horizon;
        e.replica = world > 1 ? 1 : 0;
        e.magnitude = 2.5;
        events.push_back(e);
    }
    {
        FaultEvent e;
        e.kind = FaultKind::TransientKernel;
        e.timeSec = 0.50 * horizon;
        events.push_back(e);
    }
    if (world > 1) {
        FaultEvent e;
        e.kind = FaultKind::DegradedLink;
        e.timeSec = 0.40 * horizon;
        e.durationSec = 0.12 * horizon;
        e.magnitude = 0.25;
        events.push_back(e);
        FaultEvent c;
        c.kind = FaultKind::ReplicaCrash;
        c.timeSec = 0.65 * horizon;
        c.replica = world - 1;
        events.push_back(c);
    }

    std::cout << "Fault-injected training of " << args.workload
              << " on " << world << " simulated GPU(s)...\n\n";
    FaultToleranceResult result = trainer.runWithFaults(
        *wl, base, world, FaultPlan(std::move(events)), opt);
    reports::printFaultTolerance(result, std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse(argc, argv);
    if (args.command == "list") {
        reports::printTableOne(std::cout);
        return 0;
    }
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "characterize")
        return cmdCharacterize(args);
    if (args.command == "scaling")
        return cmdScaling(args);
    if (args.command == "ttt")
        return cmdTimeToTrain(args);
    if (args.command == "faults")
        return cmdFaults(args);
    std::cerr << "unknown command: " << args.command << "\n";
    usage();
}
