# Operator-kernel regression gate, run under ctest: rerun
# bench_ext_ops's JSONL twin and diff it *exactly* (tolerance 0)
# against the committed baseline. The gated records are deterministic
# by construction — output checksums over exact fp32 bit patterns plus
# cross-variant/cross-format bitwise verdicts — so any drift means a
# host kernel changed its accumulation order or a format conversion
# changed entry order. The bench itself also hard-fails if the tuned
# variants stop beating the scalar baselines under AVX2. Invoke as
#   cmake -DBENCH_BIN=<bench_ext_ops> -DBENCH_DIFF_BIN=<bench_diff>
#         -DBASELINE=<bench/baselines/ext_ops.jsonl>
#         -P ops_bench_gate.cmake

foreach(var BENCH_BIN BENCH_DIFF_BIN BASELINE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=...")
    endif()
endforeach()

set(candidate ext_ops_candidate.jsonl)

execute_process(
    COMMAND ${BENCH_BIN} ${candidate}
    RESULT_VARIABLE rv
    OUTPUT_QUIET)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_ext_ops exited with '${rv}'")
endif()

execute_process(
    COMMAND ${BENCH_DIFF_BIN} ${BASELINE} ${candidate}
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "operator records drifted from the committed baseline "
        "(bench_diff exit '${rv}'); variants are contractually "
        "bit-compatible — investigate before regenerating "
        "bench/baselines/ext_ops.jsonl")
endif()

file(REMOVE ${candidate})
message(STATUS "operator records match the committed baseline")
