# Generation-determinism gate, run under ctest: `gnnmark gen --json`
# must produce byte-identical reports (a) across separate processes,
# (b) across thread counts, and (c) — after normalising the config
# echo — across chunk granularities. The JSON document deliberately
# carries only deterministic fields (edges, chunk count, checksum
# halves, degree stats; never wall-clock), so a byte compare IS the
# determinism oracle: any divergence means per-unit seeding broke or
# emission order started depending on the schedule. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P gen_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

set(gen_args gen --family hyperbolic --n 20000 --m 200000 --seed 99
    --stats --json)

function(run_gen out_var threads)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env GNNMARK_THREADS=${threads}
                ${GNNMARK_BIN} ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR "gnnmark ${ARGN} exited with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_gen(first 1 ${gen_args} --chunks 8)
run_gen(second 1 ${gen_args} --chunks 8)
if(NOT first STREQUAL second)
    message(FATAL_ERROR
        "gen --json reports differ between two processes with the "
        "same config and seed — determinism broke")
endif()
message(STATUS "gen reports byte-identical across processes")

run_gen(threaded 16 ${gen_args} --chunks 8)
if(NOT first STREQUAL threaded)
    message(FATAL_ERROR
        "gen --json reports differ between GNNMARK_THREADS=1 and 16 "
        "— the emitted edge set depends on the thread count")
endif()
message(STATUS "gen reports byte-identical across thread counts")

# Chunk granularity legitimately changes the config echo and the
# residency figures; the emitted edge *content* — edge count and the
# order-dependent checksum — must not move.
function(edge_fingerprint out_var report)
    string(REGEX MATCH "\"edges\":[0-9]+" edges "${report}")
    string(REGEX MATCH
        "\"checksum_hi\":[0-9]+,\"checksum_lo\":[0-9]+"
        checksum "${report}")
    if(edges STREQUAL "" OR checksum STREQUAL "")
        message(FATAL_ERROR "no edges/checksum fields in: ${report}")
    endif()
    set(${out_var} "${edges} ${checksum}" PARENT_SCOPE)
endfunction()

run_gen(coarse 4 ${gen_args} --chunks 1)
run_gen(fine 4 ${gen_args} --chunks 64)
edge_fingerprint(coarse_fp "${coarse}")
edge_fingerprint(fine_fp "${fine}")
if(NOT coarse_fp STREQUAL fine_fp)
    message(FATAL_ERROR
        "edge checksum differs between --chunks 1 and 64 — chunk "
        "granularity leaked into the emitted edge set")
endif()
message(STATUS "edge checksum identical across chunk granularity")
