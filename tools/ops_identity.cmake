# Operator-sweep determinism gate, run under ctest: `gnnmark ops
# --json` must produce byte-identical documents (a) across separate
# processes, (b) across thread counts, and (c) the GNNMARK_OP_VARIANT
# override must actually change the dispatched variant (and nothing
# but the variant/timing fields derived from it). The JSON rows carry
# only simulator-derived numbers (flops, bytes, sim time) — never host
# wall-clock — so a byte compare IS the determinism oracle. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P ops_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

function(run_ops out_var threads variant)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env GNNMARK_THREADS=${threads}
                "GNNMARK_OP_VARIANT=${variant}"
                ${GNNMARK_BIN} ops --json
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR "gnnmark ops --json exited with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_ops(first 1 "")
run_ops(second 1 "")
if(NOT first STREQUAL second)
    message(FATAL_ERROR
        "ops --json reports differ between two processes — the sweep "
        "leaked nondeterminism into the machine-readable document")
endif()
message(STATUS "ops reports byte-identical across processes")

run_ops(threaded 16 "")
if(NOT first STREQUAL threaded)
    message(FATAL_ERROR
        "ops --json reports differ across thread counts — a host "
        "kernel's chunking leaked into the simulated numbers")
endif()
message(STATUS "ops reports byte-identical across thread counts")

run_ops(pinned 1 "gemm=naive,spmm=scalar")
if(first STREQUAL pinned)
    message(FATAL_ERROR
        "GNNMARK_OP_VARIANT=gemm=naive,spmm=scalar changed nothing — "
        "the override is not reaching the dispatcher")
endif()
string(REGEX MATCHALL "\"variant\":\"naive\"" naive_rows "${pinned}")
list(LENGTH naive_rows naive_count)
string(REGEX MATCHALL "\"variant\":\"csr_scalar\"" scalar_rows
       "${pinned}")
list(LENGTH scalar_rows scalar_count)
if(naive_count LESS 5 OR scalar_count LESS 3)
    message(FATAL_ERROR
        "override run dispatched ${naive_count} naive gemm and "
        "${scalar_count} csr_scalar spmm rows (expected 5 and 3)")
endif()
message(STATUS "GNNMARK_OP_VARIANT pins the dispatched variants")
