# Windowed-observability determinism gate, run under ctest: the
# timeline (per-window p50/p95/p99, goodput, queue depth, burn-rate
# alerts) and the request-trace lanes must be byte-identical across
# separate processes AND across thread counts. Everything new in the
# observability layer is integer bucket arithmetic over simulated
# time, so any divergence means a wall-clock or iteration-order leak.
# The chrome trace is compared lane-by-lane on pid 3 only: pids 1/2
# carry wall-clock host spans that are allowed to differ. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P obs_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

set(serve_args serve --faults mixed --replicas 3 --rps 30000
    --duration 0.5 --seed 11 --window 50 --trace-requests 32 --json)

function(run_serve out_var threads)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env GNNMARK_THREADS=${threads}
                ${GNNMARK_BIN} ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR
            "gnnmark ${ARGN} (GNNMARK_THREADS=${threads}) exited "
            "with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_serve(first 1 ${serve_args})
run_serve(second 1 ${serve_args})
if(NOT first STREQUAL second)
    message(FATAL_ERROR
        "windowed serving --json reports differ between two "
        "processes — timeline determinism broke")
endif()
message(STATUS "windowed serving reports byte-identical across processes")

run_serve(threaded 16 ${serve_args})
if(NOT first STREQUAL threaded)
    message(FATAL_ERROR
        "windowed serving --json report differs between "
        "GNNMARK_THREADS=1 and 16 — a thread count leaked into the "
        "timeline or sketches")
endif()
message(STATUS "windowed serving reports byte-identical across thread counts")

# The report must actually carry the new sections: a timeline with
# windows, at least one slo_alert under the injected mixed faults,
# and the tracing summary.
foreach(needle "\"timeline\"" "\"windows\"" "\"alerts\""
        "\"rule\"" "\"tracing\"")
    string(FIND "${first}" "${needle}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "windowed serving report is missing ${needle} — the "
            "timeline/alert/tracing sections did not materialize")
    endif()
endforeach()
message(STATUS "timeline, alerts and tracing sections all present")

# Request lanes in the chrome trace use simulated time only, so the
# pid-3 events must also be byte-stable across thread counts.
function(run_chrome out_file threads)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env GNNMARK_THREADS=${threads}
                ${GNNMARK_BIN} serve --faults mixed --replicas 3
                --rps 30000 --duration 0.5 --seed 11 --window 50
                --trace-requests 32 --chrome-trace ${out_file}
        RESULT_VARIABLE rv
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR "chrome-trace serve run failed: '${rv}'")
    endif()
endfunction()

# The request lanes are the last thing the writer emits, so the file
# tail from the pid-3 process meta onwards is exactly the lane data.
# (file(STRINGS) + foreach would not work here: the unclosed "[" after
# "traceEvents" makes CMake's list parser swallow every separator.)
function(request_lanes out_var trace_file)
    file(READ ${trace_file} content)
    string(FIND "${content}" "\"serving requests (sim time)\"" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "chrome trace ${trace_file} has no pid-3 request lanes")
    endif()
    string(SUBSTRING "${content}" ${pos} -1 tail)
    set(${out_var} "${tail}" PARENT_SCOPE)
endfunction()

run_chrome(obs_identity_t1.json 1)
run_chrome(obs_identity_t16.json 16)
request_lanes(lanes1 obs_identity_t1.json)
request_lanes(lanes16 obs_identity_t16.json)
file(REMOVE obs_identity_t1.json obs_identity_t16.json)
if(NOT lanes1 STREQUAL lanes16)
    message(FATAL_ERROR
        "chrome-trace request lanes differ between thread counts")
endif()
message(STATUS "chrome-trace request lanes byte-identical across thread counts")
