# CLI contract smoke test, run under ctest: bad invocations must exit
# with the usage status (2) and good ones with 0. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P cli_smoke.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

function(expect_exit code)
    execute_process(
        COMMAND ${GNNMARK_BIN} ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rv EQUAL ${code})
        message(FATAL_ERROR
            "gnnmark ${ARGN}: expected exit ${code}, got '${rv}'")
    endif()
endfunction()

expect_exit(2)                        # no command
expect_exit(2 frobnicate)             # unknown command
expect_exit(2 run)                    # run without a workload
expect_exit(2 run NO-SUCH-WORKLOAD)   # unknown workload name
expect_exit(2 faults NO-SUCH-WORKLOAD)
expect_exit(2 run STGCN --bogus)      # unknown option
expect_exit(2 list --scale)           # option missing its value
expect_exit(2 trace)                  # trace without a verb
expect_exit(2 trace frobnicate)       # unknown trace verb
expect_exit(2 trace record)           # record without a workload
expect_exit(2 trace diff one.gnntrace) # diff needs two traces
expect_exit(2 sweep)                  # sweep without a workload
expect_exit(2 sweep STGCN --param bogus)
expect_exit(1 trace info no-such.gnntrace)  # IoError, not a crash
expect_exit(2 serve --arrival sometimes)    # unknown arrival process
expect_exit(2 serve --faults meteor)        # unknown fault scenario
expect_exit(2 serve --hedge maybe)          # on|off toggles only
expect_exit(2 serve --replicas 0)
expect_exit(1 serve --plan no-such.plan)    # IoError, not a crash
expect_exit(1 faults STGCN --plan no-such.plan)
expect_exit(2 gen)                          # gen requires --family
expect_exit(2 gen --family klein-bottle)    # unknown family
expect_exit(2 gen --family rmat --n -4)     # vertex count must be > 1
expect_exit(2 gen --family rmat --chunks 0) # chunking must be positive
expect_exit(2 gen --family rmat --bogus)    # unknown option
expect_exit(2 gen --family hyperbolic --gamma 2.0) # gamma must be > 2
expect_exit(0 list)                   # healthy baseline

# A short serving run with every robustness mechanism engaged, plus
# the save-plan/load-plan round trip on the faults scenario.
set(plan ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_serve.plan)
expect_exit(0 serve --faults mixed --replicas 3 --duration 0.1
    --save-plan ${plan} --json)
expect_exit(0 serve --plan ${plan} --replicas 3 --duration 0.1)
file(REMOVE ${plan})

# Generation at a tiny scale: every family materializes, and the
# streamed-training path plus degree stats work in both output modes.
expect_exit(0 gen --family rmat --n 4096 --stats)
expect_exit(0 gen --family rgg2d --n 4096)
expect_exit(0 gen --family grid2d --n 4096 --json)
expect_exit(0 gen --family hyperbolic --n 4096 --stream --stats --json)

# The full trace-once/analyze-many pipeline at a tiny scale: record,
# inspect, replay on the recording config, self-diff, sweep the L2.
set(trc ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_stgcn.gnntrace)
expect_exit(0 trace record STGCN --scale 0.25 --iters 2 --out ${trc})
expect_exit(0 trace info ${trc})
expect_exit(0 trace replay ${trc})
expect_exit(0 trace diff ${trc} ${trc})
expect_exit(0 sweep --trace ${trc} --param l2 --points 2,6)
file(REMOVE ${trc})
