# CLI contract smoke test, run under ctest: bad invocations must exit
# with the usage status (2) and good ones with 0. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P cli_smoke.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

function(expect_exit code)
    execute_process(
        COMMAND ${GNNMARK_BIN} ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rv EQUAL ${code})
        message(FATAL_ERROR
            "gnnmark ${ARGN}: expected exit ${code}, got '${rv}'")
    endif()
endfunction()

expect_exit(2)                        # no command
expect_exit(2 frobnicate)             # unknown command
expect_exit(2 run)                    # run without a workload
expect_exit(2 run NO-SUCH-WORKLOAD)   # unknown workload name
expect_exit(2 faults NO-SUCH-WORKLOAD)
expect_exit(2 run STGCN --bogus)      # unknown option
expect_exit(2 list --scale)           # option missing its value
expect_exit(0 list)                   # healthy baseline
