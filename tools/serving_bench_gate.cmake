# Serving-bench regression gate, run under ctest: rerun
# bench_ext_serving's JSONL twin and diff it *exactly* (tolerance 0)
# against the committed baseline. Every field in a serving record —
# goodput, percentiles, shed/hedge/retry counters, per-replica
# breaker state — derives from simulated time and seeded randomness,
# so any drift means the serving simulator, the fault injector, or
# the batch-cost pricing changed behaviour. Invoke as
#   cmake -DBENCH_BIN=<bench_ext_serving> -DBENCH_DIFF_BIN=<bench_diff>
#         -DBASELINE=<bench/baselines/ext_serving.jsonl>
#         -P serving_bench_gate.cmake

foreach(var BENCH_BIN BENCH_DIFF_BIN BASELINE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=...")
    endif()
endforeach()

set(candidate ext_serving_candidate.jsonl)

execute_process(
    COMMAND ${BENCH_BIN} ${candidate}
    RESULT_VARIABLE rv
    OUTPUT_QUIET)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_ext_serving exited with '${rv}'")
endif()

execute_process(
    COMMAND ${BENCH_DIFF_BIN} ${BASELINE} ${candidate}
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "serving records drifted from the committed baseline "
        "(bench_diff exit '${rv}'); if the change is intentional, "
        "regenerate bench/baselines/ext_serving.jsonl")
endif()

file(REMOVE ${candidate})
message(STATUS "serving records match the committed baseline")
