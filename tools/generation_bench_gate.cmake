# Graph-generation regression gate, run under ctest: rerun
# bench_ext_generation's JSONL twin and diff it *exactly* (tolerance 0)
# against the committed baseline. The gated records are deterministic
# by construction — edge counts, the order-dependent stream checksum,
# degree statistics — so any drift means a generator family, the
# per-unit seeding, or the RNG split changed behaviour. Invoke as
#   cmake -DBENCH_BIN=<bench_ext_generation> -DBENCH_DIFF_BIN=<bench_diff>
#         -DBASELINE=<bench/baselines/ext_generation.jsonl>
#         -P generation_bench_gate.cmake

foreach(var BENCH_BIN BENCH_DIFF_BIN BASELINE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=...")
    endif()
endforeach()

set(candidate ext_generation_candidate.jsonl)

execute_process(
    COMMAND ${BENCH_BIN} ${candidate}
    RESULT_VARIABLE rv
    OUTPUT_QUIET)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_ext_generation exited with '${rv}'")
endif()

execute_process(
    COMMAND ${BENCH_DIFF_BIN} ${BASELINE} ${candidate}
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "generation records drifted from the committed baseline "
        "(bench_diff exit '${rv}'); if the change is intentional, "
        "regenerate bench/baselines/ext_generation.jsonl")
endif()

file(REMOVE ${candidate})
message(STATUS "generation records match the committed baseline")
