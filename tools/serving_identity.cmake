# Serving-determinism gate, run under ctest: the same fault plan and
# seed must produce byte-identical --json serving reports across two
# separate processes. The simulator runs entirely on simulated time
# ((time, seq)-ordered events, seeded arrivals, priced cost tables),
# so any divergence means wall-clock time, iteration order of an
# unordered container, or uninitialised state leaked into the report.
# Also exercises the plan save/load round trip: a run from a saved
# plan file must reproduce the run that generated it. Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P serving_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

set(serve_args serve --faults straggler --replicas 3 --rps 40000
    --duration 0.25 --seed 7 --json)

function(run_serve out_var)
    execute_process(
        COMMAND ${GNNMARK_BIN} ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR
            "gnnmark ${ARGN} exited with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_serve(first ${serve_args})
run_serve(second ${serve_args})
if(NOT first STREQUAL second)
    message(FATAL_ERROR
        "serving --json reports differ between two processes with "
        "the same plan and seed — determinism broke")
endif()
message(STATUS "serving reports byte-identical across processes")

set(plan_file serving_identity_plan.txt)
run_serve(saved ${serve_args} --save-plan ${plan_file})
run_serve(loaded serve --plan ${plan_file} --replicas 3 --rps 40000
    --duration 0.25 --seed 7 --json)
file(REMOVE ${plan_file})
# The only allowed difference is the scenario label ("straggler" vs
# "plan"); normalise it before comparing.
string(REPLACE "\"faults\":\"straggler\"" "\"faults\":\"plan\""
    saved_normalised "${saved}")
if(NOT saved_normalised STREQUAL loaded)
    message(FATAL_ERROR
        "serving report from a loaded plan file differs from the run "
        "that saved it — the plan round trip is lossy")
endif()
message(STATUS "saved/loaded fault plans reproduce identical runs")
