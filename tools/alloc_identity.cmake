# Allocator-identity gate, run under ctest: the simulated report of
# every suite workload must be byte-identical whether the host bytes
# come from the caching arena or plain posix_memalign. Two separate
# processes per workload, because the caching arena's free lists (and
# the device VA arena) carry state across runs inside one process.
# Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P alloc_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

set(workloads
    PSAGE-MVL PSAGE-NWP STGCN DGCN GW KGNNL KGNNH ARGA TLSTM)

function(run_mode mode wl out_var)
    set(ENV{GNNMARK_ALLOC} ${mode})
    execute_process(
        COMMAND ${GNNMARK_BIN} run ${wl} --scale 0.2 --iters 2 --json
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    unset(ENV{GNNMARK_ALLOC})
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR
            "gnnmark run ${wl} (GNNMARK_ALLOC=${mode}) "
            "exited with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

foreach(wl IN LISTS workloads)
    run_mode(system ${wl} system_json)
    run_mode(caching ${wl} caching_json)
    if(NOT system_json STREQUAL caching_json)
        message(FATAL_ERROR
            "${wl}: --json report differs between GNNMARK_ALLOC="
            "system and caching — the allocator leaked into the "
            "simulated measurements")
    endif()
    message(STATUS "${wl}: reports identical across allocator modes")
endforeach()
