/**
 * @file
 * The perf-regression gate: compare two telemetry/report files and
 * fail loudly when the candidate drifted past tolerance.
 *
 *   bench_diff <baseline> <candidate> [--tol F]
 *              [--tol-prefix PREFIX=F]... [--allow-missing]
 *              [--ignore SUBSTR]... [--quiet]
 *
 * Inputs are either JSONL telemetry files (gnnmark --telemetry) or
 * single-document JSON reports (gnnmark --json); both flatten to
 * dotted-path metric maps (see obs/bench_compare.hh). Exit codes:
 * 0 within tolerance, 1 regression/missing/extra keys, 2 usage or
 * unreadable/unparseable input — so CI can distinguish "perf broke"
 * from "the harness broke".
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "base/io.hh"
#include "obs/bench_compare.hh"
#include "obs/json.hh"

using namespace gnnmark;

namespace {

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: bench_diff <baseline> <candidate> [options]\n"
        "\n"
        "options:\n"
        "  --tol F             default relative tolerance (default 0)\n"
        "  --abs F             absolute-difference floor below which a\n"
        "                      pair always passes (default 0)\n"
        "  --tol-prefix P=F    tolerance F for keys starting with P\n"
        "                      (longest matching prefix wins; repeat\n"
        "                      for several prefixes)\n"
        "  --ignore SUBSTR     skip keys containing SUBSTR (repeatable;\n"
        "                      wall_time / host_ are always skipped)\n"
        "  --hist-pct          compare histograms via derived\n"
        "                      count/p50/p95/p99 keys instead of raw\n"
        "                      bucket-by-bucket counts\n"
        "  --hist-tol F        relative tolerance for the derived\n"
        "                      percentile keys (default 0.5 = one log2\n"
        "                      bucket of drift)\n"
        "  --allow-missing     keys present on one side only are not\n"
        "                      failures\n"
        "  --quiet             print nothing on success\n"
        "\n"
        "exit status: 0 ok, 1 regression, 2 usage/input error\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string candidate_path;
    obs::CompareOptions opts;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--tol") {
            opts.defaultTolerance = std::atof(next());
        } else if (a == "--abs") {
            opts.absoluteFloor = std::atof(next());
        } else if (a == "--tol-prefix") {
            const std::string spec = next();
            const size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0)
                usage();
            opts.tolerances[spec.substr(0, eq)] =
                std::atof(spec.c_str() + eq + 1);
        } else if (a == "--ignore") {
            opts.ignoreSubstrings.push_back(next());
        } else if (a == "--hist-pct") {
            opts.histogramPercentiles = true;
        } else if (a == "--hist-tol") {
            opts.histogramTolerance = std::atof(next());
        } else if (a == "--allow-missing") {
            opts.allowMissing = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a.rfind("--", 0) == 0) {
            std::cerr << "unknown option: " << a << "\n";
            usage();
        } else if (baseline_path.empty()) {
            baseline_path = a;
        } else if (candidate_path.empty()) {
            candidate_path = a;
        } else {
            usage();
        }
    }
    if (baseline_path.empty() || candidate_path.empty())
        usage();

    std::map<std::string, double> baseline;
    std::map<std::string, double> candidate;
    try {
        baseline = obs::flattenTelemetryFile(baseline_path);
        candidate = obs::flattenTelemetryFile(candidate_path);
    } catch (const IoError &e) {
        std::cerr << "bench_diff: " << e.what() << "\n";
        return 2;
    } catch (const obs::JsonError &e) {
        std::cerr << "bench_diff: " << e.what() << "\n";
        return 2;
    }

    const obs::CompareResult result =
        compareMetricMaps(baseline, candidate, opts);

    if (!result.ok()) {
        for (const obs::CompareFailure &f : result.failures)
            std::cerr << describeFailure(f) << "\n";
        std::cerr << "bench_diff: FAIL — " << result.failures.size()
                  << " of " << result.comparedKeys
                  << " compared keys out of tolerance (" << baseline_path
                  << " vs " << candidate_path << ")\n";
        return 1;
    }
    if (!quiet) {
        std::cout << "bench_diff: OK — " << result.comparedKeys
                  << " keys within tolerance, " << result.ignoredKeys
                  << " wall-clock/ignored keys skipped\n";
    }
    return 0;
}
