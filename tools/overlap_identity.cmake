# Overlap-model gates, run under ctest:
#
#  1. Determinism: `gnnmark scaling --json` is byte-identical across
#     two separate processes, in each --overlap mode. (Separate
#     processes so allocator free lists and the device VA arena cannot
#     carry state between the runs.)
#  2. Model invariants across the two modes, checked on the parsed
#     numbers: with --overlap off every point reports
#     comm_exposed_sec == comm_time_sec and overlap_frac == 0; with
#     --overlap on exposure never exceeds the total.
#
# Invoke as
#   cmake -DGNNMARK_BIN=<path-to-gnnmark> -P overlap_identity.cmake

if(NOT DEFINED GNNMARK_BIN)
    message(FATAL_ERROR "pass -DGNNMARK_BIN=<gnnmark binary>")
endif()

function(run_scaling mode out_var)
    execute_process(
        COMMAND ${GNNMARK_BIN} scaling --scale 0.2 --iters 2
                --overlap ${mode} --json
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_QUIET)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR
            "gnnmark scaling --overlap ${mode} exited with '${rv}'")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

foreach(mode on off)
    run_scaling(${mode} first)
    run_scaling(${mode} second)
    if(NOT first STREQUAL second)
        message(FATAL_ERROR
            "scaling --overlap ${mode} differs between two runs — "
            "the overlap model is not deterministic")
    endif()
    set(json_${mode} "${first}")
    message(STATUS "--overlap ${mode}: deterministic across processes")
endforeach()

# Pull every scaling point's {comm, exposed, frac} triple out of the
# flat JSON with a regex; one match per (workload, world) pair.
set(point_re
    "\"comm_time_sec\":([0-9.e+-]+),\"comm_exposed_sec\":([0-9.e+-]+),\"overlap_frac\":([0-9.e+-]+)")

string(REGEX MATCHALL "${point_re}" off_points "${json_off}")
if(off_points STREQUAL "")
    message(FATAL_ERROR "no scaling points found in --overlap off JSON")
endif()
foreach(point IN LISTS off_points)
    string(REGEX REPLACE "${point_re}" "\\1;\\2;\\3" triple "${point}")
    list(GET triple 0 total)
    list(GET triple 1 exposed)
    list(GET triple 2 frac)
    if(NOT total STREQUAL exposed)
        message(FATAL_ERROR
            "--overlap off: comm_exposed_sec ${exposed} != "
            "comm_time_sec ${total} — the sync model must be fully "
            "serialized")
    endif()
    if(NOT frac STREQUAL "0")
        message(FATAL_ERROR
            "--overlap off: overlap_frac ${frac} != 0")
    endif()
endforeach()
message(STATUS "--overlap off: every point fully exposed (legacy model)")

string(REGEX MATCHALL "${point_re}" on_points "${json_on}")
set(hidden_somewhere FALSE)
foreach(point IN LISTS on_points)
    string(REGEX REPLACE "${point_re}" "\\1;\\2;\\3" triple "${point}")
    list(GET triple 0 total)
    list(GET triple 1 exposed)
    if(exposed GREATER total)
        message(FATAL_ERROR
            "--overlap on: comm_exposed_sec ${exposed} > "
            "comm_time_sec ${total}")
    endif()
    if(exposed LESS total)
        set(hidden_somewhere TRUE)
    endif()
endforeach()
if(NOT hidden_somewhere)
    message(FATAL_ERROR
        "--overlap on: no point hides any communication — overlap "
        "model inert")
endif()
message(STATUS "--overlap on: exposure bounded by total, some hidden")
