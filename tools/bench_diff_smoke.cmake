# Telemetry + regression-gate smoke test, run under ctest. Exercises
# the full producer/consumer loop: gnnmark writes a telemetry file,
# bench_diff passes on a self-diff, fails on an injected regression,
# and distinguishes harness errors (exit 2) from perf failures (1).
# Invoke as
#   cmake -DGNNMARK_BIN=<gnnmark> -DBENCH_DIFF_BIN=<bench_diff>
#         -P bench_diff_smoke.cmake

if(NOT DEFINED GNNMARK_BIN OR NOT DEFINED BENCH_DIFF_BIN)
    message(FATAL_ERROR
        "pass -DGNNMARK_BIN=<gnnmark> -DBENCH_DIFF_BIN=<bench_diff>")
endif()

function(expect_exit code)
    execute_process(
        COMMAND ${ARGN}
        RESULT_VARIABLE rv
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rv EQUAL ${code})
        message(FATAL_ERROR
            "${ARGN}: expected exit ${code}, got '${rv}'")
    endif()
endfunction()

set(tele_a ${CMAKE_CURRENT_BINARY_DIR}/bench_diff_smoke_a.jsonl)
set(tele_b ${CMAKE_CURRENT_BINARY_DIR}/bench_diff_smoke_b.jsonl)
set(tele_bad ${CMAKE_CURRENT_BINARY_DIR}/bench_diff_smoke_bad.jsonl)

# A file must self-diff clean at zero tolerance. Two fresh processes
# at the same seed need a small tolerance: the cache model hashes real
# host pointers, so ASLR shifts cache-set mappings by well under 1%
# between processes (run under `setarch -R` for exact reruns). The
# log2 timing-histogram buckets are skipped outright — a few percent
# of timing jitter can move whole kernels across bucket boundaries.
expect_exit(0 ${GNNMARK_BIN} run STGCN --scale 0.25 --iters 2
            --telemetry ${tele_a})
expect_exit(0 ${GNNMARK_BIN} run STGCN --scale 0.25 --iters 2
            --telemetry ${tele_b})
expect_exit(0 ${BENCH_DIFF_BIN} ${tele_a} ${tele_a})   # self-diff
expect_exit(0 ${BENCH_DIFF_BIN} ${tele_a} ${tele_b} --tol 0.02
            --abs 1e-4 --ignore .metrics.histograms.)

# Inject a regression: scale every "sim_time_us" value up 50%. The
# gate must fail at zero tolerance and pass once the tolerance covers
# the injected drift.
file(READ ${tele_a} content)
string(REGEX REPLACE "\"sim_time_us\":([0-9]+)\\."
       "\"sim_time_us\":\\1999." content "${content}")
file(WRITE ${tele_bad} "${content}")
expect_exit(1 ${BENCH_DIFF_BIN} ${tele_a} ${tele_bad})
expect_exit(0 ${BENCH_DIFF_BIN} ${tele_a} ${tele_bad}
            --tol-prefix iteration.=1e9 --tol-prefix manifest.=1e9)

# A missing-record candidate is a failure unless --allow-missing.
file(STRINGS ${tele_a} lines)
list(GET lines 0 first_line)
file(WRITE ${tele_bad} "${first_line}\n")
expect_exit(1 ${BENCH_DIFF_BIN} ${tele_a} ${tele_bad})
expect_exit(0 ${BENCH_DIFF_BIN} ${tele_a} ${tele_bad} --allow-missing)

# Harness errors are exit 2, never 0 or a "perf" 1.
expect_exit(2 ${BENCH_DIFF_BIN} ${tele_a})                       # one arg
expect_exit(2 ${BENCH_DIFF_BIN} ${tele_a} no-such-file.jsonl)    # IoError
file(WRITE ${tele_bad} "{not json\n")
expect_exit(2 ${BENCH_DIFF_BIN} ${tele_a} ${tele_bad})           # bad JSON

file(REMOVE ${tele_a} ${tele_b} ${tele_bad})
