# Allocator micro-bench regression gate, run under ctest: rerun
# bench_ext_allocator's JSONL counter twin and diff it *exactly*
# (tolerance 0) against the committed baseline. The gated records are
# allocation counters only — requests, heap calls, cache hits, peak
# bytes — which are deterministic for a fixed op sequence, so any
# drift means the allocator or the tape-reuse behaviour changed.
# Invoke as
#   cmake -DBENCH_BIN=<bench_ext_allocator> -DBENCH_DIFF_BIN=<bench_diff>
#         -DBASELINE=<bench/baselines/ext_allocator.jsonl>
#         -P alloc_bench_gate.cmake

foreach(var BENCH_BIN BENCH_DIFF_BIN BASELINE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=...")
    endif()
endforeach()

set(candidate ext_allocator_candidate.jsonl)

execute_process(
    COMMAND ${BENCH_BIN} ${candidate}
    RESULT_VARIABLE rv
    OUTPUT_QUIET)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_ext_allocator exited with '${rv}'")
endif()

execute_process(
    COMMAND ${BENCH_DIFF_BIN} ${BASELINE} ${candidate}
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "allocator counters drifted from the committed baseline "
        "(bench_diff exit '${rv}'); if the change is intentional, "
        "regenerate bench/baselines/ext_allocator.jsonl")
endif()

file(REMOVE ${candidate})
message(STATUS "allocator counters match the committed baseline")
