#include "graph/samplers.hh"

#include <algorithm>
#include <unordered_map>

#include "base/logging.hh"

namespace gnnmark {

namespace {

/** Relabel global neighbour ids to positions in a dedup'd src list. */
void
finalizeBlock(SampledBlock &block,
              std::vector<int32_t> global_neighbors)
{
    std::vector<int32_t> uniq = global_neighbors;
    for (int32_t d : block.dstNodes)
        uniq.push_back(d); // destinations see themselves too
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

    std::unordered_map<int32_t, int32_t> pos;
    pos.reserve(uniq.size());
    for (size_t i = 0; i < uniq.size(); ++i)
        pos[uniq[i]] = static_cast<int32_t>(i);

    block.srcNodes = std::move(uniq);
    block.neighbors.reserve(global_neighbors.size());
    for (int32_t g : global_neighbors)
        block.neighbors.push_back(pos.at(g));
}

} // namespace

NeighborSampler::NeighborSampler(const Graph &graph, int fanout)
    : graph_(graph), fanout_(fanout)
{
    GNN_ASSERT(fanout > 0, "fanout must be positive");
}

SampledBlock
NeighborSampler::sample(const std::vector<int32_t> &seeds, Rng &rng) const
{
    SampledBlock block;
    block.dstNodes = seeds;
    block.offsets.push_back(0);

    std::vector<int32_t> global_neighbors;
    for (int32_t seed : seeds) {
        auto [begin, end] = graph_.neighbors(seed);
        const int64_t deg = end - begin;
        const int take = static_cast<int>(
            std::min<int64_t>(fanout_, deg));
        for (int i = 0; i < take; ++i) {
            global_neighbors.push_back(
                begin[rng.randint(static_cast<uint64_t>(deg))]);
            block.weights.push_back(1.0f /
                                    static_cast<float>(take));
        }
        block.offsets.push_back(
            static_cast<int32_t>(global_neighbors.size()));
    }
    finalizeBlock(block, std::move(global_neighbors));
    return block;
}

RandomWalkSampler::RandomWalkSampler(
    std::vector<std::vector<int32_t>> item_to_user,
    std::vector<std::vector<int32_t>> user_to_item, int walks,
    int walk_length, int top_t)
    : itemToUser_(std::move(item_to_user)),
      userToItem_(std::move(user_to_item)), walks_(walks),
      walkLength_(walk_length), topT_(top_t)
{
    GNN_ASSERT(walks > 0 && walk_length > 0 && top_t > 0,
               "invalid random-walk sampler parameters");
}

SampledBlock
RandomWalkSampler::sample(const std::vector<int32_t> &seeds,
                          Rng &rng) const
{
    SampledBlock block;
    block.dstNodes = seeds;
    block.offsets.push_back(0);

    std::vector<int32_t> global_neighbors;
    std::unordered_map<int32_t, int32_t> visits;
    for (int32_t seed : seeds) {
        visits.clear();
        for (int w = 0; w < walks_; ++w) {
            int32_t item = seed;
            for (int step = 0; step < walkLength_; ++step) {
                const auto &users = itemToUser_[item];
                if (users.empty())
                    break;
                const int32_t user = users[rng.randint(users.size())];
                const auto &items = userToItem_[user];
                if (items.empty())
                    break;
                item = items[rng.randint(items.size())];
                if (item != seed)
                    ++visits[item];
            }
        }
        // Top-T most visited items become the weighted neighbours.
        std::vector<std::pair<int32_t, int32_t>> counted;
        counted.reserve(visits.size());
        for (auto [item, count] : visits)
            counted.emplace_back(count, item);
        std::sort(counted.rbegin(), counted.rend());
        const int take = static_cast<int>(
            std::min<size_t>(topT_, counted.size()));
        float total = 0.0f;
        for (int i = 0; i < take; ++i)
            total += static_cast<float>(counted[i].first);
        for (int i = 0; i < take; ++i) {
            global_neighbors.push_back(counted[i].second);
            block.weights.push_back(
                static_cast<float>(counted[i].first) / total);
        }
        block.offsets.push_back(
            static_cast<int32_t>(global_neighbors.size()));
    }
    finalizeBlock(block, std::move(global_neighbors));
    return block;
}

} // namespace gnnmark
