/**
 * @file
 * Batching of many small graphs (molecules, proteins) into one large
 * disjoint-union graph, the DGL/PyG strategy whose behaviour the
 * Tree-LSTM and DeepGCN workloads exercise.
 */

#ifndef GNNMARK_GRAPH_BATCH_HH
#define GNNMARK_GRAPH_BATCH_HH

#include <vector>

#include "graph/graph.hh"
#include "tensor/tensor.hh"

namespace gnnmark {

/** A small graph with node features and a graph-level target. */
struct SmallGraph
{
    Graph graph;
    Tensor features; ///< [numNodes, F]
    float target = 0.0f;   ///< regression target
    int32_t label = 0;     ///< classification label
};

/** Disjoint union of small graphs with segment bookkeeping. */
struct GraphBatch
{
    Graph graph;          ///< union graph
    Tensor features;      ///< [totalNodes, F] stacked features
    std::vector<int32_t> nodeOffsets; ///< size numGraphs + 1
    std::vector<float> targets;       ///< per graph
    std::vector<int32_t> labels;      ///< per graph

    int64_t numGraphs() const
    {
        return static_cast<int64_t>(targets.size());
    }

    /** Merge the given graphs (feature widths must agree). */
    static GraphBatch build(const std::vector<SmallGraph> &graphs);
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_BATCH_HH
