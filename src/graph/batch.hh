/**
 * @file
 * Batching of many small graphs (molecules, proteins) into one large
 * disjoint-union graph, the DGL/PyG strategy whose behaviour the
 * Tree-LSTM and DeepGCN workloads exercise.
 */

#ifndef GNNMARK_GRAPH_BATCH_HH
#define GNNMARK_GRAPH_BATCH_HH

#include <vector>

#include "graph/graph.hh"
#include "tensor/tensor.hh"

namespace gnnmark {

/** A small graph with node features and a graph-level target. */
struct SmallGraph
{
    Graph graph;
    Tensor features; ///< [numNodes, F]
    float target = 0.0f;   ///< regression target
    int32_t label = 0;     ///< classification label
};

/**
 * A compact subgraph over one streamed chunk of a (possibly huge)
 * graph: global 64-bit vertex ids are relabelled to a dense 32-bit
 * id space covering only the vertices the chunk touches, so the
 * neighbour samplers and minibatch layers can run on it with memory
 * proportional to the chunk — never to the full graph.
 */
struct ChunkGraph
{
    Graph graph;                   ///< compact-id graph
    std::vector<int64_t> globalIds; ///< compact id -> global id

    int64_t numNodes() const { return graph.numNodes(); }

    /** Approximate resident footprint (CSR + id map). */
    int64_t bytes() const;

    /**
     * Build from a chunk's edge list (global ids, any range).
     * @param symmetric insert reverse edges, as Graph does.
     */
    static ChunkGraph
    fromEdges(const std::vector<std::pair<int64_t, int64_t>> &edges,
              bool symmetric = true);
};

/** Disjoint union of small graphs with segment bookkeeping. */
struct GraphBatch
{
    Graph graph;          ///< union graph
    Tensor features;      ///< [totalNodes, F] stacked features
    std::vector<int32_t> nodeOffsets; ///< size numGraphs + 1
    std::vector<float> targets;       ///< per graph
    std::vector<int32_t> labels;      ///< per graph

    int64_t numGraphs() const
    {
        return static_cast<int64_t>(targets.size());
    }

    /** Merge the given graphs (feature widths must agree). */
    static GraphBatch build(const std::vector<SmallGraph> &graphs);
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_BATCH_HH
