/**
 * @file
 * Synthetic dataset generators.
 *
 * The paper evaluates on MovieLens/Nowplaying (PinSAGE), METR-LA
 * traffic (STGCN), ogbg molecules (DeepGCN), AGENDA knowledge graphs
 * (GraphWriter), PROTEINS (k-GNN), citation graphs (ARGA) and SST
 * sentiment trees (Tree-LSTM). None of those is redistributable here,
 * so each generator synthesises a graph with the matched *structural*
 * parameters — degree distribution, feature width, feature sparsity,
 * label-feature correlation strong enough that training converges —
 * which is what the architectural characterization depends on.
 */

#ifndef GNNMARK_GRAPH_GENERATORS_HH
#define GNNMARK_GRAPH_GENERATORS_HH

#include <vector>

#include "base/rng.hh"
#include "graph/batch.hh"
#include "graph/graph.hh"
#include "graph/hetero_graph.hh"
#include "graph/tree.hh"
#include "tensor/tensor.hh"

namespace gnnmark {
namespace gen {

/** Citation-style dataset (Cora/PubMed/CiteSeer analogue). */
struct CitationData
{
    Graph graph;                 ///< undirected, homophilous
    Tensor features;             ///< [N, F] sparse bag-of-words
    std::vector<int32_t> labels; ///< per-node class
    int numClasses = 0;
};

/**
 * Homophilous citation graph: each class owns a band of the feature
 * space; nodes draw mostly in-band words and link mostly in-class.
 * @param feature_density fraction of non-zero feature entries.
 */
CitationData citation(Rng &rng, int64_t nodes, int64_t feat_dim,
                      int classes, double feature_density = 0.015,
                      double avg_degree = 4.0,
                      double homophily = 0.8);

/** Cora-shaped preset (2708 nodes, 1433 features, 7 classes). */
CitationData cora(Rng &rng, double scale = 1.0);

/** Power-law (preferential-attachment) graph. */
Graph powerLaw(Rng &rng, int64_t nodes, int edges_per_node);

/** Bipartite user-item interaction dataset (PinSAGE analogue). */
struct RecsysData
{
    HeteroGraph graph;
    int userType = 0, itemType = 0;
    int relUserItem = 0, relItemUser = 0;
    Tensor itemFeatures; ///< [items, F]
    int64_t users = 0, items = 0;
};

/**
 * @param feature_zero_fraction fraction of zero values in the item
 *        features, matching the transfer sparsity the paper reports
 *        (MVL 22%, NWP 11%).
 */
RecsysData bipartiteRecsys(Rng &rng, int64_t users, int64_t items,
                           int64_t interactions, int64_t item_feat_dim,
                           double feature_zero_fraction);

/** Traffic sensor network + speed time series (METR-LA analogue). */
struct TrafficData
{
    Graph sensors;
    Tensor series; ///< [T, N] normalised speeds
};

TrafficData traffic(Rng &rng, int64_t sensors, int64_t timesteps,
                    double avg_degree = 4.0);

/** Random molecule-like graphs (ogbg-mol analogue). */
std::vector<SmallGraph> molecules(Rng &rng, int count, int min_atoms,
                                  int max_atoms, int64_t feat_dim);

/** Random protein-like graphs (PROTEINS analogue; bigger, 3 feats). */
std::vector<SmallGraph> proteins(Rng &rng, int count);

/** Knowledge-graph-to-text dataset (AGENDA analogue). */
struct KnowledgeGraphText
{
    Graph entities;        ///< relation-collapsed entity graph
    Tensor entityFeatures; ///< [E, F]
    /** Per sample: the entity ids mentioned by the abstract. */
    std::vector<std::vector<int32_t>> entitySets;
    /** Per sample: target token sequence. */
    std::vector<std::vector<int32_t>> targetTokens;
    int vocabSize = 0;
};

KnowledgeGraphText knowledgeGraph(Rng &rng, int64_t entities,
                                  int samples, int vocab,
                                  int sentence_len, int64_t feat_dim);

/** Random binary sentiment parse trees (SST analogue). */
std::vector<Tree> sentimentTrees(Rng &rng, int count, int vocab,
                                 int min_leaves, int max_leaves,
                                 int num_classes = 5);

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GRAPH_GENERATORS_HH
