#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/logging.hh"
#include "base/power_law.hh"

namespace gnnmark {
namespace gen {

CitationData
citation(Rng &rng, int64_t nodes, int64_t feat_dim, int classes,
         double feature_density, double avg_degree, double homophily)
{
    GNN_ASSERT(nodes > 0 && feat_dim > 0 && classes > 0,
               "citation: bad sizes");
    CitationData data;
    data.numClasses = classes;
    data.labels.resize(nodes);
    for (int64_t v = 0; v < nodes; ++v)
        data.labels[v] = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(classes)));

    // Sparse bag-of-words features: 80% of a node's words come from
    // its class's band of the vocabulary.
    data.features = Tensor::zeros({nodes, feat_dim});
    const int64_t band = std::max<int64_t>(1, feat_dim / classes);
    const int64_t words_per_node = std::max<int64_t>(
        1, static_cast<int64_t>(feature_density *
                                static_cast<double>(feat_dim)));
    for (int64_t v = 0; v < nodes; ++v) {
        const int64_t band_lo = data.labels[v] * band;
        for (int64_t w = 0; w < words_per_node; ++w) {
            int64_t word;
            if (rng.bernoulli(0.8)) {
                word = band_lo + static_cast<int64_t>(rng.randint(
                    static_cast<uint64_t>(band)));
            } else {
                word = static_cast<int64_t>(rng.randint(
                    static_cast<uint64_t>(feat_dim)));
            }
            data.features(v, word) = 1.0f;
        }
    }

    // Homophilous edges: in-class with probability `homophily`.
    const int64_t num_edges = static_cast<int64_t>(
        avg_degree * static_cast<double>(nodes) / 2.0);
    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(num_edges);
    for (int64_t e = 0; e < num_edges; ++e) {
        const int32_t u = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(nodes)));
        int32_t v = u;
        for (int tries = 0; tries < 64 && v == u; ++tries) {
            int32_t cand = static_cast<int32_t>(rng.randint(
                static_cast<uint64_t>(nodes)));
            const bool same = data.labels[cand] == data.labels[u];
            if (cand != u && (same == rng.bernoulli(homophily)))
                v = cand;
        }
        if (v != u)
            edges.emplace_back(u, v);
    }
    data.graph = Graph(nodes, std::move(edges), /*symmetric=*/true);
    return data;
}

CitationData
cora(Rng &rng, double scale)
{
    const int64_t nodes =
        std::max<int64_t>(64, static_cast<int64_t>(2708 * scale));
    const int64_t feats =
        std::max<int64_t>(32, static_cast<int64_t>(1433 * scale));
    return citation(rng, nodes, feats, 7, 0.013, 3.9, 0.81);
}

Graph
powerLaw(Rng &rng, int64_t nodes, int edges_per_node)
{
    GNN_ASSERT(nodes > 1 && edges_per_node >= 1, "powerLaw: bad sizes");
    // Preferential attachment: each new node links to `edges_per_node`
    // targets drawn proportionally to current degree via the shared
    // endpoint pool.
    DegreePool pool;
    std::vector<std::pair<int32_t, int32_t>> edges;
    pool.add(0);
    for (int32_t v = 1; v < nodes; ++v) {
        std::set<int32_t> targets;
        const int want = std::min<int>(edges_per_node, v);
        while (static_cast<int>(targets.size()) < want)
            targets.insert(pool.pick(rng));
        for (int32_t t : targets) {
            edges.emplace_back(v, t);
            pool.addEdge(t, v);
        }
    }
    return Graph(nodes, std::move(edges), /*symmetric=*/true);
}

RecsysData
bipartiteRecsys(Rng &rng, int64_t users, int64_t items,
                int64_t interactions, int64_t item_feat_dim,
                double feature_zero_fraction)
{
    GNN_ASSERT(users > 0 && items > 0 && interactions > 0,
               "bipartiteRecsys: bad sizes");
    RecsysData data;
    data.users = users;
    data.items = items;
    data.userType = data.graph.addNodeType("user", users);
    data.itemType = data.graph.addNodeType("item", items);

    // Item popularity follows a Zipf-like distribution, as with real
    // interaction data.
    std::vector<double> popularity(items);
    for (int64_t i = 0; i < items; ++i)
        popularity[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);

    Relation ui{"clicked", data.userType, data.itemType, {}};
    std::set<std::pair<int32_t, int32_t>> seen;
    for (int64_t e = 0; e < interactions; ++e) {
        const int32_t u = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(users)));
        const int32_t i = static_cast<int32_t>(rng.discrete(popularity));
        if (seen.insert({u, i}).second)
            ui.edges.emplace_back(u, i);
    }
    Relation iu{"clicked-by", data.itemType, data.userType, {}};
    for (auto [u, i] : ui.edges)
        iu.edges.emplace_back(i, u);
    data.relUserItem = data.graph.addRelation(std::move(ui));
    data.relItemUser = data.graph.addRelation(std::move(iu));

    // Dense-ish item features with a controlled zero fraction.
    data.itemFeatures = Tensor::zeros({items, item_feat_dim});
    for (int64_t i = 0; i < items; ++i) {
        for (int64_t j = 0; j < item_feat_dim; ++j) {
            if (!rng.bernoulli(feature_zero_fraction)) {
                data.itemFeatures(i, j) =
                    static_cast<float>(rng.normal(0.0, 0.5));
            }
        }
    }
    return data;
}

TrafficData
traffic(Rng &rng, int64_t sensors, int64_t timesteps, double avg_degree)
{
    GNN_ASSERT(sensors > 0 && timesteps > 0, "traffic: bad sizes");
    TrafficData data;

    // Road-network-like graph: a ring backbone with random chords.
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (int32_t v = 0; v < sensors; ++v)
        edges.emplace_back(v, static_cast<int32_t>((v + 1) % sensors));
    const int64_t extra = static_cast<int64_t>(
        std::max(0.0, (avg_degree - 2.0)) * static_cast<double>(sensors) /
        2.0);
    for (int64_t e = 0; e < extra; ++e) {
        int32_t u = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(sensors)));
        int32_t v = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(sensors)));
        if (u != v)
            edges.emplace_back(u, v);
    }
    data.sensors = Graph(sensors, std::move(edges), /*symmetric=*/true);

    // Daily-period speeds with per-sensor phase plus diffusion noise:
    // predictable enough for STGCN to fit. Roughly 18% of the readings
    // are zeroed, matching METR-LA's missing-sensor entries.
    data.series = Tensor::zeros({timesteps, sensors});
    const double period = 48.0;
    for (int64_t n = 0; n < sensors; ++n) {
        const double phase = rng.uniform() * 2.0 * M_PI;
        const double amp = 0.4 + 0.3 * rng.uniform();
        for (int64_t t = 0; t < timesteps; ++t) {
            if (rng.bernoulli(0.18))
                continue; // missing reading stays 0
            const double v =
                amp * std::sin(2.0 * M_PI * t / period + phase) +
                0.05 * rng.normal();
            data.series(t, n) = static_cast<float>(v);
        }
    }
    return data;
}

namespace {

SmallGraph
randomSmallGraph(Rng &rng, int min_nodes, int max_nodes, int64_t feat_dim,
                 double edge_density, const std::vector<float> &w_true)
{
    const int n = static_cast<int>(
        rng.randint(static_cast<int64_t>(min_nodes),
                    static_cast<int64_t>(max_nodes)));
    SmallGraph g;
    // A connected backbone (random spanning path) plus density edges.
    std::vector<std::pair<int32_t, int32_t>> edges;
    std::vector<int32_t> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;
    rng.shuffle(order);
    for (int i = 1; i < n; ++i)
        edges.emplace_back(order[i - 1], order[i]);
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (rng.bernoulli(edge_density))
                edges.emplace_back(u, v);
        }
    }
    g.graph = Graph(n, std::move(edges), /*symmetric=*/true);

    // Categorical atom-type features (one-hot plus a degree column).
    g.features = Tensor::zeros({n, feat_dim});
    double feat_sum = 0.0;
    for (int v = 0; v < n; ++v) {
        const int64_t atom = static_cast<int64_t>(rng.randint(
            static_cast<uint64_t>(feat_dim - 1)));
        g.features(v, atom) = 1.0f;
        g.features(v, feat_dim - 1) =
            static_cast<float>(g.graph.degree(v)) / 4.0f;
        for (int64_t j = 0; j < feat_dim; ++j)
            feat_sum += w_true[j] * g.features(v, j);
    }
    const double avg_deg = 2.0 * g.graph.numEdges() /
                           std::max(1.0, static_cast<double>(n));
    const double latent =
        feat_sum / n + 0.4 * (avg_deg - 2.5) + 0.2 * rng.normal();
    g.target = static_cast<float>(latent);
    g.label = latent > 0.0 ? 1 : 0;
    return g;
}

} // namespace

namespace {

/** Binarise targets at the median so classes are balanced. */
void
medianLabel(std::vector<SmallGraph> &graphs)
{
    std::vector<float> targets;
    targets.reserve(graphs.size());
    for (const SmallGraph &g : graphs)
        targets.push_back(g.target);
    std::nth_element(targets.begin(),
                     targets.begin() + targets.size() / 2,
                     targets.end());
    const float median = targets[targets.size() / 2];
    for (SmallGraph &g : graphs)
        g.label = g.target > median ? 1 : 0;
}

} // namespace

std::vector<SmallGraph>
molecules(Rng &rng, int count, int min_atoms, int max_atoms,
          int64_t feat_dim)
{
    std::vector<float> w_true(feat_dim);
    for (auto &w : w_true)
        w = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<SmallGraph> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        out.push_back(randomSmallGraph(rng, min_atoms, max_atoms,
                                       feat_dim, 0.12, w_true));
    }
    medianLabel(out);
    return out;
}

std::vector<SmallGraph>
proteins(Rng &rng, int count)
{
    std::vector<float> w_true(3);
    for (auto &w : w_true)
        w = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<SmallGraph> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        out.push_back(randomSmallGraph(rng, 20, 60, 3, 0.1, w_true));
    }
    medianLabel(out);
    return out;
}

KnowledgeGraphText
knowledgeGraph(Rng &rng, int64_t entities, int samples, int vocab,
               int sentence_len, int64_t feat_dim)
{
    GNN_ASSERT(entities > 4 && samples > 0 && vocab > 4,
               "knowledgeGraph: bad sizes");
    KnowledgeGraphText data;
    data.vocabSize = vocab;
    data.entities = powerLaw(rng, entities, 3);

    data.entityFeatures = Tensor::zeros({entities, feat_dim});
    for (int64_t e = 0; e < entities; ++e) {
        for (int64_t j = 0; j < feat_dim; ++j) {
            if (!rng.bernoulli(0.3)) {
                data.entityFeatures(e, j) =
                    static_cast<float>(rng.normal(0.0, 0.5));
            }
        }
    }

    // Each abstract mentions a connected set of entities; the target
    // sentence tokens are a (noisy) deterministic function of the
    // entities so the decoder has signal to learn.
    for (int s = 0; s < samples; ++s) {
        std::vector<int32_t> ents;
        int32_t cur = static_cast<int32_t>(rng.randint(
            static_cast<uint64_t>(entities)));
        ents.push_back(cur);
        const int set_size =
            4 + static_cast<int>(rng.randint(uint64_t{8}));
        for (int i = 1; i < set_size; ++i) {
            auto [begin, end] = data.entities.neighbors(cur);
            if (begin == end)
                break;
            cur = begin[rng.randint(static_cast<uint64_t>(end - begin))];
            ents.push_back(cur);
        }
        std::sort(ents.begin(), ents.end());
        ents.erase(std::unique(ents.begin(), ents.end()), ents.end());

        std::vector<int32_t> tokens;
        tokens.reserve(sentence_len);
        for (int t = 0; t < sentence_len; ++t) {
            const int32_t ent = ents[t % ents.size()];
            int32_t tok = static_cast<int32_t>(
                (ent * 7 + t * 3) % vocab);
            if (rng.bernoulli(0.1)) {
                tok = static_cast<int32_t>(rng.randint(
                    static_cast<uint64_t>(vocab)));
            }
            tokens.push_back(tok);
        }
        data.entitySets.push_back(std::move(ents));
        data.targetTokens.push_back(std::move(tokens));
    }
    return data;
}

namespace {

/** Recursively build a random binary tree over [lo, hi) leaves. */
int32_t
buildSubtree(Tree &tree, Rng &rng, int lo, int hi,
             const std::vector<int32_t> &leaf_tokens)
{
    if (hi - lo == 1) {
        tree.children.emplace_back();
        tree.token.push_back(leaf_tokens[lo]);
        return static_cast<int32_t>(tree.children.size()) - 1;
    }
    const int split =
        lo + 1 + static_cast<int>(rng.randint(
                     static_cast<uint64_t>(hi - lo - 1)));
    const int32_t left = buildSubtree(tree, rng, lo, split, leaf_tokens);
    const int32_t right = buildSubtree(tree, rng, split, hi, leaf_tokens);
    tree.children.push_back({left, right});
    tree.token.push_back(-1);
    return static_cast<int32_t>(tree.children.size()) - 1;
}

} // namespace

std::vector<Tree>
sentimentTrees(Rng &rng, int count, int vocab, int min_leaves,
               int max_leaves, int num_classes)
{
    GNN_ASSERT(vocab > 2 && min_leaves >= 1 && max_leaves >= min_leaves,
               "sentimentTrees: bad sizes");
    std::vector<Tree> out;
    out.reserve(count);
    // Half the vocabulary is "positive"; the tree label reflects the
    // majority leaf polarity, giving the model learnable signal.
    for (int i = 0; i < count; ++i) {
        const int leaves = static_cast<int>(
            rng.randint(static_cast<int64_t>(min_leaves),
                        static_cast<int64_t>(max_leaves)));
        std::vector<int32_t> tokens(leaves);
        int positive = 0;
        for (int l = 0; l < leaves; ++l) {
            tokens[l] = static_cast<int32_t>(rng.randint(
                static_cast<uint64_t>(vocab)));
            if (tokens[l] < vocab / 2)
                ++positive;
        }
        Tree t;
        t.root = buildSubtree(t, rng, 0, leaves, tokens);
        const double pos_frac =
            static_cast<double>(positive) / static_cast<double>(leaves);
        t.label = static_cast<int32_t>(std::min<double>(
            num_classes - 1, pos_frac * num_classes));
        out.push_back(std::move(t));
    }
    return out;
}

} // namespace gen
} // namespace gnnmark
