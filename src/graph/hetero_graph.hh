/**
 * @file
 * Heterogeneous graph: multiple node types connected by typed edge
 * relations (each relation a bipartite CSR block). Used by the
 * PinSAGE recommender (user/item) and GraphWriter (knowledge graph).
 */

#ifndef GNNMARK_GRAPH_HETERO_GRAPH_HH
#define GNNMARK_GRAPH_HETERO_GRAPH_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace gnnmark {

/**
 * One typed relation: edges from nodes of srcType to nodes of dstType.
 * The underlying Graph is indexed in a combined space where node v of
 * the source type is vertex v and node u of the destination type is
 * vertex srcCount + u.
 */
struct Relation
{
    std::string name;
    int srcType;
    int dstType;
    /** Per-edge (src-local, dst-local) pairs. */
    std::vector<std::pair<int32_t, int32_t>> edges;
};

/** Heterogeneous graph container. */
class HeteroGraph
{
  public:
    /** Register a node type; returns its id. */
    int addNodeType(std::string name, int64_t count);

    /** Register a relation; endpoints are validated. */
    int addRelation(Relation relation);

    int numNodeTypes() const { return static_cast<int>(types_.size()); }
    int numRelations() const
    {
        return static_cast<int>(relations_.size());
    }

    const std::string &typeName(int t) const { return types_[t].name; }
    int64_t typeCount(int t) const { return types_[t].count; }
    const Relation &relation(int r) const { return relations_[r]; }

    /** Adjacency of a relation as [srcCount x dstCount] CSR. */
    CsrMatrix relationCsr(int r) const;

    /** Per-source neighbour lists of a relation. */
    std::vector<std::vector<int32_t>> relationAdjList(int r) const;

  private:
    struct TypeInfo
    {
        std::string name;
        int64_t count;
    };
    std::vector<TypeInfo> types_;
    std::vector<Relation> relations_;
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_HETERO_GRAPH_HH
