/**
 * @file
 * Parse trees and tree batching for the Tree-LSTM workload. Batching
 * merges many small trees into one node space and schedules them by
 * level (leaves first), the DGL batching strategy the paper studies.
 */

#ifndef GNNMARK_GRAPH_TREE_HH
#define GNNMARK_GRAPH_TREE_HH

#include <cstdint>
#include <vector>

namespace gnnmark {

/** One parse tree; node 0..n-1, leaves carry token ids. */
struct Tree
{
    /** children[v] lists v's children (empty for leaves). */
    std::vector<std::vector<int32_t>> children;
    /** token[v] is a vocabulary id for leaves, -1 for internal nodes. */
    std::vector<int32_t> token;
    int32_t root = 0;
    int32_t label = 0; ///< sentiment class of the root

    int64_t numNodes() const
    {
        return static_cast<int64_t>(children.size());
    }

    /** Structural sanity check (each non-root has one parent, etc.). */
    void validate() const;
};

/** Many trees batched into one node space with level scheduling. */
struct TreeBatch
{
    /** All nodes of all trees, re-indexed contiguously. */
    int64_t totalNodes = 0;

    /** Processing wave: all nodes whose children are already done. */
    struct Level
    {
        std::vector<int32_t> nodes;        ///< batched node ids
        std::vector<int32_t> childOffsets; ///< size nodes.size() + 1
        std::vector<int32_t> childIds;     ///< batched child node ids
    };
    std::vector<Level> levels; ///< level 0 holds the leaves

    std::vector<int32_t> tokens; ///< per batched node; -1 internal
    std::vector<int32_t> roots;  ///< batched id of each tree's root
    std::vector<int32_t> labels; ///< per-tree label

    /** Batch trees; node ids are offset in input order. */
    static TreeBatch build(const std::vector<Tree> &trees);
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_TREE_HH
