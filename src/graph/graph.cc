#include "graph/graph.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

Graph::Graph(int64_t num_nodes,
             std::vector<std::pair<int32_t, int32_t>> edges,
             bool symmetric)
    : numNodes_(num_nodes)
{
    GNN_ASSERT(num_nodes >= 0, "negative node count");
    if (symmetric) {
        const size_t n = edges.size();
        edges.reserve(2 * n);
        for (size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }
    for (auto [s, d] : edges) {
        GNN_ASSERT(s >= 0 && s < num_nodes && d >= 0 && d < num_nodes,
                   "edge (%d, %d) out of range", s, d);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    rowPtr_.assign(numNodes_ + 1, 0);
    src_.reserve(edges.size());
    dst_.reserve(edges.size());
    for (auto [s, d] : edges) {
        ++rowPtr_[s + 1];
        src_.push_back(s);
        dst_.push_back(d);
    }
    for (int64_t v = 0; v < numNodes_; ++v)
        rowPtr_[v + 1] += rowPtr_[v];
}

int32_t
Graph::degree(int64_t v) const
{
    GNN_ASSERT(v >= 0 && v < numNodes_, "node %lld out of range",
               static_cast<long long>(v));
    return rowPtr_[v + 1] - rowPtr_[v];
}

std::pair<const int32_t *, const int32_t *>
Graph::neighbors(int64_t v) const
{
    GNN_ASSERT(v >= 0 && v < numNodes_, "node %lld out of range",
               static_cast<long long>(v));
    return {dst_.data() + rowPtr_[v], dst_.data() + rowPtr_[v + 1]};
}

Graph
Graph::transposed() const
{
    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(dst_.size());
    for (size_t e = 0; e < dst_.size(); ++e)
        edges.emplace_back(dst_[e], src_[e]);
    return Graph(numNodes_, std::move(edges));
}

Graph
Graph::withSelfLoops() const
{
    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(dst_.size() + numNodes_);
    for (size_t e = 0; e < dst_.size(); ++e)
        edges.emplace_back(src_[e], dst_[e]);
    for (int64_t v = 0; v < numNodes_; ++v) {
        edges.emplace_back(static_cast<int32_t>(v),
                           static_cast<int32_t>(v));
    }
    return Graph(numNodes_, std::move(edges));
}

namespace {

/** CSR skeleton shared by every adjacency normalisation. */
CsrMatrix
adjacencyCsr(int64_t num_nodes, const std::vector<int32_t> &row_ptr,
             const std::vector<int32_t> &dst)
{
    CsrMatrix m;
    m.rows = num_nodes;
    m.cols = num_nodes;
    m.rowPtr = row_ptr;
    m.colIdx = dst;
    m.vals.assign(dst.size(), 1.0f);
    return m;
}

} // namespace

SparseMatrix
Graph::adjacency(SparseFormat format) const
{
    return SparseMatrix::fromCsr(adjacencyCsr(numNodes_, rowPtr_, dst_),
                                 format);
}

SparseMatrix
Graph::gcnNormAdjacency(SparseFormat format) const
{
    Graph with_loops = withSelfLoops();
    std::vector<float> inv_sqrt_deg(numNodes_);
    // Symmetric norm uses the (self-loop-augmented) degree; for
    // directed graphs this degrades to out-degree scaling.
    for (int64_t v = 0; v < numNodes_; ++v) {
        inv_sqrt_deg[v] =
            1.0f / std::sqrt(static_cast<float>(with_loops.degree(v)));
    }
    CsrMatrix m = adjacencyCsr(numNodes_, with_loops.rowPtr_,
                               with_loops.dst_);
    for (size_t e = 0; e < m.colIdx.size(); ++e) {
        const int32_t s = with_loops.src_[e];
        const int32_t d = with_loops.dst_[e];
        m.vals[e] = inv_sqrt_deg[s] * inv_sqrt_deg[d];
    }
    return SparseMatrix::fromCsr(std::move(m), format);
}

SparseMatrix
Graph::meanAdjacency(SparseFormat format) const
{
    CsrMatrix m = adjacencyCsr(numNodes_, rowPtr_, dst_);
    for (int64_t v = 0; v < numNodes_; ++v) {
        const int32_t deg = degree(v);
        if (deg == 0)
            continue;
        const float inv = 1.0f / static_cast<float>(deg);
        for (int32_t e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e)
            m.vals[e] = inv;
    }
    return SparseMatrix::fromCsr(std::move(m), format);
}

} // namespace gnnmark
