#include "graph/hetero_graph.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

int
HeteroGraph::addNodeType(std::string name, int64_t count)
{
    GNN_ASSERT(count >= 0, "negative node count for type '%s'",
               name.c_str());
    types_.push_back(TypeInfo{std::move(name), count});
    return static_cast<int>(types_.size()) - 1;
}

int
HeteroGraph::addRelation(Relation relation)
{
    GNN_ASSERT(relation.srcType >= 0 && relation.srcType < numNodeTypes(),
               "relation '%s': bad source type", relation.name.c_str());
    GNN_ASSERT(relation.dstType >= 0 && relation.dstType < numNodeTypes(),
               "relation '%s': bad destination type",
               relation.name.c_str());
    const int64_t sc = typeCount(relation.srcType);
    const int64_t dc = typeCount(relation.dstType);
    for (auto [s, d] : relation.edges) {
        GNN_ASSERT(s >= 0 && s < sc && d >= 0 && d < dc,
                   "relation '%s': edge (%d, %d) out of range",
                   relation.name.c_str(), s, d);
    }
    relations_.push_back(std::move(relation));
    return static_cast<int>(relations_.size()) - 1;
}

CsrMatrix
HeteroGraph::relationCsr(int r) const
{
    const Relation &rel = relations_[r];
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    triples.reserve(rel.edges.size());
    for (auto [s, d] : rel.edges)
        triples.emplace_back(s, d, 1.0f);
    return csrFromTriples(typeCount(rel.srcType), typeCount(rel.dstType),
                          std::move(triples));
}

std::vector<std::vector<int32_t>>
HeteroGraph::relationAdjList(int r) const
{
    const Relation &rel = relations_[r];
    std::vector<std::vector<int32_t>> adj(typeCount(rel.srcType));
    for (auto [s, d] : rel.edges)
        adj[s].push_back(d);
    return adj;
}

} // namespace gnnmark
