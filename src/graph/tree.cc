#include "graph/tree.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

void
Tree::validate() const
{
    const int64_t n = numNodes();
    GNN_ASSERT(n > 0, "empty tree");
    GNN_ASSERT(static_cast<int64_t>(token.size()) == n,
               "token array size mismatch");
    GNN_ASSERT(root >= 0 && root < n, "root %d out of range", root);
    std::vector<int32_t> parent_count(n, 0);
    for (int64_t v = 0; v < n; ++v) {
        for (int32_t c : children[v]) {
            GNN_ASSERT(c >= 0 && c < n, "child %d out of range", c);
            GNN_ASSERT(c != v, "self-loop at node %d",
                       static_cast<int32_t>(v));
            ++parent_count[c];
        }
        if (children[v].empty()) {
            GNN_ASSERT(token[v] >= 0, "leaf %d has no token",
                       static_cast<int32_t>(v));
        }
    }
    GNN_ASSERT(parent_count[root] == 0, "root has a parent");
    for (int64_t v = 0; v < n; ++v) {
        if (v != root) {
            GNN_ASSERT(parent_count[v] == 1,
                       "node %d has %d parents",
                       static_cast<int32_t>(v), parent_count[v]);
        }
    }
}

TreeBatch
TreeBatch::build(const std::vector<Tree> &trees)
{
    TreeBatch batch;

    // Assign contiguous batched ids and compute per-node heights.
    std::vector<int32_t> height; // height 0 = leaf
    std::vector<std::vector<int32_t>> children;
    for (const Tree &t : trees) {
        t.validate();
        const int32_t base = static_cast<int32_t>(batch.totalNodes);
        const int64_t n = t.numNodes();

        // Height via reverse topological sweep (children have smaller
        // heights; compute with an explicit stack post-order).
        std::vector<int32_t> h(n, -1);
        std::vector<std::pair<int32_t, size_t>> stack{{t.root, 0}};
        while (!stack.empty()) {
            auto &[v, next] = stack.back();
            if (next < t.children[v].size()) {
                int32_t c = t.children[v][next++];
                stack.push_back({c, 0});
            } else {
                int32_t best = -1;
                for (int32_t c : t.children[v])
                    best = std::max(best, h[c]);
                h[v] = best + 1;
                stack.pop_back();
            }
        }

        for (int64_t v = 0; v < n; ++v) {
            height.push_back(h[v]);
            std::vector<int32_t> kids;
            kids.reserve(t.children[v].size());
            for (int32_t c : t.children[v])
                kids.push_back(base + c);
            children.push_back(std::move(kids));
            batch.tokens.push_back(t.token[v]);
        }
        batch.roots.push_back(base + t.root);
        batch.labels.push_back(t.label);
        batch.totalNodes += n;
    }

    const int32_t max_height =
        *std::max_element(height.begin(), height.end());
    batch.levels.resize(max_height + 1);
    for (int64_t v = 0; v < batch.totalNodes; ++v) {
        Level &level = batch.levels[height[v]];
        level.nodes.push_back(static_cast<int32_t>(v));
    }
    for (Level &level : batch.levels) {
        level.childOffsets.push_back(0);
        for (int32_t v : level.nodes) {
            for (int32_t c : children[v])
                level.childIds.push_back(c);
            level.childOffsets.push_back(
                static_cast<int32_t>(level.childIds.size()));
        }
    }
    return batch;
}

} // namespace gnnmark
