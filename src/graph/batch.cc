#include "graph/batch.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

GraphBatch
GraphBatch::build(const std::vector<SmallGraph> &graphs)
{
    GNN_ASSERT(!graphs.empty(), "cannot batch zero graphs");
    const int64_t f = graphs[0].features.size(1);

    GraphBatch batch;
    batch.nodeOffsets.push_back(0);
    int64_t total_nodes = 0;
    int64_t total_edges = 0;
    for (const SmallGraph &g : graphs) {
        GNN_ASSERT(g.features.dim() == 2 && g.features.size(1) == f &&
                   g.features.size(0) == g.graph.numNodes(),
                   "inconsistent features in batch: %s for %lld nodes",
                   g.features.shapeString().c_str(),
                   static_cast<long long>(g.graph.numNodes()));
        total_nodes += g.graph.numNodes();
        total_edges += g.graph.numEdges();
        batch.nodeOffsets.push_back(static_cast<int32_t>(total_nodes));
        batch.targets.push_back(g.target);
        batch.labels.push_back(g.label);
    }

    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(total_edges);
    batch.features = Tensor::zeros({total_nodes, f});
    float *pf = batch.features.data();
    int32_t base = 0;
    for (const SmallGraph &g : graphs) {
        for (size_t e = 0; e < g.graph.edgeSrc().size(); ++e) {
            edges.emplace_back(base + g.graph.edgeSrc()[e],
                               base + g.graph.edgeDst()[e]);
        }
        std::copy(g.features.data(),
                  g.features.data() + g.features.numel(),
                  pf + static_cast<int64_t>(base) * f);
        base += static_cast<int32_t>(g.graph.numNodes());
    }
    batch.graph = Graph(total_nodes, std::move(edges));
    return batch;
}

} // namespace gnnmark
