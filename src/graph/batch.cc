#include "graph/batch.hh"

#include <algorithm>
#include <unordered_map>

#include "base/logging.hh"

namespace gnnmark {

int64_t
ChunkGraph::bytes() const
{
    return static_cast<int64_t>(
        graph.rowPtr().size() * sizeof(int32_t) +
        graph.edgeSrc().size() * sizeof(int32_t) +
        graph.edgeDst().size() * sizeof(int32_t) +
        globalIds.size() * sizeof(int64_t));
}

ChunkGraph
ChunkGraph::fromEdges(
    const std::vector<std::pair<int64_t, int64_t>> &edges,
    bool symmetric)
{
    ChunkGraph out;
    std::unordered_map<int64_t, int32_t> compact;
    compact.reserve(edges.size() * 2);
    std::vector<std::pair<int32_t, int32_t>> local;
    local.reserve(edges.size());
    auto intern = [&](int64_t global) {
        auto [it, inserted] = compact.try_emplace(
            global, static_cast<int32_t>(out.globalIds.size()));
        if (inserted)
            out.globalIds.push_back(global);
        return it->second;
    };
    for (const auto &[u, v] : edges) {
        // Two statements: argument evaluation order is unspecified,
        // and compact ids must follow first-seen (u before v) order.
        const int32_t cu = intern(u);
        const int32_t cv = intern(v);
        local.emplace_back(cu, cv);
    }
    out.graph = Graph(static_cast<int64_t>(out.globalIds.size()),
                      std::move(local), symmetric);
    return out;
}

GraphBatch
GraphBatch::build(const std::vector<SmallGraph> &graphs)
{
    GNN_ASSERT(!graphs.empty(), "cannot batch zero graphs");
    const int64_t f = graphs[0].features.size(1);

    GraphBatch batch;
    batch.nodeOffsets.push_back(0);
    int64_t total_nodes = 0;
    int64_t total_edges = 0;
    for (const SmallGraph &g : graphs) {
        GNN_ASSERT(g.features.dim() == 2 && g.features.size(1) == f &&
                   g.features.size(0) == g.graph.numNodes(),
                   "inconsistent features in batch: %s for %lld nodes",
                   g.features.shapeString().c_str(),
                   static_cast<long long>(g.graph.numNodes()));
        total_nodes += g.graph.numNodes();
        total_edges += g.graph.numEdges();
        batch.nodeOffsets.push_back(static_cast<int32_t>(total_nodes));
        batch.targets.push_back(g.target);
        batch.labels.push_back(g.label);
    }

    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(total_edges);
    batch.features = Tensor::zeros({total_nodes, f});
    float *pf = batch.features.data();
    int32_t base = 0;
    for (const SmallGraph &g : graphs) {
        for (size_t e = 0; e < g.graph.edgeSrc().size(); ++e) {
            edges.emplace_back(base + g.graph.edgeSrc()[e],
                               base + g.graph.edgeDst()[e]);
        }
        std::copy(g.features.data(),
                  g.features.data() + g.features.numel(),
                  pf + static_cast<int64_t>(base) * f);
        base += static_cast<int32_t>(g.graph.numNodes());
    }
    batch.graph = Graph(total_nodes, std::move(edges));
    return batch;
}

} // namespace gnnmark
