/**
 * @file
 * Mini-batch samplers: uniform neighbour sampling (GraphSAGE-style)
 * and the random-walk importance sampler PinSAGE uses to pick and
 * weight neighbours without touching the whole graph.
 */

#ifndef GNNMARK_GRAPH_SAMPLERS_HH
#define GNNMARK_GRAPH_SAMPLERS_HH

#include <vector>

#include "base/rng.hh"
#include "graph/graph.hh"
#include "graph/hetero_graph.hh"

namespace gnnmark {

/**
 * One message-passing block of a sampled computation graph: every
 * destination node aggregates from a weighted neighbour list drawn
 * from the source node set.
 */
struct SampledBlock
{
    /** Global ids of source nodes (dedup'd, sorted). */
    std::vector<int32_t> srcNodes;
    /** Global ids of destination nodes. */
    std::vector<int32_t> dstNodes;
    /** CSR over destinations: offsets into neighbor arrays. */
    std::vector<int32_t> offsets;
    /** Neighbour positions, as indices into srcNodes. */
    std::vector<int32_t> neighbors;
    /** Importance weight per neighbour entry. */
    std::vector<float> weights;
};

/** Uniform fixed-fanout neighbour sampler over a homogeneous graph. */
class NeighborSampler
{
  public:
    NeighborSampler(const Graph &graph, int fanout);

    /** Sample one block rooted at `seeds`. */
    SampledBlock sample(const std::vector<int32_t> &seeds, Rng &rng) const;

  private:
    const Graph &graph_;
    int fanout_;
};

/**
 * PinSAGE random-walk sampler over an item-user-item bipartite graph:
 * for each seed item, run `walks` alternating two-hop walks of length
 * `walk_length`, count item visits, and keep the `top_t` most visited
 * items as weighted neighbours.
 */
class RandomWalkSampler
{
  public:
    /**
     * @param item_to_user adjacency item -> users
     * @param user_to_item adjacency user -> items
     */
    RandomWalkSampler(std::vector<std::vector<int32_t>> item_to_user,
                      std::vector<std::vector<int32_t>> user_to_item,
                      int walks, int walk_length, int top_t);

    SampledBlock sample(const std::vector<int32_t> &seeds, Rng &rng) const;

    int64_t numItems() const
    {
        return static_cast<int64_t>(itemToUser_.size());
    }

  private:
    std::vector<std::vector<int32_t>> itemToUser_;
    std::vector<std::vector<int32_t>> userToItem_;
    int walks_;
    int walkLength_;
    int topT_;
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_SAMPLERS_HH
