/**
 * @file
 * Homogeneous graph in CSR form with the adjacency normalisations GNN
 * layers need (GCN symmetric norm, row-mean norm).
 */

#ifndef GNNMARK_GRAPH_GRAPH_HH
#define GNNMARK_GRAPH_GRAPH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/csr.hh"
#include "tensor/sparse.hh"

namespace gnnmark {

/** Directed homogeneous graph; nodes are 0..numNodes-1. */
class Graph
{
  public:
    Graph() = default;

    /**
     * Build from an edge list (duplicates removed).
     * @param symmetric also insert the reverse of every edge.
     */
    Graph(int64_t num_nodes,
          std::vector<std::pair<int32_t, int32_t>> edges,
          bool symmetric = false);

    int64_t numNodes() const { return numNodes_; }
    int64_t numEdges() const { return static_cast<int64_t>(dst_.size()); }

    /** CSR row pointers (numNodes + 1). */
    const std::vector<int32_t> &rowPtr() const { return rowPtr_; }

    /** CSR column indices, i.e. destination of each edge. */
    const std::vector<int32_t> &colIdx() const { return dst_; }

    /** COO source of each edge (aligned with colIdx order). */
    const std::vector<int32_t> &edgeSrc() const { return src_; }

    /** COO destination of each edge (alias of colIdx). */
    const std::vector<int32_t> &edgeDst() const { return dst_; }

    /** Out-degree of node v. */
    int32_t degree(int64_t v) const;

    /** Neighbours of v as a (begin, end) range into colIdx. */
    std::pair<const int32_t *, const int32_t *>
    neighbors(int64_t v) const;

    /** Graph with all edge directions flipped. */
    Graph transposed() const;

    /** Graph with self loops added to every node. */
    Graph withSelfLoops() const;

    /**
     * Unweighted adjacency (all values 1) in the requested storage
     * format, so workloads opt into COO / blocked-ELL aggregation
     * without touching layer code.
     */
    SparseMatrix adjacency(SparseFormat format = SparseFormat::Csr) const;

    /**
     * GCN normalisation D^-1/2 (A + I) D^-1/2 (Kipf & Welling);
     * symmetric for undirected graphs.
     */
    SparseMatrix
    gcnNormAdjacency(SparseFormat format = SparseFormat::Csr) const;

    /** Row-normalised adjacency D^-1 A (mean aggregation). */
    SparseMatrix
    meanAdjacency(SparseFormat format = SparseFormat::Csr) const;

  private:
    int64_t numNodes_ = 0;
    std::vector<int32_t> rowPtr_;
    std::vector<int32_t> src_;
    std::vector<int32_t> dst_;
};

} // namespace gnnmark

#endif // GNNMARK_GRAPH_GRAPH_HH
