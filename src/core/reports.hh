/**
 * @file
 * Paper-style report emitters: one printer per table/figure of the
 * evaluation section, consuming WorkloadProfiles.
 */

#ifndef GNNMARK_CORE_REPORTS_HH
#define GNNMARK_CORE_REPORTS_HH

#include <ostream>
#include <utility>
#include <vector>

#include "core/characterization.hh"
#include "gen/report.hh"
#include "multigpu/ddp.hh"
#include "serve/report.hh"

namespace gnnmark {
namespace reports {

/** Table I: the suite inventory. */
void printTableOne(std::ostream &os);

/** Fig. 2: execution-time breakdown by operation class (percent). */
void printFig2OpBreakdown(const std::vector<WorkloadProfile> &profiles,
                          std::ostream &os);

/** Fig. 3: dynamic instruction mix (int32 / fp32 / other, percent). */
void printFig3InstructionMix(const std::vector<WorkloadProfile> &profiles,
                             std::ostream &os);

/** Fig. 4: GFLOPS / GIOPS per workload, plus IPC. */
void printFig4Throughput(const std::vector<WorkloadProfile> &profiles,
                         std::ostream &os);

/** Fig. 5: warp stall breakdown, plus a per-op-class detail table. */
void printFig5Stalls(const std::vector<WorkloadProfile> &profiles,
                     std::ostream &os);

/** Fig. 6: L1/L2 hit rates and load divergence, overall + per class. */
void printFig6Cache(const std::vector<WorkloadProfile> &profiles,
                    std::ostream &os);

/** Fig. 7: average H2D transfer sparsity per workload. */
void printFig7Sparsity(const std::vector<WorkloadProfile> &profiles,
                       std::ostream &os);

/** Fig. 8: sparsity vs. training iteration for each workload. */
void printFig8SparsityTimeline(
    const std::vector<WorkloadProfile> &profiles, std::ostream &os,
    int max_points = 24);

/** Fig. 9: strong scaling (time per epoch and speedup vs 1 GPU). */
void printFig9Scaling(
    const std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        &curves,
    std::ostream &os);

/**
 * Fault-tolerance report for one fault-injected DDP run: the itemised
 * recovery overhead of every fault plus the goodput summary.
 */
void printFaultTolerance(const FaultToleranceResult &result,
                         std::ostream &os);

/**
 * Checkpoint-interval sweep: for each (interval, result) point, the
 * time split between checkpointing and recovery and the resulting
 * goodput, exposing the classic write-often/replay-little trade-off.
 */
void printCheckpointSweep(
    const std::vector<std::pair<int, FaultToleranceResult>> &sweep,
    std::ostream &os);

/**
 * SLO-aware serving run: volume split (full/fallback/shed/lost),
 * latency percentiles, goodput, robustness counters, and per-replica
 * breaker/occupancy accounting.
 */
void printServing(const serve::ServingReport &report, std::ostream &os);

/**
 * Graph-generation run: config echo, edge volume and checksum,
 * resident-memory accounting against the chunk budget, throughput,
 * and the optional degree-shape and streamed-training summaries.
 */
void printGen(const gen::GenReport &report, std::ostream &os);

/** nvprof-style top-kernel table for one workload. */
void printKernelTable(const WorkloadProfile &profile, std::ostream &os,
                      int top_n = 12);

/**
 * Host-allocator behaviour per workload (--memstats): peak live bytes,
 * steady-state heap calls per iteration, and the arena hit rate.
 */
void printMemstats(const std::vector<WorkloadProfile> &profiles,
                   std::ostream &os);

/**
 * Operator-dispatch behaviour (--opstats): per-variant selection
 * counts from ops::Dispatch plus the calibration summary. Process-
 * wide (the dispatcher is a singleton), so print it once per
 * invocation, after the workload(s) ran.
 */
void printOpstats(std::ostream &os);

} // namespace reports
} // namespace gnnmark

#endif // GNNMARK_CORE_REPORTS_HH
