/**
 * @file
 * Glue between the characterization driver and the trace subsystem:
 * capture a workload run into a RecordedTrace, and convert a
 * ReplayResult back into the WorkloadProfile shape the report
 * printers consume. This is the only place core and src/trace meet —
 * the trace library itself never links the tensor/op/model stack.
 */

#ifndef GNNMARK_CORE_TRACE_CAPTURE_HH
#define GNNMARK_CORE_TRACE_CAPTURE_HH

#include <string>

#include "core/characterization.hh"
#include "trace/replayer.hh"
#include "trace/trace.hh"
#include "trace/writer.hh"

namespace gnnmark {

/**
 * Train `workload_name` once under `options` with a TraceRecorder
 * attached, and return the captured trace (header fully stamped from
 * the run). The live profile of the recording run is returned through
 * `profile_out` when non-null, so callers can compare live vs. replay
 * without running twice.
 */
trace::RecordedTrace
recordWorkloadTrace(const std::string &workload_name,
                    const RunOptions &options,
                    WorkloadProfile *profile_out = nullptr);

/** Reshape a replay result into the report printers' input type. */
WorkloadProfile toWorkloadProfile(const trace::ReplayResult &result);

} // namespace gnnmark

#endif // GNNMARK_CORE_TRACE_CAPTURE_HH
