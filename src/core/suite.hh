/**
 * @file
 * The GNNMark benchmark suite registry (the paper's Table I): the
 * eight workload configurations and a factory to instantiate them.
 */

#ifndef GNNMARK_CORE_SUITE_HH
#define GNNMARK_CORE_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "models/workload.hh"

namespace gnnmark {

/** Factory for the suite's workloads. */
class BenchmarkSuite
{
  public:
    /**
     * Names of all workload configurations, in Table I order:
     * PSAGE-MVL, PSAGE-NWP, STGCN, DGCN, GW, KGNNL, KGNNH, ARGA,
     * TLSTM.
     */
    static const std::vector<std::string> &workloadNames();

    /** Instantiate one workload by name (fatal on unknown name). */
    static std::unique_ptr<Workload> create(const std::string &name);

    /** Instantiate every workload. */
    static std::vector<std::unique_ptr<Workload>> createAll();
};

} // namespace gnnmark

#endif // GNNMARK_CORE_SUITE_HH
