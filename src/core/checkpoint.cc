#include "core/checkpoint.hh"

#include <cstring>

#include "base/io.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace gnnmark {

namespace {

/** On-disk layout version; bump on any format change. */
constexpr uint32_t kFormatVersion = 1;

/** File magic ("GNMKCKPT"). */
constexpr char kMagic[8] = {'G', 'N', 'M', 'K', 'C', 'K', 'P', 'T'};

/** Record tags inside the state image (checks traversal symmetry). */
enum class Tag : uint8_t
{
    TensorRec = 0x54, // 'T'
    ScalarRec = 0x53, // 'S'
    RngRec = 0x52,    // 'R'
};

/** StateVisitor that appends every visited item to a byte image. */
class SaveVisitor : public StateVisitor
{
  public:
    explicit SaveVisitor(std::vector<uint8_t> &out) : out_(out) {}

    void
    tensor(Tensor &t) override
    {
        put(Tag::TensorRec);
        putU64(static_cast<uint64_t>(t.numel()));
        putBytes(t.data(), static_cast<size_t>(t.numel()) *
                               sizeof(float));
    }

    void
    scalar(int64_t &v) override
    {
        put(Tag::ScalarRec);
        putBytes(&v, sizeof(v));
    }

    void
    rng(Rng &r) override
    {
        put(Tag::RngRec);
        const RngState st = r.state();
        for (uint64_t word : st.s)
            putU64(word);
        putU64(st.hasSpareNormal ? 1 : 0);
        putBytes(&st.spareNormal, sizeof(st.spareNormal));
    }

  private:
    void
    put(Tag tag)
    {
        out_.push_back(static_cast<uint8_t>(tag));
    }

    void
    putU64(uint64_t v)
    {
        putBytes(&v, sizeof(v));
    }

    void
    putBytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        out_.insert(out_.end(), b, b + n);
    }

    std::vector<uint8_t> &out_;
};

/**
 * StateVisitor that replays a byte image into the visited items. The
 * traversal must match the one that produced the image; the tags and
 * sizes catch any divergence.
 */
class RestoreVisitor : public StateVisitor
{
  public:
    explicit RestoreVisitor(const std::vector<uint8_t> &in) : in_(in) {}

    void
    tensor(Tensor &t) override
    {
        expect(Tag::TensorRec);
        const uint64_t numel = takeU64();
        GNN_ASSERT(numel == static_cast<uint64_t>(t.numel()),
                   "checkpoint tensor has %llu elements, workload "
                   "expects %lld — state layout mismatch",
                   static_cast<unsigned long long>(numel),
                   static_cast<long long>(t.numel()));
        takeBytes(t.data(), static_cast<size_t>(numel) * sizeof(float));
    }

    void
    scalar(int64_t &v) override
    {
        expect(Tag::ScalarRec);
        takeBytes(&v, sizeof(v));
    }

    void
    rng(Rng &r) override
    {
        expect(Tag::RngRec);
        RngState st;
        for (uint64_t &word : st.s)
            word = takeU64();
        st.hasSpareNormal = takeU64() != 0;
        takeBytes(&st.spareNormal, sizeof(st.spareNormal));
        r.setState(st);
    }

    /** True once the whole image has been consumed. */
    bool
    exhausted() const
    {
        return pos_ == in_.size();
    }

  private:
    void
    expect(Tag tag)
    {
        GNN_ASSERT(pos_ < in_.size(),
                   "checkpoint image truncated at offset %zu", pos_);
        const uint8_t got = in_[pos_++];
        GNN_ASSERT(got == static_cast<uint8_t>(tag),
                   "checkpoint record tag 0x%02x at offset %zu, "
                   "expected 0x%02x — state layout mismatch",
                   got, pos_ - 1, static_cast<uint8_t>(tag));
    }

    uint64_t
    takeU64()
    {
        uint64_t v = 0;
        takeBytes(&v, sizeof(v));
        return v;
    }

    void
    takeBytes(void *p, size_t n)
    {
        GNN_ASSERT(pos_ + n <= in_.size(),
                   "checkpoint image truncated at offset %zu", pos_);
        std::memcpy(p, in_.data() + pos_, n);
        pos_ += n;
    }

    const std::vector<uint8_t> &in_;
    size_t pos_ = 0;
};

} // namespace

Checkpoint
captureCheckpoint(Workload &workload, uint64_t step)
{
    GNN_SPAN("checkpoint.capture");
    static obs::Counter captures("checkpoint.captures");
    captures.add();
    GNN_ASSERT(workload.supportsCheckpoint(),
               "workload %s does not support checkpointing",
               workload.name().c_str());
    Checkpoint ckpt;
    ckpt.workload = workload.name();
    ckpt.step = step;
    SaveVisitor v(ckpt.state);
    workload.visitState(v);
    return ckpt;
}

uint64_t
restoreCheckpoint(Workload &workload, const Checkpoint &ckpt)
{
    GNN_SPAN("checkpoint.restore");
    static obs::Counter restores("checkpoint.restores");
    restores.add();
    GNN_ASSERT(workload.supportsCheckpoint(),
               "workload %s does not support checkpointing",
               workload.name().c_str());
    if (ckpt.workload != workload.name()) {
        GNN_FATAL("checkpoint was written by workload '%s', cannot "
                  "restore into '%s'",
                  ckpt.workload.c_str(), workload.name().c_str());
    }
    RestoreVisitor v(ckpt.state);
    workload.visitState(v);
    GNN_ASSERT(v.exhausted(),
               "checkpoint image has trailing bytes — state layout "
               "mismatch for workload %s",
               workload.name().c_str());
    return ckpt.step;
}

void
writeCheckpointFile(const std::string &path, const Checkpoint &ckpt)
{
    GNN_SPAN("checkpoint.write_file");
    ByteBuilder file;
    file.bytes(kMagic, sizeof(kMagic));
    file.u32(kFormatVersion);
    file.u32(static_cast<uint32_t>(ckpt.workload.size()));
    file.u64(ckpt.step);
    file.u64(static_cast<uint64_t>(ckpt.state.size()));
    file.u64(fnv1a(ckpt.state.data(), ckpt.state.size()));
    file.bytes(ckpt.workload.data(), ckpt.workload.size());
    file.bytes(ckpt.state.data(), ckpt.state.size());
    writeFileBytes(path, file.buffer());
}

Checkpoint
readCheckpointFile(const std::string &path)
{
    GNN_SPAN("checkpoint.read_file");
    const std::vector<uint8_t> bytes = readFileBytes(path);
    const std::string context = "checkpoint file '" + path + "'";
    ByteCursor file(bytes.data(), bytes.size(), context);

    char magic[sizeof(kMagic)];
    file.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw IoError(IoError::Kind::BadMagic,
                      context + ": not a GNNMark checkpoint");
    }
    const uint32_t version = file.u32();
    if (version != kFormatVersion) {
        throw IoError(IoError::Kind::BadVersion,
                      context + ": format version " +
                          std::to_string(version) +
                          ", this build reads version " +
                          std::to_string(kFormatVersion));
    }
    const uint32_t name_len = file.u32();
    Checkpoint ckpt;
    ckpt.step = file.u64();
    const uint64_t state_size = file.u64();
    const uint64_t checksum = file.u64();
    if (name_len > file.remaining())
        file.fail(IoError::Kind::ShortRead,
                  "workload name overruns the file");
    ckpt.workload.resize(name_len);
    if (name_len > 0)
        file.bytes(ckpt.workload.data(), name_len);
    if (state_size > file.remaining())
        file.fail(IoError::Kind::ShortRead,
                  "state image overruns the file");
    ckpt.state.resize(static_cast<size_t>(state_size));
    if (state_size > 0)
        file.bytes(ckpt.state.data(), ckpt.state.size());
    if (!file.exhausted()) {
        throw IoError(IoError::Kind::TrailingBytes,
                      context + ": trailing bytes after the state image");
    }
    if (fnv1a(ckpt.state.data(), ckpt.state.size()) != checksum) {
        throw IoError(IoError::Kind::Corrupt,
                      context + ": checksum mismatch — the state image "
                                "is corrupt");
    }
    return ckpt;
}

} // namespace gnnmark
