#include "core/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include "base/logging.hh"
#include "base/rng.hh"

namespace gnnmark {

namespace {

/** On-disk layout version; bump on any format change. */
constexpr uint32_t kFormatVersion = 1;

/** File magic ("GNMKCKPT"). */
constexpr char kMagic[8] = {'G', 'N', 'M', 'K', 'C', 'K', 'P', 'T'};

/** Record tags inside the state image (checks traversal symmetry). */
enum class Tag : uint8_t
{
    TensorRec = 0x54, // 'T'
    ScalarRec = 0x53, // 'S'
    RngRec = 0x52,    // 'R'
};

/** FNV-1a over the payload, the header's integrity check. */
uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** StateVisitor that appends every visited item to a byte image. */
class SaveVisitor : public StateVisitor
{
  public:
    explicit SaveVisitor(std::vector<uint8_t> &out) : out_(out) {}

    void
    tensor(Tensor &t) override
    {
        put(Tag::TensorRec);
        putU64(static_cast<uint64_t>(t.numel()));
        putBytes(t.data(), static_cast<size_t>(t.numel()) *
                               sizeof(float));
    }

    void
    scalar(int64_t &v) override
    {
        put(Tag::ScalarRec);
        putBytes(&v, sizeof(v));
    }

    void
    rng(Rng &r) override
    {
        put(Tag::RngRec);
        const RngState st = r.state();
        for (uint64_t word : st.s)
            putU64(word);
        putU64(st.hasSpareNormal ? 1 : 0);
        putBytes(&st.spareNormal, sizeof(st.spareNormal));
    }

  private:
    void
    put(Tag tag)
    {
        out_.push_back(static_cast<uint8_t>(tag));
    }

    void
    putU64(uint64_t v)
    {
        putBytes(&v, sizeof(v));
    }

    void
    putBytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        out_.insert(out_.end(), b, b + n);
    }

    std::vector<uint8_t> &out_;
};

/**
 * StateVisitor that replays a byte image into the visited items. The
 * traversal must match the one that produced the image; the tags and
 * sizes catch any divergence.
 */
class RestoreVisitor : public StateVisitor
{
  public:
    explicit RestoreVisitor(const std::vector<uint8_t> &in) : in_(in) {}

    void
    tensor(Tensor &t) override
    {
        expect(Tag::TensorRec);
        const uint64_t numel = takeU64();
        GNN_ASSERT(numel == static_cast<uint64_t>(t.numel()),
                   "checkpoint tensor has %llu elements, workload "
                   "expects %lld — state layout mismatch",
                   static_cast<unsigned long long>(numel),
                   static_cast<long long>(t.numel()));
        takeBytes(t.data(), static_cast<size_t>(numel) * sizeof(float));
    }

    void
    scalar(int64_t &v) override
    {
        expect(Tag::ScalarRec);
        takeBytes(&v, sizeof(v));
    }

    void
    rng(Rng &r) override
    {
        expect(Tag::RngRec);
        RngState st;
        for (uint64_t &word : st.s)
            word = takeU64();
        st.hasSpareNormal = takeU64() != 0;
        takeBytes(&st.spareNormal, sizeof(st.spareNormal));
        r.setState(st);
    }

    /** True once the whole image has been consumed. */
    bool
    exhausted() const
    {
        return pos_ == in_.size();
    }

  private:
    void
    expect(Tag tag)
    {
        GNN_ASSERT(pos_ < in_.size(),
                   "checkpoint image truncated at offset %zu", pos_);
        const uint8_t got = in_[pos_++];
        GNN_ASSERT(got == static_cast<uint8_t>(tag),
                   "checkpoint record tag 0x%02x at offset %zu, "
                   "expected 0x%02x — state layout mismatch",
                   got, pos_ - 1, static_cast<uint8_t>(tag));
    }

    uint64_t
    takeU64()
    {
        uint64_t v = 0;
        takeBytes(&v, sizeof(v));
        return v;
    }

    void
    takeBytes(void *p, size_t n)
    {
        GNN_ASSERT(pos_ + n <= in_.size(),
                   "checkpoint image truncated at offset %zu", pos_);
        std::memcpy(p, in_.data() + pos_, n);
        pos_ += n;
    }

    const std::vector<uint8_t> &in_;
    size_t pos_ = 0;
};

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    const uint8_t *b = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), b, b + sizeof(v));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    const uint8_t *b = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), b, b + sizeof(v));
}

} // namespace

Checkpoint
captureCheckpoint(Workload &workload, uint64_t step)
{
    GNN_ASSERT(workload.supportsCheckpoint(),
               "workload %s does not support checkpointing",
               workload.name().c_str());
    Checkpoint ckpt;
    ckpt.workload = workload.name();
    ckpt.step = step;
    SaveVisitor v(ckpt.state);
    workload.visitState(v);
    return ckpt;
}

uint64_t
restoreCheckpoint(Workload &workload, const Checkpoint &ckpt)
{
    GNN_ASSERT(workload.supportsCheckpoint(),
               "workload %s does not support checkpointing",
               workload.name().c_str());
    if (ckpt.workload != workload.name()) {
        GNN_FATAL("checkpoint was written by workload '%s', cannot "
                  "restore into '%s'",
                  ckpt.workload.c_str(), workload.name().c_str());
    }
    RestoreVisitor v(ckpt.state);
    workload.visitState(v);
    GNN_ASSERT(v.exhausted(),
               "checkpoint image has trailing bytes — state layout "
               "mismatch for workload %s",
               workload.name().c_str());
    return ckpt.step;
}

void
writeCheckpointFile(const std::string &path, const Checkpoint &ckpt)
{
    std::vector<uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
    putU32(header, kFormatVersion);
    putU32(header, static_cast<uint32_t>(ckpt.workload.size()));
    putU64(header, ckpt.step);
    putU64(header, static_cast<uint64_t>(ckpt.state.size()));
    putU64(header, fnv1a(ckpt.state.data(), ckpt.state.size()));

    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        GNN_FATAL("cannot open checkpoint file '%s' for writing",
                  path.c_str());
    bool ok = std::fwrite(header.data(), 1, header.size(), f) ==
              header.size();
    ok = ok && std::fwrite(ckpt.workload.data(), 1,
                           ckpt.workload.size(),
                           f) == ckpt.workload.size();
    ok = ok && std::fwrite(ckpt.state.data(), 1, ckpt.state.size(),
                           f) == ckpt.state.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        GNN_FATAL("short write to checkpoint file '%s'", path.c_str());
}

Checkpoint
readCheckpointFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        GNN_FATAL("cannot open checkpoint file '%s'", path.c_str());

    auto take = [&](void *p, size_t n, const char *what) {
        if (std::fread(p, 1, n, f) != n) {
            std::fclose(f);
            GNN_FATAL("checkpoint file '%s' truncated reading %s",
                      path.c_str(), what);
        }
    };

    char magic[sizeof(kMagic)];
    take(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(f);
        GNN_FATAL("'%s' is not a GNNMark checkpoint file",
                  path.c_str());
    }
    uint32_t version = 0, name_len = 0;
    take(&version, sizeof(version), "version");
    if (version != kFormatVersion) {
        std::fclose(f);
        GNN_FATAL("checkpoint file '%s' has format version %u, this "
                  "build reads version %u",
                  path.c_str(), version, kFormatVersion);
    }
    take(&name_len, sizeof(name_len), "name length");
    Checkpoint ckpt;
    uint64_t state_size = 0, checksum = 0;
    take(&ckpt.step, sizeof(ckpt.step), "step");
    take(&state_size, sizeof(state_size), "state size");
    take(&checksum, sizeof(checksum), "checksum");
    ckpt.workload.resize(name_len);
    if (name_len > 0)
        take(ckpt.workload.data(), name_len, "workload name");
    ckpt.state.resize(state_size);
    if (state_size > 0)
        take(ckpt.state.data(), state_size, "state image");
    // Reject trailing garbage as corruption too.
    uint8_t extra;
    const bool at_eof = std::fread(&extra, 1, 1, f) == 0;
    std::fclose(f);
    if (!at_eof)
        GNN_FATAL("checkpoint file '%s' has trailing bytes",
                  path.c_str());
    if (fnv1a(ckpt.state.data(), ckpt.state.size()) != checksum)
        GNN_FATAL("checkpoint file '%s' failed its checksum — the "
                  "state image is corrupt",
                  path.c_str());
    return ckpt;
}

} // namespace gnnmark
