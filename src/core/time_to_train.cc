#include "core/time_to_train.hh"

#include "base/logging.hh"
#include "ops/exec_context.hh"
#include "sim/gpu_device.hh"

namespace gnnmark {

TimeToTrainResult
measureTimeToTrain(Workload &workload, const TimeToTrainOptions &options)
{
    GNN_ASSERT(options.lossFraction > 0 && options.lossFraction < 1,
               "loss fraction must be in (0, 1)");
    GNN_ASSERT(options.maxIterations > 0, "need at least one iteration");

    TimeToTrainResult res;
    res.name = workload.name();

    GpuDevice device(options.deviceConfig, options.seed);
    WorkloadConfig cfg;
    cfg.seed = options.seed;
    cfg.scale = options.scale;
    workload.setup(cfg);

    ContextGuard guard(&device);
    double smoothed = 0;
    double target = 0;
    for (int i = 0; i < options.maxIterations; ++i) {
        const float loss = workload.trainIteration();
        if (i == 0) {
            smoothed = loss;
            res.initialLoss = loss;
            target = smoothed * options.lossFraction;
        } else {
            smoothed = options.smoothing * smoothed +
                       (1.0 - options.smoothing) * loss;
        }
        res.iterations = i + 1;
        res.finalLoss = static_cast<float>(smoothed);
        if (i > 0 && smoothed <= target) {
            res.converged = true;
            break;
        }
    }
    res.simulatedTimeSec = device.wallTimeSec();
    return res;
}

} // namespace gnnmark
