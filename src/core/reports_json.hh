/**
 * @file
 * Machine-readable twins of the reports in core/reports.hh: the same
 * Fig. 2-9 aggregates, emitted as deterministic JSON instead of
 * fixed-width tables. The `gnnmark --json` output mode and the
 * telemetry manifest records are built from these, and bench_diff
 * consumes them as regression baselines.
 */

#ifndef GNNMARK_CORE_REPORTS_JSON_HH
#define GNNMARK_CORE_REPORTS_JSON_HH

#include <string>
#include <utility>
#include <vector>

#include "core/characterization.hh"
#include "gen/report.hh"
#include "multigpu/ddp.hh"
#include "obs/json.hh"
#include "serve/report.hh"

namespace gnnmark {
namespace reports {

/**
 * Append one workload's full Fig. 2-8 aggregate object at the writer's
 * current position: op-time breakdown, instruction mix, throughput,
 * stalls, cache behaviour, transfer sparsity, epoch extrapolation and
 * the loss curve.
 */
void profileJson(obs::JsonWriter &w, const WorkloadProfile &profile);

/** Whole-suite document: {"workloads":{"GCN":{...},...}}. */
std::string figuresJson(const std::vector<WorkloadProfile> &profiles);

/** Fig. 9 document: scaling curves per workload. */
std::string scalingJson(
    const std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        &curves);

/** Fault-tolerance document for one fault-injected run. */
std::string faultJson(const FaultToleranceResult &result);

/**
 * One scaling telemetry record (a single JSONL line) for one
 * workload's curve: per-world-size epoch/compute splits plus the
 * ddp.comm_total_sec / ddp.comm_exposed_sec / ddp.overlap_frac keys
 * bench_diff gates on. Points nest under "w<world>" so the flattened
 * diff key carries the world size.
 */
std::string scalingRecordJson(const std::string &workload, bool weak,
                              bool overlap_on,
                              const std::vector<ScalingResult> &curve);

/**
 * Serving document (--json twin of printServing): config echo,
 * outcome split, latency percentiles, robustness counters and
 * per-replica accounting. Byte-stable for a fixed configuration.
 */
std::string servingJson(const serve::ServingReport &report);

/**
 * One serving telemetry record (a single JSONL line), tagged
 * "type":"serving" plus a caller-chosen label so load sweeps can
 * emit one line per operating point and bench_diff can gate on the
 * flattened counters.
 */
std::string servingRecordJson(const std::string &label,
                              const serve::ServingReport &report);

/**
 * One SLO burn-rate alert telemetry record (a single JSONL line),
 * tagged "type":"slo_alert": the firing rule, its window span in
 * simulated seconds, peak burn and error fraction, plus the fault
 * scenario so post-hoc analysis can correlate alerts with injected
 * faults. Emitted once per alert in a windowed serving run.
 */
std::string sloAlertRecordJson(const std::string &label,
                               const serve::ServingReport &report,
                               const serve::ServingAlert &alert);

/**
 * Generation document (--json twin of printGen): config echo, edge
 * count, the order-dependent stream checksum (as hi/lo 32-bit halves,
 * since 64-bit values overflow JSON doubles), resident-memory
 * accounting, and the optional degree/training blocks. Contains ONLY
 * deterministic fields — no wall-clock rates — so the document is
 * byte-identical across thread counts and serves as the determinism
 * oracle in CI.
 */
std::string genJson(const gen::GenReport &report);

/**
 * One generation telemetry record (a single JSONL line), tagged
 * "type":"generation" plus a caller-chosen label; the only place the
 * wall-clock edges/sec figure appears in machine-readable output.
 */
std::string genRecordJson(const std::string &label,
                          const gen::GenReport &report);

/**
 * --memstats document: allocator counters per workload. Kept separate
 * from figuresJson so run reports stay identical across GNNMARK_ALLOC
 * modes (these counters intentionally differ between allocators).
 */
std::string memstatsJson(const std::vector<WorkloadProfile> &profiles);

/**
 * --opstats document: ops::Dispatch variant-selection counters and
 * the calibration summary. Kept separate from figuresJson (and out of
 * the gated baselines) — counts legitimately change when the variant
 * cost model or GNNMARK_OP_VARIANT pins change.
 */
std::string opstatsJson();

/**
 * One "manifest" telemetry record (a single JSONL line): run config,
 * seed, thread count, simulated + host wall time, and the profile's
 * figure aggregates. `host_wall_us` is excluded from diffs by name.
 */
std::string runManifestJson(const WorkloadProfile &profile,
                            const RunOptions &options, int threads,
                            double host_wall_us);

} // namespace reports
} // namespace gnnmark

#endif // GNNMARK_CORE_REPORTS_JSON_HH
