#include "core/trace_capture.hh"

#include "obs/span.hh"

namespace gnnmark {

trace::RecordedTrace
recordWorkloadTrace(const std::string &workload_name,
                    const RunOptions &options,
                    WorkloadProfile *profile_out)
{
    GNN_SPAN("trace.record");
    trace::TraceRecorder recorder;
    RunOptions recording = options;
    recording.traceHook = &recorder;

    CharacterizationRunner runner(recording);
    WorkloadProfile profile = runner.run(workload_name);

    trace::TraceHeader header;
    header.workload = profile.name;
    header.seed = options.seed;
    header.scale = options.scale;
    header.iterations = options.iterations;
    header.warmupIterations = options.warmupIterations;
    header.inferenceOnly = options.inferenceOnly;
    header.iterationsPerEpoch = profile.iterationsPerEpoch;
    header.parameterBytes = profile.parameterBytes;
    header.losses = profile.losses;
    header.config = options.deviceConfig;

    if (profile_out != nullptr)
        *profile_out = std::move(profile);
    return recorder.finish(std::move(header));
}

WorkloadProfile
toWorkloadProfile(const trace::ReplayResult &result)
{
    WorkloadProfile profile;
    profile.name = result.workload;
    profile.profiler = result.profiler;
    profile.losses = result.losses;
    profile.wallTimeSec = result.wallTimeSec;
    profile.epochTimeSec = result.epochTimeSec;
    profile.iterationsPerEpoch = result.iterationsPerEpoch;
    profile.parameterBytes = result.parameterBytes;
    return profile;
}

} // namespace gnnmark
