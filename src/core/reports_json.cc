#include "core/reports_json.hh"

#include "ops/dispatch.hh"

#include "base/string_utils.hh"

namespace gnnmark {
namespace reports {

void
profileJson(obs::JsonWriter &w, const WorkloadProfile &profile)
{
    const Profiler &prof = profile.profiler;

    w.beginObject();
    w.key("total_kernel_time_sec").value(prof.totalKernelTimeSec());
    w.key("total_launches").value(prof.totalLaunches());
    w.key("wall_sim_time_sec").value(profile.wallTimeSec);
    w.key("epoch_time_sec").value(profile.epochTimeSec);
    w.key("iterations_per_epoch").value(profile.iterationsPerEpoch);
    w.key("parameter_bytes").value(profile.parameterBytes);

    // Fig. 2: execution-time breakdown by op class.
    const auto breakdown = prof.opTimeBreakdown();
    w.key("fig2_op_time_breakdown").beginObject();
    for (OpClass c : allOpClasses()) {
        w.key(opClassName(c))
            .value(breakdown[static_cast<size_t>(c)]);
    }
    w.endObject();

    // Fig. 3: dynamic instruction mix.
    const auto mix = prof.instructionMix();
    w.key("fig3_instruction_mix").beginObject();
    w.key("int32").value(mix.int32Frac);
    w.key("fp32").value(mix.fp32Frac);
    w.key("other").value(mix.otherFrac);
    w.endObject();

    // Fig. 4: arithmetic throughput.
    w.key("fig4_throughput").beginObject();
    w.key("gflops").value(prof.gflops());
    w.key("giops").value(prof.giops());
    w.key("avg_ipc").value(prof.avgIpc());
    w.endObject();

    // Fig. 5: stall distribution.
    const StallVector stalls = prof.stallBreakdown();
    w.key("fig5_stall_breakdown").beginObject();
    for (size_t r = 0; r < kNumStallReasons; ++r) {
        w.key(stallReasonName(static_cast<StallReason>(r)))
            .value(stalls[r]);
    }
    w.endObject();

    // Fig. 6: caches and divergence.
    w.key("fig6_cache").beginObject();
    w.key("l1_hit_rate").value(prof.l1HitRate());
    w.key("l2_hit_rate").value(prof.l2HitRate());
    w.key("divergent_load_fraction")
        .value(prof.divergentLoadFraction());
    w.endObject();

    // Figs. 7-8: transfer sparsity.
    w.key("fig7_sparsity").beginObject();
    w.key("avg_transfer_sparsity").value(prof.avgTransferSparsity());
    w.key("total_transfer_bytes").value(prof.totalTransferBytes());
    w.key("total_transfer_time_sec")
        .value(prof.totalTransferTimeSec());
    w.endObject();

    w.key("losses").beginArray();
    for (float loss : profile.losses)
        w.value(static_cast<double>(loss));
    w.endArray();
    w.endObject();
}

std::string
figuresJson(const std::vector<WorkloadProfile> &profiles)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("workloads").beginObject();
    for (const WorkloadProfile &profile : profiles) {
        w.key(profile.name);
        profileJson(w, profile);
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
scalingJson(
    const std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        &curves)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("fig9_scaling").beginObject();
    for (const auto &[name, curve] : curves) {
        w.key(name).beginArray();
        for (const ScalingResult &point : curve) {
            w.beginObject();
            w.key("world_size").value(point.worldSize);
            w.key("epoch_time_sec").value(point.epochTimeSec);
            w.key("compute_time_sec").value(point.computeTimeSec);
            w.key("comm_time_sec").value(point.commTimeSec);
            w.key("comm_exposed_sec").value(point.commExposedSec);
            w.key("overlap_frac").value(point.overlapFrac);
            w.key("speedup").value(point.speedup);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
scalingRecordJson(const std::string &workload, bool weak,
                  bool overlap_on,
                  const std::vector<ScalingResult> &curve)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("scaling");
    w.key("workload").value(workload);
    w.key("mode").value(weak ? "weak" : "strong");
    w.key("overlap").value(overlap_on ? "on" : "off");
    for (const ScalingResult &point : curve) {
        w.key(strfmt("w%d", point.worldSize)).beginObject();
        w.key("epoch_time_sec").value(point.epochTimeSec);
        w.key("compute_time_sec").value(point.computeTimeSec);
        w.key("ddp").beginObject();
        w.key("comm_total_sec").value(point.commTimeSec);
        w.key("comm_exposed_sec").value(point.commExposedSec);
        w.key("overlap_frac").value(point.overlapFrac);
        w.endObject();
        w.key("speedup").value(point.speedup);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
faultJson(const FaultToleranceResult &result)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("fault_tolerance").beginObject();
    w.key("workload").value(result.workload);
    w.key("world_start").value(result.worldStart);
    w.key("world_end").value(result.worldEnd);
    w.key("target_iterations").value(result.targetIterations);
    w.key("executed_iterations").value(result.executedIterations);
    w.key("replayed_iterations").value(result.replayedIterations);
    w.key("ideal_time_sec").value(result.idealTimeSec);
    w.key("total_time_sec").value(result.totalTimeSec);
    w.key("checkpoint_time_sec").value(result.checkpointTimeSec);
    w.key("recovery_time_sec").value(result.recoveryTimeSec);
    w.key("goodput").value(result.goodput);
    w.key("events").beginArray();
    for (const FaultRecord &event : result.events) {
        w.beginObject();
        w.key("kind").value(static_cast<int>(event.kind));
        w.key("sim_time_sec").value(event.simTimeSec);
        w.key("replica").value(event.replica);
        w.key("detection_sec").value(event.detectionSec);
        w.key("rollback_sec").value(event.rollbackSec);
        w.key("reshard_sec").value(event.reshardSec);
        w.key("slowdown_sec").value(event.slowdownSec);
        w.key("lost_iterations").value(event.lostIterations);
        w.key("world_before").value(event.worldBefore);
        w.key("world_after").value(event.worldAfter);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
runManifestJson(const WorkloadProfile &profile, const RunOptions &options,
                int threads, double host_wall_us)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("manifest");
    w.key("workload").value(profile.name);
    w.key("seed").value(static_cast<int64_t>(options.seed));
    w.key("scale").value(options.scale);
    w.key("iterations").value(options.iterations);
    w.key("warmup_iterations").value(options.warmupIterations);
    w.key("inference_only").value(options.inferenceOnly);
    w.key("threads").value(threads);
    w.key("host_wall_us").value(host_wall_us);
    w.key("profile");
    profileJson(w, profile);
    w.endObject();
    return w.str();
}

std::string
memstatsJson(const std::vector<WorkloadProfile> &profiles)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("memstats").beginObject();
    for (const WorkloadProfile &p : profiles) {
        const AllocSummary &m = p.memStats;
        w.key(p.name).beginObject();
        w.key("mode").value(m.mode);
        w.key("bytes_peak").value(static_cast<int64_t>(m.bytesPeak));
        w.key("slabs_mapped")
            .value(static_cast<int64_t>(m.slabsMapped));
        w.key("requests_total")
            .value(static_cast<int64_t>(m.requestsTotal));
        w.key("heap_calls_total")
            .value(static_cast<int64_t>(m.heapCallsTotal));
        w.key("cache_hit_rate").value(m.cacheHitRate);
        w.key("steady_alloc_calls_per_iter")
            .value(static_cast<int64_t>(m.steadyAllocCallsPerIter));
        w.key("steady_requests_per_iter")
            .value(static_cast<int64_t>(m.steadyRequestsPerIter));
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

namespace {

/** Shared body of servingJson / servingRecordJson. */
void
servingBody(obs::JsonWriter &w, const serve::ServingReport &rep)
{
    w.key("config").beginObject();
    w.key("arrival").value(rep.arrival);
    w.key("faults").value(rep.faultScenario);
    w.key("rate_per_sec").value(rep.ratePerSec);
    w.key("duration_sec").value(rep.durationSec);
    w.key("slo_ms").value(rep.sloMs);
    w.key("replicas").value(rep.replicas);
    w.key("max_batch").value(rep.maxBatch);
    w.key("seed").value(static_cast<int64_t>(rep.seed));
    w.key("hedge").value(rep.hedgeEnabled);
    w.key("shed").value(rep.shedEnabled);
    w.key("fallback").value(rep.fallbackEnabled);
    w.endObject();

    w.key("outcomes").beginObject();
    w.key("offered").value(rep.offered);
    w.key("full").value(rep.full);
    w.key("fallback").value(rep.fallback);
    w.key("shed").value(rep.shed);
    w.key("lost").value(rep.lost);
    w.key("slo_met").value(rep.sloMet);
    w.key("goodput_per_sec").value(rep.goodputPerSec);
    w.endObject();

    w.key("latency_ms").beginObject();
    w.key("p50").value(rep.p50Ms);
    w.key("p95").value(rep.p95Ms);
    w.key("p99").value(rep.p99Ms);
    w.key("mean").value(rep.meanMs);
    w.key("max").value(rep.maxMs);
    w.endObject();

    w.key("robustness").beginObject();
    w.key("retries").value(rep.retries);
    w.key("hedges").value(rep.hedgesLaunched);
    w.key("hedge_wins").value(rep.hedgeWins);
    w.key("timeouts").value(rep.timeouts);
    w.key("breaker_opens").value(rep.breakerOpens);
    w.key("cache_hit_rate").value(rep.cacheHitRate);
    w.key("cache_hits").value(rep.cacheHits);
    w.key("cache_misses").value(rep.cacheMisses);
    w.endObject();

    w.key("batching").beginObject();
    w.key("batches").value(rep.batches);
    w.key("mean_size").value(rep.meanBatchSize);
    w.key("busy_sec").value(rep.busySec);
    w.key("cancelled_sec").value(rep.cancelledSec);
    w.key("utilization").value(rep.utilization);
    w.key("horizon_sec").value(rep.horizonSec);
    w.endObject();

    w.key("replicas").beginArray();
    for (const serve::ReplicaReport &r : rep.perReplica) {
        w.beginObject();
        w.key("replica").value(r.replica);
        w.key("batches_completed").value(r.batchesCompleted);
        w.key("batches_cancelled").value(r.batchesCancelled);
        w.key("timeouts").value(r.timeouts);
        w.key("breaker_opens").value(r.breakerOpens);
        w.key("breaker").value(r.breakerFinal);
        w.key("busy_sec").value(r.busySec);
        w.key("cancelled_sec").value(r.cancelledSec);
        w.endObject();
    }
    w.endArray();

    // Timeline / tracing sections appear only when the run enabled
    // them, so pre-windowing outputs stay byte-identical.
    if (rep.windowSec > 0) {
        w.key("timeline").beginObject();
        w.key("window_sec").value(rep.windowSec);
        w.key("slo_target").value(rep.sloTarget);
        w.key("budget_consumed").value(rep.budgetConsumed);
        w.key("windows").beginArray();
        for (const serve::ServingWindow &win : rep.windows) {
            w.beginObject();
            w.key("index").value(win.index);
            w.key("start_sec").value(win.startSec);
            w.key("end_sec").value(win.endSec);
            w.key("offered").value(win.offered);
            w.key("full").value(win.full);
            w.key("fallback").value(win.fallback);
            w.key("shed").value(win.shed);
            w.key("lost").value(win.lost);
            w.key("slo_met").value(win.sloMet);
            w.key("goodput_per_sec").value(win.goodputPerSec);
            w.key("resolved").value(win.resolved);
            w.key("p50_ms").value(win.p50Ms);
            w.key("p95_ms").value(win.p95Ms);
            w.key("p99_ms").value(win.p99Ms);
            w.key("queue_depth_mean").value(win.queueDepthMean);
            w.key("queue_depth_max").value(win.queueDepthMax);
            w.key("burn_rate").value(win.burnRate);
            w.key("budget_consumed").value(win.budgetConsumed);
            w.endObject();
        }
        w.endArray();
        w.key("alerts").beginArray();
        for (const serve::ServingAlert &a : rep.alerts) {
            w.beginObject();
            w.key("rule").value(a.rule);
            w.key("severity").value(a.severity);
            w.key("start_window").value(a.startWindow);
            w.key("end_window").value(a.endWindow);
            w.key("start_sec").value(a.startSec);
            w.key("end_sec").value(a.endSec);
            w.key("peak_burn").value(a.peakBurn);
            w.key("error_fraction").value(a.errorFraction);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    if (rep.traceSampleEvery > 0) {
        w.key("tracing").beginObject();
        w.key("sample_every").value(rep.traceSampleEvery);
        w.key("traced_requests").value(rep.tracedRequests);
        w.endObject();
    }
}

} // namespace

std::string
servingJson(const serve::ServingReport &report)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("serving").beginObject();
    servingBody(w, report);
    w.endObject();
    w.endObject();
    return w.str();
}

namespace {

/**
 * Shared deterministic body of genJson / genRecordJson. Wall-clock
 * figures are deliberately absent; genRecordJson appends them so only
 * the telemetry record carries timing.
 */
void
genBody(obs::JsonWriter &w, const gen::GenReport &rep)
{
    w.key("config").beginObject();
    w.key("family").value(rep.family);
    w.key("requested_n").value(rep.requestedVertices);
    w.key("n").value(rep.vertices);
    w.key("target_edges").value(rep.targetEdges);
    w.key("chunks").value(rep.chunks);
    w.key("lookahead").value(rep.lookahead);
    w.key("seed").value(static_cast<int64_t>(rep.seed));
    w.endObject();

    w.key("stream").beginObject();
    w.key("edges").value(rep.edges);
    w.key("chunks_emitted").value(rep.chunksEmitted);
    // 64-bit checksum as 32-bit halves: JSON numbers are doubles and
    // lose bits past 2^53.
    w.key("checksum_hi")
        .value(static_cast<int64_t>(rep.checksum >> 32));
    w.key("checksum_lo")
        .value(static_cast<int64_t>(rep.checksum & 0xffffffffULL));
    w.key("peak_resident_bytes").value(rep.peakResidentBytes);
    w.key("resident_budget_bytes").value(rep.residentBudgetBytes);
    w.endObject();

    if (rep.hasDegrees) {
        w.key("degrees").beginObject();
        w.key("tracked").value(rep.degreeVertices);
        w.key("stride").value(rep.degreeSampleStride);
        w.key("min").value(rep.minDegree);
        w.key("max").value(rep.maxDegree);
        w.key("mean").value(rep.meanDegree);
        w.key("modal_degree").value(rep.modalDegree);
        w.key("modal_fraction").value(rep.modalFraction);
        w.key("distinct").value(rep.distinctDegrees);
        w.key("slope_valid").value(rep.slopeValid);
        w.key("loglog_slope").value(rep.powerLawSlope);
        w.endObject();
    }

    if (rep.trained) {
        w.key("training").beginObject();
        w.key("batches").value(rep.trainBatches);
        w.key("edges_consumed").value(rep.trainEdgesConsumed);
        w.key("first_loss").value(rep.trainFirstLoss);
        w.key("last_loss").value(rep.trainLastLoss);
        w.key("peak_resident_bytes").value(rep.trainPeakResidentBytes);
        if (rep.trainWindowChunks > 0) {
            w.key("window_chunks").value(rep.trainWindowChunks);
            w.key("windows").beginArray();
            for (const gen::GenTrainWindow &win : rep.trainWindows) {
                w.beginObject();
                w.key("index").value(win.index);
                w.key("first_chunk").value(win.firstChunk);
                w.key("last_chunk").value(win.lastChunk);
                w.key("chunks").value(win.chunks);
                w.key("edges").value(win.edges);
                w.key("mean_loss").value(win.meanLoss);
                w.key("min_loss").value(win.minLoss);
                w.key("max_loss").value(win.maxLoss);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
}

} // namespace

std::string
genJson(const gen::GenReport &report)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("generation").beginObject();
    genBody(w, report);
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
genRecordJson(const std::string &label, const gen::GenReport &report)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("generation");
    w.key("label").value(label);
    genBody(w, report);
    w.key("threads").value(report.threads);
    w.key("wall_sec").value(report.wallSec);
    w.key("edges_per_sec").value(report.edgesPerSec);
    w.endObject();
    return w.str();
}

std::string
servingRecordJson(const std::string &label,
                  const serve::ServingReport &report)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("serving");
    w.key("label").value(label);
    servingBody(w, report);
    w.endObject();
    return w.str();
}

std::string
sloAlertRecordJson(const std::string &label,
                   const serve::ServingReport &report,
                   const serve::ServingAlert &alert)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("slo_alert");
    w.key("label").value(label);
    w.key("rule").value(alert.rule);
    w.key("severity").value(alert.severity);
    w.key("start_window").value(alert.startWindow);
    w.key("end_window").value(alert.endWindow);
    w.key("start_sec").value(alert.startSec);
    w.key("end_sec").value(alert.endSec);
    w.key("peak_burn").value(alert.peakBurn);
    w.key("error_fraction").value(alert.errorFraction);
    w.key("window_sec").value(report.windowSec);
    w.key("slo_target").value(report.sloTarget);
    w.key("faults").value(report.faultScenario);
    w.endObject();
    return w.str();
}

std::string
opstatsJson()
{
    const ops::DispatchStats s = ops::Dispatch::instance().stats();
    obs::JsonWriter w;
    w.beginObject();
    w.key("opstats").beginObject();
    w.key("simd").value(s.simd);
    w.key("mode").value(s.mode);
    w.key("calibrated").value(s.calibrated);
    w.key("calib_ms").value(s.calibMs);
    w.key("gemm_naive").value(s.gemmNaive);
    w.key("gemm_tiled").value(s.gemmTiled);
    w.key("spmm_csr_scalar").value(s.spmmCsrScalar);
    w.key("spmm_csr_vector").value(s.spmmCsrVector);
    w.key("spmm_coo").value(s.spmmCoo);
    w.key("spmm_bell").value(s.spmmBell);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace reports
} // namespace gnnmark
