/**
 * @file
 * Durable checkpoint/resume for workload training state.
 *
 * A checkpoint captures everything a Workload mutates across
 * trainIteration() calls — parameter tensors, optimiser slots and step
 * counters, Rng stream state, batch cursors — as a tagged binary
 * image. Restoring the image into a freshly setup() workload resumes
 * the training stream bitwise-identically to an uninterrupted run.
 *
 * On disk the image is wrapped in a versioned header with an FNV-1a
 * checksum, so truncation, corruption and cross-workload restores are
 * detected before any state is touched. Restores copy into the
 * existing tensor storage (never reallocate), keeping simulated device
 * addresses stable for the GPU cache models.
 */

#ifndef GNNMARK_CORE_CHECKPOINT_HH
#define GNNMARK_CORE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "models/workload.hh"

namespace gnnmark {

/** An in-memory checkpoint image (also the on-disk payload). */
struct Checkpoint
{
    std::string workload; ///< Workload::name() of the producer
    uint64_t step = 0;    ///< training iterations completed at capture
    std::vector<uint8_t> state;

    /** Serialised size, the unit the fault model charges I/O for. */
    double
    sizeBytes() const
    {
        return static_cast<double>(state.size());
    }
};

/** Snapshot a workload's training state after `step` iterations. */
Checkpoint captureCheckpoint(Workload &workload, uint64_t step);

/**
 * Restore a snapshot into `workload`, which must already be setup()
 * with the same dataset seed/scale (the dataset itself is re-derived
 * from the seed, not stored). Fatal on workload-name mismatch or a
 * malformed image; returns the checkpoint's step.
 */
uint64_t restoreCheckpoint(Workload &workload, const Checkpoint &ckpt);

/**
 * Write a checkpoint to `path` (versioned header + checksum); throws
 * IoError when the file cannot be created or fully written.
 */
void writeCheckpointFile(const std::string &path, const Checkpoint &ckpt);

/**
 * Read and validate a checkpoint file. Malformed input — wrong magic,
 * unknown version, truncation, checksum mismatch, trailing bytes —
 * throws a typed IoError (never asserts: the file is external input).
 */
Checkpoint readCheckpointFile(const std::string &path);

} // namespace gnnmark

#endif // GNNMARK_CORE_CHECKPOINT_HH
