#include "core/reports.hh"

#include <algorithm>
#include <cmath>

#include "base/string_utils.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/suite.hh"
#include "ops/dispatch.hh"

namespace gnnmark {
namespace reports {

void
printTableOne(std::ostream &os)
{
    TablePrinter table(
        "Table I: GNNMark workloads (synthetic-dataset reproduction)");
    table.setHeader({"Workload", "Model", "Framework", "Domain",
                     "Dataset", "Graph type"});
    for (const auto &wl : BenchmarkSuite::createAll()) {
        table.addRow({wl->name(), wl->modelName(), wl->framework(),
                      wl->domain(), wl->datasetName(), wl->graphType()});
    }
    table.print(os);
}

void
printFig2OpBreakdown(const std::vector<WorkloadProfile> &profiles,
                     std::ostream &os)
{
    TablePrinter table(
        "Fig. 2: execution-time breakdown by operation (percent of "
        "kernel time)");
    std::vector<std::string> header = {"Workload"};
    for (OpClass c : allOpClasses())
        header.push_back(opClassName(c));
    table.setHeader(header);

    std::array<double, kNumOpClasses> mean{};
    for (const WorkloadProfile &p : profiles) {
        auto breakdown = p.profiler.opTimeBreakdown();
        std::vector<std::string> row = {p.name};
        for (size_t i = 0; i < kNumOpClasses; ++i) {
            row.push_back(fixed(breakdown[i] * 100.0, 1));
            mean[i] += breakdown[i] / profiles.size();
        }
        table.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (size_t i = 0; i < kNumOpClasses; ++i)
        avg.push_back(fixed(mean[i] * 100.0, 1));
    table.addRow(avg);
    table.print(os);

    const double gemm_spmm =
        (mean[static_cast<size_t>(OpClass::Gemm)] +
         mean[static_cast<size_t>(OpClass::Gemv)] +
         mean[static_cast<size_t>(OpClass::SpMM)]) * 100.0;
    const double agg_ops =
        (mean[static_cast<size_t>(OpClass::Sort)] +
         mean[static_cast<size_t>(OpClass::IndexSelect)] +
         mean[static_cast<size_t>(OpClass::Reduction)] +
         mean[static_cast<size_t>(OpClass::Scatter)] +
         mean[static_cast<size_t>(OpClass::Gather)]) * 100.0;
    os << strfmt("Suite mean GEMM+SpMM share: %.1f%% "
                 "(paper: ~25%%)\n", gemm_spmm);
    os << strfmt("Suite mean sort+index+reduce+scatter+gather share: "
                 "%.1f%% (paper: ~20.8%%)\n\n", agg_ops);
}

void
printFig3InstructionMix(const std::vector<WorkloadProfile> &profiles,
                        std::ostream &os)
{
    TablePrinter table(
        "Fig. 3: dynamic instruction mix (percent of instructions)");
    table.setHeader({"Workload", "int32", "fp32", "other"});
    double mean_int = 0, mean_fp = 0;
    for (const WorkloadProfile &p : profiles) {
        auto mix = p.profiler.instructionMix();
        table.addRow({p.name, fixed(mix.int32Frac * 100.0, 1),
                      fixed(mix.fp32Frac * 100.0, 1),
                      fixed(mix.otherFrac * 100.0, 1)});
        mean_int += mix.int32Frac / profiles.size();
        mean_fp += mix.fp32Frac / profiles.size();
    }
    table.addRow({"MEAN", fixed(mean_int * 100.0, 1),
                  fixed(mean_fp * 100.0, 1),
                  fixed((1.0 - mean_int - mean_fp) * 100.0, 1)});
    table.print(os);
    os << strfmt("Suite mean int32 share: %.1f%% (paper: 64%%); fp32: "
                 "%.1f%% (paper: 28.7%%)\n\n",
                 mean_int * 100.0, mean_fp * 100.0);
}

void
printFig4Throughput(const std::vector<WorkloadProfile> &profiles,
                    std::ostream &os)
{
    TablePrinter table("Fig. 4: arithmetic throughput per workload");
    table.setHeader({"Workload", "GFLOPS", "GIOPS", "IPC"});
    double mean_gf = 0, mean_gi = 0, mean_ipc = 0;
    for (const WorkloadProfile &p : profiles) {
        table.addRow({p.name, fixed(p.profiler.gflops(), 1),
                      fixed(p.profiler.giops(), 1),
                      fixed(p.profiler.avgIpc(), 2)});
        mean_gf += p.profiler.gflops() / profiles.size();
        mean_gi += p.profiler.giops() / profiles.size();
        mean_ipc += p.profiler.avgIpc() / profiles.size();
    }
    table.addRow({"MEAN", fixed(mean_gf, 1), fixed(mean_gi, 1),
                  fixed(mean_ipc, 2)});
    table.print(os);
    os << strfmt("Suite means (paper: 214 GFLOPS, 705 GIOPS, IPC "
                 "0.55): %.0f GFLOPS, %.0f GIOPS, IPC %.2f\n\n",
                 mean_gf, mean_gi, mean_ipc);
}

void
printFig5Stalls(const std::vector<WorkloadProfile> &profiles,
                std::ostream &os)
{
    TablePrinter table(
        "Fig. 5: warp issue-stall breakdown (percent of stall cycles)");
    std::vector<std::string> header = {"Workload"};
    for (size_t r = 0; r < kNumStallReasons; ++r)
        header.push_back(stallReasonName(static_cast<StallReason>(r)));
    table.setHeader(header);

    StallVector mean{};
    for (const WorkloadProfile &p : profiles) {
        StallVector b = p.profiler.stallBreakdown();
        std::vector<std::string> row = {p.name};
        for (size_t r = 0; r < kNumStallReasons; ++r) {
            row.push_back(fixed(b[r] * 100.0, 1));
            mean[r] += b[r] / profiles.size();
        }
        table.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (size_t r = 0; r < kNumStallReasons; ++r)
        avg.push_back(fixed(mean[r] * 100.0, 1));
    table.addRow(avg);
    table.print(os);
    os << strfmt(
        "Suite means (paper: MemDep 34.3%%, ExecDep 29.5%%, IFetch "
        "21.6%%): MemDep %.1f%%, ExecDep %.1f%%, IFetch %.1f%%\n\n",
        mean[0] * 100.0, mean[1] * 100.0, mean[2] * 100.0);

    // Per-op-class stall detail (paper Fig. 5's companion analysis).
    TablePrinter detail(
        "Per-operation stall shares (suite-wide, percent)");
    std::vector<std::string> dh = {"Operation"};
    for (size_t r = 0; r < kNumStallReasons; ++r)
        dh.push_back(stallReasonName(static_cast<StallReason>(r)));
    detail.setHeader(dh);
    for (OpClass c : allOpClasses()) {
        StallVector sum{};
        double total = 0;
        for (const WorkloadProfile &p : profiles) {
            const OpClassStats &s = p.profiler.classStats(c);
            for (size_t r = 0; r < kNumStallReasons; ++r) {
                sum[r] += s.stallCycles[r];
                total += s.stallCycles[r];
            }
        }
        if (total <= 0)
            continue;
        std::vector<std::string> row = {opClassName(c)};
        for (size_t r = 0; r < kNumStallReasons; ++r)
            row.push_back(fixed(sum[r] / total * 100.0, 1));
        detail.addRow(row);
    }
    detail.print(os);
    os << "\n";
}

void
printFig6Cache(const std::vector<WorkloadProfile> &profiles,
               std::ostream &os)
{
    TablePrinter table(
        "Fig. 6: cache hit rates and load divergence (percent)");
    table.setHeader({"Workload", "L1 hit", "L2 hit", "Divergent loads"});
    double mean_l1 = 0, mean_l2 = 0, mean_div = 0;
    for (const WorkloadProfile &p : profiles) {
        table.addRow({p.name, fixed(p.profiler.l1HitRate() * 100.0, 1),
                      fixed(p.profiler.l2HitRate() * 100.0, 1),
                      fixed(p.profiler.divergentLoadFraction() * 100.0,
                            1)});
        mean_l1 += p.profiler.l1HitRate() / profiles.size();
        mean_l2 += p.profiler.l2HitRate() / profiles.size();
        mean_div +=
            p.profiler.divergentLoadFraction() / profiles.size();
    }
    table.addRow({"MEAN", fixed(mean_l1 * 100.0, 1),
                  fixed(mean_l2 * 100.0, 1), fixed(mean_div * 100.0, 1)});
    table.print(os);
    os << strfmt("Suite means (paper: L1 ~15%%, L2 ~70%%, divergent "
                 "~32.5%%): L1 %.1f%%, L2 %.1f%%, divergent %.1f%%\n\n",
                 mean_l1 * 100.0, mean_l2 * 100.0, mean_div * 100.0);

    TablePrinter detail("Per-operation L1 hit rate (suite-wide)");
    detail.setHeader({"Operation", "L1 hit", "L2 hit", "Divergent"});
    for (OpClass c : allOpClasses()) {
        double l1a = 0, l1h = 0, l2a = 0, l2h = 0, ld = 0, dv = 0;
        for (const WorkloadProfile &p : profiles) {
            const OpClassStats &s = p.profiler.classStats(c);
            l1a += s.l1Accesses;
            l1h += s.l1Hits;
            l2a += s.l2Accesses;
            l2h += s.l2Hits;
            ld += s.loads;
            dv += s.divergentLoads;
        }
        if (l2a <= 0)
            continue;
        detail.addRow({opClassName(c),
                       fixed(l1a > 0 ? l1h / l1a * 100.0 : 0.0, 1),
                       fixed(l2h / l2a * 100.0, 1),
                       fixed(ld > 0 ? dv / ld * 100.0 : 0.0, 1)});
    }
    detail.print(os);
    os << "\n";
}

void
printFig7Sparsity(const std::vector<WorkloadProfile> &profiles,
                  std::ostream &os)
{
    TablePrinter table(
        "Fig. 7: average sparsity of CPU-to-GPU transfers");
    table.setHeader({"Workload", "Sparsity", "Transferred"});
    double mean = 0;
    for (const WorkloadProfile &p : profiles) {
        table.addRow(
            {p.name,
             fixed(p.profiler.avgTransferSparsity() * 100.0, 1),
             formatBytes(p.profiler.totalTransferBytes())});
        mean += p.profiler.avgTransferSparsity() / profiles.size();
    }
    table.addRow({"MEAN", fixed(mean * 100.0, 1), ""});
    table.print(os);
    os << strfmt("Suite mean transfer sparsity: %.1f%% (paper: "
                 "43.2%%)\n\n", mean * 100.0);
}

void
printFig8SparsityTimeline(const std::vector<WorkloadProfile> &profiles,
                          std::ostream &os, int max_points)
{
    TablePrinter table(
        "Fig. 8: transfer sparsity vs. training iteration (percent)");
    std::vector<std::string> header = {"Workload"};
    for (int i = 1; i <= max_points; ++i)
        header.push_back(strfmt("it%d", i));
    table.setHeader(header);

    for (const WorkloadProfile &p : profiles) {
        // Byte-weighted sparsity per iteration.
        std::vector<double> bytes(max_points + 1, 0);
        std::vector<double> zeros(max_points + 1, 0);
        for (const SparsitySample &s : p.profiler.sparsityTimeline()) {
            if (s.iteration >= 1 && s.iteration <= max_points) {
                bytes[s.iteration] += s.bytes;
                zeros[s.iteration] += s.bytes * s.zeroFraction;
            }
        }
        std::vector<std::string> row = {p.name};
        for (int i = 1; i <= max_points; ++i) {
            row.push_back(bytes[i] > 0
                              ? fixed(zeros[i] / bytes[i] * 100.0, 1)
                              : std::string("-"));
        }
        table.addRow(row);
    }
    table.print(os);
    os << "\n";
}

void
printFig9Scaling(
    const std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        &curves,
    std::ostream &os)
{
    TablePrinter table(
        "Fig. 9: strong scaling with PyTorch DDP (time per epoch)");
    table.setHeader({"Workload", "GPUs", "Epoch (ms)", "Compute (ms)",
                     "Comm (ms)", "Exposed (ms)", "Overlap %",
                     "Speedup vs 1 GPU"});
    for (const auto &[name, points] : curves) {
        for (const ScalingResult &r : points) {
            table.addRow({name, strfmt("%d", r.worldSize),
                          fixed(r.epochTimeSec * 1e3, 2),
                          fixed(r.computeTimeSec * 1e3, 2),
                          fixed(r.commTimeSec * 1e3, 2),
                          fixed(r.commExposedSec * 1e3, 2),
                          fixed(r.overlapFrac * 100.0, 1),
                          fixed(r.speedup, 2)});
        }
    }
    table.print(os);
    os << "\n";
}

void
printFaultTolerance(const FaultToleranceResult &result, std::ostream &os)
{
    TablePrinter table(strfmt(
        "Fault-tolerant DDP run: %s (%d -> %d GPUs)",
        result.workload.c_str(), result.worldStart, result.worldEnd));
    table.setHeader({"Fault", "At (ms)", "Replica", "Detect (ms)",
                     "Rollback (ms)", "Re-shard (ms)", "Drag (ms)",
                     "Lost iters", "World"});
    for (const FaultRecord &e : result.events) {
        table.addRow({faultKindName(e.kind),
                      fixed(e.simTimeSec * 1e3, 2),
                      strfmt("%d", e.replica),
                      fixed(e.detectionSec * 1e3, 2),
                      fixed(e.rollbackSec * 1e3, 2),
                      fixed(e.reshardSec * 1e3, 2),
                      fixed(e.slowdownSec * 1e3, 2),
                      strfmt("%d", e.lostIterations),
                      strfmt("%d->%d", e.worldBefore, e.worldAfter)});
    }
    table.print(os);

    os << strfmt("Iterations: %d target, %d executed (%d replayed)\n",
                 result.targetIterations, result.executedIterations,
                 result.replayedIterations);
    os << strfmt("Time: %.2f ms total vs %.2f ms ideal "
                 "(checkpointing %.2f ms, recovery %.2f ms)\n",
                 result.totalTimeSec * 1e3, result.idealTimeSec * 1e3,
                 result.checkpointTimeSec * 1e3,
                 result.recoveryTimeSec * 1e3);
    os << strfmt("Goodput vs ideal: %.1f%%\n\n",
                 result.goodput * 100.0);
}

void
printCheckpointSweep(
    const std::vector<std::pair<int, FaultToleranceResult>> &sweep,
    std::ostream &os)
{
    if (sweep.empty())
        return;
    TablePrinter table(strfmt(
        "Checkpoint-interval sweep: %s (%d GPUs, same fault plan)",
        sweep.front().second.workload.c_str(),
        sweep.front().second.worldStart));
    table.setHeader({"Interval", "Total (ms)", "Ckpt (ms)",
                     "Recovery (ms)", "Replayed", "Goodput"});
    for (const auto &[interval, r] : sweep) {
        table.addRow({interval > 0 ? strfmt("%d", interval) : "off",
                      fixed(r.totalTimeSec * 1e3, 2),
                      fixed(r.checkpointTimeSec * 1e3, 2),
                      fixed(r.recoveryTimeSec * 1e3, 2),
                      strfmt("%d", r.replayedIterations),
                      fixed(r.goodput, 3)});
    }
    table.print(os);
    os << "\n";
}

void
printKernelTable(const WorkloadProfile &profile, std::ostream &os,
                 int top_n)
{
    std::vector<std::pair<std::string, const OpClassStats *>> rows;
    for (const auto &[name, stats] : profile.profiler.kernelStats())
        rows.emplace_back(name, &stats);
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second->timeSec > b.second->timeSec;
    });

    TablePrinter table(
        strfmt("Top kernels for %s (nvprof-style)",
               profile.name.c_str()));
    table.setHeader({"Kernel", "Time (us)", "Calls", "Share"});
    const double total = profile.profiler.totalKernelTimeSec();
    for (int i = 0;
         i < top_n && i < static_cast<int>(rows.size()); ++i) {
        table.addRow({rows[i].first,
                      fixed(rows[i].second->timeSec * 1e6, 1),
                      strfmt("%lld", static_cast<long long>(
                                         rows[i].second->launches)),
                      percent(total > 0
                                  ? rows[i].second->timeSec / total
                                  : 0.0)});
    }
    table.print(os);
    os << "\n";
}

void
printMemstats(const std::vector<WorkloadProfile> &profiles,
              std::ostream &os)
{
    TablePrinter table("Host allocator behaviour (--memstats)");
    table.setHeader({"Workload", "Mode", "Peak bytes", "Slabs",
                     "Requests", "Heap calls", "Hit rate",
                     "Steady allocs/iter"});
    for (const WorkloadProfile &p : profiles) {
        const AllocSummary &m = p.memStats;
        table.addRow(
            {p.name, m.mode, formatBytes(m.bytesPeak),
             strfmt("%llu", static_cast<unsigned long long>(
                                m.slabsMapped)),
             strfmt("%llu", static_cast<unsigned long long>(
                                m.requestsTotal)),
             strfmt("%llu", static_cast<unsigned long long>(
                                m.heapCallsTotal)),
             percent(m.cacheHitRate),
             strfmt("%llu", static_cast<unsigned long long>(
                                m.steadyAllocCallsPerIter))});
    }
    table.print(os);
    os << "\n";
}

void
printServing(const serve::ServingReport &rep, std::ostream &os)
{
    os << strfmt("Serving: %s arrivals @ %.0f req/s for %.1f s, "
                 "SLO %.1f ms, %d replicas, batch <= %d, faults=%s\n",
                 rep.arrival.c_str(), rep.ratePerSec, rep.durationSec,
                 rep.sloMs, rep.replicas, rep.maxBatch,
                 rep.faultScenario.c_str());
    os << strfmt("Robustness: hedge=%s shed=%s fallback=%s\n",
                 rep.hedgeEnabled ? "on" : "off",
                 rep.shedEnabled ? "on" : "off",
                 rep.fallbackEnabled ? "on" : "off");

    TablePrinter outcomes("Request outcomes");
    outcomes.setHeader({"Offered", "Full", "Fallback", "Shed", "Lost",
                        "SLO met", "Goodput/s"});
    outcomes.addRow({strfmt("%lld", (long long)rep.offered),
                     strfmt("%lld", (long long)rep.full),
                     strfmt("%lld", (long long)rep.fallback),
                     strfmt("%lld", (long long)rep.shed),
                     strfmt("%lld", (long long)rep.lost),
                     strfmt("%lld", (long long)rep.sloMet),
                     fixed(rep.goodputPerSec, 1)});
    outcomes.print(os);

    TablePrinter latency("Latency over answered requests (ms)");
    latency.setHeader({"p50", "p95", "p99", "mean", "max"});
    latency.addRow({fixed(rep.p50Ms, 2), fixed(rep.p95Ms, 2),
                    fixed(rep.p99Ms, 2), fixed(rep.meanMs, 2),
                    fixed(rep.maxMs, 2)});
    latency.print(os);

    os << strfmt("Mechanics: %lld retries, %lld hedges (%lld won), "
                 "%lld timeouts, %lld breaker opens, cache hit rate "
                 "%.1f%%\n",
                 (long long)rep.retries, (long long)rep.hedgesLaunched,
                 (long long)rep.hedgeWins, (long long)rep.timeouts,
                 (long long)rep.breakerOpens, rep.cacheHitRate * 100.0);
    os << strfmt("Batching: %lld batches, mean size %.2f, "
                 "utilization %.1f%% (%.2f ms useful, %.2f ms "
                 "cancelled), horizon %.1f ms\n",
                 (long long)rep.batches, rep.meanBatchSize,
                 rep.utilization * 100.0, rep.busySec * 1e3,
                 rep.cancelledSec * 1e3, rep.horizonSec * 1e3);

    TablePrinter replicas("Per-replica accounting");
    replicas.setHeader({"Replica", "Done", "Cancelled", "Timeouts",
                        "Opens", "Breaker", "Busy (ms)", "Waste (ms)"});
    for (const serve::ReplicaReport &r : rep.perReplica) {
        replicas.addRow({strfmt("%d", r.replica),
                         strfmt("%lld", (long long)r.batchesCompleted),
                         strfmt("%lld", (long long)r.batchesCancelled),
                         strfmt("%lld", (long long)r.timeouts),
                         strfmt("%lld", (long long)r.breakerOpens),
                         r.breakerFinal, fixed(r.busySec * 1e3, 2),
                         fixed(r.cancelledSec * 1e3, 2)});
    }
    replicas.print(os);

    if (rep.windowSec > 0) {
        TablePrinter timeline(strfmt(
            "Timeline (%.0f ms windows, SLO target %.2f%%, "
            "budget consumed %.1f%%)",
            rep.windowSec * 1e3, rep.sloTarget * 100.0,
            rep.budgetConsumed * 100.0));
        timeline.setHeader({"Win", "t (ms)", "Offered", "OK", "Shed",
                            "Lost", "p50", "p95", "p99", "Goodput/s",
                            "Queue", "Burn"});
        for (const serve::ServingWindow &w : rep.windows) {
            timeline.addRow(
                {strfmt("%lld", (long long)w.index),
                 fixed(w.startSec * 1e3, 0),
                 strfmt("%lld", (long long)w.offered),
                 strfmt("%lld", (long long)w.sloMet),
                 strfmt("%lld", (long long)w.shed),
                 strfmt("%lld", (long long)w.lost),
                 fixed(w.p50Ms, 2), fixed(w.p95Ms, 2),
                 fixed(w.p99Ms, 2), fixed(w.goodputPerSec, 0),
                 fixed(w.queueDepthMean, 1), fixed(w.burnRate, 1)});
        }
        timeline.print(os);

        if (rep.alerts.empty()) {
            os << "SLO alerts: none\n";
        } else {
            TablePrinter alerts("SLO burn-rate alerts");
            alerts.setHeader({"Rule", "Severity", "From (ms)",
                              "To (ms)", "Peak burn", "Err %"});
            for (const serve::ServingAlert &a : rep.alerts) {
                alerts.addRow({a.rule, a.severity,
                               fixed(a.startSec * 1e3, 0),
                               fixed(a.endSec * 1e3, 0),
                               fixed(a.peakBurn, 1),
                               fixed(a.errorFraction * 100.0, 1)});
            }
            alerts.print(os);
        }
    }
    if (rep.traceSampleEvery > 0) {
        os << strfmt("Tracing: every %lld-th request + exemplars, "
                     "%lld span chains kept\n",
                     (long long)rep.traceSampleEvery,
                     (long long)rep.tracedRequests);
    }
    os << "\n";
}

void
printGen(const gen::GenReport &rep, std::ostream &os)
{
    os << strfmt("Generation: family=%s n=%lld (requested %lld) "
                 "target_edges=%lld chunks=%lld lookahead=%lld "
                 "seed=%llu threads=%d\n",
                 rep.family.c_str(), (long long)rep.vertices,
                 (long long)rep.requestedVertices,
                 (long long)rep.targetEdges, (long long)rep.chunks,
                 (long long)rep.lookahead,
                 (unsigned long long)rep.seed, rep.threads);

    TablePrinter stream("Edge stream");
    stream.setHeader({"Edges", "Chunks", "Checksum", "Peak res (MiB)",
                      "Budget (MiB)", "Wall (s)", "Edges/s"});
    stream.addRow({strfmt("%lld", (long long)rep.edges),
                   strfmt("%lld", (long long)rep.chunksEmitted),
                   strfmt("%016llx", (unsigned long long)rep.checksum),
                   fixed(rep.peakResidentBytes / (1024.0 * 1024.0), 2),
                   fixed(rep.residentBudgetBytes / (1024.0 * 1024.0), 2),
                   fixed(rep.wallSec, 3),
                   strfmt("%.3g", rep.edgesPerSec)});
    stream.print(os);

    if (rep.hasDegrees) {
        TablePrinter deg("Degree distribution");
        deg.setHeader({"Tracked", "Stride", "Min", "Max", "Mean",
                       "Modal", "Modal %", "Distinct", "LogLog slope"});
        deg.addRow({strfmt("%lld", (long long)rep.degreeVertices),
                    strfmt("%lld", (long long)rep.degreeSampleStride),
                    strfmt("%lld", (long long)rep.minDegree),
                    strfmt("%lld", (long long)rep.maxDegree),
                    fixed(rep.meanDegree, 2),
                    strfmt("%lld", (long long)rep.modalDegree),
                    fixed(rep.modalFraction * 100.0, 1),
                    strfmt("%lld", (long long)rep.distinctDegrees),
                    rep.slopeValid ? fixed(rep.powerLawSlope, 3)
                                   : std::string("n/a")});
        deg.print(os);
    }

    if (rep.trained) {
        TablePrinter train("Streamed training");
        train.setHeader({"Batches", "Edges consumed", "First loss",
                         "Last loss", "Peak res (MiB)"});
        train.addRow(
            {strfmt("%lld", (long long)rep.trainBatches),
             strfmt("%lld", (long long)rep.trainEdgesConsumed),
             strfmt("%.4g", rep.trainFirstLoss),
             strfmt("%.4g", rep.trainLastLoss),
             fixed(rep.trainPeakResidentBytes / (1024.0 * 1024.0), 2)});
        train.print(os);

        if (rep.trainWindowChunks > 0) {
            TablePrinter wins(strfmt(
                "Training timeline (%lld-chunk windows)",
                (long long)rep.trainWindowChunks));
            wins.setHeader({"Win", "Chunks", "Edges", "Mean loss",
                            "Min loss", "Max loss"});
            for (const gen::GenTrainWindow &w : rep.trainWindows) {
                wins.addRow({strfmt("%lld", (long long)w.index),
                             strfmt("%lld", (long long)w.chunks),
                             strfmt("%lld", (long long)w.edges),
                             strfmt("%.4g", w.meanLoss),
                             strfmt("%.4g", w.minLoss),
                             strfmt("%.4g", w.maxLoss)});
            }
            wins.print(os);
        }
    }
    os << "\n";
}

void
printOpstats(std::ostream &os)
{
    const ops::DispatchStats s = ops::Dispatch::instance().stats();
    TablePrinter table("Operator dispatch (--opstats)");
    table.setHeader({"Op", "Variant", "Calls"});
    table.addRow({"gemm", "naive",
                  strfmt("%lld", (long long)s.gemmNaive)});
    table.addRow({"gemm", "tiled",
                  strfmt("%lld", (long long)s.gemmTiled)});
    table.addRow({"spmm", "csr_scalar",
                  strfmt("%lld", (long long)s.spmmCsrScalar)});
    table.addRow({"spmm", "csr_vector",
                  strfmt("%lld", (long long)s.spmmCsrVector)});
    table.addRow({"spmm", "coo",
                  strfmt("%lld", (long long)s.spmmCoo)});
    table.addRow({"spmm", "bell",
                  strfmt("%lld", (long long)s.spmmBell)});
    table.print(os);
    os << strfmt("  simd: %s   calibration: %s mode, %s, %.3f ms\n\n",
                 s.simd ? "avx2" : "scalar", s.mode.c_str(),
                 s.calibrated ? "ran" : "not run", s.calibMs);
}

} // namespace reports
} // namespace gnnmark
