/**
 * @file
 * The characterization driver: trains a workload on a simulated GPU
 * under a profiler and packages every metric the paper's evaluation
 * section reports.
 */

#ifndef GNNMARK_CORE_CHARACTERIZATION_HH
#define GNNMARK_CORE_CHARACTERIZATION_HH

#include <string>
#include <vector>

#include "models/workload.hh"
#include "profiler/profiler.hh"
#include "sim/gpu_config.hh"

namespace gnnmark {

namespace obs {
class TelemetrySink;
} // namespace obs

class Allocator;
class DeviceTraceHook;

/** Knobs for one characterization run. */
struct RunOptions
{
    uint64_t seed = 42;
    double scale = 1.0;       ///< dataset scale factor
    int iterations = 8;       ///< measured training steps
    int warmupIterations = 1; ///< untimed steps before measuring
    bool inferenceOnly = false; ///< forward passes only
    GpuConfig deviceConfig = GpuConfig::v100();

    /**
     * Optional capture hook (e.g. trace::TraceRecorder): receives
     * every launch, transfer, and timeline marker of the run so the
     * whole characterization can be replayed offline. Not owned.
     */
    DeviceTraceHook *traceHook = nullptr;

    /** Optional extra observer (e.g. a chrome-trace exporter). */
    KernelObserver *extraObserver = nullptr;

    /**
     * Optional telemetry sink: when set, the runner resets the metrics
     * registry at run start and appends one "iteration" JSONL record
     * per measured step (loss, simulated time, kernel count, a full
     * metrics snapshot). Not owned. Record schema in obs/telemetry.hh.
     */
    obs::TelemetrySink *telemetry = nullptr;

    /**
     * Tensor allocator the run binds for its duration (not owned).
     * nullptr means defaultAllocator(), i.e. the GNNMARK_ALLOC choice.
     */
    Allocator *allocator = nullptr;
};

/** Host-allocator behaviour observed during one run (--memstats). */
struct AllocSummary
{
    std::string mode;           ///< allocator name ("caching"/"system")
    uint64_t bytesPeak = 0;     ///< high-water mark of live bytes
    uint64_t slabsMapped = 0;   ///< slabs backing the arena
    uint64_t requestsTotal = 0; ///< allocate() calls over the run
    uint64_t heapCallsTotal = 0; ///< underlying malloc-style calls
    double cacheHitRate = 0.0;  ///< free-list hits / requests
    /** Heap calls in the final measured iteration: the steady state. */
    uint64_t steadyAllocCallsPerIter = 0;
    /** allocate() requests in the final measured iteration. */
    uint64_t steadyRequestsPerIter = 0;
};

/** Everything measured while training one workload. */
struct WorkloadProfile
{
    std::string name;
    Profiler profiler;        ///< full metric aggregates
    std::vector<float> losses;
    double wallTimeSec = 0;   ///< simulated wall time of measured steps
    double epochTimeSec = 0;  ///< extrapolated time per epoch
    int64_t iterationsPerEpoch = 0;
    double parameterBytes = 0;
    AllocSummary memStats;    ///< allocator counters for --memstats
};

/** Runs workloads and collects WorkloadProfiles. */
class CharacterizationRunner
{
  public:
    explicit CharacterizationRunner(RunOptions options = RunOptions{});

    /** Train and profile one workload. */
    WorkloadProfile run(Workload &workload) const;

    /** Train and profile a workload by suite name. */
    WorkloadProfile run(const std::string &workload_name) const;

    /** Profile the whole suite (Table I order). */
    std::vector<WorkloadProfile> runSuite() const;

    const RunOptions &options() const { return options_; }

  private:
    RunOptions options_;
};

} // namespace gnnmark

#endif // GNNMARK_CORE_CHARACTERIZATION_HH
