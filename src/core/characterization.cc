#include "core/characterization.hh"

#include "base/logging.hh"
#include "core/suite.hh"
#include "ops/exec_context.hh"
#include "sim/trace_hook.hh"

namespace gnnmark {

CharacterizationRunner::CharacterizationRunner(RunOptions options)
    : options_(options)
{
}

WorkloadProfile
CharacterizationRunner::run(Workload &workload) const
{
    WorkloadProfile profile;
    profile.name = workload.name();

    GpuDevice device(options_.deviceConfig, options_.seed);
    device.addObserver(&profile.profiler);
    if (options_.extraObserver != nullptr)
        device.addObserver(options_.extraObserver);
    device.setTraceHook(options_.traceHook);

    WorkloadConfig cfg;
    cfg.seed = options_.seed;
    cfg.scale = options_.scale;
    cfg.inferenceOnly = options_.inferenceOnly;
    workload.setup(cfg);

    DeviceGuard guard(&device);
    for (int i = 0; i < options_.warmupIterations; ++i)
        workload.trainIteration();
    // Warm-up kernels stay in the profile (nvprof profiles the whole
    // run too), but the timer restarts for the epoch extrapolation.
    device.resetTimers();

    for (int i = 0; i < options_.iterations; ++i) {
        profile.profiler.beginIteration();
        if (options_.traceHook != nullptr)
            options_.traceHook->onMarker(TraceMarker::IterationBegin);
        profile.losses.push_back(workload.trainIteration());
    }

    profile.wallTimeSec = device.wallTimeSec();
    profile.iterationsPerEpoch = workload.iterationsPerEpoch();
    profile.epochTimeSec =
        device.wallTimeSec() / options_.iterations *
        static_cast<double>(profile.iterationsPerEpoch);
    profile.parameterBytes = workload.parameterBytes();
    return profile;
}

WorkloadProfile
CharacterizationRunner::run(const std::string &workload_name) const
{
    auto workload = BenchmarkSuite::create(workload_name);
    return run(*workload);
}

std::vector<WorkloadProfile>
CharacterizationRunner::runSuite() const
{
    std::vector<WorkloadProfile> out;
    for (const std::string &name : BenchmarkSuite::workloadNames())
        out.push_back(run(name));
    return out;
}

} // namespace gnnmark
