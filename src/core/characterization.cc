#include "core/characterization.hh"

#include "base/allocator.hh"
#include "base/logging.hh"
#include "core/suite.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/telemetry.hh"
#include "ops/exec_context.hh"
#include "sim/trace_hook.hh"

namespace gnnmark {

CharacterizationRunner::CharacterizationRunner(RunOptions options)
    : options_(options)
{
}

WorkloadProfile
CharacterizationRunner::run(Workload &workload) const
{
    GNN_SPAN("run.workload");
    WorkloadProfile profile;
    profile.name = workload.name();

    // A fresh run means fresh counters, so each iteration record's
    // snapshot is the cumulative view of this run only.
    if (options_.telemetry != nullptr)
        obs::Metrics::instance().reset();

    GpuDevice device(options_.deviceConfig, options_.seed);
    device.addObserver(&profile.profiler);
    if (options_.extraObserver != nullptr)
        device.addObserver(options_.extraObserver);
    device.setTraceHook(options_.traceHook);

    WorkloadConfig cfg;
    cfg.seed = options_.seed;
    cfg.scale = options_.scale;
    cfg.inferenceOnly = options_.inferenceOnly;
    workload.setup(cfg);

    Allocator *alloc = options_.allocator != nullptr
                           ? options_.allocator
                           : &defaultAllocator();
    ContextGuard guard(&device, alloc);
    for (int i = 0; i < options_.warmupIterations; ++i)
        workload.trainIteration();
    // Warm-up kernels stay in the profile (nvprof profiles the whole
    // run too), but the timer restarts for the epoch extrapolation.
    device.resetTimers();

    for (int i = 0; i < options_.iterations; ++i) {
        GNN_SPAN("train.iteration");
        // One call fans out to every observer (the profiler advances
        // its iteration counter) and to the trace hook.
        device.markIterationBegin();

        const double sim_before = device.wallTimeSec();
        const int64_t kernels_before = device.kernelCount();
        const double host_before = obs::SpanTracer::instance().nowUs();
        const AllocStats alloc_before = alloc->stats();

        const float loss = workload.trainIteration();
        profile.losses.push_back(loss);

        const AllocStats alloc_after = alloc->stats();
        const uint64_t iter_heap_calls =
            alloc_after.heapCalls - alloc_before.heapCalls;
        const uint64_t iter_requests =
            alloc_after.requests - alloc_before.requests;
        profile.memStats.mode = alloc->name();
        profile.memStats.bytesPeak = alloc_after.bytesPeak;
        profile.memStats.slabsMapped = alloc_after.slabsMapped;
        profile.memStats.requestsTotal = alloc_after.requests;
        profile.memStats.heapCallsTotal = alloc_after.heapCalls;
        profile.memStats.cacheHitRate = alloc_after.hitRate();
        profile.memStats.steadyAllocCallsPerIter = iter_heap_calls;
        profile.memStats.steadyRequestsPerIter = iter_requests;

        if (options_.telemetry != nullptr) {
            const double iter_sim_us =
                (device.wallTimeSec() - sim_before) * 1e6;
            obs::Metrics &metrics = obs::Metrics::instance();
            metrics.setGauge("train.loss", loss);
            metrics.setGauge("train.iter_sim_us", iter_sim_us);
            // Only per-iteration deltas and live bytes go into
            // telemetry: cumulative counters (hits, peak, slabs) see
            // whatever state earlier runs left in the process-global
            // allocator, which would break same-process telemetry
            // determinism. The cumulative view lives in --memstats.
            metrics.setGauge("alloc.calls_iter",
                             static_cast<double>(iter_heap_calls));
            metrics.setGauge("alloc.requests_iter",
                             static_cast<double>(iter_requests));
            metrics.setGauge("alloc.bytes_live",
                             static_cast<double>(alloc_after.bytesLive));

            obs::JsonWriter w;
            w.beginObject();
            w.key("type").value("iteration");
            w.key("workload").value(profile.name);
            w.key("iteration").value(i);
            w.key("loss").value(static_cast<double>(loss));
            w.key("sim_time_us").value(iter_sim_us);
            w.key("kernels").value(device.kernelCount() -
                                   kernels_before);
            // host_* fields are wall clock and excluded from diffs.
            w.key("host_time_us")
                .value(obs::SpanTracer::instance().nowUs() -
                       host_before);
            w.key("metrics");
            obs::writeMetricsSnapshot(w, metrics.snapshot());
            w.endObject();
            options_.telemetry->writeRecord(w.str());
        }
    }

    profile.wallTimeSec = device.wallTimeSec();
    profile.iterationsPerEpoch = workload.iterationsPerEpoch();
    profile.epochTimeSec =
        device.wallTimeSec() / options_.iterations *
        static_cast<double>(profile.iterationsPerEpoch);
    profile.parameterBytes = workload.parameterBytes();
    return profile;
}

WorkloadProfile
CharacterizationRunner::run(const std::string &workload_name) const
{
    auto workload = BenchmarkSuite::create(workload_name);
    return run(*workload);
}

std::vector<WorkloadProfile>
CharacterizationRunner::runSuite() const
{
    std::vector<WorkloadProfile> out;
    for (const std::string &name : BenchmarkSuite::workloadNames())
        out.push_back(run(name));
    return out;
}

} // namespace gnnmark
