/**
 * @file
 * MLPerf-style time-to-train measurement — the metric the paper's
 * Sec. VII plans to adopt. Trains a workload until its smoothed loss
 * reaches a relative target and reports the simulated wall time.
 */

#ifndef GNNMARK_CORE_TIME_TO_TRAIN_HH
#define GNNMARK_CORE_TIME_TO_TRAIN_HH

#include <string>

#include "models/workload.hh"
#include "sim/gpu_config.hh"

namespace gnnmark {

/** Options for a time-to-train run. */
struct TimeToTrainOptions
{
    uint64_t seed = 42;
    double scale = 1.0;
    /**
     * Convergence target: stop when the smoothed loss drops below
     * `lossFraction` of the initial smoothed loss.
     */
    double lossFraction = 0.85;
    /** Exponential smoothing factor for the loss (0 = no smoothing). */
    double smoothing = 0.7;
    int maxIterations = 400;
    GpuConfig deviceConfig = GpuConfig::v100();
};

/** Result of one time-to-train measurement. */
struct TimeToTrainResult
{
    std::string name;
    bool converged = false;
    int iterations = 0;           ///< steps until the target (or max)
    double simulatedTimeSec = 0;  ///< device wall time to the target
    float initialLoss = 0;
    float finalLoss = 0;
};

/** Train `workload` until the loss target and report the sim time. */
TimeToTrainResult measureTimeToTrain(Workload &workload,
                                     const TimeToTrainOptions &options);

} // namespace gnnmark

#endif // GNNMARK_CORE_TIME_TO_TRAIN_HH
