#include "core/suite.hh"

#include "base/logging.hh"
#include "models/arga.hh"
#include "models/deepgcn.hh"
#include "models/graphwriter.hh"
#include "models/kgnn.hh"
#include "models/pinsage.hh"
#include "models/stgcn.hh"
#include "models/treelstm.hh"

namespace gnnmark {

const std::vector<std::string> &
BenchmarkSuite::workloadNames()
{
    static const std::vector<std::string> names = {
        "PSAGE-MVL", "PSAGE-NWP", "STGCN", "DGCN", "GW",
        "KGNNL",     "KGNNH",     "ARGA",  "TLSTM",
    };
    return names;
}

std::unique_ptr<Workload>
BenchmarkSuite::create(const std::string &name)
{
    if (name == "PSAGE-MVL")
        return std::make_unique<PinSage>(PinSageDataset::MVL);
    if (name == "PSAGE-NWP")
        return std::make_unique<PinSage>(PinSageDataset::NWP);
    if (name == "STGCN")
        return std::make_unique<Stgcn>();
    if (name == "DGCN")
        return std::make_unique<DeepGcn>();
    if (name == "GW")
        return std::make_unique<GraphWriter>();
    if (name == "KGNNL")
        return std::make_unique<KGnn>(2);
    if (name == "KGNNH")
        return std::make_unique<KGnn>(3);
    if (name == "ARGA")
        return std::make_unique<Arga>();
    if (name == "TLSTM")
        return std::make_unique<TreeLstm>();
    GNN_FATAL("unknown workload '%s'", name.c_str());
}

std::vector<std::unique_ptr<Workload>>
BenchmarkSuite::createAll()
{
    std::vector<std::unique_ptr<Workload>> out;
    for (const std::string &name : workloadNames())
        out.push_back(create(name));
    return out;
}

} // namespace gnnmark
