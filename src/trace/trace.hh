/**
 * @file
 * In-memory model of a captured kernel trace.
 *
 * A RecordedTrace is one training run reduced to the stream the
 * simulated GPU consumed: every kernel launch (with the warp traces
 * the device simulated in detail), every host-to-device copy reduced
 * to footprint + sparsity, and the timeline markers the driver
 * inserted. Replaying the stream through a fresh GpuDevice reproduces
 * the characterization of the recording run exactly on the recording
 * GpuConfig, and prices what-if configurations (L1/L2 size, SM count,
 * scheduler parameters) without re-executing the tensor/op/model
 * stack — the trace-once/analyze-many methodology of the paper's
 * nvprof/NVBit pipeline.
 *
 * The header additionally carries the run metadata a characterization
 * report needs but the device never sees (losses, epoch geometry,
 * parameter bytes), so a replayed report is a drop-in for a live one.
 */

#ifndef GNNMARK_TRACE_TRACE_HH
#define GNNMARK_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/gpu_config.hh"
#include "sim/op_class.hh"
#include "sim/trace_hook.hh"
#include "sim/warp_trace.hh"

namespace gnnmark {
namespace trace {

/** Run metadata stamped into the file header. */
struct TraceHeader
{
    std::string workload; ///< suite name of the recorded workload
    uint64_t seed = 0;    ///< device/run seed (replay reuses it)
    double scale = 1.0;
    int32_t iterations = 0;       ///< measured training iterations
    int32_t warmupIterations = 0; ///< untimed steps before the reset
    bool inferenceOnly = false;
    int64_t iterationsPerEpoch = 0;
    double parameterBytes = 0;
    std::vector<float> losses;    ///< per measured iteration
    GpuConfig config;             ///< the recording configuration
};

/** One warp the device simulated in detail. */
struct TracedWarp
{
    int64_t warpId = 0;
    WarpTrace trace;
};

/** One kernel launch (KernelDesc minus the generator closures). */
struct LaunchEvent
{
    std::string name;
    OpClass opClass = OpClass::Other;
    int64_t blocks = 1;
    int warpsPerBlock = 4;
    int codeBytes = 4096;
    double aluIlp = 0.0;
    double loadDepFraction = 0.0;
    bool irregular = false;
    std::vector<std::pair<uint64_t, uint64_t>> outputRanges;
    std::vector<std::pair<uint64_t, uint64_t>> inputRanges;
    std::vector<TracedWarp> warps; ///< empty for sampled-replay launches
};

/** One host-to-device copy, footprint + sparsity only. */
struct TransferEvent
{
    std::string tag;
    uint64_t addr = 0;
    uint64_t bytes = 0;
    double zeroFraction = 0;
};

using TraceEvent = std::variant<LaunchEvent, TransferEvent, TraceMarker>;

/** A complete captured run. */
struct RecordedTrace
{
    TraceHeader header;
    std::vector<TraceEvent> events;
};

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_TRACE_HH
