#include "trace/replayer.hh"

#include <memory>
#include <unordered_map>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "sim/gpu_device.hh"

namespace gnnmark {
namespace trace {

namespace {

/**
 * All warp traces ever recorded for one kernel name, the fallback
 * pool when a replay config's geometry requests warps the recording
 * config never simulated in detail.
 */
struct WarpArchive
{
    std::unordered_map<int64_t, size_t> byId; ///< warp id -> pool index
    std::vector<const WarpTrace *> pool;      ///< insertion order
};

} // namespace

ReplayResult
replayTrace(const RecordedTrace &trace, const GpuConfig &config,
            const std::vector<KernelObserver *> &extra_observers)
{
    GNN_SPAN("trace.replay");
    GpuDevice device(config, trace.header.seed);
    ReplayResult result;
    result.workload = trace.header.workload;
    device.addObserver(&result.profiler);
    TimelineCollector timelines(config.launchOverheadSec);
    device.addObserver(&timelines);
    for (KernelObserver *observer : extra_observers)
        device.addObserver(observer);

    std::unordered_map<std::string, WarpArchive> archives;

    // Hoisted so its string/vector capacity is reused across launches.
    KernelDesc desc;

    for (const TraceEvent &event : trace.events) {
        if (const auto *launch = std::get_if<LaunchEvent>(&event)) {
            WarpArchive &archive = archives[launch->name];
            for (const TracedWarp &warp : launch->warps) {
                auto [it, fresh] =
                    archive.byId.try_emplace(warp.warpId,
                                             archive.pool.size());
                if (fresh)
                    archive.pool.push_back(&warp.trace);
                else
                    archive.pool[it->second] = &warp.trace;
            }

            desc.name = launch->name;
            desc.opClass = launch->opClass;
            desc.blocks = launch->blocks;
            desc.warpsPerBlock = launch->warpsPerBlock;
            desc.codeBytes = launch->codeBytes;
            desc.aluIlp = launch->aluIlp;
            desc.loadDepFraction = launch->loadDepFraction;
            desc.irregular = launch->irregular;
            desc.outputRanges = launch->outputRanges;
            desc.inputRanges = launch->inputRanges;

            // Pure function of the warp id (required by the device):
            // exact recorded warp first, then the kernel's archive by
            // id, then by index modulo the archived sample. Returns a
            // borrowed reference — the trace and archive outlive the
            // launch, and skipping the deep copy is a large share of
            // the replay speedup over live simulation.
            const LaunchEvent *ev = launch;
            const WarpArchive *arch = &archive;
            desc.replay =
                [ev, arch](int64_t warp_id) -> const WarpTrace & {
                for (const TracedWarp &warp : ev->warps) {
                    if (warp.warpId == warp_id)
                        return warp.trace;
                }
                auto it = arch->byId.find(warp_id);
                if (it != arch->byId.end())
                    return *arch->pool[it->second];
                if (!arch->pool.empty()) {
                    return *arch->pool[static_cast<size_t>(warp_id) %
                                       arch->pool.size()];
                }
                GNN_FATAL(
                    "trace replay: no recorded warp trace for kernel "
                    "'%s' (warp %lld) — the replay config asks for "
                    "more detail than the recording captured; "
                    "re-record with detailSampleLimit >= the replay "
                    "config's",
                    ev->name.c_str(),
                    static_cast<long long>(warp_id));
            };
            device.launch(desc);
        } else if (const auto *transfer =
                       std::get_if<TransferEvent>(&event)) {
            device.replayHostToDevice(transfer->addr, transfer->bytes,
                                      transfer->zeroFraction,
                                      transfer->tag);
        } else {
            switch (std::get<TraceMarker>(event)) {
              case TraceMarker::IterationBegin:
                // Fans out to the profiler and timeline collector
                // exactly like the live driver's mark call did.
                device.markIterationBegin();
                break;
              case TraceMarker::TimersReset:
                device.resetTimers();
                break;
              case TraceMarker::CachesFlushed:
                device.flushCaches();
                break;
              case TraceMarker::SamplingReset:
                device.resetSampling();
                break;
              case TraceMarker::BackwardBegin:
                device.markBackwardBegin();
                break;
              case TraceMarker::BackwardEnd:
                device.markBackwardEnd();
                break;
              case TraceMarker::NumMarkers:
                break;
            }
        }
    }

    result.losses = trace.header.losses;
    result.iterations = timelines.iterations();
    result.wallTimeSec = device.wallTimeSec();
    result.iterationsPerEpoch = trace.header.iterationsPerEpoch;
    result.parameterBytes = trace.header.parameterBytes;
    result.kernelLaunches = device.kernelCount();
    if (trace.header.iterations > 0) {
        result.epochTimeSec =
            result.wallTimeSec / trace.header.iterations *
            static_cast<double>(result.iterationsPerEpoch);
    }
    return result;
}

ReplayResult
replayTrace(const RecordedTrace &trace)
{
    return replayTrace(trace, trace.header.config);
}

std::vector<ReplayResult>
sweepTrace(const RecordedTrace &trace,
           const std::vector<GpuConfig> &configs)
{
    // Each replay owns its device/profiler and the trace is read-only,
    // so sweep points run concurrently on the shared pool. The sim
    // itself never touches the pool (only CPU numeric kernels do, and
    // a replay runs none), so there is no nesting to degrade.
    std::vector<ReplayResult> results(configs.size());
    ThreadPool::instance().parallelFor(
        0, static_cast<int64_t>(configs.size()), 1,
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i)
                results[static_cast<size_t>(i)] =
                    replayTrace(trace, configs[static_cast<size_t>(i)]);
        });
    return results;
}

} // namespace trace
} // namespace gnnmark
