/**
 * @file
 * Trace inspection toolkit backing `gnnmark trace info` and
 * `gnnmark trace diff`: per-op-class stream statistics, the honest
 * struct-dump size baseline the compression ratio is measured against,
 * and the report printers.
 */

#ifndef GNNMARK_TRACE_TOOLKIT_HH
#define GNNMARK_TRACE_TOOLKIT_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "sim/op_class.hh"
#include "trace/trace.hh"

namespace gnnmark {
namespace trace {

/** Stream statistics for one op class across a whole trace. */
struct OpClassTraceStats
{
    int64_t launches = 0;       ///< kernel launches of this class
    int64_t tracedWarps = 0;    ///< warps captured in detail
    uint64_t recordedInstrs = 0; ///< instructions in the recorded prefixes
    double totalInstrs = 0;     ///< with per-warp extrapolation applied
    uint64_t memLineRefs = 0;   ///< cache-line transactions referenced
    uint64_t uniqueLines = 0;   ///< distinct cache-line addresses touched
    uint64_t footprintBytes = 0; ///< sum of declared input+output ranges
};

/** Whole-trace statistics, split by op class. */
struct TraceStats
{
    std::array<OpClassTraceStats, kNumOpClasses> perClass;
    int64_t launches = 0;
    int64_t tracedWarps = 0;
    int64_t transfers = 0;
    int64_t markers = 0;
    uint64_t transferBytes = 0;
    uint64_t recordedInstrs = 0;
    uint64_t memLineRefs = 0;
    uint64_t uniqueLines = 0; ///< distinct lines across ALL classes
};

/** Walk the event stream once and aggregate per-class statistics. */
TraceStats computeTraceStats(const RecordedTrace &trace);

/**
 * Bytes a naive recorder would write for this trace: raw structs
 * (fixed-width fields, full 8-byte line addresses, uncompressed op
 * arrays) plus length-prefixed strings. This is the denominator of the
 * compression ratio `trace info` reports — an fwrite-the-structs dump,
 * not a strawman.
 */
uint64_t naiveSizeBytes(const RecordedTrace &trace);

/**
 * Print the `gnnmark trace info` report: header metadata, event
 * totals, encoded-vs-naive size, and the per-op-class stream table.
 * Pass the on-disk size as `file_size_bytes` (0 = unknown, e.g. an
 * in-memory trace; the ratio line is then computed from a fresh
 * serialization).
 */
void printTraceInfo(const RecordedTrace &trace, uint64_t file_size_bytes,
                    std::ostream &os);

/**
 * Print a side-by-side comparison of two traces' per-op-class streams
 * (launch counts, instruction volume, unique lines, footprints) — the
 * cross-workload "what does KGNNL do that STGCN doesn't" view.
 */
void printTraceDiff(const RecordedTrace &a, const RecordedTrace &b,
                    std::ostream &os);

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_TOOLKIT_HH
