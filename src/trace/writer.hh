/**
 * @file
 * Trace capture: a DeviceTraceHook that accumulates the emission
 * stream in memory, and the serializer that turns a RecordedTrace
 * into the on-disk format (see format.hh for the layout).
 *
 * Typical capture session:
 *
 *   trace::TraceRecorder recorder;
 *   RunOptions opt;
 *   opt.traceHook = &recorder;
 *   CharacterizationRunner runner(opt);
 *   WorkloadProfile profile = runner.run("STGCN");
 *   trace::RecordedTrace t =
 *       recorder.finish(trace::headerFor(opt, profile));
 *   trace::writeTraceFile("stgcn.trace", t);
 */

#ifndef GNNMARK_TRACE_WRITER_HH
#define GNNMARK_TRACE_WRITER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace_hook.hh"
#include "trace/trace.hh"

namespace gnnmark {
namespace trace {

/** Accumulates a device's emission stream into a RecordedTrace. */
class TraceRecorder : public DeviceTraceHook
{
  public:
    void onLaunch(const KernelDesc &desc,
                  std::vector<std::pair<int64_t, WarpTrace>> traced)
        override;
    void onTransfer(uint64_t addr, uint64_t bytes, double zero_fraction,
                    const std::string &tag) override;
    void onMarker(TraceMarker marker) override;

    size_t eventCount() const { return events_.size(); }

    /**
     * Stamp the run metadata and hand over the recorded stream; the
     * recorder is left empty and may record another run.
     */
    RecordedTrace finish(TraceHeader header);

  private:
    std::vector<TraceEvent> events_;
};

/** Serialize to the on-disk byte image (magic..checksum). */
std::vector<uint8_t> serializeTrace(const RecordedTrace &trace);

/** Serialize and write to `path`; throws IoError on write failure. */
void writeTraceFile(const std::string &path, const RecordedTrace &trace);

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_WRITER_HH
