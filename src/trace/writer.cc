#include "trace/writer.hh"

#include "base/io.hh"
#include "trace/format.hh"

namespace gnnmark {
namespace trace {

void
TraceRecorder::onLaunch(const KernelDesc &desc,
                        std::vector<std::pair<int64_t, WarpTrace>> traced)
{
    LaunchEvent launch;
    launch.name = desc.name;
    launch.opClass = desc.opClass;
    launch.blocks = desc.blocks;
    launch.warpsPerBlock = desc.warpsPerBlock;
    launch.codeBytes = desc.codeBytes;
    launch.aluIlp = desc.aluIlp;
    launch.loadDepFraction = desc.loadDepFraction;
    launch.irregular = desc.irregular;
    launch.outputRanges = desc.outputRanges;
    launch.inputRanges = desc.inputRanges;
    launch.warps.reserve(traced.size());
    for (auto &[warp_id, warp_trace] : traced)
        launch.warps.push_back(
            TracedWarp{warp_id, std::move(warp_trace)});
    events_.emplace_back(std::move(launch));
}

void
TraceRecorder::onTransfer(uint64_t addr, uint64_t bytes,
                          double zero_fraction, const std::string &tag)
{
    events_.emplace_back(TransferEvent{tag, addr, bytes, zero_fraction});
}

void
TraceRecorder::onMarker(TraceMarker marker)
{
    events_.emplace_back(marker);
}

RecordedTrace
TraceRecorder::finish(TraceHeader header)
{
    RecordedTrace trace;
    trace.header = std::move(header);
    trace.events = std::move(events_);
    events_.clear();
    return trace;
}

std::vector<uint8_t>
serializeTrace(const RecordedTrace &trace)
{
    ByteBuilder header;
    encodeHeader(header, trace.header);

    ByteBuilder payload;
    StringTableWriter strings;
    payload.varint(trace.events.size());
    for (const TraceEvent &event : trace.events)
        encodeEvent(payload, strings, event);

    ByteBuilder file;
    file.bytes(kTraceMagic, sizeof(kTraceMagic));
    file.u32(kTraceFormatVersion);
    file.u64(header.size());
    file.bytes(header.buffer().data(), header.size());
    file.u64(payload.size());
    file.bytes(payload.buffer().data(), payload.size());

    // Checksum covers header||payload (the bytes between the size
    // words), so any bit flip in either section is caught.
    ByteBuilder summed;
    summed.bytes(header.buffer().data(), header.size());
    summed.bytes(payload.buffer().data(), payload.size());
    file.u64(fnv1a(summed.buffer().data(), summed.size()));
    return std::move(file.buffer());
}

void
writeTraceFile(const std::string &path, const RecordedTrace &trace)
{
    writeFileBytes(path, serializeTrace(trace));
}

} // namespace trace
} // namespace gnnmark
