/**
 * @file
 * The versioned binary trace-file format (shared by writer and reader).
 *
 * File layout (all integers little-endian):
 *
 *   [8B magic "GNMKTRCE"] [u32 version]
 *   [u64 header size] [header bytes]
 *   [u64 payload size] [payload bytes]
 *   [u64 FNV-1a checksum of header||payload]
 *
 * The header encodes the TraceHeader (run metadata + the recording
 * GpuConfig, field by field in declaration order). The payload is a
 * varint event count followed by tagged events:
 *
 *   'K' launch:   kernel name via a shared string table, launch
 *                 geometry, footprint ranges as delta-encoded spans,
 *                 and the detail-simulated warps. Warp instruction
 *                 streams are run-length encoded per opcode kind
 *                 (memory ops carry their line counts inline) and the
 *                 cache-line pool is stored as zigzag-delta varints
 *                 with stride run-length compression — consecutive
 *                 equal strides (the coalesced common case) collapse
 *                 to one (delta, run) pair.
 *   'T' transfer: tag via the string table, address, bytes, sparsity.
 *   'M' marker:   one TraceMarker byte.
 *
 * Versioning policy: `kTraceFormatVersion` is bumped on ANY layout
 * change (including GpuConfig field additions, which widen the header
 * codec); readers reject other versions with IoError::Kind::BadVersion
 * rather than guessing. Doubles are stored bit-exactly so a replayed
 * run is bitwise-reproducible.
 */

#ifndef GNNMARK_TRACE_FORMAT_HH
#define GNNMARK_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/io.hh"
#include "trace/trace.hh"

namespace gnnmark {
namespace trace {

/** File magic. */
constexpr char kTraceMagic[8] = {'G', 'N', 'M', 'K', 'T', 'R', 'C', 'E'};

/**
 * On-disk layout version; see the versioning policy above.
 * v2: BackwardBegin/BackwardEnd timeline markers (marker byte range
 * widened), recorded for the DDP overlap model.
 */
constexpr uint32_t kTraceFormatVersion = 2;

/**
 * Interning string table: repeated kernel names / transfer tags are
 * written once and referenced by index afterwards. The codec is
 * self-describing — an id equal to the current table size introduces
 * a new entry whose bytes follow inline.
 */
class StringTableWriter
{
  public:
    void put(ByteBuilder &out, const std::string &s);

  private:
    std::unordered_map<std::string, uint64_t> ids_;
};

class StringTableReader
{
  public:
    std::string get(ByteCursor &in);

  private:
    std::vector<std::string> entries_;
};

/** @{ Field-by-field GpuConfig codec (header section). */
void encodeGpuConfig(ByteBuilder &out, const GpuConfig &config);
GpuConfig decodeGpuConfig(ByteCursor &in);
/** @} */

/** @{ Footprint span lists, delta-encoded against the previous span. */
void encodeRanges(ByteBuilder &out,
                  const std::vector<std::pair<uint64_t, uint64_t>> &ranges);
std::vector<std::pair<uint64_t, uint64_t>> decodeRanges(ByteCursor &in);
/** @} */

/** @{ One warp's recorded trace (ops RLE + line pool stride RLE). */
void encodeWarpTrace(ByteBuilder &out, const WarpTrace &trace);
WarpTrace decodeWarpTrace(ByteCursor &in);
/** @} */

/** @{ Header and event codecs used by writer.cc / reader.cc. */
void encodeHeader(ByteBuilder &out, const TraceHeader &header);
TraceHeader decodeHeader(ByteCursor &in);
void encodeEvent(ByteBuilder &out, StringTableWriter &strings,
                 const TraceEvent &event);
TraceEvent decodeEvent(ByteCursor &in, StringTableReader &strings);
/** @} */

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_FORMAT_HH
