/**
 * @file
 * Trace replay: drives a recorded stream straight through a fresh
 * GpuDevice (cache models, warp pipeline, stall attribution, PCIe
 * timing) without touching the tensor/op/nn/model stack.
 *
 * On the recording GpuConfig the replay is bitwise-identical to the
 * live run: the same warps are requested in the same order, the same
 * footprints install into the L2, the device RNG is reseeded from the
 * header, so every profiler aggregate matches exactly. On a different
 * config the replay prices the what-if: cache models, pipeline and
 * bandwidth bounds all resize, while warp selection falls back to the
 * recorded sample when the new geometry asks for warps the recording
 * never simulated (exact id first, then the kernel's warp archive by
 * id, then by index modulo — the standard sampled-trace approximation).
 */

#ifndef GNNMARK_TRACE_REPLAYER_HH
#define GNNMARK_TRACE_REPLAYER_HH

#include <string>
#include <vector>

#include "profiler/profiler.hh"
#include "sim/gpu_config.hh"
#include "sim/stream.hh"
#include "trace/trace.hh"

namespace gnnmark {
namespace trace {

/** Everything a characterization report needs, rebuilt from a trace. */
struct ReplayResult
{
    std::string workload;
    Profiler profiler;
    std::vector<float> losses; ///< carried over from the header
    double wallTimeSec = 0;
    double epochTimeSec = 0;
    int64_t iterationsPerEpoch = 0;
    double parameterBytes = 0;
    int64_t kernelLaunches = 0; ///< device launches after the reset
    /**
     * Per-iteration kernel timelines with backward windows, rebuilt
     * from the recorded phase markers (empty for traces recorded
     * before format v2) — the input the DDP overlap model needs to
     * price compute–comm overlap offline.
     */
    std::vector<IterationTimeline> iterations;
};

/**
 * Replay `trace` on `config`. Extra observers (e.g. a chrome-trace
 * exporter) receive every kernel/transfer alongside the profiler.
 */
ReplayResult
replayTrace(const RecordedTrace &trace, const GpuConfig &config,
            const std::vector<KernelObserver *> &extra_observers = {});

/** Replay on the recording configuration (the fidelity case). */
ReplayResult replayTrace(const RecordedTrace &trace);

/**
 * One replay per config, results in config order — the what-if sweep
 * primitive. Points replay concurrently on the process thread pool
 * (each owns its device; the trace is shared read-only), which is
 * where the bulk of the sweep speedup over live re-training comes
 * from: a live run serialises on the tensor math, a sweep of replays
 * saturates the cores with cache-model work.
 */
std::vector<ReplayResult>
sweepTrace(const RecordedTrace &trace,
           const std::vector<GpuConfig> &configs);

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_REPLAYER_HH
