#include "trace/reader.hh"

#include <cstring>

#include "base/io.hh"
#include "trace/format.hh"

namespace gnnmark {
namespace trace {

RecordedTrace
parseTrace(const std::vector<uint8_t> &bytes, const std::string &context)
{
    ByteCursor file(bytes.data(), bytes.size(), context);

    char magic[sizeof(kTraceMagic)];
    file.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
        throw IoError(IoError::Kind::BadMagic,
                      context + ": not a GNNMark kernel trace");
    }
    const uint32_t version = file.u32();
    if (version != kTraceFormatVersion) {
        throw IoError(IoError::Kind::BadVersion,
                      context + ": trace format version " +
                          std::to_string(version) +
                          ", this build reads version " +
                          std::to_string(kTraceFormatVersion));
    }

    const uint64_t header_size = file.u64();
    if (header_size > file.remaining())
        file.fail(IoError::Kind::ShortRead, "header overruns the file");
    const size_t header_at = file.pos();
    std::vector<uint8_t> skip(static_cast<size_t>(header_size));
    file.bytes(skip.data(), skip.size());

    const uint64_t payload_size = file.u64();
    if (payload_size > file.remaining())
        file.fail(IoError::Kind::ShortRead, "payload overruns the file");
    const size_t payload_at = file.pos();
    skip.resize(static_cast<size_t>(payload_size));
    file.bytes(skip.data(), skip.size());

    const uint64_t stored_checksum = file.u64();
    if (!file.exhausted()) {
        throw IoError(IoError::Kind::TrailingBytes,
                      context + ": trailing bytes after the trace image");
    }

    // Verify integrity before decoding anything: header || payload.
    ByteBuilder summed;
    summed.bytes(bytes.data() + header_at,
                 static_cast<size_t>(header_size));
    summed.bytes(bytes.data() + payload_at,
                 static_cast<size_t>(payload_size));
    if (fnv1a(summed.buffer().data(), summed.size()) != stored_checksum) {
        throw IoError(IoError::Kind::Corrupt,
                      context + ": checksum mismatch — the trace is "
                                "corrupt");
    }

    RecordedTrace trace;
    {
        ByteCursor header(bytes.data() + header_at,
                          static_cast<size_t>(header_size),
                          context + " (header)");
        trace.header = decodeHeader(header);
        if (!header.exhausted()) {
            header.fail(IoError::Kind::Corrupt,
                        "unread bytes at the end of the header");
        }
    }
    {
        ByteCursor payload(bytes.data() + payload_at,
                           static_cast<size_t>(payload_size),
                           context + " (payload)");
        StringTableReader strings;
        const uint64_t events = payload.varint();
        if (events > (1u << 28))
            payload.fail(IoError::Kind::Corrupt,
                         "implausible event count");
        trace.events.reserve(static_cast<size_t>(events));
        for (uint64_t i = 0; i < events; ++i)
            trace.events.push_back(decodeEvent(payload, strings));
        if (!payload.exhausted()) {
            payload.fail(IoError::Kind::Corrupt,
                         "unread bytes after the last event");
        }
    }
    return trace;
}

RecordedTrace
readTraceFile(const std::string &path)
{
    return parseTrace(readFileBytes(path), "trace file '" + path + "'");
}

} // namespace trace
} // namespace gnnmark
