#include "trace/toolkit.hh"

#include <unordered_set>

#include "base/string_utils.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "trace/format.hh"
#include "trace/writer.hh"

namespace gnnmark {
namespace trace {

namespace {

uint64_t
rangeBytes(const std::vector<std::pair<uint64_t, uint64_t>> &ranges)
{
    uint64_t total = 0;
    for (const auto &[addr, bytes] : ranges)
        total += bytes;
    return total;
}

} // namespace

TraceStats
computeTraceStats(const RecordedTrace &trace)
{
    TraceStats stats;
    std::array<std::unordered_set<uint64_t>, kNumOpClasses> class_lines;
    std::unordered_set<uint64_t> all_lines;

    for (const TraceEvent &event : trace.events) {
        if (const auto *launch = std::get_if<LaunchEvent>(&event)) {
            auto &cls =
                stats.perClass[static_cast<size_t>(launch->opClass)];
            auto &lines =
                class_lines[static_cast<size_t>(launch->opClass)];
            cls.launches += 1;
            stats.launches += 1;
            cls.footprintBytes += rangeBytes(launch->outputRanges) +
                                  rangeBytes(launch->inputRanges);
            for (const TracedWarp &warp : launch->warps) {
                cls.tracedWarps += 1;
                stats.tracedWarps += 1;
                cls.recordedInstrs += warp.trace.recordedInstrs;
                stats.recordedInstrs += warp.trace.recordedInstrs;
                cls.totalInstrs +=
                    static_cast<double>(warp.trace.counts.total());
                cls.memLineRefs += warp.trace.lines.size();
                stats.memLineRefs += warp.trace.lines.size();
                for (uint64_t line : warp.trace.lines) {
                    lines.insert(line);
                    all_lines.insert(line);
                }
            }
        } else if (const auto *transfer =
                       std::get_if<TransferEvent>(&event)) {
            stats.transfers += 1;
            stats.transferBytes += transfer->bytes;
        } else {
            stats.markers += 1;
        }
    }

    for (size_t c = 0; c < kNumOpClasses; ++c)
        stats.perClass[c].uniqueLines = class_lines[c].size();
    stats.uniqueLines = all_lines.size();
    return stats;
}

uint64_t
naiveSizeBytes(const RecordedTrace &trace)
{
    // What a straightforward recorder would fwrite: the structs as
    // laid out in memory, strings and vectors length-prefixed with a
    // u64. No varints, no deltas, no run-length coding, no interning.
    auto str_bytes = [](const std::string &s) {
        return sizeof(uint64_t) + s.size();
    };
    uint64_t total = sizeof(kTraceMagic) + sizeof(uint32_t); // magic+ver
    total += str_bytes(trace.header.workload);
    total += sizeof(TraceHeader::seed) + sizeof(TraceHeader::scale) +
             sizeof(TraceHeader::iterations) +
             sizeof(TraceHeader::warmupIterations) +
             sizeof(TraceHeader::inferenceOnly) +
             sizeof(TraceHeader::iterationsPerEpoch) +
             sizeof(TraceHeader::parameterBytes);
    total += sizeof(uint64_t) + trace.header.losses.size() * sizeof(float);
    total += sizeof(GpuConfig);

    total += sizeof(uint64_t); // event count
    for (const TraceEvent &event : trace.events) {
        total += 1; // event tag
        if (const auto *launch = std::get_if<LaunchEvent>(&event)) {
            total += str_bytes(launch->name);
            total += sizeof(launch->opClass) + sizeof(launch->blocks) +
                     sizeof(launch->warpsPerBlock) +
                     sizeof(launch->codeBytes) + sizeof(launch->aluIlp) +
                     sizeof(launch->loadDepFraction) +
                     sizeof(launch->irregular);
            total += sizeof(uint64_t) +
                     launch->outputRanges.size() * 2 * sizeof(uint64_t);
            total += sizeof(uint64_t) +
                     launch->inputRanges.size() * 2 * sizeof(uint64_t);
            total += sizeof(uint64_t); // warp count
            for (const TracedWarp &warp : launch->warps) {
                total += sizeof(warp.warpId);
                total += sizeof(TraceCounts);
                total += sizeof(warp.trace.recordedInstrs);
                total += sizeof(uint64_t) +
                         warp.trace.ops.size() * sizeof(TraceOp);
                total += sizeof(uint64_t) +
                         warp.trace.lines.size() * sizeof(uint64_t);
            }
        } else if (const auto *transfer =
                       std::get_if<TransferEvent>(&event)) {
            total += str_bytes(transfer->tag);
            total += sizeof(transfer->addr) + sizeof(transfer->bytes) +
                     sizeof(transfer->zeroFraction);
        }
        // Markers: the tag byte already counted.
    }
    total += sizeof(uint64_t); // checksum
    return total;
}

void
printTraceInfo(const RecordedTrace &trace, uint64_t file_size_bytes,
               std::ostream &os)
{
    const TraceStats stats = computeTraceStats(trace);
    const TraceHeader &h = trace.header;

    os << "trace: " << h.workload << " (seed " << h.seed << ", scale "
       << strfmt("%g", h.scale) << ")\n";
    os << strfmt("run: %d measured + %d warmup iterations%s, "
                 "%lld iterations/epoch\n",
                 h.iterations, h.warmupIterations,
                 h.inferenceOnly ? " (inference only)" : "",
                 static_cast<long long>(h.iterationsPerEpoch));
    os << strfmt("recorded on: %d SMs, L1 %s/SM, L2 %s, %d B lines, "
                 "detail limit %d\n",
                 h.config.numSms,
                 formatBytes(
                     static_cast<double>(h.config.l1SizeBytes)).c_str(),
                 formatBytes(
                     static_cast<double>(h.config.l2SizeBytes)).c_str(),
                 h.config.cacheLineBytes, h.config.detailSampleLimit);

    if (trace.events.empty()) {
        os << "warning: trace holds no events\n";
        return;
    }
    if (stats.launches == 0)
        os << "warning: trace holds no kernel launches\n";

    os << strfmt("events: %lld launches, %lld transfers (%s), "
                 "%lld markers\n",
                 static_cast<long long>(stats.launches),
                 static_cast<long long>(stats.transfers),
                 formatBytes(
                     static_cast<double>(stats.transferBytes)).c_str(),
                 static_cast<long long>(stats.markers));
    os << strfmt("warps: %lld traced in detail, %llu recorded instrs, "
                 "%llu line refs (%llu unique lines, %s touched)\n",
                 static_cast<long long>(stats.tracedWarps),
                 static_cast<unsigned long long>(stats.recordedInstrs),
                 static_cast<unsigned long long>(stats.memLineRefs),
                 static_cast<unsigned long long>(stats.uniqueLines),
                 formatBytes(static_cast<double>(
                     stats.uniqueLines *
                     static_cast<uint64_t>(
                         h.config.cacheLineBytes))).c_str());

    uint64_t encoded = file_size_bytes;
    if (encoded == 0)
        encoded = serializeTrace(trace).size();
    const uint64_t naive = naiveSizeBytes(trace);
    os << strfmt("size: %s encoded, %s as raw structs (%.1fx smaller)\n",
                 formatBytes(static_cast<double>(encoded)).c_str(),
                 formatBytes(static_cast<double>(naive)).c_str(),
                 encoded > 0
                     ? static_cast<double>(naive) /
                           static_cast<double>(encoded)
                     : 0.0);

    if (stats.launches == 0)
        return;
    os << "\n";
    TablePrinter table("Per-op-class streams");
    table.setHeader({"op class", "kernels", "warps", "rec instrs",
                     "line refs", "uniq lines", "footprint"});
    for (OpClass c : allOpClasses()) {
        const auto &cls = stats.perClass[static_cast<size_t>(c)];
        if (cls.launches == 0)
            continue;
        table.addRow(
            {opClassName(c),
             strfmt("%lld", static_cast<long long>(cls.launches)),
             strfmt("%lld", static_cast<long long>(cls.tracedWarps)),
             formatSi(static_cast<double>(cls.recordedInstrs)),
             formatSi(static_cast<double>(cls.memLineRefs)),
             formatSi(static_cast<double>(cls.uniqueLines)),
             formatBytes(static_cast<double>(cls.footprintBytes))});
    }
    table.print(os);
}

void
printTraceDiff(const RecordedTrace &a, const RecordedTrace &b,
               std::ostream &os)
{
    const TraceStats sa = computeTraceStats(a);
    const TraceStats sb = computeTraceStats(b);

    os << "A: " << a.header.workload
       << strfmt(" (seed %llu, scale %g, %lld launches)\n",
                 static_cast<unsigned long long>(a.header.seed),
                 a.header.scale, static_cast<long long>(sa.launches));
    os << "B: " << b.header.workload
       << strfmt(" (seed %llu, scale %g, %lld launches)\n",
                 static_cast<unsigned long long>(b.header.seed),
                 b.header.scale, static_cast<long long>(sb.launches));
    os << "\n";

    TablePrinter table("Per-op-class stream diff (A vs B)");
    table.setHeader({"op class", "kernels A", "kernels B", "instrs A",
                     "instrs B", "uniq lines A", "uniq lines B",
                     "footprint A", "footprint B"});
    for (OpClass c : allOpClasses()) {
        const auto &ca = sa.perClass[static_cast<size_t>(c)];
        const auto &cb = sb.perClass[static_cast<size_t>(c)];
        if (ca.launches == 0 && cb.launches == 0)
            continue;
        table.addRow(
            {opClassName(c),
             strfmt("%lld", static_cast<long long>(ca.launches)),
             strfmt("%lld", static_cast<long long>(cb.launches)),
             formatSi(ca.totalInstrs), formatSi(cb.totalInstrs),
             formatSi(static_cast<double>(ca.uniqueLines)),
             formatSi(static_cast<double>(cb.uniqueLines)),
             formatBytes(static_cast<double>(ca.footprintBytes)),
             formatBytes(static_cast<double>(cb.footprintBytes))});
    }
    table.print(os);

    os << "\n";
    os << strfmt("transfers: %lld (%s) vs %lld (%s)\n",
                 static_cast<long long>(sa.transfers),
                 formatBytes(
                     static_cast<double>(sa.transferBytes)).c_str(),
                 static_cast<long long>(sb.transfers),
                 formatBytes(
                     static_cast<double>(sb.transferBytes)).c_str());
}

} // namespace trace
} // namespace gnnmark
