/**
 * @file
 * Trace loading and validation. Malformed input of any shape —
 * truncation, bit flips, wrong magic, future versions, trailing
 * garbage — surfaces as a typed IoError, never an assert: a trace
 * file is external input, not internal state.
 */

#ifndef GNNMARK_TRACE_READER_HH
#define GNNMARK_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace gnnmark {
namespace trace {

/** Parse a serialized byte image; throws IoError on any defect. */
RecordedTrace parseTrace(const std::vector<uint8_t> &bytes,
                         const std::string &context);

/** Read and validate a trace file; throws IoError. */
RecordedTrace readTraceFile(const std::string &path);

} // namespace trace
} // namespace gnnmark

#endif // GNNMARK_TRACE_READER_HH
