#include "trace/format.hh"

namespace gnnmark {
namespace trace {

namespace {

/** Highest valid InstrKind byte (the enum has no sentinel). */
constexpr uint8_t kMaxInstrKind =
    static_cast<uint8_t>(InstrKind::Barrier);

bool
isMemKind(InstrKind kind)
{
    return kind == InstrKind::Load || kind == InstrKind::Store ||
           kind == InstrKind::Atomic;
}

/** Event tags in the payload stream. */
constexpr uint8_t kTagLaunch = 'K';
constexpr uint8_t kTagTransfer = 'T';
constexpr uint8_t kTagMarker = 'M';

} // namespace

void
StringTableWriter::put(ByteBuilder &out, const std::string &s)
{
    auto it = ids_.find(s);
    if (it != ids_.end()) {
        out.varint(it->second);
        return;
    }
    const uint64_t id = ids_.size();
    ids_.emplace(s, id);
    out.varint(id);
    out.str(s);
}

std::string
StringTableReader::get(ByteCursor &in)
{
    const uint64_t id = in.varint();
    if (id < entries_.size())
        return entries_[id];
    if (id != entries_.size())
        in.fail(IoError::Kind::Corrupt, "string table id out of order");
    entries_.push_back(in.str());
    return entries_.back();
}

void
encodeGpuConfig(ByteBuilder &out, const GpuConfig &c)
{
    out.svarint(c.numSms);
    out.svarint(c.warpSize);
    out.svarint(c.maxWarpsPerSm);
    out.svarint(c.maxBlocksPerSm);
    out.svarint(c.issueWidth);
    out.svarint(c.fp32PortsPerCycle);
    out.svarint(c.int32PortsPerCycle);
    out.svarint(c.lsuPortsPerCycle);
    out.svarint(c.sfuPortsPerCycle);
    out.f64(c.clockGhz);
    out.varint(c.l1SizeBytes);
    out.svarint(c.l1Assoc);
    out.varint(c.l2SizeBytes);
    out.svarint(c.l2Assoc);
    out.svarint(c.cacheLineBytes);
    out.varint(c.l0ISizeBytes);
    out.svarint(c.l0IAssoc);
    out.svarint(c.instrBytes);
    out.svarint(c.ifetchMissCycles);
    out.varint(c.l1ISizeBytes);
    out.svarint(c.ifetchColdCycles);
    out.svarint(c.aluLatency);
    out.svarint(c.sfuLatency);
    out.svarint(c.sharedLatency);
    out.svarint(c.l1HitLatency);
    out.svarint(c.l2HitLatency);
    out.svarint(c.dramLatency);
    out.svarint(c.atomicLatency);
    out.svarint(c.barrierCycles);
    out.svarint(c.divergenceReplayCycles);
    out.f64(c.dramBandwidth);
    out.f64(c.pcieBandwidth);
    out.f64(c.pcieLatencySec);
    out.f64(c.launchOverheadSec);
    out.f64(c.kernelBaseTimeSec);
    out.svarint(c.elemBytes);
    out.svarint(c.detailSampleLimit);
    out.svarint(c.maxTraceInstrs);
    out.svarint(c.simSmCount);
    out.u8(c.l1BypassIrregular ? 1 : 0);
    out.u8(c.h2dCompression ? 1 : 0);
    out.f64(c.aluIlp);
    out.f64(c.loadDepFraction);
}

GpuConfig
decodeGpuConfig(ByteCursor &in)
{
    GpuConfig c;
    c.numSms = static_cast<int>(in.svarint());
    c.warpSize = static_cast<int>(in.svarint());
    c.maxWarpsPerSm = static_cast<int>(in.svarint());
    c.maxBlocksPerSm = static_cast<int>(in.svarint());
    c.issueWidth = static_cast<int>(in.svarint());
    c.fp32PortsPerCycle = static_cast<int>(in.svarint());
    c.int32PortsPerCycle = static_cast<int>(in.svarint());
    c.lsuPortsPerCycle = static_cast<int>(in.svarint());
    c.sfuPortsPerCycle = static_cast<int>(in.svarint());
    c.clockGhz = in.f64();
    c.l1SizeBytes = in.varint();
    c.l1Assoc = static_cast<int>(in.svarint());
    c.l2SizeBytes = in.varint();
    c.l2Assoc = static_cast<int>(in.svarint());
    c.cacheLineBytes = static_cast<int>(in.svarint());
    c.l0ISizeBytes = in.varint();
    c.l0IAssoc = static_cast<int>(in.svarint());
    c.instrBytes = static_cast<int>(in.svarint());
    c.ifetchMissCycles = static_cast<int>(in.svarint());
    c.l1ISizeBytes = in.varint();
    c.ifetchColdCycles = static_cast<int>(in.svarint());
    c.aluLatency = static_cast<int>(in.svarint());
    c.sfuLatency = static_cast<int>(in.svarint());
    c.sharedLatency = static_cast<int>(in.svarint());
    c.l1HitLatency = static_cast<int>(in.svarint());
    c.l2HitLatency = static_cast<int>(in.svarint());
    c.dramLatency = static_cast<int>(in.svarint());
    c.atomicLatency = static_cast<int>(in.svarint());
    c.barrierCycles = static_cast<int>(in.svarint());
    c.divergenceReplayCycles = static_cast<int>(in.svarint());
    c.dramBandwidth = in.f64();
    c.pcieBandwidth = in.f64();
    c.pcieLatencySec = in.f64();
    c.launchOverheadSec = in.f64();
    c.kernelBaseTimeSec = in.f64();
    c.elemBytes = static_cast<int>(in.svarint());
    c.detailSampleLimit = static_cast<int>(in.svarint());
    c.maxTraceInstrs = static_cast<int>(in.svarint());
    c.simSmCount = static_cast<int>(in.svarint());
    c.l1BypassIrregular = in.u8() != 0;
    c.h2dCompression = in.u8() != 0;
    c.aluIlp = in.f64();
    c.loadDepFraction = in.f64();
    return c;
}

void
encodeRanges(ByteBuilder &out,
             const std::vector<std::pair<uint64_t, uint64_t>> &ranges)
{
    out.varint(ranges.size());
    uint64_t prev = 0;
    for (const auto &[addr, bytes] : ranges) {
        out.svarint(static_cast<int64_t>(addr - prev));
        out.varint(bytes);
        prev = addr + bytes;
    }
}

std::vector<std::pair<uint64_t, uint64_t>>
decodeRanges(ByteCursor &in)
{
    const uint64_t n = in.varint();
    if (n > (1u << 24))
        in.fail(IoError::Kind::Corrupt, "implausible range count");
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    ranges.reserve(static_cast<size_t>(n));
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t addr =
            prev + static_cast<uint64_t>(in.svarint());
        const uint64_t bytes = in.varint();
        ranges.emplace_back(addr, bytes);
        prev = addr + bytes;
    }
    return ranges;
}

void
encodeWarpTrace(ByteBuilder &out, const WarpTrace &trace)
{
    const TraceCounts &c = trace.counts;
    out.varint(c.fp32);
    out.varint(c.int32);
    out.varint(c.misc);
    out.varint(c.loads);
    out.varint(c.stores);
    out.f64(c.flops);
    out.f64(c.intOps);
    out.varint(trace.recordedInstrs);

    // Opcode stream: memory ops carry line counts inline; everything
    // else collapses runs of one kind into a single (kind, run) pair.
    out.varint(trace.ops.size());
    for (size_t i = 0; i < trace.ops.size();) {
        const TraceOp &op = trace.ops[i];
        out.u8(static_cast<uint8_t>(op.kind));
        if (isMemKind(op.kind)) {
            out.varint(op.lineCount);
            out.varint(op.minLines);
            ++i;
        } else {
            size_t run = 1;
            while (i + run < trace.ops.size() &&
                   trace.ops[i + run].kind == op.kind) {
                ++run;
            }
            out.varint(run);
            i += run;
        }
    }

    // Line pool: zigzag deltas with stride run-length compression.
    out.varint(trace.lines.size());
    uint64_t prev = 0;
    for (size_t i = 0; i < trace.lines.size();) {
        const int64_t delta =
            static_cast<int64_t>(trace.lines[i] - prev);
        size_t run = 1;
        while (i + run < trace.lines.size() &&
               static_cast<int64_t>(trace.lines[i + run] -
                                    trace.lines[i + run - 1]) == delta) {
            ++run;
        }
        out.svarint(delta);
        out.varint(run);
        prev = trace.lines[i + run - 1];
        i += run;
    }
}

WarpTrace
decodeWarpTrace(ByteCursor &in)
{
    WarpTrace trace;
    TraceCounts &c = trace.counts;
    c.fp32 = in.varint();
    c.int32 = in.varint();
    c.misc = in.varint();
    c.loads = in.varint();
    c.stores = in.varint();
    c.flops = in.f64();
    c.intOps = in.f64();
    trace.recordedInstrs = in.varint();

    const uint64_t op_count = in.varint();
    if (op_count > (1u << 26))
        in.fail(IoError::Kind::Corrupt, "implausible op count");
    trace.ops.reserve(static_cast<size_t>(op_count));
    uint32_t line_begin = 0;
    while (trace.ops.size() < op_count) {
        const uint8_t kind_byte = in.u8();
        if (kind_byte > kMaxInstrKind)
            in.fail(IoError::Kind::Corrupt, "invalid instruction kind");
        const InstrKind kind = static_cast<InstrKind>(kind_byte);
        if (isMemKind(kind)) {
            const uint64_t line_count = in.varint();
            const uint64_t min_lines = in.varint();
            if (line_count > UINT16_MAX || min_lines > UINT16_MAX)
                in.fail(IoError::Kind::Corrupt, "line count overflow");
            TraceOp op;
            op.kind = kind;
            op.lineCount = static_cast<uint16_t>(line_count);
            op.minLines = static_cast<uint16_t>(min_lines);
            op.lineBegin = line_begin;
            line_begin += op.lineCount;
            trace.ops.push_back(op);
        } else {
            const uint64_t run = in.varint();
            if (run == 0 || run > op_count - trace.ops.size())
                in.fail(IoError::Kind::Corrupt, "invalid opcode run");
            for (uint64_t r = 0; r < run; ++r)
                trace.ops.push_back(TraceOp{kind, 0, 0, 0});
        }
    }

    const uint64_t line_count = in.varint();
    if (line_count != line_begin) {
        in.fail(IoError::Kind::Corrupt,
                "line pool size disagrees with the opcode stream");
    }
    trace.lines.reserve(static_cast<size_t>(line_count));
    uint64_t prev = 0;
    while (trace.lines.size() < line_count) {
        const int64_t delta = in.svarint();
        const uint64_t run = in.varint();
        if (run == 0 || run > line_count - trace.lines.size())
            in.fail(IoError::Kind::Corrupt, "invalid stride run");
        for (uint64_t r = 0; r < run; ++r) {
            prev += static_cast<uint64_t>(delta);
            trace.lines.push_back(prev);
        }
    }
    return trace;
}

void
encodeHeader(ByteBuilder &out, const TraceHeader &h)
{
    out.str(h.workload);
    out.u64(h.seed);
    out.f64(h.scale);
    out.svarint(h.iterations);
    out.svarint(h.warmupIterations);
    out.u8(h.inferenceOnly ? 1 : 0);
    out.svarint(h.iterationsPerEpoch);
    out.f64(h.parameterBytes);
    out.varint(h.losses.size());
    for (float loss : h.losses)
        out.f32(loss);
    encodeGpuConfig(out, h.config);
}

TraceHeader
decodeHeader(ByteCursor &in)
{
    TraceHeader h;
    h.workload = in.str();
    h.seed = in.u64();
    h.scale = in.f64();
    h.iterations = static_cast<int32_t>(in.svarint());
    h.warmupIterations = static_cast<int32_t>(in.svarint());
    h.inferenceOnly = in.u8() != 0;
    h.iterationsPerEpoch = in.svarint();
    h.parameterBytes = in.f64();
    const uint64_t losses = in.varint();
    if (losses > (1u << 24))
        in.fail(IoError::Kind::Corrupt, "implausible loss count");
    h.losses.reserve(static_cast<size_t>(losses));
    for (uint64_t i = 0; i < losses; ++i)
        h.losses.push_back(in.f32());
    h.config = decodeGpuConfig(in);
    return h;
}

void
encodeEvent(ByteBuilder &out, StringTableWriter &strings,
            const TraceEvent &event)
{
    if (const auto *launch = std::get_if<LaunchEvent>(&event)) {
        out.u8(kTagLaunch);
        strings.put(out, launch->name);
        out.u8(static_cast<uint8_t>(launch->opClass));
        out.varint(static_cast<uint64_t>(launch->blocks));
        out.varint(static_cast<uint64_t>(launch->warpsPerBlock));
        out.varint(static_cast<uint64_t>(launch->codeBytes));
        out.f64(launch->aluIlp);
        out.f64(launch->loadDepFraction);
        out.u8(launch->irregular ? 1 : 0);
        encodeRanges(out, launch->outputRanges);
        encodeRanges(out, launch->inputRanges);
        out.varint(launch->warps.size());
        int64_t prev_id = 0;
        for (const TracedWarp &warp : launch->warps) {
            out.svarint(warp.warpId - prev_id);
            prev_id = warp.warpId;
            encodeWarpTrace(out, warp.trace);
        }
        return;
    }
    if (const auto *transfer = std::get_if<TransferEvent>(&event)) {
        out.u8(kTagTransfer);
        strings.put(out, transfer->tag);
        out.varint(transfer->addr);
        out.varint(transfer->bytes);
        out.f64(transfer->zeroFraction);
        return;
    }
    out.u8(kTagMarker);
    out.u8(static_cast<uint8_t>(std::get<TraceMarker>(event)));
}

TraceEvent
decodeEvent(ByteCursor &in, StringTableReader &strings)
{
    const uint8_t tag = in.u8();
    if (tag == kTagLaunch) {
        LaunchEvent launch;
        launch.name = strings.get(in);
        const uint8_t op_class = in.u8();
        if (op_class >= kNumOpClasses)
            in.fail(IoError::Kind::Corrupt, "invalid op class");
        launch.opClass = static_cast<OpClass>(op_class);
        launch.blocks = static_cast<int64_t>(in.varint());
        launch.warpsPerBlock = static_cast<int>(in.varint());
        launch.codeBytes = static_cast<int>(in.varint());
        launch.aluIlp = in.f64();
        launch.loadDepFraction = in.f64();
        launch.irregular = in.u8() != 0;
        launch.outputRanges = decodeRanges(in);
        launch.inputRanges = decodeRanges(in);
        if (launch.blocks < 1 || launch.warpsPerBlock < 1)
            in.fail(IoError::Kind::Corrupt, "invalid launch geometry");
        const uint64_t warps = in.varint();
        if (warps > (1u << 24))
            in.fail(IoError::Kind::Corrupt, "implausible warp count");
        launch.warps.reserve(static_cast<size_t>(warps));
        int64_t prev_id = 0;
        for (uint64_t i = 0; i < warps; ++i) {
            TracedWarp warp;
            warp.warpId = prev_id + in.svarint();
            prev_id = warp.warpId;
            warp.trace = decodeWarpTrace(in);
            launch.warps.push_back(std::move(warp));
        }
        return launch;
    }
    if (tag == kTagTransfer) {
        TransferEvent transfer;
        transfer.tag = strings.get(in);
        transfer.addr = in.varint();
        transfer.bytes = in.varint();
        transfer.zeroFraction = in.f64();
        return transfer;
    }
    if (tag == kTagMarker) {
        const uint8_t marker = in.u8();
        if (marker >= static_cast<uint8_t>(TraceMarker::NumMarkers))
            in.fail(IoError::Kind::Corrupt, "invalid marker");
        return static_cast<TraceMarker>(marker);
    }
    in.fail(IoError::Kind::Corrupt, "unknown event tag");
}

} // namespace trace
} // namespace gnnmark
