/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style tables and figure series, plus a CSV writer for plotting.
 */

#ifndef GNNMARK_BASE_TABLE_HH
#define GNNMARK_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gnnmark {

/**
 * Accumulates rows of strings and renders an aligned ASCII table.
 *
 * Numeric-looking cells are right-aligned; everything else is
 * left-aligned. The first row added via setHeader() is underlined.
 */
class TablePrinter
{
  public:
    /** Optional table title printed above the header. */
    explicit TablePrinter(std::string title = "");

    /** Set the column headers. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; its width may not exceed the header width. */
    void addRow(std::vector<std::string> row);

    /** Render to the stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gnnmark

#endif // GNNMARK_BASE_TABLE_HH
