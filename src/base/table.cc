#include "base/table.hh"

#include <algorithm>
#include <cctype>
#include <iostream>

#include "base/logging.hh"
#include "base/string_utils.hh"

namespace gnnmark {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
            c != 'x')
            return false;
    }
    return true;
}

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    GNN_ASSERT(header_.empty() || row.size() <= header_.size(),
               "row wider than header (%zu > %zu)", row.size(),
               header_.size());
    rows_.push_back(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &row, bool align_num) {
        for (size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            bool right = align_num && looksNumeric(cell);
            os << (right ? padLeft(cell, widths[c])
                         : padRight(cell, widths[c]));
            if (c + 1 < ncols)
                os << "  ";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    if (!header_.empty()) {
        emit(header_, false);
        size_t total = 0;
        for (size_t c = 0; c < ncols; ++c)
            total += widths[c] + (c + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r, true);
}

void
TablePrinter::print() const
{
    print(std::cout);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << ",";
            os << csvQuote(row[c]);
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace gnnmark
