/**
 * @file
 * Typed file-I/O error handling and bounds-checked binary codecs,
 * shared by every on-disk format in the suite (checkpoints, kernel
 * traces).
 *
 * Readers of external files must never assert on malformed input: a
 * truncated or corrupt file is a user-environment problem, not a bug
 * in this library, so it surfaces as an IoError the caller can catch
 * and report. ByteCursor/ByteBuilder give both formats one audited
 * implementation of the fixed-width, varint and zigzag primitives.
 */

#ifndef GNNMARK_BASE_IO_HH
#define GNNMARK_BASE_IO_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gnnmark {

/** A failed file read/write/validate, with a machine-checkable kind. */
class IoError : public std::runtime_error
{
  public:
    enum class Kind
    {
        OpenFailed,    ///< cannot open the file at all
        ShortRead,     ///< file ends before the format says it should
        ShortWrite,    ///< write or close failed mid-stream
        BadMagic,      ///< not a file of the expected format
        BadVersion,    ///< right format, unreadable layout version
        Corrupt,       ///< checksum mismatch or impossible field value
        TrailingBytes, ///< well-formed image followed by garbage
    };

    IoError(Kind kind, const std::string &message);

    Kind kind() const { return kind_; }

    /** Stable lower-case name for messages/tests, e.g. "short-read". */
    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/** FNV-1a over a byte span — the integrity check both formats use. */
uint64_t fnv1a(const uint8_t *data, size_t n);

/** Read a whole file; throws IoError(OpenFailed/ShortRead). */
std::vector<uint8_t> readFileBytes(const std::string &path);

/** Write a whole file; throws IoError(OpenFailed/ShortWrite). */
void writeFileBytes(const std::string &path,
                    const std::vector<uint8_t> &bytes);

/**
 * Bounds-checked cursor over an in-memory byte image. Every take
 * method throws IoError(ShortRead) when the image ends early and
 * IoError(Corrupt) on impossible encodings (varint overflow), tagging
 * the message with the context string ("checkpoint file 'x'").
 * Multi-byte integers are little-endian regardless of host order.
 */
class ByteCursor
{
  public:
    ByteCursor(const uint8_t *data, size_t size, std::string context);

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return pos_ == size_; }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    /** LEB128 varint (<= 10 bytes). */
    uint64_t varint();
    /** Zigzag-decoded signed varint. */
    int64_t svarint();
    /** Bit-exact doubles/floats (raw IEEE-754 little-endian). */
    double f64();
    float f32();
    /** Length-prefixed (varint) string. */
    std::string str();
    void bytes(void *out, size_t n);

    [[noreturn]] void fail(IoError::Kind kind,
                           const std::string &detail) const;

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    std::string ctx_;
};

/** Append-only little-endian builder, the writer-side mirror. */
class ByteBuilder
{
  public:
    std::vector<uint8_t> &buffer() { return out_; }
    const std::vector<uint8_t> &buffer() const { return out_; }
    size_t size() const { return out_.size(); }

    void u8(uint8_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void varint(uint64_t v);
    void svarint(int64_t v);
    void f64(double v);
    void f32(float v);
    /** Length-prefixed (varint) string. */
    void str(const std::string &s);
    void bytes(const void *p, size_t n);

  private:
    std::vector<uint8_t> out_;
};

} // namespace gnnmark

#endif // GNNMARK_BASE_IO_HH
