#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace gnnmark {

namespace {

bool informEnabled = true;

void
vreport(FILE *out, const char *tag, const char *file, int line,
        const char *fmt, va_list args)
{
    if (file != nullptr) {
        std::fprintf(out, "%s: (%s:%d) ", tag, file, line);
    } else {
        std::fprintf(out, "%s: ", tag);
    }
    std::vfprintf(out, fmt, args);
    std::fprintf(out, "\n");
    std::fflush(out);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    std::fprintf(stderr, "panic: (%s:%d) assertion '%s' failed: ", file,
                 line, cond);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn", nullptr, 0, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info", nullptr, 0, fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace gnnmark
