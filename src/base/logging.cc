#include "base/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gnnmark {

namespace {

bool informEnabled = true;

bool logLevelResolved = false;
LogLevel currentLogLevel = LogLevel::Info;

std::function<void(const std::string &)> warnSink;

LogLevel
parseLogLevel(const char *value)
{
    std::string v;
    for (const char *p = value; *p != '\0'; ++p)
        v += static_cast<char>(std::tolower(*p));
    if (v == "info")
        return LogLevel::Info;
    if (v == "warn")
        return LogLevel::Warn;
    if (v == "silent" || v == "error")
        return LogLevel::Silent;
    std::fprintf(stderr,
                 "warn: GNNMARK_LOG_LEVEL '%s' not recognised "
                 "(use info|warn|silent); defaulting to info\n",
                 value);
    return LogLevel::Info;
}

void
vreport(FILE *out, const char *tag, const char *file, int line,
        const char *fmt, va_list args)
{
    if (file != nullptr) {
        std::fprintf(out, "%s: (%s:%d) ", tag, file, line);
    } else {
        std::fprintf(out, "%s: ", tag);
    }
    std::vfprintf(out, fmt, args);
    std::fprintf(out, "\n");
    std::fflush(out);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    std::fprintf(stderr, "panic: (%s:%d) assertion '%s' failed: ", file,
                 line, cond);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    if (warnSink) {
        char buf[1024];
        std::vsnprintf(buf, sizeof(buf), fmt, args);
        va_end(args);
        warnSink(buf);
        return;
    }
    vreport(stderr, "warn", nullptr, 0, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled || logLevel() > LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info", nullptr, 0, fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

LogLevel
logLevel()
{
    if (!logLevelResolved) {
        logLevelResolved = true;
        if (const char *env = std::getenv("GNNMARK_LOG_LEVEL"))
            currentLogLevel = parseLogLevel(env);
    }
    return currentLogLevel;
}

void
setLogLevel(LogLevel level)
{
    logLevelResolved = true;
    currentLogLevel = level;
}

void
setWarnSink(std::function<void(const std::string &)> sink)
{
    warnSink = std::move(sink);
}

} // namespace gnnmark
