#include "base/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace gnnmark {

namespace {

bool informEnabled = true;

bool logLevelResolved = false;
LogLevel currentLogLevel = LogLevel::Info;

std::function<void(const std::string &)> warnSink;

// One lock serialises every warn/inform emission and guards the sink,
// level and rate-limiter state: workloads warn from pool workers, so
// interleaved half-lines are otherwise possible. fatal/panic stay
// lock-free — they must report even with the lock poisoned mid-abort.
std::mutex logMutex;

int warnRateLimit = 5;
std::map<std::string, int64_t> warnCounts;

/** Emit one already-formatted warning line (logMutex held). */
void
emitWarnLocked(const std::string &msg)
{
    if (warnSink) {
        warnSink(msg);
        return;
    }
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    std::fflush(stderr);
}

LogLevel
parseLogLevel(const char *value)
{
    std::string v;
    for (const char *p = value; *p != '\0'; ++p)
        v += static_cast<char>(std::tolower(*p));
    if (v == "info")
        return LogLevel::Info;
    if (v == "warn")
        return LogLevel::Warn;
    if (v == "silent" || v == "error")
        return LogLevel::Silent;
    std::fprintf(stderr,
                 "warn: GNNMARK_LOG_LEVEL '%s' not recognised "
                 "(use info|warn|silent); defaulting to info\n",
                 value);
    return LogLevel::Info;
}

void
vreport(FILE *out, const char *tag, const char *file, int line,
        const char *fmt, va_list args)
{
    if (file != nullptr) {
        std::fprintf(out, "%s: (%s:%d) ", tag, file, line);
    } else {
        std::fprintf(out, "%s: ", tag);
    }
    std::vfprintf(out, fmt, args);
    std::fprintf(out, "\n");
    std::fflush(out);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    std::fprintf(stderr, "panic: (%s:%d) assertion '%s' failed: ", file,
                 line, cond);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);

    std::string msg(buf);
    std::lock_guard<std::mutex> lock(logMutex);
    if (warnRateLimit > 0) {
        const int64_t count = ++warnCounts[msg];
        if (count > warnRateLimit)
            return; // counted, reported by flushSuppressedWarnings()
        if (count == warnRateLimit)
            msg += " (further duplicates suppressed)";
    }
    emitWarnLocked(msg);
}

void
setWarnRateLimit(int max_repeats)
{
    std::lock_guard<std::mutex> lock(logMutex);
    warnRateLimit = max_repeats;
    warnCounts.clear();
}

int64_t
flushSuppressedWarnings()
{
    std::lock_guard<std::mutex> lock(logMutex);
    int64_t total = 0;
    for (const auto &[msg, count] : warnCounts) {
        if (warnRateLimit <= 0 || count <= warnRateLimit)
            continue;
        const int64_t suppressed = count - warnRateLimit;
        total += suppressed;
        char line[1200];
        std::snprintf(line, sizeof(line),
                      "suppressed %lld duplicates of: %s",
                      static_cast<long long>(suppressed), msg.c_str());
        emitWarnLocked(line);
    }
    warnCounts.clear();
    return total;
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled || logLevel() > LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    std::lock_guard<std::mutex> lock(logMutex);
    vreport(stdout, "info", nullptr, 0, fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

LogLevel
logLevel()
{
    std::lock_guard<std::mutex> lock(logMutex);
    if (!logLevelResolved) {
        logLevelResolved = true;
        if (const char *env = std::getenv("GNNMARK_LOG_LEVEL"))
            currentLogLevel = parseLogLevel(env);
    }
    return currentLogLevel;
}

void
setLogLevel(LogLevel level)
{
    std::lock_guard<std::mutex> lock(logMutex);
    logLevelResolved = true;
    currentLogLevel = level;
}

void
setWarnSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(logMutex);
    warnSink = std::move(sink);
}

} // namespace gnnmark
