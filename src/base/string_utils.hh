/**
 * @file
 * Small string helpers shared across the suite.
 */

#ifndef GNNMARK_BASE_STRING_UTILS_HH
#define GNNMARK_BASE_STRING_UTILS_HH

#include <string>
#include <vector>

namespace gnnmark {

/** Join the pieces with the given separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** Split on a single-character delimiter (no empty-piece suppression). */
std::vector<std::string> split(const std::string &s, char delim);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Left-pad / right-pad to a width with spaces (no-op if already wider). */
std::string padLeft(const std::string &s, size_t width);
std::string padRight(const std::string &s, size_t width);

/** Format a double with the given number of decimals. */
std::string fixed(double value, int decimals);

/** Format a fraction (0..1) as a percentage string, e.g. "34.3%". */
std::string percent(double fraction, int decimals = 1);

} // namespace gnnmark

#endif // GNNMARK_BASE_STRING_UTILS_HH
