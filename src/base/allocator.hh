/**
 * @file
 * Memory policy layer: the Allocator interface with system and caching
 * arena implementations, plus the deterministic simulated-device
 * address space every sim-visible buffer maps into.
 *
 * Two separate concerns live here on purpose:
 *
 *  - *Host bytes*: where tensor storage physically lives. Selected by
 *    `GNNMARK_ALLOC=caching|system` (default caching). The caching
 *    arena recycles power-of-two buckets carved from slabs, so a
 *    steady-state training iteration performs no heap calls at all;
 *    the system allocator is a thin posix_memalign shim kept as the
 *    baseline the caching mode is measured against.
 *
 *  - *Device addresses*: what the GPU cache models hash. These come
 *    from DeviceAddrSpace, a virtual arena that assigns addresses
 *    purely by allocation order with the same bucketed-recycling
 *    discipline. Because the VA stream is a function of program order
 *    only, every simulated report is bitwise identical across host
 *    allocator modes, ASLR seeds, and malloc implementations — the
 *    determinism contract in DESIGN.md "Memory model".
 *
 * Thread safety: all public entry points are mutex-guarded; stats use
 * integer counters so snapshots are exact.
 */

#ifndef GNNMARK_BASE_ALLOCATOR_HH
#define GNNMARK_BASE_ALLOCATOR_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace gnnmark {

/** Alignment of every allocator block (SIMD-safe, cache-line padded). */
constexpr size_t kAllocAlign = 256;

/** Exact counter snapshot of one allocator (or the VA space). */
struct AllocStats
{
    uint64_t requests = 0;    ///< allocate() calls
    uint64_t releases = 0;    ///< deallocate() calls
    uint64_t cacheHits = 0;   ///< served from a free list
    uint64_t cacheMisses = 0; ///< had to touch the backing heap/arena
    uint64_t heapCalls = 0;   ///< backing allocations (slabs + large)
    uint64_t bytesLive = 0;   ///< bucket-rounded live bytes
    uint64_t bytesPeak = 0;   ///< high-water mark of bytesLive
    uint64_t slabsMapped = 0; ///< backing regions mapped
    uint64_t slabBytes = 0;   ///< total bytes of backing regions

    double
    hitRate() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(cacheHits) /
                         static_cast<double>(requests);
    }
};

/** Host-byte allocation policy bound per run (see ContextGuard). */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** 256-byte-aligned block of at least `bytes` (never nullptr). */
    virtual void *allocate(size_t bytes) = 0;

    /** Return a block; `bytes` must match the allocate() request. */
    virtual void deallocate(void *p, size_t bytes) = 0;

    /** Mode name as spelled in GNNMARK_ALLOC. */
    virtual const char *name() const = 0;

    /** Exact counter snapshot. */
    virtual AllocStats stats() const = 0;
};

/** @{ Process-wide allocator instances (never destroyed). */
Allocator &systemAllocator();
Allocator &cachingAllocator();
/** @} */

/**
 * The allocator selected by GNNMARK_ALLOC (caching unless "system";
 * any other value aborts). Read once, cached for the process.
 */
Allocator &defaultAllocator();

/** Instance by mode name ("caching" | "system"), nullptr if unknown. */
Allocator *allocatorByName(const std::string &name);

/**
 * @{ Thread-local allocator binding. ContextGuard (ops layer) binds a
 * run's allocator here; Storage::allocate resolves through
 * currentAllocator() = bound-or-default. Lives in base so the tensor
 * layer can resolve the binding without depending on ops.
 */
void bindAllocator(Allocator *alloc);
Allocator *boundAllocator();
Allocator &currentAllocator();
/** @} */

/**
 * Deterministic simulated-device address space. Addresses start at a
 * fixed base far above any plausible bucket sum and are assigned by a
 * caching arena over *virtual* slabs, so (a) the address stream is a
 * pure function of the map/unmap call sequence and (b) a training
 * loop's buffers revisit the same addresses every iteration — the
 * stability the persistent-L2 model observes.
 */
class DeviceAddrSpace
{
  public:
    static DeviceAddrSpace &instance();

    /** Map `bytes` (0 is fine) and return the device address. */
    uint64_t map(size_t bytes);

    /** Release a mapping made by map() with the same byte count. */
    void unmap(uint64_t addr, size_t bytes);

    AllocStats stats() const;

  private:
    DeviceAddrSpace();
    struct Impl;
    Impl *impl_; ///< leaked on purpose: outlives static teardown
};

/**
 * RAII device mapping for sim-visible host buffers that are not
 * tensors (index vectors, sort scratch, segment offsets, labels).
 * Maps on construction, unmaps on destruction; because op bodies run
 * in program order the resulting address stream is deterministic.
 */
class DeviceSpan
{
  public:
    DeviceSpan() = default;
    explicit DeviceSpan(size_t bytes)
        : addr_(DeviceAddrSpace::instance().map(bytes)), bytes_(bytes)
    {
    }
    ~DeviceSpan() { reset(); }

    DeviceSpan(const DeviceSpan &) = delete;
    DeviceSpan &operator=(const DeviceSpan &) = delete;
    DeviceSpan(DeviceSpan &&other) noexcept
        : addr_(other.addr_), bytes_(other.bytes_)
    {
        other.addr_ = 0;
        other.bytes_ = 0;
    }
    DeviceSpan &
    operator=(DeviceSpan &&other) noexcept
    {
        if (this != &other) {
            reset();
            addr_ = other.addr_;
            bytes_ = other.bytes_;
            other.addr_ = 0;
            other.bytes_ = 0;
        }
        return *this;
    }

    uint64_t addr() const { return addr_; }
    size_t bytes() const { return bytes_; }

    void
    reset()
    {
        if (bytes_ != 0 || addr_ != 0)
            DeviceAddrSpace::instance().unmap(addr_, bytes_);
        addr_ = 0;
        bytes_ = 0;
    }

  private:
    uint64_t addr_ = 0;
    size_t bytes_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_BASE_ALLOCATOR_HH
