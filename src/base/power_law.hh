/**
 * @file
 * Shared power-law / Zipf sampling machinery.
 *
 * Two pieces of the suite used to roll their own heavy-tail samplers:
 * the ego-net query sizing in serve/traffic.cc (inverse-CDF index
 * draw) and the preferential-attachment generator in
 * graph/generators.cc (degree-proportional endpoint pool). Both now
 * live here, and the chunked gen:: families reuse the inverse-CDF
 * sampler for scale-free target draws.
 */

#ifndef GNNMARK_BASE_POWER_LAW_HH
#define GNNMARK_BASE_POWER_LAW_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"

namespace gnnmark {

/**
 * O(1) approximate power-law index sampler over [0, n): draws
 * i = floor(n * u^skew) for uniform u, clamped to n-1. The induced
 * mass P(i) ~ ((i+1)^(1/skew) - i^(1/skew)) decays like
 * i^(1/skew - 1), i.e. a power law with exponent 1 - 1/skew; higher
 * skew concentrates draws on the head. skew >= 1 required.
 */
class PowerLawSampler
{
  public:
    PowerLawSampler(int64_t n, double skew);

    int64_t draw(Rng &rng) const;

    int64_t n() const { return n_; }
    double skew() const { return skew_; }

    /**
     * Skew that makes the index distribution decay like i^(-beta)
     * for beta in (0, 1): skew = 1 / (1 - beta). The chunked
     * scale-free generator uses this to turn a target degree
     * exponent into a sampler.
     */
    static double skewForExponent(double beta);

  private:
    int64_t n_;
    double skew_;
};

/**
 * Degree-proportional endpoint pool (preferential attachment): every
 * endpoint of every recorded edge sits in a flat vector, so a uniform
 * draw from the pool picks a node with probability proportional to
 * its current degree — the rich-get-richer mechanism behind
 * Barabasi-Albert power-law graphs.
 */
class DegreePool
{
  public:
    /** Seed the pool with a zero-degree founder node. */
    void add(int32_t node) { pool_.push_back(node); }

    /** Record an edge: both endpoints gain one unit of mass. */
    void
    addEdge(int32_t u, int32_t v)
    {
        pool_.push_back(u);
        pool_.push_back(v);
    }

    /** Draw a node with probability proportional to its degree. */
    int32_t pick(Rng &rng) const;

    size_t size() const { return pool_.size(); }

    void reserve(size_t n) { pool_.reserve(n); }

  private:
    std::vector<int32_t> pool_;
};

} // namespace gnnmark

#endif // GNNMARK_BASE_POWER_LAW_HH
