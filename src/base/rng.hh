/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the suite (dataset synthesis, samplers,
 * weight init, dropout) flows through Rng so that every experiment is
 * reproducible from a single seed.
 */

#ifndef GNNMARK_BASE_RNG_HH
#define GNNMARK_BASE_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gnnmark {

/**
 * Complete serialisable state of an Rng: the xoshiro256** words plus
 * the cached Box-Muller spare, so a restored generator reproduces the
 * exact stream — including a pending normal() value.
 */
struct RngState
{
    std::array<uint64_t, 4> s{};
    bool hasSpareNormal = false;
    double spareNormal = 0.0;

    bool
    operator==(const RngState &o) const
    {
        return s == o.s && hasSpareNormal == o.hasSpareNormal &&
               spareNormal == o.spareNormal;
    }
};

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Not a cryptographic generator; chosen for speed and reproducibility
 * across platforms (no dependence on libstdc++ distribution internals).
 */
class Rng
{
  public:
    /** Construct from a seed; the same seed yields the same stream. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t randint(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t randint(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Sample from a (unnormalised) discrete weight vector. */
    size_t discrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = randint(static_cast<uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Random permutation of [0, n). */
    std::vector<int32_t> permutation(int32_t n);

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

    /**
     * Derive the `stream_id`-th sub-stream deterministically, without
     * advancing this generator. Unlike fork(), split() is a pure
     * function of (current state, stream_id): any worker holding an
     * equal-state Rng derives bit-identical children for equal ids,
     * which is what lets chunked generators seed each work unit
     * independently of thread count and chunk partitioning. Children
     * of distinct ids are statistically independent streams.
     */
    Rng split(uint64_t stream_id) const;

    /** Snapshot the full generator state (checkpoint/resume). */
    RngState state() const;

    /** Restore a snapshot; the stream continues exactly from it. */
    void setState(const RngState &state);

  private:
    uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace gnnmark

#endif // GNNMARK_BASE_RNG_HH
