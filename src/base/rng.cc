#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

namespace {

/** splitmix64, used to expand the seed into xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + static_cast<float>(uniform()) * (hi - lo);
}

uint64_t
Rng::randint(uint64_t n)
{
    GNN_ASSERT(n > 0, "randint bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::randint(int64_t lo, int64_t hi)
{
    GNN_ASSERT(lo <= hi, "randint range is empty");
    return lo + static_cast<int64_t>(
        randint(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpareNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::discrete(const std::vector<double> &weights)
{
    GNN_ASSERT(!weights.empty(), "discrete() needs at least one weight");
    double total = 0.0;
    for (double w : weights)
        total += w;
    GNN_ASSERT(total > 0.0, "discrete() weights must sum to > 0");
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<int32_t>
Rng::permutation(int32_t n)
{
    std::vector<int32_t> v(n);
    for (int32_t i = 0; i < n; ++i)
        v[i] = i;
    shuffle(v);
    return v;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
}

Rng
Rng::split(uint64_t stream_id) const
{
    // Funnel the full state and the stream id through splitmix64 so
    // adjacent ids land in unrelated regions of the seed space. The
    // parent state is read, never advanced.
    uint64_t x = stream_id ^ 0xa0761d6478bd642fULL;
    uint64_t h = splitmix64(x);
    for (uint64_t word : s_) {
        x ^= word;
        h ^= splitmix64(x);
    }
    return Rng(h);
}

RngState
Rng::state() const
{
    RngState st;
    for (size_t i = 0; i < st.s.size(); ++i)
        st.s[i] = s_[i];
    st.hasSpareNormal = hasSpareNormal_;
    st.spareNormal = spareNormal_;
    return st;
}

void
Rng::setState(const RngState &state)
{
    for (size_t i = 0; i < state.s.size(); ++i)
        s_[i] = state.s[i];
    hasSpareNormal_ = state.hasSpareNormal;
    spareNormal_ = state.spareNormal;
}

} // namespace gnnmark
