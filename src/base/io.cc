#include "base/io.hh"

#include <cstdio>
#include <cstring>

namespace gnnmark {

IoError::IoError(Kind kind, const std::string &message)
    : std::runtime_error(message), kind_(kind)
{
}

const char *
IoError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::OpenFailed:
        return "open-failed";
      case Kind::ShortRead:
        return "short-read";
      case Kind::ShortWrite:
        return "short-write";
      case Kind::BadMagic:
        return "bad-magic";
      case Kind::BadVersion:
        return "bad-version";
      case Kind::Corrupt:
        return "corrupt";
      case Kind::TrailingBytes:
        return "trailing-bytes";
    }
    return "unknown";
}

uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw IoError(IoError::Kind::OpenFailed,
                      "cannot open '" + path + "' for reading");
    }
    std::vector<uint8_t> out;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) {
        throw IoError(IoError::Kind::ShortRead,
                      "read error on '" + path + "'");
    }
    return out;
}

void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        throw IoError(IoError::Kind::OpenFailed,
                      "cannot open '" + path + "' for writing");
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        throw IoError(IoError::Kind::ShortWrite,
                      "short write to '" + path + "'");
    }
}

ByteCursor::ByteCursor(const uint8_t *data, size_t size,
                       std::string context)
    : data_(data), size_(size), ctx_(std::move(context))
{
}

void
ByteCursor::fail(IoError::Kind kind, const std::string &detail) const
{
    throw IoError(kind, ctx_ + ": " + detail + " (at offset " +
                            std::to_string(pos_) + ")");
}

void
ByteCursor::bytes(void *out, size_t n)
{
    if (n > remaining())
        fail(IoError::Kind::ShortRead, "image truncated");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
}

uint8_t
ByteCursor::u8()
{
    uint8_t v;
    bytes(&v, 1);
    return v;
}

uint32_t
ByteCursor::u32()
{
    uint8_t b[4];
    bytes(b, sizeof(b));
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

uint64_t
ByteCursor::u64()
{
    uint8_t b[8];
    bytes(b, sizeof(b));
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

uint64_t
ByteCursor::varint()
{
    uint64_t v = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
        const uint8_t byte = u8();
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
    fail(IoError::Kind::Corrupt, "varint longer than 10 bytes");
}

int64_t
ByteCursor::svarint()
{
    const uint64_t z = varint();
    return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

double
ByteCursor::f64()
{
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

float
ByteCursor::f32()
{
    const uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteCursor::str()
{
    const uint64_t n = varint();
    if (n > remaining())
        fail(IoError::Kind::ShortRead, "string overruns the image");
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
}

void
ByteBuilder::bytes(const void *p, size_t n)
{
    const uint8_t *b = static_cast<const uint8_t *>(p);
    out_.insert(out_.end(), b, b + n);
}

void
ByteBuilder::u8(uint8_t v)
{
    out_.push_back(v);
}

void
ByteBuilder::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteBuilder::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteBuilder::varint(uint64_t v)
{
    while (v >= 0x80) {
        out_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
}

void
ByteBuilder::svarint(int64_t v)
{
    varint((static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63));
}

void
ByteBuilder::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteBuilder::f32(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
}

void
ByteBuilder::str(const std::string &s)
{
    varint(s.size());
    bytes(s.data(), s.size());
}

} // namespace gnnmark
