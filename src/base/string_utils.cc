#include "base/string_utils.hh"

#include <cstdarg>
#include <cstdio>

namespace gnnmark {

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fixed(double value, int decimals)
{
    return strfmt("%.*f", decimals, value);
}

std::string
percent(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

} // namespace gnnmark
