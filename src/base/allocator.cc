#include "base/allocator.hh"

#include <cstdlib>
#include <mutex>
#include <vector>

#include "base/logging.hh"

namespace gnnmark {

namespace {

/** Smallest bucket; everything is rounded up to a power of two. */
constexpr size_t kMinBlock = 256;

/** Slab size small buckets are carved from. */
constexpr size_t kSlabBytes = size_t{1} << 20; // 1 MiB

/** Buckets at or above this get a dedicated backing region. */
constexpr size_t kLargeThreshold = size_t{1} << 16; // 64 KiB

size_t
bucketBytes(size_t bytes)
{
    size_t b = kMinBlock;
    while (b < bytes)
        b <<= 1;
    return b;
}

int
bucketIndex(size_t bucket_bytes)
{
    int i = 0;
    while ((kMinBlock << i) < bucket_bytes)
        ++i;
    return i;
}

/**
 * The bucketed-recycling engine shared by the caching host allocator
 * and the device address space: power-of-two free lists in front of a
 * slab cursor, LIFO reuse so a loop's blocks revisit the same
 * addresses. The backing callback maps a fresh region (heap memory or
 * virtual address range) and is invoked under the arena lock.
 */
class ArenaCore
{
  public:
    using MapBacking = uint64_t (*)(void *ctx, size_t bytes);

    ArenaCore(MapBacking map_backing, void *ctx)
        : mapBacking_(map_backing), ctx_(ctx)
    {
    }

    uint64_t
    acquire(size_t bytes)
    {
        const size_t b = bucketBytes(bytes);
        const size_t idx = static_cast<size_t>(bucketIndex(b));
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
        stats_.bytesLive += b;
        if (stats_.bytesLive > stats_.bytesPeak)
            stats_.bytesPeak = stats_.bytesLive;
        if (idx < freeLists_.size() && !freeLists_[idx].empty()) {
            ++stats_.cacheHits;
            const uint64_t p = freeLists_[idx].back();
            freeLists_[idx].pop_back();
            return p;
        }
        ++stats_.cacheMisses;
        if (b >= kLargeThreshold) {
            ++stats_.heapCalls;
            ++stats_.slabsMapped;
            stats_.slabBytes += b;
            return mapBacking_(ctx_, b);
        }
        if (slabRemaining_ < b) {
            // The previous slab's tail (always < 64 KiB) is abandoned;
            // bounded waste in exchange for O(1) carving.
            ++stats_.heapCalls;
            ++stats_.slabsMapped;
            stats_.slabBytes += kSlabBytes;
            slabCursor_ = mapBacking_(ctx_, kSlabBytes);
            slabRemaining_ = kSlabBytes;
        }
        const uint64_t p = slabCursor_;
        slabCursor_ += b;
        slabRemaining_ -= b;
        return p;
    }

    void
    release(uint64_t addr, size_t bytes)
    {
        const size_t b = bucketBytes(bytes);
        const size_t idx = static_cast<size_t>(bucketIndex(b));
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.releases;
        GNN_ASSERT(stats_.bytesLive >= b,
                   "allocator release of %zu bytes with %llu live", b,
                   static_cast<unsigned long long>(stats_.bytesLive));
        stats_.bytesLive -= b;
        if (freeLists_.size() <= idx)
            freeLists_.resize(idx + 1);
        freeLists_[idx].push_back(addr);
    }

    AllocStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

  private:
    mutable std::mutex mu_;
    MapBacking mapBacking_;
    void *ctx_;
    std::vector<std::vector<uint64_t>> freeLists_;
    uint64_t slabCursor_ = 0;
    size_t slabRemaining_ = 0;
    AllocStats stats_;
};

/** posix_memalign-backed caching arena (the GNNMARK_ALLOC=caching mode). */
class CachingArenaAllocator : public Allocator
{
  public:
    CachingArenaAllocator() : core_(&CachingArenaAllocator::mapSlab, this)
    {
    }

    void *
    allocate(size_t bytes) override
    {
        return reinterpret_cast<void *>(core_.acquire(bytes));
    }

    void
    deallocate(void *p, size_t bytes) override
    {
        core_.release(reinterpret_cast<uint64_t>(p), bytes);
    }

    const char *name() const override { return "caching"; }

    AllocStats stats() const override { return core_.stats(); }

  private:
    static uint64_t
    mapSlab(void *ctx, size_t bytes)
    {
        auto *self = static_cast<CachingArenaAllocator *>(ctx);
        void *raw = nullptr;
        const int rc = posix_memalign(&raw, kAllocAlign, bytes);
        GNN_ASSERT(rc == 0, "slab allocation of %zu bytes failed", bytes);
        // Keep the base pointer reachable: slabs live for the process
        // (blocks are recycled, never returned to the heap).
        self->slabs_.push_back(raw);
        return reinterpret_cast<uint64_t>(raw);
    }

    ArenaCore core_;
    std::vector<void *> slabs_; ///< guarded by the core's lock
};

/** One heap call per tensor: the baseline the caching mode beats. */
class SystemAllocator : public Allocator
{
  public:
    void *
    allocate(size_t bytes) override
    {
        void *raw = nullptr;
        const size_t b = bytes < kMinBlock ? kMinBlock : bytes;
        const int rc = posix_memalign(&raw, kAllocAlign, b);
        GNN_ASSERT(rc == 0, "allocation of %zu bytes failed", b);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
        ++stats_.cacheMisses;
        ++stats_.heapCalls;
        stats_.bytesLive += b;
        if (stats_.bytesLive > stats_.bytesPeak)
            stats_.bytesPeak = stats_.bytesLive;
        return raw;
    }

    void
    deallocate(void *p, size_t bytes) override
    {
        std::free(p);
        const size_t b = bytes < kMinBlock ? kMinBlock : bytes;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.releases;
        stats_.bytesLive -= b;
    }

    const char *name() const override { return "system"; }

    AllocStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

  private:
    mutable std::mutex mu_;
    AllocStats stats_;
};

thread_local Allocator *boundAlloc = nullptr;

} // namespace

Allocator &
systemAllocator()
{
    static SystemAllocator *a = new SystemAllocator();
    return *a;
}

Allocator &
cachingAllocator()
{
    static CachingArenaAllocator *a = new CachingArenaAllocator();
    return *a;
}

Allocator &
defaultAllocator()
{
    static Allocator *a = [] {
        const char *env = std::getenv("GNNMARK_ALLOC");
        if (env == nullptr || *env == '\0')
            return &cachingAllocator();
        Allocator *named = allocatorByName(env);
        GNN_ASSERT(named != nullptr,
                   "GNNMARK_ALLOC must be 'caching' or 'system', got '%s'",
                   env);
        return named;
    }();
    return *a;
}

Allocator *
allocatorByName(const std::string &name)
{
    if (name == "caching")
        return &cachingAllocator();
    if (name == "system")
        return &systemAllocator();
    return nullptr;
}

void
bindAllocator(Allocator *alloc)
{
    boundAlloc = alloc;
}

Allocator *
boundAllocator()
{
    return boundAlloc;
}

Allocator &
currentAllocator()
{
    return boundAlloc != nullptr ? *boundAlloc : defaultAllocator();
}

struct DeviceAddrSpace::Impl
{
    /**
     * Fixed VA base: high enough that bucket arithmetic can never
     * wrap, and obviously synthetic in traces (0x4000_0000_0000).
     */
    static constexpr uint64_t kBase = uint64_t{1} << 46;

    Impl() : core(&Impl::mapVirtualSlab, this) {}

    static uint64_t
    mapVirtualSlab(void *ctx, size_t bytes)
    {
        auto *self = static_cast<Impl *>(ctx);
        const uint64_t va = self->next;
        self->next += bytes;
        return va;
    }

    uint64_t next = kBase;
    ArenaCore core;
};

DeviceAddrSpace::DeviceAddrSpace() : impl_(new Impl())
{
}

DeviceAddrSpace &
DeviceAddrSpace::instance()
{
    static DeviceAddrSpace *space = new DeviceAddrSpace();
    return *space;
}

uint64_t
DeviceAddrSpace::map(size_t bytes)
{
    return impl_->core.acquire(bytes);
}

void
DeviceAddrSpace::unmap(uint64_t addr, size_t bytes)
{
    impl_->core.release(addr, bytes);
}

AllocStats
DeviceAddrSpace::stats() const
{
    return impl_->core.stats();
}

} // namespace gnnmark
