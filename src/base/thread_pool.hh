/**
 * @file
 * A persistent thread pool with a deterministic `parallelFor`
 * primitive for the CPU-side numeric kernels.
 *
 * Threading contract (see DESIGN.md "Threading model"):
 *  - Only raw numeric loops run on worker threads. Kernel emission,
 *    `ExecContext::device()` (thread-local) and every simulator
 *    structure stay on the launching thread, so all timing-model
 *    output is independent of the thread count.
 *  - Chunk boundaries are a pure function of (begin, end, grain) and
 *    never of the thread count, so any reduction that combines
 *    per-chunk partials in chunk order is bitwise identical whether
 *    the pool runs 1 thread or 64.
 *  - Nested calls (a parallelFor issued from inside a worker) degrade
 *    to serial execution on the calling worker.
 *
 * The pool size defaults to std::thread::hardware_concurrency() and
 * can be overridden with the GNNMARK_THREADS environment variable
 * (GNNMARK_THREADS=1 disables the pool entirely: no workers are
 * spawned and every loop runs inline on the caller).
 */

#ifndef GNNMARK_BASE_THREAD_POOL_HH
#define GNNMARK_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gnnmark {

class ThreadPool
{
  public:
    /** The process-wide pool (workers are spawned lazily). */
    static ThreadPool &instance();

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute loops (>= 1, caller included). */
    int threadCount() const { return threads_; }

    /**
     * Re-size the pool (joins existing workers first). Primarily for
     * tests that compare thread counts within one process; normal use
     * is the GNNMARK_THREADS environment variable.
     */
    void setThreadCount(int threads);

    /**
     * Run `fn(chunk_begin, chunk_end)` over [begin, end) split into
     * chunks of `grain` indices. Chunking depends only on the range
     * and grain — never on the thread count — and the caller blocks
     * until every chunk has run (the caller participates). Chunks may
     * execute in any order and concurrently: `fn` must only write
     * locations owned by its own index range.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** True when the current thread is a pool worker. */
    static bool onWorkerThread();

    /**
     * Stable index of the calling pool worker (0-based, assigned at
     * spawn), or -1 on any non-pool thread. Observability layers use
     * it to name per-thread timeline lanes.
     */
    static int currentWorkerIndex();

  private:
    ThreadPool();

    void spawnWorkers();
    void joinWorkers();
    void workerLoop();
    void runChunks(const std::function<void(int64_t, int64_t)> &fn);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait for a job
    std::condition_variable done_;   ///< caller waits for completion
    bool shutdown_ = false;

    // Current job (guarded by mutex_ for publication; chunk claiming
    // itself uses nextChunk_ under the lock-free fast path below).
    const std::function<void(int64_t, int64_t)> *job_ = nullptr;
    int64_t jobBegin_ = 0;
    int64_t jobEnd_ = 0;
    int64_t jobGrain_ = 1;
    int64_t nextChunk_ = 0;    ///< next unclaimed chunk index
    int64_t chunkCount_ = 0;
    int64_t chunksDone_ = 0;
};

/**
 * Free-function veneer over the shared pool: run `fn(chunk_begin,
 * chunk_end)` across [begin, end) in grain-sized chunks.
 */
inline void
parallel_for(int64_t begin, int64_t end, int64_t grain,
             const std::function<void(int64_t, int64_t)> &fn)
{
    ThreadPool::instance().parallelFor(begin, end, grain, fn);
}

/**
 * Deterministic parallel reduction: `map(chunk_begin, chunk_end)`
 * produces one partial per grain-sized chunk, and `combine` folds the
 * partials into `init` in ascending chunk order. Because chunking
 * ignores the thread count, the result is bitwise identical for any
 * pool size (though it may differ from a single un-chunked loop —
 * callers choose grains large enough that small inputs stay in one
 * chunk and keep their exact serial result).
 */
template <typename T, typename Map, typename Combine>
T
parallel_reduce(int64_t begin, int64_t end, int64_t grain, T init,
                const Map &map, const Combine &combine)
{
    if (end <= begin)
        return init;
    if (grain < 1)
        grain = 1;
    const int64_t chunks = (end - begin + grain - 1) / grain;
    if (chunks == 1)
        return combine(init, map(begin, end));
    std::vector<T> partials(static_cast<size_t>(chunks));
    parallel_for(begin, end, grain,
                 [&](int64_t b, int64_t e) {
                     partials[static_cast<size_t>((b - begin) / grain)] =
                         map(b, e);
                 });
    T acc = init;
    for (const T &p : partials)
        acc = combine(acc, p);
    return acc;
}

} // namespace gnnmark

#endif // GNNMARK_BASE_THREAD_POOL_HH
