#include "base/power_law.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

PowerLawSampler::PowerLawSampler(int64_t n, double skew)
    : n_(n), skew_(skew)
{
    GNN_ASSERT(n > 0, "PowerLawSampler needs n > 0");
    GNN_ASSERT(skew >= 1.0, "PowerLawSampler needs skew >= 1, got %f",
               skew);
}

int64_t
PowerLawSampler::draw(Rng &rng) const
{
    const double u = rng.uniform();
    const double skewed = std::pow(u, skew_);
    const int64_t i =
        static_cast<int64_t>(skewed * static_cast<double>(n_));
    return std::min<int64_t>(i, n_ - 1);
}

double
PowerLawSampler::skewForExponent(double beta)
{
    GNN_ASSERT(beta > 0.0 && beta < 1.0,
               "skewForExponent needs beta in (0, 1), got %f", beta);
    return 1.0 / (1.0 - beta);
}

int32_t
DegreePool::pick(Rng &rng) const
{
    GNN_ASSERT(!pool_.empty(), "DegreePool::pick on an empty pool");
    return pool_[rng.randint(pool_.size())];
}

} // namespace gnnmark
