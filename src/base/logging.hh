/**
 * @file
 * Status/error reporting helpers, modelled on gem5's logging facilities.
 *
 * - panic():  an internal invariant was violated (a bug in this library).
 *             Aborts so a debugger/core dump can capture the state.
 * - fatal():  the simulation cannot continue due to a user error (bad
 *             configuration, invalid arguments). Exits with status 1.
 * - warn():   something is suspect but execution can continue.
 * - inform(): plain status output.
 */

#ifndef GNNMARK_BASE_LOGGING_HH
#define GNNMARK_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace gnnmark {

/** Print a formatted message tagged "panic:" and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "warn:" to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a failed assertion (condition text + context) and abort. */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Enable/disable inform() output (benchmark binaries silence it). */
void setInformEnabled(bool enabled);

} // namespace gnnmark

#define GNN_PANIC(...) \
    ::gnnmark::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define GNN_FATAL(...) \
    ::gnnmark::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; always checked (not tied to NDEBUG). */
#define GNN_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gnnmark::assertFailImpl(__FILE__, __LINE__, #cond,            \
                                      __VA_ARGS__);                         \
        }                                                                   \
    } while (0)

#endif // GNNMARK_BASE_LOGGING_HH
