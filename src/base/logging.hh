/**
 * @file
 * Status/error reporting helpers, modelled on gem5's logging facilities.
 *
 * - panic():  an internal invariant was violated (a bug in this library).
 *             Aborts so a debugger/core dump can capture the state.
 * - fatal():  the simulation cannot continue due to a user error (bad
 *             configuration, invalid arguments). Exits with status 1.
 * - warn():   something is suspect but execution can continue.
 * - inform(): plain status output.
 */

#ifndef GNNMARK_BASE_LOGGING_HH
#define GNNMARK_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

namespace gnnmark {

/**
 * Minimum severity that is emitted. Selected programmatically via
 * setLogLevel() or through the GNNMARK_LOG_LEVEL environment variable
 * ("info", "warn" or "silent", case-insensitive); the env var is read
 * once at first use. fatal/panic output is never suppressed.
 */
enum class LogLevel
{
    Info,   ///< inform() and warn() both emitted (default)
    Warn,   ///< inform() silenced
    Silent, ///< inform() and warn() silenced
};

/** Current minimum severity (resolves GNNMARK_LOG_LEVEL on first call). */
LogLevel logLevel();

/** Override the log level (takes precedence over the env var). */
void setLogLevel(LogLevel level);

/**
 * Redirect warn() output: every non-silenced warning is formatted and
 * handed to `sink` instead of stderr (tests capture warnings this
 * way). Pass nullptr to restore the default stderr sink.
 */
void setWarnSink(std::function<void(const std::string &)> sink);

/** Print a formatted message tagged "panic:" and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Print a formatted message tagged "warn:" to stderr (or the warn
 * sink). Thread-safe; identical messages are rate-limited (see
 * setWarnRateLimit).
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Cap duplicate warnings: each distinct formatted message is emitted
 * at most `max_repeats` times (default 5); the final emission is
 * tagged so readers know the stream is truncated, and later
 * duplicates are only counted. Pass 0 to disable the limiter.
 * Changing the limit resets the duplicate counters.
 */
void setWarnRateLimit(int max_repeats);

/**
 * Emit one "suppressed N duplicates of: <message>" line per capped
 * message, reset every duplicate counter, and return the total number
 * of suppressed warnings (0 when nothing was capped).
 */
int64_t flushSuppressedWarnings();

/** Print a formatted status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a failed assertion (condition text + context) and abort. */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Enable/disable inform() output (benchmark binaries silence it). */
void setInformEnabled(bool enabled);

} // namespace gnnmark

#define GNN_PANIC(...) \
    ::gnnmark::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define GNN_FATAL(...) \
    ::gnnmark::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; always checked (not tied to NDEBUG). */
#define GNN_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gnnmark::assertFailImpl(__FILE__, __LINE__, #cond,            \
                                      __VA_ARGS__);                         \
        }                                                                   \
    } while (0)

#endif // GNNMARK_BASE_LOGGING_HH
