#include "base/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace gnnmark {

namespace {

thread_local bool onWorker = false;

/** Spawn-order index of this pool worker; -1 on non-pool threads. */
thread_local int workerIndex = -1;

/** True while the calling thread is executing its own job's chunks;
 *  nested parallelFor calls from a chunk body must stay serial. */
thread_local bool inParallelRegion = false;

int
configuredThreads()
{
    if (const char *env = std::getenv("GNNMARK_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool() : threads_(configuredThreads())
{
}

ThreadPool::~ThreadPool()
{
    joinWorkers();
}

bool
ThreadPool::onWorkerThread()
{
    return onWorker;
}

int
ThreadPool::currentWorkerIndex()
{
    return workerIndex;
}

void
ThreadPool::setThreadCount(int threads)
{
    joinWorkers();
    threads_ = std::max(1, threads);
}

void
ThreadPool::spawnWorkers()
{
    workers_.reserve(threads_ - 1);
    for (int t = 1; t < threads_; ++t) {
        workers_.emplace_back([this, t] {
            workerIndex = t - 1;
            workerLoop();
        });
    }
}

void
ThreadPool::joinWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    shutdown_ = false;
}

void
ThreadPool::workerLoop()
{
    onWorker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return shutdown_ || nextChunk_ < chunkCount_;
        });
        if (shutdown_)
            return;
        while (nextChunk_ < chunkCount_) {
            const int64_t chunk = nextChunk_++;
            const int64_t b = jobBegin_ + chunk * jobGrain_;
            const int64_t e = std::min(jobEnd_, b + jobGrain_);
            const auto *fn = job_;
            lock.unlock();
            (*fn)(b, e);
            lock.lock();
            if (++chunksDone_ == chunkCount_)
                done_.notify_all();
        }
    }
}

void
ThreadPool::runChunks(const std::function<void(int64_t, int64_t)> &fn)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (nextChunk_ < chunkCount_) {
        const int64_t chunk = nextChunk_++;
        const int64_t b = jobBegin_ + chunk * jobGrain_;
        const int64_t e = std::min(jobEnd_, b + jobGrain_);
        lock.unlock();
        fn(b, e);
        lock.lock();
        if (++chunksDone_ == chunkCount_)
            done_.notify_all();
    }
    done_.wait(lock, [this] { return chunksDone_ == chunkCount_; });
    job_ = nullptr;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain < 1)
        grain = 1;
    const int64_t chunks = (end - begin + grain - 1) / grain;

    // Serial fast path: a 1-thread pool, a single chunk, or a nested
    // call from inside a running job (worker or caller chunk body) —
    // publishing a second job would clobber the first. Per-chunk
    // invocation is preserved so that parallel_reduce sees identical
    // chunk partials either way.
    if (threads_ == 1 || chunks == 1 || onWorker || inParallelRegion) {
        for (int64_t b = begin; b < end; b += grain)
            fn(b, std::min(end, b + grain));
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (workers_.empty())
            spawnWorkers();
        job_ = &fn;
        jobBegin_ = begin;
        jobEnd_ = end;
        jobGrain_ = grain;
        nextChunk_ = 0;
        chunkCount_ = chunks;
        chunksDone_ = 0;
    }
    wake_.notify_all();
    inParallelRegion = true;
    runChunks(fn);
    inParallelRegion = false;
}

} // namespace gnnmark
