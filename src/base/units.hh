/**
 * @file
 * Byte-size constants and unit-formatting helpers.
 */

#ifndef GNNMARK_BASE_UNITS_HH
#define GNNMARK_BASE_UNITS_HH

#include <cstdint>
#include <string>

#include "base/string_utils.hh"

namespace gnnmark {

constexpr uint64_t KiB = 1024ULL;
constexpr uint64_t MiB = 1024ULL * KiB;
constexpr uint64_t GiB = 1024ULL * MiB;

/** Format a byte count with a binary suffix, e.g. "6.0 MiB". */
inline std::string
formatBytes(double bytes)
{
    if (bytes >= static_cast<double>(GiB))
        return strfmt("%.1f GiB", bytes / static_cast<double>(GiB));
    if (bytes >= static_cast<double>(MiB))
        return strfmt("%.1f MiB", bytes / static_cast<double>(MiB));
    if (bytes >= static_cast<double>(KiB))
        return strfmt("%.1f KiB", bytes / static_cast<double>(KiB));
    return strfmt("%.0f B", bytes);
}

/** Format a rate with an SI suffix, e.g. 1.99e12 -> "1.99 T". */
inline std::string
formatSi(double value, int decimals = 2)
{
    const char *suffix = "";
    if (value >= 1e12) {
        value /= 1e12;
        suffix = " T";
    } else if (value >= 1e9) {
        value /= 1e9;
        suffix = " G";
    } else if (value >= 1e6) {
        value /= 1e6;
        suffix = " M";
    } else if (value >= 1e3) {
        value /= 1e3;
        suffix = " K";
    }
    return strfmt("%.*f%s", decimals, value, suffix);
}

} // namespace gnnmark

#endif // GNNMARK_BASE_UNITS_HH
