/**
 * @file
 * Pure-data serving run report. Deliberately header-only with no
 * dependencies beyond <string>/<vector>/<cstdint>, so the core report
 * printers and JSON writers can consume it without linking the serve
 * library (core sits below serve in the layering).
 *
 * Every field derives from simulated time and seeded randomness, so a
 * report — and its JSON rendering — is byte-identical across
 * processes for a fixed configuration.
 */

#ifndef GNNMARK_SERVE_REPORT_HH
#define GNNMARK_SERVE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gnnmark {
namespace serve {

/** Per-replica accounting for one serving run. */
struct ReplicaReport
{
    int replica = 0;
    /** Batches this replica completed successfully. */
    int64_t batchesCompleted = 0;
    /** Batches cancelled on it (timeout or lost hedge race). */
    int64_t batchesCancelled = 0;
    /** Batch timeouts charged against it. */
    int64_t timeouts = 0;
    /** Times its circuit breaker tripped open. */
    int64_t breakerOpens = 0;
    /** Final breaker state name ("closed"/"open"/"half_open"). */
    std::string breakerFinal = "closed";
    /** Time spent on work that completed. */
    double busySec = 0;
    /** Time spent on work that was thrown away. */
    double cancelledSec = 0;
};

/**
 * One tumbling window of the serving timeline. Outcome counts are
 * attributed to the window the request *arrived* in (each request
 * lands in exactly one window, so offered == full+fallback+shed+lost
 * holds per window); latency percentiles cover requests *resolved*
 * in the window, which is what an operator watching a dashboard sees.
 */
struct ServingWindow
{
    int64_t index = 0;
    double startSec = 0;
    double endSec = 0;

    /** @{ Outcomes by arrival window. */
    int64_t offered = 0;
    int64_t sloMet = 0;
    int64_t full = 0;
    int64_t fallback = 0;
    int64_t shed = 0;
    int64_t lost = 0;
    /** @} */

    /** @{ Latency of requests resolved in this window, ms. */
    int64_t resolved = 0;
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    /** @} */

    /** sloMet / window width. */
    double goodputPerSec = 0;
    /** Queue depth sampled at each arrival in the window. */
    double queueDepthMean = 0;
    double queueDepthMax = 0;

    /** This window's error-budget burn rate. */
    double burnRate = 0;
    /** Cumulative fraction of the error budget spent. */
    double budgetConsumed = 0;
};

/** A burn-rate alert interval (consecutive firing windows). */
struct ServingAlert
{
    std::string rule;
    std::string severity;
    int64_t startWindow = 0;
    int64_t endWindow = 0; ///< inclusive
    double startSec = 0;
    double endSec = 0;
    double peakBurn = 0;
    double errorFraction = 0;
};

/** Aggregate results of one serving simulation. */
struct ServingReport
{
    /** @{ Configuration echo. */
    std::string arrival = "poisson";
    std::string faultScenario = "none";
    double ratePerSec = 0;
    double durationSec = 0;
    double sloMs = 0;
    int replicas = 0;
    int maxBatch = 0;
    uint64_t seed = 0;
    bool hedgeEnabled = false;
    bool shedEnabled = false;
    bool fallbackEnabled = false;
    /** @} */

    /** @{ Volume: offered == full + fallback + shed + lost. */
    int64_t offered = 0;
    int64_t full = 0;
    int64_t fallback = 0;
    int64_t shed = 0;
    int64_t lost = 0;
    /** @} */

    /** Full-fidelity answers that met their deadline. */
    int64_t sloMet = 0;
    /** sloMet / durationSec: the headline robustness figure. */
    double goodputPerSec = 0;

    /** @{ Latency over answered (full + fallback) requests, ms. */
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    double meanMs = 0;
    double maxMs = 0;
    /** @} */

    /** @{ Robustness mechanics. */
    int64_t retries = 0;
    int64_t hedgesLaunched = 0;
    int64_t hedgeWins = 0;
    int64_t timeouts = 0;
    int64_t breakerOpens = 0;
    double cacheHitRate = 0;
    int64_t cacheHits = 0;
    int64_t cacheMisses = 0;
    /** @} */

    /** @{ Batching and occupancy. */
    int64_t batches = 0;
    double meanBatchSize = 0;
    /** Completed-work time across replicas. */
    double busySec = 0;
    /** Thrown-away work time (timeouts + lost hedge races). */
    double cancelledSec = 0;
    /** (busy + cancelled) / (replicas * horizon). */
    double utilization = 0;
    /** @} */

    /** Simulated time of the last resolution. */
    double horizonSec = 0;

    std::vector<ReplicaReport> perReplica;

    /** @{ Windowed timeline (empty when windowSec == 0). */
    double windowSec = 0;
    double sloTarget = 0;
    /** Total error budget consumed over the run. */
    double budgetConsumed = 0;
    std::vector<ServingWindow> windows;
    std::vector<ServingAlert> alerts;
    /** @} */

    /** @{ Request tracing (sampleEvery == 0 when disabled). */
    int64_t traceSampleEvery = 0;
    /** Requests whose span chains were kept (sampled + exemplars). */
    int64_t tracedRequests = 0;
    /** @} */
};

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_REPORT_HH
