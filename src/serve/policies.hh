/**
 * @file
 * Pure robustness state machines, decoupled from the event loop so
 * they can be unit-tested against a hand-driven simulated clock:
 *
 *  - BackoffPolicy: capped exponential backoff for retries. Attempt
 *    n (1-based) retries after min(base * multiplier^(n-1), cap)
 *    seconds, up to maxAttempts total dispatches.
 *
 *  - CircuitBreaker: per-replica Closed -> Open -> HalfOpen cycle.
 *    openAfterTimeouts consecutive timeouts open the breaker; after
 *    cooldownSec it admits probe traffic (HalfOpen), and
 *    halfOpenSuccesses consecutive probe successes close it again. A
 *    probe timeout re-opens immediately and restarts the cooldown.
 *
 * Both run on explicit simulated time passed by the caller; neither
 * reads a wall clock, so behaviour is deterministic and replayable.
 */

#ifndef GNNMARK_SERVE_POLICIES_HH
#define GNNMARK_SERVE_POLICIES_HH

#include <cstdint>

namespace gnnmark {
namespace serve {

/** Capped exponential backoff schedule for request retries. */
struct BackoffPolicy
{
    /** Delay before the first retry. */
    double baseDelaySec = 0.002;
    /** Growth factor per retry (>= 1). */
    double multiplier = 2.0;
    /** Ceiling on any single delay. */
    double maxDelaySec = 0.02;
    /** Total dispatch attempts (first try + retries). */
    int maxAttempts = 3;

    /**
     * Delay before retry number `retry` (1-based: 1 follows the
     * first failure). Exponential in the retry index, capped.
     */
    double delayForRetry(int retry) const;

    /** Whether a request on `attempts` dispatches may try again. */
    bool canRetry(int attempts) const { return attempts < maxAttempts; }
};

/** Circuit-breaker tuning. */
struct BreakerConfig
{
    /** Consecutive timeouts that trip the breaker open. */
    int openAfterTimeouts = 3;
    /** Open hold time before probes are admitted. */
    double cooldownSec = 0.05;
    /** Consecutive probe successes that close it again. */
    int halfOpenSuccesses = 2;
};

/**
 * One replica's circuit breaker. All transitions are driven by the
 * simulated `now` the caller passes in; Open -> HalfOpen happens
 * lazily inside state()/allows() once the cooldown has elapsed.
 */
class CircuitBreaker
{
  public:
    enum class State : uint8_t { Closed, Open, HalfOpen };

    explicit CircuitBreaker(const BreakerConfig &config = {})
        : config_(config)
    {
    }

    /** Current state at simulated time `now`. */
    State state(double now);

    /** Whether new work may be sent to this replica at `now`. */
    bool allows(double now) { return state(now) != State::Open; }

    /** Record a successful completion observed at `now`. */
    void onSuccess(double now);

    /** Record a timeout observed at `now`. */
    void onTimeout(double now);

    /** Times the breaker tripped open (telemetry). */
    int64_t openCount() const { return open_count_; }

    /**
     * When probes become admissible again. Meaningful only while
     * Open (event-driven callers re-arm their dispatch check here).
     */
    double probeTime() const { return opened_at_ + config_.cooldownSec; }

  private:
    BreakerConfig config_;
    State state_ = State::Closed;
    /** Consecutive timeouts while Closed. */
    int timeout_streak_ = 0;
    /** Consecutive successes while HalfOpen. */
    int probe_streak_ = 0;
    /** When the breaker last opened (cooldown anchor). */
    double opened_at_ = 0;
    int64_t open_count_ = 0;
};

/** Stable lower-case breaker state name, e.g. "half_open". */
const char *breakerStateName(CircuitBreaker::State state);

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_POLICIES_HH
