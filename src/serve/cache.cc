#include "serve/cache.hh"

#include "base/logging.hh"

namespace gnnmark {
namespace serve {

EmbeddingCache::EmbeddingCache(size_t capacity) : capacity_(capacity)
{
    GNN_ASSERT(capacity > 0, "embedding cache needs capacity > 0");
}

bool
EmbeddingCache::lookup(int32_t item, float *value_out)
{
    auto it = map_.find(item);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (value_out)
        *value_out = it->second->value;
    return true;
}

void
EmbeddingCache::insert(int32_t item, float value)
{
    auto it = map_.find(item);
    if (it != map_.end()) {
        it->second->value = value;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        map_.erase(lru_.back().item);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(Entry{item, value});
    map_[item] = lru_.begin();
}

double
EmbeddingCache::hitRate() const
{
    const int64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

} // namespace serve
} // namespace gnnmark
