#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/slo.hh"

namespace gnnmark {
namespace serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Nearest-rank percentile over a sorted sample (q in (0, 1]). */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size() - 1,
                           rank == 0 ? size_t{0} : rank - 1)];
}

} // namespace

ServingSimulator::ServingSimulator(BatchCostTable table,
                                   ServeOptions options)
    : table_(std::move(table)), opt_(std::move(options)),
      injector_(opt_.faults), cache_(opt_.cacheCapacity)
{
    GNN_ASSERT(table_.valid(), "serving needs a priced cost table");
    GNN_ASSERT(opt_.replicas >= 1, "serving needs >= 1 replica");
    GNN_ASSERT(opt_.maxBatch >= 1, "serving needs maxBatch >= 1");
    GNN_ASSERT(opt_.hedgeFactor > 0 && opt_.timeoutFactor > 0,
               "hedge/timeout factors must be positive");
    replicas_.resize(opt_.replicas);
    for (int r = 0; r < opt_.replicas; ++r) {
        replicas_[r].breaker = CircuitBreaker(opt_.breaker);
        replicas_[r].stats.replica = r;
    }
    if (opt_.windowSec > 0) {
        latencyWin_ = std::make_unique<obs::WindowedSeries>(opt_.windowSec);
        queueWin_ = std::make_unique<obs::WindowedSeries>(opt_.windowSec);
    }
    if (opt_.traceSampleEvery > 0)
        tracer_ = std::make_unique<obs::RequestTracer>(opt_.traceSampleEvery);
}

int64_t
ServingSimulator::windowIndex(double t) const
{
    if (t < 0)
        t = 0;
    return static_cast<int64_t>(std::floor(t / opt_.windowSec));
}

void
ServingSimulator::push(double t, EvType type, int64_t a)
{
    events_.push(Ev{t, seq_++, type, a});
}

void
ServingSimulator::resolve(int64_t req, Outcome outcome, double now)
{
    ReqState &s = states_[req];
    GNN_ASSERT(!s.resolved, "request %lld resolved twice",
               static_cast<long long>(req));
    s.resolved = true;
    s.outcome = outcome;
    s.doneSec = now;
    horizon_ = std::max(horizon_, now);
    const bool metSlo =
        outcome == Outcome::Full && now <= requests_[req].deadlineSec;
    if (latencyWin_) {
        // Outcomes tally into the request's *arrival* window (each
        // request exactly once → per-window conservation holds);
        // latency lands in the *resolve* window, what a dashboard
        // tailing completions would plot.
        WindowCounts &wc =
            winCounts_[windowIndex(requests_[req].arrivalSec)];
        ++wc.offered;
        if (metSlo)
            ++wc.sloMet;
        switch (outcome) {
          case Outcome::Full:
            ++wc.full;
            break;
          case Outcome::Fallback:
            ++wc.fallback;
            break;
          case Outcome::Shed:
            ++wc.shed;
            break;
          case Outcome::Lost:
            ++wc.lost;
            break;
        }
        if (outcome == Outcome::Full || outcome == Outcome::Fallback) {
            latencyWin_->observe(
                now, (now - requests_[req].arrivalSec) * 1e3);
        }
    }
    if (tracer_) {
        if (outcome == Outcome::Shed || outcome == Outcome::Lost)
            tracer_->retain(req);
        tracer_->finish(req, outcomeName(outcome));
    }
    switch (outcome) {
      case Outcome::Full:
        ++full_;
        if (now <= requests_[req].deadlineSec)
            ++sloMet_;
        latenciesMs_.push_back((now - requests_[req].arrivalSec) * 1e3);
        if (opt_.fallbackEnabled)
            cache_.insert(requests_[req].item, 0.0f);
        break;
      case Outcome::Fallback:
        ++fallbackCount_;
        latenciesMs_.push_back((now - requests_[req].arrivalSec) * 1e3);
        break;
      case Outcome::Shed:
        ++shed_;
        break;
      case Outcome::Lost:
        ++lost_;
        break;
    }
}

void
ServingSimulator::degrade(int64_t req, Outcome onMiss, double now)
{
    if (opt_.fallbackEnabled &&
        cache_.lookup(requests_[req].item)) {
        resolve(req, Outcome::Fallback, now);
        return;
    }
    resolve(req, onMiss, now);
}

void
ServingSimulator::retryOrDegrade(int64_t req, double now)
{
    Request &r = requests_[req];
    if (opt_.backoff.canRetry(r.attempts)) {
        const double delay = opt_.backoff.delayForRetry(r.attempts);
        // Deadline-aware retry: once the deadline cannot be met even
        // by an instant dispatch after the backoff, retrying only
        // feeds the overload — degrade instead. With shedding off
        // (the naive baseline) retries run until attempts exhaust.
        const bool feasible =
            now + delay + table_.costSec(1) <= r.deadlineSec;
        if (feasible || !opt_.shedEnabled) {
            ++retries_;
            if (tracer_) {
                tracer_->addSpan(req, "backoff", now, now + delay,
                                 "attempt=" +
                                     std::to_string(r.attempts));
            }
            push(now + delay, EvType::Retry, req);
            return;
        }
    }
    degrade(req, Outcome::Lost, now);
}

void
ServingSimulator::admit(int64_t req, double now)
{
    const Request &r = requests_[req];
    if (opt_.shedEnabled) {
        // Deadline feasibility: outstanding work ahead of this
        // request — the residual of every in-flight batch (bounded
        // by its timeout, which is when the replica frees either
        // way) plus the queued batches including this request —
        // spread over replicas currently willing to take work.
        int healthy = 0;
        double backlog = 0;
        for (int i = 0; i < opt_.replicas; ++i) {
            if (injector_.crashed(i, now))
                continue;
            if (opt_.breakerEnabled &&
                !replicas_[i].breaker.allows(now))
                continue;
            ++healthy;
            if (replicas_[i].busy && replicas_[i].activeBatch >= 0) {
                const Batch &b = batches_[replicas_[i].activeBatch];
                const double end = std::min(
                    b.doneSec,
                    b.dispatchSec + opt_.timeoutFactor * b.expectedSec);
                backlog += std::max(0.0, end - now);
            }
        }
        const double queuedBatches = std::ceil(
            (static_cast<double>(queue_.size()) + 1.0) / opt_.maxBatch);
        const double finishEst =
            healthy == 0
                ? kInf
                : now + (backlog +
                         queuedBatches * table_.costSec(opt_.maxBatch)) /
                            healthy;
        if (finishEst > r.deadlineSec) {
            if (tracer_)
                tracer_->addMark(req, "admission_reject", now);
            degrade(req, Outcome::Shed, now);
            if (queueWin_)
                queueWin_->observe(
                    now, static_cast<double>(queue_.size()));
            return;
        }
    }
    states_[req].enqueueSec = now;
    if (tracer_)
        tracer_->addMark(req, "admit", now);
    queue_.push_back(req);
    tryDispatch(now);
    if (queueWin_)
        queueWin_->observe(now, static_cast<double>(queue_.size()));
}

bool
ServingSimulator::replicaAvailable(int r, double now)
{
    if (replicas_[r].busy || injector_.crashed(r, now))
        return false;
    return !opt_.breakerEnabled || replicas_[r].breaker.allows(now);
}

int64_t
ServingSimulator::launchBatch(const std::vector<int64_t> &reqs,
                              int replica, int64_t group, bool hedge,
                              double now)
{
    const int size = static_cast<int>(reqs.size());
    const double expected = table_.costSec(size);
    const double factor = injector_.serviceFactor(replica, now);
    GNN_ASSERT(!replicas_[replica].busy, "replica %d double-booked",
               replica);

    Batch b;
    b.id = static_cast<int64_t>(batches_.size());
    b.group = group;
    b.replica = replica;
    b.isHedge = hedge;
    b.dispatchSec = now;
    b.expectedSec = expected;
    // A crash during service kills the batch: it never completes and
    // only its timeout resolves it.
    const double service = expected * factor;
    const double crash = injector_.crashTime(replica);
    b.doneSec = (std::isinf(service) || now + service >= crash)
                    ? kInf
                    : now + service;
    replicas_[replica].busy = true;
    replicas_[replica].activeBatch = b.id;

    if (std::isfinite(b.doneSec))
        push(b.doneSec, EvType::BatchDone, b.id);
    push(now + opt_.timeoutFactor * expected, EvType::BatchTimeout,
         b.id);
    if (opt_.hedgeEnabled && !hedge &&
        opt_.hedgeFactor < opt_.timeoutFactor) {
        push(now + opt_.hedgeFactor * expected, EvType::HedgeCheck,
             b.id);
    }
    ++dispatched_;
    batchSizeSum_ += size;
    batches_.push_back(b);
    return b.id;
}

void
ServingSimulator::tryDispatch(double now)
{
    while (!queue_.empty()) {
        int freeReplica = -1;
        double earliestProbe = kInf;
        for (int r = 0; r < opt_.replicas; ++r) {
            if (replicaAvailable(r, now)) {
                freeReplica = r;
                break;
            }
            if (opt_.breakerEnabled && !replicas_[r].busy &&
                !injector_.crashed(r, now) &&
                replicas_[r].breaker.state(now) ==
                    CircuitBreaker::State::Open) {
                earliestProbe = std::min(
                    earliestProbe, replicas_[r].breaker.probeTime());
            }
        }
        if (freeReplica < 0) {
            // Idle replicas gated only by open breakers: re-check
            // when the earliest cooldown expires.
            if (std::isfinite(earliestProbe))
                push(earliestProbe, EvType::Dispatch, 0);
            return;
        }

        const int size = static_cast<int>(
            std::min<size_t>(queue_.size(), opt_.maxBatch));
        const double cost = table_.costSec(size);
        const Request &head = requests_[queue_.front()];
        const double forceAt = head.deadlineSec -
                               (1.0 + opt_.batchSlackFactor) * cost;
        if (size < opt_.maxBatch && now < forceAt) {
            // Hold for more arrivals; revisit at the forced time.
            push(forceAt, EvType::Dispatch, 0);
            return;
        }

        Group g;
        g.requests.reserve(size);
        for (int i = 0; i < size; ++i) {
            const int64_t req = queue_.front();
            if (tracer_) {
                tracer_->addSpan(req, "queue_wait",
                                 states_[req].enqueueSec, now);
            }
            g.requests.push_back(req);
            queue_.pop_front();
        }
        const int64_t gid = static_cast<int64_t>(groups_.size());
        for (int64_t req : g.requests)
            ++requests_[req].attempts;
        g.primary = launchBatch(g.requests, freeReplica, gid,
                                /*hedge=*/false, now);
        groups_.push_back(std::move(g));
    }
}

void
ServingSimulator::cancelBatch(Batch &batch, double now)
{
    GNN_ASSERT(!batch.resolved, "cancelling a resolved batch");
    batch.resolved = true;
    replicas_[batch.replica].busy = false;
    replicas_[batch.replica].activeBatch = -1;
    replicas_[batch.replica].stats.cancelledSec +=
        now - batch.dispatchSec;
    ++replicas_[batch.replica].stats.batchesCancelled;
    if (tracer_) {
        const std::string detail =
            "replica=" + std::to_string(batch.replica) +
            (batch.isHedge ? " hedge" : " primary");
        for (int64_t req : groups_[batch.group].requests)
            tracer_->addSpan(req, "cancelled", batch.dispatchSec, now,
                             detail);
    }
}

void
ServingSimulator::onBatchDone(int64_t id, double now)
{
    Batch &b = batches_[id];
    if (b.resolved)
        return; // cancelled or timed out first
    Group &g = groups_[b.group];
    GNN_ASSERT(!g.answered, "group answered twice");

    b.resolved = true;
    replicas_[b.replica].busy = false;
    replicas_[b.replica].activeBatch = -1;
    replicas_[b.replica].stats.busySec += now - b.dispatchSec;
    ++replicas_[b.replica].stats.batchesCompleted;
    if (opt_.breakerEnabled)
        replicas_[b.replica].breaker.onSuccess(now);

    g.answered = true;
    if (b.isHedge)
        ++hedgeWins_;

    if (tracer_) {
        const std::string detail =
            "replica=" + std::to_string(b.replica) +
            " batch=" + std::to_string(b.id) +
            (b.isHedge ? " hedge" : "");
        for (int64_t req : g.requests) {
            tracer_->addSpan(req, "infer", b.dispatchSec, now, detail);
            if (b.isHedge)
                tracer_->retain(req); // hedge-won exemplar
        }
    }

    // First completion wins: the sibling's in-flight work is
    // cancelled and never produces a second answer.
    const int64_t sibId = b.isHedge ? g.primary : g.hedge;
    if (sibId >= 0 && !batches_[sibId].resolved)
        cancelBatch(batches_[sibId], now);

    for (int64_t req : g.requests)
        resolve(req, Outcome::Full, now);
    tryDispatch(now);
}

void
ServingSimulator::onBatchTimeout(int64_t id, double now)
{
    Batch &b = batches_[id];
    if (b.resolved)
        return; // completed or cancelled first
    cancelBatch(b, now);
    ++timeouts_;
    ++replicas_[b.replica].stats.timeouts;
    if (opt_.breakerEnabled)
        replicas_[b.replica].breaker.onTimeout(now);
    if (tracer_) {
        const std::string detail =
            "replica=" + std::to_string(b.replica);
        for (int64_t req : groups_[b.group].requests) {
            tracer_->addMark(req, "timeout", now, detail);
            tracer_->retain(req); // timed-out exemplar
        }
    }

    Group &g = groups_[b.group];
    const int64_t sibId = b.isHedge ? g.primary : g.hedge;
    const bool siblingInFlight = sibId >= 0 && !batches_[sibId].resolved;
    if (!siblingInFlight && !g.answered) {
        for (int64_t req : g.requests) {
            if (!states_[req].resolved)
                retryOrDegrade(req, now);
        }
    }
    tryDispatch(now);
}

void
ServingSimulator::onHedgeCheck(int64_t id, double now)
{
    Batch &b = batches_[id];
    Group &g = groups_[b.group];
    if (b.resolved || g.answered || g.hedge >= 0)
        return;
    int freeReplica = -1;
    for (int r = 0; r < opt_.replicas; ++r) {
        if (replicaAvailable(r, now)) {
            freeReplica = r;
            break;
        }
    }
    if (freeReplica < 0) {
        // No spare capacity this instant — re-arm a short probe
        // rather than giving up; the batch's own resolution (done,
        // timeout or cancel) bounds the number of re-checks.
        push(now + 0.5 * b.expectedSec, EvType::HedgeCheck, id);
        return;
    }
    ++hedges_;
    if (tracer_) {
        const std::string detail =
            "replica=" + std::to_string(freeReplica);
        for (int64_t req : g.requests)
            tracer_->addMark(req, "hedge_launch", now, detail);
    }
    g.hedge = launchBatch(g.requests, freeReplica, b.group,
                          /*hedge=*/true, now);
}

ServingReport
ServingSimulator::run()
{
    requests_ = generateTraffic(opt_.traffic);
    states_.assign(requests_.size(), ReqState{});
    for (const Request &r : requests_)
        push(r.arrivalSec, EvType::Arrival, r.id);

    // Generous safety valve: every request is bounded by attempts *
    // (a handful of events per dispatch), so a loop beyond this is a
    // scheduling bug, not a heavy run.
    const int64_t maxEvents =
        2048 + 64 * static_cast<int64_t>(requests_.size());
    int64_t processed = 0;
    while (!events_.empty()) {
        GNN_ASSERT(++processed <= maxEvents,
                   "serving event loop failed to converge");
        const Ev ev = events_.top();
        events_.pop();
        switch (ev.type) {
          case EvType::Arrival:
            if (tracer_)
                tracer_->addMark(ev.a, "arrival", ev.t);
            admit(ev.a, ev.t);
            break;
          case EvType::Retry:
            if (!states_[ev.a].resolved) {
                if (tracer_)
                    tracer_->addMark(ev.a, "retry_admit", ev.t);
                admit(ev.a, ev.t);
            }
            break;
          case EvType::BatchDone:
            onBatchDone(ev.a, ev.t);
            break;
          case EvType::BatchTimeout:
            onBatchTimeout(ev.a, ev.t);
            break;
          case EvType::HedgeCheck:
            onHedgeCheck(ev.a, ev.t);
            break;
          case EvType::Dispatch:
            tryDispatch(ev.t);
            break;
        }
    }

    // Anything still queued has no replica left to run it (e.g. the
    // whole pool crashed): degrade or lose it at the horizon.
    for (int64_t req : queue_) {
        if (!states_[req].resolved)
            degrade(req, Outcome::Lost, horizon_);
    }
    queue_.clear();
    for (size_t i = 0; i < states_.size(); ++i) {
        GNN_ASSERT(states_[i].resolved,
                   "request %zu never resolved", i);
    }

    ServingReport report = buildReport();
    if (opt_.mirrorMetrics)
        mirrorMetrics(report);
    return report;
}

ServingReport
ServingSimulator::buildReport()
{
    ServingReport rep;
    rep.arrival = arrivalProcessName(opt_.traffic.process);
    rep.faultScenario = opt_.faultScenario;
    rep.ratePerSec = opt_.traffic.ratePerSec;
    rep.durationSec = opt_.traffic.durationSec;
    rep.sloMs = opt_.traffic.sloSec * 1e3;
    rep.replicas = opt_.replicas;
    rep.maxBatch = opt_.maxBatch;
    rep.seed = opt_.traffic.seed;
    rep.hedgeEnabled = opt_.hedgeEnabled;
    rep.shedEnabled = opt_.shedEnabled;
    rep.fallbackEnabled = opt_.fallbackEnabled;

    rep.offered = static_cast<int64_t>(requests_.size());
    rep.full = full_;
    rep.fallback = fallbackCount_;
    rep.shed = shed_;
    rep.lost = lost_;
    GNN_ASSERT(rep.full + rep.fallback + rep.shed + rep.lost ==
                   rep.offered,
               "request conservation violated");

    rep.sloMet = sloMet_;
    rep.goodputPerSec =
        opt_.traffic.durationSec > 0
            ? static_cast<double>(sloMet_) / opt_.traffic.durationSec
            : 0;

    std::vector<double> sorted = latenciesMs_;
    std::sort(sorted.begin(), sorted.end());
    rep.p50Ms = percentile(sorted, 0.50);
    rep.p95Ms = percentile(sorted, 0.95);
    rep.p99Ms = percentile(sorted, 0.99);
    if (!sorted.empty()) {
        double sum = 0;
        for (double v : sorted)
            sum += v;
        rep.meanMs = sum / static_cast<double>(sorted.size());
        rep.maxMs = sorted.back();
    }

    rep.retries = retries_;
    rep.hedgesLaunched = hedges_;
    rep.hedgeWins = hedgeWins_;
    rep.timeouts = timeouts_;
    rep.cacheHitRate = cache_.hitRate();
    rep.cacheHits = cache_.hits();
    rep.cacheMisses = cache_.misses();

    rep.batches = dispatched_;
    rep.meanBatchSize =
        dispatched_ > 0
            ? static_cast<double>(batchSizeSum_) / dispatched_
            : 0;
    rep.horizonSec = horizon_;

    for (Replica &r : replicas_) {
        r.stats.breakerOpens = r.breaker.openCount();
        r.stats.breakerFinal =
            opt_.breakerEnabled
                ? breakerStateName(r.breaker.state(horizon_))
                : "closed";
        rep.breakerOpens += r.stats.breakerOpens;
        rep.busySec += r.stats.busySec;
        rep.cancelledSec += r.stats.cancelledSec;
        rep.perReplica.push_back(r.stats);
    }
    rep.utilization =
        horizon_ > 0 ? (rep.busySec + rep.cancelledSec) /
                           (horizon_ * opt_.replicas)
                     : 0;

    buildTimeline(rep);
    if (tracer_) {
        rep.traceSampleEvery = tracer_->sampleEvery();
        rep.tracedRequests = tracer_->tracedCount();
    }
    return rep;
}

void
ServingSimulator::buildTimeline(ServingReport &rep)
{
    if (!latencyWin_)
        return;
    rep.windowSec = opt_.windowSec;
    rep.sloTarget = opt_.sloTarget;

    // Cover the configured duration even if the run went quiet early,
    // and the full tail if resolutions ran past it.
    const double hor = std::max(horizon_, opt_.traffic.durationSec);
    const std::vector<obs::WindowStats> lat = latencyWin_->series(hor);
    const std::vector<obs::WindowStats> qd = queueWin_->series(hor);
    GNN_ASSERT(lat.size() == qd.size(),
               "timeline series disagree on window count");

    obs::BurnRateMonitor monitor(opt_.sloTarget, opt_.windowSec);
    rep.windows.reserve(lat.size());
    for (size_t i = 0; i < lat.size(); ++i) {
        ServingWindow w;
        w.index = lat[i].index;
        w.startSec = lat[i].startSec;
        w.endSec = lat[i].endSec;
        auto it = winCounts_.find(w.index);
        if (it != winCounts_.end()) {
            w.offered = it->second.offered;
            w.sloMet = it->second.sloMet;
            w.full = it->second.full;
            w.fallback = it->second.fallback;
            w.shed = it->second.shed;
            w.lost = it->second.lost;
        }
        w.resolved = lat[i].count;
        w.p50Ms = lat[i].p50;
        w.p95Ms = lat[i].p95;
        w.p99Ms = lat[i].p99;
        w.goodputPerSec = static_cast<double>(w.sloMet) / opt_.windowSec;
        w.queueDepthMean = qd[i].mean();
        w.queueDepthMax = qd[i].maxValue;

        monitor.addWindow(w.sloMet, w.offered);
        const obs::BurnPoint &p = monitor.points().back();
        w.burnRate = p.burnRate;
        w.budgetConsumed = p.budgetConsumed;
        rep.windows.push_back(w);
    }
    monitor.finish();
    rep.budgetConsumed = monitor.budgetConsumed();
    for (const obs::SloAlert &a : monitor.alerts()) {
        ServingAlert out;
        out.rule = a.rule;
        out.severity = a.severity;
        out.startWindow = a.startWindow;
        out.endWindow = a.endWindow;
        out.startSec = a.startSec;
        out.endSec = a.endSec;
        out.peakBurn = a.peakBurn;
        out.errorFraction = a.errorFraction;
        rep.alerts.push_back(out);
    }
}

std::vector<obs::RequestTrace>
ServingSimulator::drainRequestTraces()
{
    if (!tracer_)
        return {};
    return tracer_->drain();
}

void
ServingSimulator::mirrorMetrics(const ServingReport &rep)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.add("serve.offered", static_cast<double>(rep.offered));
    m.add("serve.full", static_cast<double>(rep.full));
    m.add("serve.fallback", static_cast<double>(rep.fallback));
    m.add("serve.shed", static_cast<double>(rep.shed));
    m.add("serve.lost", static_cast<double>(rep.lost));
    m.add("serve.slo_met", static_cast<double>(rep.sloMet));
    m.add("serve.retries", static_cast<double>(rep.retries));
    m.add("serve.hedges", static_cast<double>(rep.hedgesLaunched));
    m.add("serve.hedge_wins", static_cast<double>(rep.hedgeWins));
    m.add("serve.timeouts", static_cast<double>(rep.timeouts));
    m.add("serve.breaker_opens",
          static_cast<double>(rep.breakerOpens));
    m.add("serve.cache_hits", static_cast<double>(rep.cacheHits));
    m.add("serve.cache_misses",
          static_cast<double>(rep.cacheMisses));
    m.add("serve.batches", static_cast<double>(rep.batches));
    for (double ms : latenciesMs_)
        m.observe("serve.latency_ms", ms);
    // Breaker state as a bounded gauge set: replica counts per state
    // instead of one gauge per replica, so metric cardinality stays
    // flat however many replicas a run configures.
    int64_t closed = 0, halfOpen = 0, open = 0;
    for (const ReplicaReport &r : rep.perReplica) {
        if (r.breakerFinal == "open")
            ++open;
        else if (r.breakerFinal == "half_open")
            ++halfOpen;
        else
            ++closed;
    }
    m.setGauge("serve.breaker.closed", static_cast<double>(closed));
    m.setGauge("serve.breaker.half_open",
               static_cast<double>(halfOpen));
    m.setGauge("serve.breaker.open", static_cast<double>(open));
}

} // namespace serve
} // namespace gnnmark
