/**
 * @file
 * Bounded LRU embedding cache backing the fallback tier: when a
 * request cannot be served at full fidelity (replica timeouts, open
 * breakers, infeasible deadline), a cached — possibly stale —
 * embedding for its item is the degraded answer. Hit/miss/eviction
 * counts feed the serving report's fallback telemetry.
 */

#ifndef GNNMARK_SERVE_CACHE_HH
#define GNNMARK_SERVE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace gnnmark {
namespace serve {

/** Fixed-capacity LRU map from item id to its last embedding. */
class EmbeddingCache
{
  public:
    explicit EmbeddingCache(size_t capacity);

    /**
     * Look `item` up; a hit refreshes recency and writes the cached
     * value to `value_out` (may be null). Counts a hit or a miss.
     */
    bool lookup(int32_t item, float *value_out = nullptr);

    /** Insert/refresh `item`, evicting the LRU entry when full. */
    void insert(int32_t item, float value);

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }

    int64_t hits() const { return hits_; }
    int64_t misses() const { return misses_; }
    int64_t evictions() const { return evictions_; }

    /** Hit fraction over all lookups (0 when never queried). */
    double hitRate() const;

  private:
    struct Entry
    {
        int32_t item;
        float value;
    };

    size_t capacity_;
    /** Most-recently-used first. */
    std::list<Entry> lru_;
    std::unordered_map<int32_t, std::list<Entry>::iterator> map_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t evictions_ = 0;
};

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_CACHE_HH
