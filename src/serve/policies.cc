#include "serve/policies.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {
namespace serve {

double
BackoffPolicy::delayForRetry(int retry) const
{
    GNN_ASSERT(retry >= 1, "retry index is 1-based, got %d", retry);
    GNN_ASSERT(multiplier >= 1.0, "backoff multiplier must be >= 1");
    const double raw =
        baseDelaySec * std::pow(multiplier, retry - 1);
    return std::min(raw, maxDelaySec);
}

CircuitBreaker::State
CircuitBreaker::state(double now)
{
    if (state_ == State::Open &&
        now >= opened_at_ + config_.cooldownSec) {
        state_ = State::HalfOpen;
        probe_streak_ = 0;
    }
    return state_;
}

void
CircuitBreaker::onSuccess(double now)
{
    switch (state(now)) {
      case State::Closed:
        timeout_streak_ = 0;
        break;
      case State::HalfOpen:
        if (++probe_streak_ >= config_.halfOpenSuccesses) {
            state_ = State::Closed;
            timeout_streak_ = 0;
        }
        break;
      case State::Open:
        // Success from a batch dispatched before the trip; the
        // replica still looks suspect, so it does not shorten the
        // cooldown.
        break;
    }
}

void
CircuitBreaker::onTimeout(double now)
{
    switch (state(now)) {
      case State::Closed:
        if (++timeout_streak_ >= config_.openAfterTimeouts) {
            state_ = State::Open;
            opened_at_ = now;
            ++open_count_;
        }
        break;
      case State::HalfOpen:
        // A failed probe re-opens immediately.
        state_ = State::Open;
        opened_at_ = now;
        ++open_count_;
        break;
      case State::Open:
        break;
    }
}

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed:
        return "closed";
      case CircuitBreaker::State::Open:
        return "open";
      case CircuitBreaker::State::HalfOpen:
        return "half_open";
    }
    return "unknown";
}

} // namespace serve
} // namespace gnnmark
