#include "serve/cost_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/rng.hh"
#include "models/ego_net.hh"
#include "ops/exec_context.hh"
#include "sim/gpu_device.hh"

namespace gnnmark {
namespace serve {

double
BatchCostTable::costSec(int batch) const
{
    GNN_ASSERT(valid(), "batch cost table is empty or ragged");
    GNN_ASSERT(batch >= 1, "batch size must be >= 1, got %d", batch);
    if (batch <= sizes.front())
        return costs.front();
    for (size_t i = 1; i < sizes.size(); ++i) {
        if (batch <= sizes[i]) {
            const double t =
                static_cast<double>(batch - sizes[i - 1]) /
                static_cast<double>(sizes[i] - sizes[i - 1]);
            return costs[i - 1] + t * (costs[i] - costs[i - 1]);
        }
    }
    // Beyond the last anchor: continue the final segment's slope.
    if (sizes.size() == 1)
        return costs.back();
    const size_t n = sizes.size();
    const double slope = (costs[n - 1] - costs[n - 2]) /
                         static_cast<double>(sizes[n - 1] - sizes[n - 2]);
    return costs.back() +
           slope * static_cast<double>(batch - sizes.back());
}

BatchCostTable
priceBatchCosts(EgoNetBatchModel &model, GpuDevice &device,
                int maxBatch, uint64_t seed)
{
    GNN_ASSERT(maxBatch >= 1, "maxBatch must be >= 1, got %d",
               maxBatch);
    Rng rng(seed ^ 0x434f5354u); // "COST"

    BatchCostTable table;
    for (int size = 1; size < maxBatch; size *= 2)
        table.sizes.push_back(size);
    table.sizes.push_back(maxBatch);

    auto drawBatch = [&](int size) {
        std::vector<int32_t> items;
        items.reserve(size);
        for (int i = 0; i < size; ++i) {
            items.push_back(static_cast<int32_t>(
                rng.randint(static_cast<uint64_t>(model.numItems()))));
        }
        return items;
    };

    ContextGuard guard(&device);
    for (int size : table.sizes) {
        // Warm pass: populates the device's per-kernel sampling
        // state so the measured pass reflects steady-state costs.
        model.inferBatch(drawBatch(size));
        device.resetTimers();
        model.inferBatch(drawBatch(size));
        double cost = device.wallTimeSec();
        device.resetTimers();
        // Monotone clamp: sampling noise at small batches must not
        // produce a table where bigger batches look cheaper.
        if (!table.costs.empty())
            cost = std::max(cost, table.costs.back());
        table.costs.push_back(cost);
    }
    return table;
}

} // namespace serve
} // namespace gnnmark
