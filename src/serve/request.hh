/**
 * @file
 * The unit of serving work: one per-user recommendation query asking
 * for the embedding of an ego-net rooted at a catalogue item, stamped
 * with an arrival time and an SLO deadline in simulated seconds.
 */

#ifndef GNNMARK_SERVE_REQUEST_HH
#define GNNMARK_SERVE_REQUEST_HH

#include <cstdint>

namespace gnnmark {
namespace serve {

/** One inference query in the open-loop arrival stream. */
struct Request
{
    int64_t id = 0;
    /** Simulated arrival time. */
    double arrivalSec = 0;
    /** Absolute deadline (arrival + SLO). */
    double deadlineSec = 0;
    /** Queried catalogue item (ego-net root). */
    int32_t item = 0;
    /** Dispatch attempts so far (retry accounting). */
    int attempts = 0;
};

/** Terminal state of a request. */
enum class Outcome : uint8_t
{
    Full,     ///< full-fidelity response from a replica
    Fallback, ///< degraded response from the embedding cache
    Shed,     ///< rejected by admission control / deadline infeasibility
    Lost,     ///< never answered (crash, retries exhausted, horizon)
};

/** Human-readable outcome name, e.g. "fallback". */
inline const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Full:
        return "full";
      case Outcome::Fallback:
        return "fallback";
      case Outcome::Shed:
        return "shed";
      case Outcome::Lost:
        return "lost";
    }
    return "unknown";
}

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_REQUEST_HH
