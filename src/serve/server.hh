/**
 * @file
 * The serving simulator: a discrete-event loop over simulated time
 * that feeds an open-loop arrival schedule through admission control,
 * a deadline-aware dynamic batcher, and a pool of replicas whose
 * batch costs come from a priced BatchCostTable and whose health is
 * governed by a FaultInjector.
 *
 * Structure (one event queue, ordered by (time, seq) so ties resolve
 * deterministically):
 *
 *  - Admission: an arriving request is shed (or served degraded from
 *    the embedding cache) when its deadline is already infeasible
 *    given the queue depth; otherwise it joins a central FIFO queue.
 *  - Batching: a batch forms when a replica is free, closing either
 *    at maxBatch or when the head request's deadline slack forces
 *    dispatch (head.deadline - cost - slack*cost).
 *  - Replicas: each runs one batch at a time; service time is the
 *    table cost scaled by the injector's serviceFactor at dispatch.
 *    A crash before the scheduled end means the batch never
 *    completes and only its timeout fires.
 *  - Timeouts/retries: a batch times out after timeoutFactor * its
 *    expected cost; its requests retry with capped exponential
 *    backoff while attempts and deadline slack remain, then degrade
 *    (cache fallback) or are lost.
 *  - Hedging: a batch still running at hedgeFactor * expected cost
 *    gets a duplicate on a free replica; first completion wins and
 *    the loser's work is accounted as cancelled, never as a second
 *    answer.
 *  - Breakers: per-replica circuit breakers open on consecutive
 *    timeouts and re-admit probes after a cooldown.
 *
 * Everything is driven by simulated time and seeded randomness, so
 * the resulting ServingReport is byte-stable across processes.
 */

#ifndef GNNMARK_SERVE_SERVER_HH
#define GNNMARK_SERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "obs/request_trace.hh"
#include "obs/window.hh"
#include "serve/cache.hh"
#include "serve/cost_model.hh"
#include "serve/policies.hh"
#include "serve/report.hh"
#include "serve/request.hh"
#include "serve/traffic.hh"
#include "sim/fault_injector.hh"

namespace gnnmark {
namespace serve {

/** Full configuration of one serving run. */
struct ServeOptions
{
    TrafficConfig traffic;
    int replicas = 4;
    int maxBatch = 16;

    /**
     * Forced-dispatch slack, as a fraction of the batch cost: the
     * batcher holds a partial batch until
     * head.deadline - cost - batchSlackFactor * cost.
     */
    double batchSlackFactor = 0.5;
    /** Batch timeout = timeoutFactor * expected batch cost. */
    double timeoutFactor = 4.0;
    /** Hedge a batch still running after hedgeFactor * expected. */
    double hedgeFactor = 2.0;

    BackoffPolicy backoff;
    BreakerConfig breaker;

    /** @{ Robustness ablation switches. */
    bool hedgeEnabled = true;
    bool shedEnabled = true;
    bool fallbackEnabled = true;
    bool breakerEnabled = true;
    /** @} */

    /** Fallback embedding cache entries. */
    size_t cacheCapacity = 256;

    /** Fault schedule (empty plan = healthy run). */
    FaultPlan faults;
    /** Scenario label echoed into the report. */
    std::string faultScenario = "none";

    /** Mirror final counters/latencies into obs::Metrics. */
    bool mirrorMetrics = true;

    /**
     * Tumbling-window width for the timeline sections of the report
     * (latency/goodput/queue-depth series + burn-rate alerts).
     * 0 disables windowing entirely and the report stays byte-
     * identical to a pre-windowing run.
     */
    double windowSec = 0;
    /** SLO availability target for burn-rate alerting. */
    double sloTarget = 0.99;
    /**
     * Trace every Nth request's span chain (0 disables tracing).
     * Shed, timed-out and hedge-won requests are always kept as
     * exemplars when tracing is on.
     */
    int64_t traceSampleEvery = 0;
};

/** Runs one serving simulation; see the file doc for the model. */
class ServingSimulator
{
  public:
    ServingSimulator(BatchCostTable table, ServeOptions options);

    /** Execute the full event loop and aggregate the report. */
    ServingReport run();

    /**
     * Retained request traces (run() must have completed), ascending
     * by request id — feed them to ChromeTraceWriter::addRequestLanes.
     * Empty when traceSampleEvery == 0.
     */
    std::vector<obs::RequestTrace> drainRequestTraces();

  private:
    enum class EvType : uint8_t
    {
        Arrival,      ///< a = request id
        Retry,        ///< a = request id
        BatchDone,    ///< a = batch id
        BatchTimeout, ///< a = batch id
        HedgeCheck,   ///< a = batch id (the primary)
        Dispatch,     ///< forced-dispatch / breaker-probe check
    };

    struct Ev
    {
        double t = 0;
        int64_t seq = 0;
        EvType type = EvType::Dispatch;
        int64_t a = 0;

        bool
        operator>(const Ev &o) const
        {
            if (t != o.t)
                return t > o.t;
            return seq > o.seq;
        }
    };

    /** One dispatched batch (primary or hedge duplicate). */
    struct Batch
    {
        int64_t id = 0;
        int64_t group = 0;
        int replica = 0;
        bool isHedge = false;
        bool resolved = false;
        double dispatchSec = 0;
        /** Expected (table) cost for this batch size. */
        double expectedSec = 0;
        /** Scheduled completion (+inf if a crash kills it). */
        double doneSec = 0;
    };

    /** A request set in flight: one primary, at most one hedge. */
    struct Group
    {
        int64_t primary = -1;
        int64_t hedge = -1;
        bool answered = false;
        std::vector<int64_t> requests;
    };

    struct ReqState
    {
        bool resolved = false;
        Outcome outcome = Outcome::Lost;
        double doneSec = 0;
        /** When the request last joined the central queue. */
        double enqueueSec = 0;
    };

    /** Per-arrival-window outcome tallies (windowed runs only). */
    struct WindowCounts
    {
        int64_t offered = 0;
        int64_t sloMet = 0;
        int64_t full = 0;
        int64_t fallback = 0;
        int64_t shed = 0;
        int64_t lost = 0;
    };

    struct Replica
    {
        bool busy = false;
        /** Batch currently running here (-1 when idle). */
        int64_t activeBatch = -1;
        CircuitBreaker breaker;
        ReplicaReport stats;
    };

    void push(double t, EvType type, int64_t a);
    void resolve(int64_t req, Outcome outcome, double now);
    /** Post-timeout path: retry if possible, else degrade. */
    void retryOrDegrade(int64_t req, double now);
    /** Cache fallback (hit) or the given miss outcome. */
    void degrade(int64_t req, Outcome onMiss, double now);
    void admit(int64_t req, double now);
    void tryDispatch(double now);
    int64_t launchBatch(const std::vector<int64_t> &reqs, int replica,
                        int64_t group, bool hedge, double now);
    void cancelBatch(Batch &batch, double now);
    void onBatchDone(int64_t id, double now);
    void onBatchTimeout(int64_t id, double now);
    void onHedgeCheck(int64_t id, double now);
    bool replicaAvailable(int r, double now);

    ServingReport buildReport();
    void mirrorMetrics(const ServingReport &report);
    /** Arrival-window index for a time (windowed runs only). */
    int64_t windowIndex(double t) const;
    void buildTimeline(ServingReport &rep);

    BatchCostTable table_;
    ServeOptions opt_;
    FaultInjector injector_;

    std::vector<Request> requests_;
    std::vector<ReqState> states_;
    std::vector<Replica> replicas_;
    std::vector<Batch> batches_;
    std::vector<Group> groups_;
    EmbeddingCache cache_;

    std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events_;
    int64_t seq_ = 0;
    std::deque<int64_t> queue_;

    /** @{ Aggregates gathered during the run. */
    std::vector<double> latenciesMs_;
    int64_t full_ = 0, fallbackCount_ = 0, shed_ = 0, lost_ = 0;
    int64_t sloMet_ = 0, retries_ = 0, hedges_ = 0, hedgeWins_ = 0;
    int64_t timeouts_ = 0, dispatched_ = 0;
    int64_t batchSizeSum_ = 0;
    double horizon_ = 0;
    /** @} */

    /** @{ Windowed observability (null when windowSec == 0). */
    std::unique_ptr<obs::WindowedSeries> latencyWin_; ///< resolve time, ms
    std::unique_ptr<obs::WindowedSeries> queueWin_;   ///< arrival depth
    std::map<int64_t, WindowCounts> winCounts_;       ///< by arrival window
    /** @} */

    /** Request-scoped tracer (null when traceSampleEvery == 0). */
    std::unique_ptr<obs::RequestTracer> tracer_;
};

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_SERVER_HH
