/**
 * @file
 * Open-loop traffic generation: the arrival schedule is drawn up
 * front from a seeded Rng, so a run's offered load is independent of
 * how the server copes with it (requests keep arriving while the
 * system drowns — the property that makes overload experiments
 * honest) and identical across processes for a fixed config.
 *
 * Three arrival processes:
 *  - poisson: homogeneous Poisson at ratePerSec.
 *  - bursty:  Markov-modulated Poisson (exponential ON/OFF phases;
 *             ON bursts at burstFactor x the base rate, OFF rate is
 *             rebalanced so the long-run mean stays ratePerSec).
 *  - diurnal: sinusoidal rate (thinning against the peak), one
 *             "day" per diurnalPeriodSec.
 *
 * Item popularity follows an approximate power law (item =
 * floor(N * u^popularitySkew)), giving the head-heavy reuse real
 * recommendation traffic shows — and the fallback cache a fighting
 * chance.
 */

#ifndef GNNMARK_SERVE_TRAFFIC_HH
#define GNNMARK_SERVE_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace gnnmark {
namespace serve {

/** Arrival process family. */
enum class ArrivalProcess : uint8_t
{
    Poisson,
    Bursty,
    Diurnal,
};

/** Stable lower-case name, e.g. "poisson". */
const char *arrivalProcessName(ArrivalProcess process);

/** Parse a process name; returns false on unknown input. */
bool parseArrivalProcess(const std::string &name,
                         ArrivalProcess &process);

/** Knobs for one generated arrival schedule. */
struct TrafficConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Long-run mean arrival rate (requests per simulated second). */
    double ratePerSec = 500;
    /** Arrivals stop after this horizon (the server then drains). */
    double durationSec = 4.0;
    /** Per-request SLO: deadline = arrival + sloSec. */
    double sloSec = 0.05;
    uint64_t seed = 42;

    /** Item id space; queries hit [0, catalogItems). */
    int64_t catalogItems = 1000;
    /** Power-law skew (>= 1); higher concentrates on the head. */
    double popularitySkew = 3.0;

    /** @{ Bursty (MMPP) knobs. */
    double burstFactor = 4.0;     ///< ON rate multiplier
    double burstOnFraction = 0.2; ///< long-run fraction of time ON
    double burstPeriodSec = 1.0;  ///< mean ON+OFF cycle length
    /** @} */

    /** @{ Diurnal knobs. */
    double diurnalPeriodSec = 4.0; ///< one synthetic "day"
    double diurnalMinFactor = 0.25; ///< trough rate / peak rate
    /** @} */
};

/**
 * Generate the full arrival schedule: requests sorted by arrival
 * time, ids dense in arrival order. Deterministic in the config.
 */
std::vector<Request> generateTraffic(const TrafficConfig &config);

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_TRAFFIC_HH
