/**
 * @file
 * Batch cost model: what a batch of K queries costs on a replica.
 *
 * Costs are not invented — they are *priced* by running the real
 * ego-net inference path (EgoNetBatchModel::inferBatch) on a
 * simulated GpuDevice at a handful of anchor batch sizes (powers of
 * two up to the max batch) and measuring the device's wallTimeSec
 * delta for each. The serving simulator then interpolates piecewise-
 * linearly between anchors, so batching economics (fixed per-batch
 * overhead amortised across queries) come from the sim's own kernel
 * and transfer models rather than a hand-tuned constant.
 *
 * The simulator consumes only the BatchCostTable, so unit tests can
 * substitute a synthetic table without building a model or a device.
 */

#ifndef GNNMARK_SERVE_COST_MODEL_HH
#define GNNMARK_SERVE_COST_MODEL_HH

#include <cstdint>
#include <vector>

namespace gnnmark {

class EgoNetBatchModel;
class GpuDevice;

namespace serve {

/** Piecewise-linear batch-size -> service-time table. */
struct BatchCostTable
{
    /** Ascending anchor batch sizes (first is 1). */
    std::vector<int> sizes;
    /** Measured cost per anchor, seconds (non-decreasing). */
    std::vector<double> costs;

    /**
     * Interpolated cost of a batch of `batch` queries. Linear
     * between anchors; beyond the last anchor, extrapolates with the
     * final segment's slope (batching keeps amortising).
     */
    double costSec(int batch) const;

    bool valid() const { return sizes.size() >= 1 && sizes.size() == costs.size(); }
};

/**
 * Price anchor batch sizes {1, 2, 4, ..., >= maxBatch} by running
 * `model` under `device` and measuring wall-time deltas. Each anchor
 * runs once to warm the device's per-kernel sampling caches and once
 * for the measurement. Costs are clamped non-decreasing in batch
 * size so interpolation stays monotone.
 */
BatchCostTable priceBatchCosts(EgoNetBatchModel &model,
                               GpuDevice &device, int maxBatch,
                               uint64_t seed);

} // namespace serve
} // namespace gnnmark

#endif // GNNMARK_SERVE_COST_MODEL_HH
