#include "serve/traffic.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/power_law.hh"
#include "base/rng.hh"

namespace gnnmark {
namespace serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Next arrival gap of a Poisson process (rate > 0). */
double
expGap(Rng &rng, double rate)
{
    double u = 0;
    while (u == 0.0)
        u = rng.uniform();
    return -std::log(u) / rate;
}

/** Head-heavy item draw via the shared inverse-CDF sampler. */
int32_t
drawItem(Rng &rng, const PowerLawSampler &popularity)
{
    return static_cast<int32_t>(popularity.draw(rng));
}

void
appendPoisson(Rng &rng, const TrafficConfig &cfg,
              std::vector<double> &arrivals)
{
    for (double t = expGap(rng, cfg.ratePerSec); t < cfg.durationSec;
         t += expGap(rng, cfg.ratePerSec)) {
        arrivals.push_back(t);
    }
}

void
appendBursty(Rng &rng, const TrafficConfig &cfg,
             std::vector<double> &arrivals)
{
    const double f = cfg.burstOnFraction;
    GNN_ASSERT(f > 0 && f < 1,
               "burstOnFraction must be in (0, 1), got %f", f);
    const double on_rate = cfg.burstFactor * cfg.ratePerSec;
    // Rebalance the OFF rate so the long-run mean stays ratePerSec;
    // a burst factor above 1/f would need a negative OFF rate, so
    // clamp at zero (silent troughs) and accept a hotter mean.
    const double off_rate = std::max(
        0.0, cfg.ratePerSec * (1.0 - cfg.burstFactor * f) / (1.0 - f));
    bool on = false; // start quiet: bursts interrupt a calm baseline
    double phase_begin = 0;
    while (phase_begin < cfg.durationSec) {
        const double mean_len =
            on ? f * cfg.burstPeriodSec : (1.0 - f) * cfg.burstPeriodSec;
        const double phase_end =
            phase_begin + expGap(rng, 1.0 / mean_len);
        const double rate = on ? on_rate : off_rate;
        if (rate > 0) {
            for (double t = phase_begin + expGap(rng, rate);
                 t < std::min(phase_end, cfg.durationSec);
                 t += expGap(rng, rate)) {
                arrivals.push_back(t);
            }
        }
        phase_begin = phase_end;
        on = !on;
    }
}

void
appendDiurnal(Rng &rng, const TrafficConfig &cfg,
              std::vector<double> &arrivals)
{
    GNN_ASSERT(cfg.diurnalMinFactor >= 0 && cfg.diurnalMinFactor <= 1,
               "diurnalMinFactor must be in [0, 1], got %f",
               cfg.diurnalMinFactor);
    // ratePerSec is the *peak*; thin a homogeneous process at the
    // peak against the sinusoid (trough at t = 0, peak mid-period).
    const double peak = cfg.ratePerSec;
    auto rateAt = [&](double t) {
        const double phase =
            2.0 * kPi * t / cfg.diurnalPeriodSec - 0.5 * kPi;
        const double swing = 0.5 * (1.0 + std::sin(phase));
        return peak * (cfg.diurnalMinFactor +
                       (1.0 - cfg.diurnalMinFactor) * swing);
    };
    for (double t = expGap(rng, peak); t < cfg.durationSec;
         t += expGap(rng, peak)) {
        if (rng.uniform() < rateAt(t) / peak)
            arrivals.push_back(t);
    }
}

} // namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Bursty:
        return "bursty";
      case ArrivalProcess::Diurnal:
        return "diurnal";
    }
    return "unknown";
}

bool
parseArrivalProcess(const std::string &name, ArrivalProcess &process)
{
    for (ArrivalProcess p :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::Diurnal}) {
        if (name == arrivalProcessName(p)) {
            process = p;
            return true;
        }
    }
    return false;
}

std::vector<Request>
generateTraffic(const TrafficConfig &config)
{
    GNN_ASSERT(config.ratePerSec > 0, "traffic needs ratePerSec > 0");
    GNN_ASSERT(config.durationSec > 0, "traffic needs durationSec > 0");
    GNN_ASSERT(config.sloSec > 0, "traffic needs sloSec > 0");
    GNN_ASSERT(config.catalogItems > 0,
               "traffic needs catalogItems > 0");

    Rng rng(config.seed ^ 0x54524146u); // "TRAF"
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(
        config.ratePerSec * config.durationSec * 1.25) + 16);
    switch (config.process) {
      case ArrivalProcess::Poisson:
        appendPoisson(rng, config, arrivals);
        break;
      case ArrivalProcess::Bursty:
        appendBursty(rng, config, arrivals);
        break;
      case ArrivalProcess::Diurnal:
        appendDiurnal(rng, config, arrivals);
        break;
    }
    // Phased generators emit in order already; sort defensively so
    // the schedule contract never depends on the process family.
    std::sort(arrivals.begin(), arrivals.end());

    std::vector<Request> out;
    out.reserve(arrivals.size());
    const PowerLawSampler popularity(config.catalogItems,
                                     config.popularitySkew);
    for (double t : arrivals) {
        Request r;
        r.id = static_cast<int64_t>(out.size());
        r.arrivalSec = t;
        r.deadlineSec = t + config.sloSec;
        r.item = drawItem(rng, popularity);
        out.push_back(r);
    }
    return out;
}

} // namespace serve
} // namespace gnnmark
