/**
 * @file
 * Optimisers. Parameter updates mutate the parameter tensors in place
 * and emit element-wise kernels, so the optimiser step is visible to
 * the profiler just as it is under nvprof.
 */

#ifndef GNNMARK_NN_OPTIM_HH
#define GNNMARK_NN_OPTIM_HH

#include <functional>
#include <vector>

#include "ops/variable.hh"

namespace gnnmark {
namespace nn {

/** Optimiser over a fixed parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Variable> params);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Clear the gradients of all managed parameters. */
    void zeroGrad();

    const std::vector<Variable> &params() const { return params_; }

    /** Total parameter bytes (the DDP all-reduce payload). */
    double parameterBytes() const;

    /**
     * Enumerate the optimiser's internal state for checkpointing, in a
     * fixed order: every slot tensor (momentum/moment buffers) through
     * `slot`, every integer scalar (step counters) through `scalar`.
     * The base optimiser has none; subclasses override.
     */
    virtual void
    visitState(const std::function<void(Tensor &)> &slot,
               const std::function<void(int64_t &)> &scalar)
    {
        (void)slot;
        (void)scalar;
    }

  protected:
    std::vector<Variable> params_;
};

/** SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
    void step() override;
    void visitState(const std::function<void(Tensor &)> &slot,
                    const std::function<void(int64_t &)> &scalar) override;

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba), the optimiser the GNNMark workloads use. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f);
    void step() override;
    void visitState(const std::function<void(Tensor &)> &slot,
                    const std::function<void(int64_t &)> &scalar) override;

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::vector<Tensor> m_, v_;
};

} // namespace nn
} // namespace gnnmark

#endif // GNNMARK_NN_OPTIM_HH
