/**
 * @file
 * Loss helpers and metrics built from the differentiable ops.
 */

#ifndef GNNMARK_NN_LOSS_HH
#define GNNMARK_NN_LOSS_HH

#include <cstdint>
#include <vector>

#include "ops/var_ops.hh"

namespace gnnmark {
namespace nn {

/** Softmax cross-entropy on logits [N, C] -> scalar. */
Variable crossEntropy(const Variable &logits,
                      const std::vector<int32_t> &labels);

/** Max-margin ranking loss mean(relu(neg - pos + margin)) -> scalar. */
Variable maxMarginLoss(const Variable &pos_scores,
                       const Variable &neg_scores, float margin);

/** Fraction of rows whose argmax matches the label. */
double accuracy(const Tensor &logits, const std::vector<int32_t> &labels);

} // namespace nn
} // namespace gnnmark

#endif // GNNMARK_NN_LOSS_HH
