#include "nn/module.hh"

namespace gnnmark {
namespace nn {

std::vector<Variable>
Module::parameters() const
{
    std::vector<Variable> out = params_;
    for (const Module *child : children_) {
        auto sub = child->parameters();
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

void
Module::zeroGrad()
{
    for (Variable &p : params_)
        p.zeroGrad();
    for (Module *child : children_)
        child->zeroGrad();
}

int64_t
Module::parameterCount() const
{
    int64_t count = 0;
    for (const Variable &p : parameters())
        count += p.value().numel();
    return count;
}

Variable
Module::addParam(Tensor init)
{
    params_.push_back(Variable::param(std::move(init)));
    return params_.back();
}

void
Module::addChild(Module *child)
{
    children_.push_back(child);
}

} // namespace nn
} // namespace gnnmark
