#include "nn/layers.hh"

#include <cmath>

#include "base/logging.hh"

namespace gnnmark {
namespace nn {

namespace {

/** Glorot-uniform initialisation for a [in, out] weight. */
Tensor
glorot(int64_t in, int64_t out, Rng &rng)
{
    const float bound =
        std::sqrt(6.0f / static_cast<float>(in + out));
    return Tensor::uniform({in, out}, rng, -bound, bound);
}

} // namespace

Linear::Linear(int64_t in, int64_t out, Rng &rng, bool bias)
    : in_(in), out_(out), weight_(addParam(glorot(in, out, rng)))
{
    if (bias)
        bias_ = addParam(Tensor::zeros({out}));
}

Variable
Linear::forward(const Variable &x) const
{
    Variable y = ag::gemm(x, weight_);
    if (bias_.defined())
        y = ag::addBiasRows(y, bias_);
    return y;
}

Embedding::Embedding(int64_t count, int64_t dim, Rng &rng)
    : dim_(dim),
      table_(addParam(Tensor::randn({count, dim}, rng, 0.1f)))
{
}

Variable
Embedding::forward(const std::vector<int32_t> &idx) const
{
    return ag::indexSelectRows(table_, idx);
}

BatchNorm1d::BatchNorm1d(int64_t features, float eps)
    : eps_(eps), gamma_(addParam(Tensor::ones({features}))),
      beta_(addParam(Tensor::zeros({features})))
{
}

Variable
BatchNorm1d::forward(const Variable &x) const
{
    return ag::batchNorm(x, gamma_, beta_, eps_);
}

LayerNorm::LayerNorm(int64_t features, float eps)
    : eps_(eps), gamma_(addParam(Tensor::ones({features}))),
      beta_(addParam(Tensor::zeros({features})))
{
}

Variable
LayerNorm::forward(const Variable &x) const
{
    return ag::layerNorm(x, gamma_, beta_, eps_);
}

LstmCell::LstmCell(int64_t input, int64_t hidden, Rng &rng)
    : hidden_(hidden), gates_(input + hidden, 4 * hidden, rng)
{
    addChild(&gates_);
}

LstmCell::State
LstmCell::forward(const Variable &x, const State &prev) const
{
    Variable fused = gates_.forward(ag::concatCols(x, prev.h));
    Variable i = ag::sigmoid(ag::sliceCols(fused, 0, hidden_));
    Variable f =
        ag::sigmoid(ag::sliceCols(fused, hidden_, 2 * hidden_));
    Variable g =
        ag::tanh(ag::sliceCols(fused, 2 * hidden_, 3 * hidden_));
    Variable o =
        ag::sigmoid(ag::sliceCols(fused, 3 * hidden_, 4 * hidden_));
    State next;
    next.c = ag::add(ag::mul(f, prev.c), ag::mul(i, g));
    next.h = ag::mul(o, ag::tanh(next.c));
    return next;
}

LstmCell::State
LstmCell::initial(int64_t n) const
{
    State s;
    s.h = Variable(Tensor::zeros({n, hidden_}));
    s.c = Variable(Tensor::zeros({n, hidden_}));
    return s;
}

MultiheadAttention::MultiheadAttention(int64_t dim, int heads, Rng &rng)
    : dim_(dim), heads_(heads), projQ_(dim, dim, rng),
      projK_(dim, dim, rng), projV_(dim, dim, rng),
      projOut_(dim, dim, rng)
{
    GNN_ASSERT(dim % heads == 0, "attention dim %lld not divisible by %d",
               static_cast<long long>(dim), heads);
    addChild(&projQ_);
    addChild(&projK_);
    addChild(&projV_);
    addChild(&projOut_);
}

Variable
MultiheadAttention::forward(const Variable &q, const Variable &k,
                            const Variable &v) const
{
    const int64_t dh = dim_ / heads_;
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

    Variable pq = projQ_.forward(q);
    Variable pk = projK_.forward(k);
    Variable pv = projV_.forward(v);

    Variable out;
    for (int h = 0; h < heads_; ++h) {
        Variable qh = ag::sliceCols(pq, h * dh, (h + 1) * dh);
        Variable kh = ag::sliceCols(pk, h * dh, (h + 1) * dh);
        Variable vh = ag::sliceCols(pv, h * dh, (h + 1) * dh);
        Variable scores =
            ag::scale(ag::gemm(qh, kh, {.trans_b = true}), inv_sqrt);
        Variable attn = ag::softmaxRows(scores);
        Variable ctx = ag::gemm(attn, vh);
        out = h == 0 ? ctx : ag::concatCols(out, ctx);
    }
    return projOut_.forward(out);
}

Variable
glu(const Variable &a, const Variable &b)
{
    return ag::mul(a, ag::sigmoid(b));
}

} // namespace nn
} // namespace gnnmark
