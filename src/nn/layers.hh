/**
 * @file
 * Common layers: Linear, Embedding, BatchNorm/LayerNorm wrappers,
 * LSTMCell and scaled-dot attention.
 */

#ifndef GNNMARK_NN_LAYERS_HH
#define GNNMARK_NN_LAYERS_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "nn/module.hh"
#include "ops/var_ops.hh"

namespace gnnmark {
namespace nn {

/** Fully connected layer y = x W + b, Glorot-initialised. */
class Linear : public Module
{
  public:
    Linear(int64_t in, int64_t out, Rng &rng, bool bias = true);

    /** x is [N, in]; returns [N, out]. */
    Variable forward(const Variable &x) const;

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }

  private:
    int64_t in_, out_;
    Variable weight_; ///< [in, out]
    Variable bias_;   ///< [out] (undefined if bias = false)
};

/** Token/node embedding table with IndexSelect lookups. */
class Embedding : public Module
{
  public:
    Embedding(int64_t count, int64_t dim, Rng &rng);

    /** Look up rows; returns [idx.size(), dim]. */
    Variable forward(const std::vector<int32_t> &idx) const;

    int64_t dim() const { return dim_; }

  private:
    int64_t dim_;
    Variable table_;
};

/** Learnable batch norm over [N, F]. */
class BatchNorm1d : public Module
{
  public:
    explicit BatchNorm1d(int64_t features, float eps = 1e-5f);
    Variable forward(const Variable &x) const;

  private:
    float eps_;
    Variable gamma_, beta_;
};

/** Learnable row-wise layer norm over [N, F]. */
class LayerNorm : public Module
{
  public:
    explicit LayerNorm(int64_t features, float eps = 1e-5f);
    Variable forward(const Variable &x) const;

  private:
    float eps_;
    Variable gamma_, beta_;
};

/** LSTM cell with a fused gate projection ([x, h] -> 4H), as cuDNN
 *  and production PyTorch models run it. */
class LstmCell : public Module
{
  public:
    LstmCell(int64_t input, int64_t hidden, Rng &rng);

    struct State
    {
        Variable h; ///< [N, hidden]
        Variable c; ///< [N, hidden]
    };

    /** One step; x is [N, input]. */
    State forward(const Variable &x, const State &prev) const;

    /** Zero-filled initial state for a batch of n. */
    State initial(int64_t n) const;

    int64_t hidden() const { return hidden_; }

  private:
    int64_t hidden_;
    Linear gates_; ///< [input + hidden] -> 4 * hidden (i, f, g, o)
};

/** Multi-head scaled-dot-product attention (the GEMM-heavy core of
 *  GraphWriter's graph transformer). */
class MultiheadAttention : public Module
{
  public:
    MultiheadAttention(int64_t dim, int heads, Rng &rng);

    /**
     * q [Nq, dim], k/v [Nk, dim]; returns [Nq, dim].
     */
    Variable forward(const Variable &q, const Variable &k,
                     const Variable &v) const;

  private:
    int64_t dim_;
    int heads_;
    Linear projQ_, projK_, projV_, projOut_;
};

/** Gated linear unit: a * sigmoid(b). */
Variable glu(const Variable &a, const Variable &b);

} // namespace nn
} // namespace gnnmark

#endif // GNNMARK_NN_LAYERS_HH
