#include "nn/loss.hh"

#include "base/logging.hh"
#include "obs/span.hh"
#include "ops/reduce.hh"

namespace gnnmark {
namespace nn {

Variable
crossEntropy(const Variable &logits, const std::vector<int32_t> &labels)
{
    GNN_SPAN("loss.cross_entropy");
    return ag::nllLoss(ag::logSoftmaxRows(logits), labels);
}

Variable
maxMarginLoss(const Variable &pos_scores, const Variable &neg_scores,
              float margin)
{
    GNN_SPAN("loss.max_margin");
    Variable diff = ag::sub(neg_scores, pos_scores);
    return ag::meanAll(ag::relu(ag::addScalar(diff, margin)));
}

double
accuracy(const Tensor &logits, const std::vector<int32_t> &labels)
{
    GNN_ASSERT(logits.dim() == 2 &&
               logits.size(0) == static_cast<int64_t>(labels.size()),
               "accuracy: shape mismatch");
    std::vector<int32_t> pred = ops::argmaxRows(logits);
    int64_t correct = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
        if (pred[i] == labels[i])
            ++correct;
    }
    return labels.empty() ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(labels.size());
}

} // namespace nn
} // namespace gnnmark
