/**
 * @file
 * Base class for neural-network modules: parameter registration,
 * recursive collection, and gradient reset.
 */

#ifndef GNNMARK_NN_MODULE_HH
#define GNNMARK_NN_MODULE_HH

#include <vector>

#include "ops/variable.hh"

namespace gnnmark {
namespace nn {

/** A container of trainable parameters (possibly nested). */
class Module
{
  public:
    virtual ~Module() = default;

    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** All parameters, including those of registered children. */
    std::vector<Variable> parameters() const;

    /** Drop accumulated gradients on every parameter. */
    void zeroGrad();

    /** Total number of trainable scalars. */
    int64_t parameterCount() const;

  protected:
    /** Register a trainable parameter (requires-grad leaf). */
    Variable addParam(Tensor init);

    /** Register a child whose parameters are aggregated. */
    void addChild(Module *child);

  private:
    std::vector<Variable> params_;
    std::vector<Module *> children_;
};

} // namespace nn
} // namespace gnnmark

#endif // GNNMARK_NN_MODULE_HH
