#include "nn/optim.hh"

#include <cmath>

#include "base/logging.hh"
#include "obs/span.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace nn {

namespace {

/** Emit the fused per-parameter update kernel. */
void
emitUpdate(const char *name, const Tensor &param, int fp_per_elem,
           int sfu_per_elem)
{
    ElementwiseSpec spec;
    spec.name = name;
    spec.elems = param.numel();
    spec.inAddrs = {param.deviceAddr()};
    spec.outAddrs = {param.deviceAddr()};
    spec.fp32PerElem = fp_per_elem;
    spec.sfuPerElem = sfu_per_elem;
    spec.int32PerElem = 12;
    spec.elemBytes = deviceElemBytes();
    emitElementwise(spec);
}

} // namespace

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params))
{
    for (const Variable &p : params_) {
        GNN_ASSERT(p.defined() && p.requiresGrad(),
                   "optimiser given a non-trainable parameter");
    }
}

void
Optimizer::zeroGrad()
{
    for (Variable &p : params_)
        p.zeroGrad();
}

double
Optimizer::parameterBytes() const
{
    double bytes = 0;
    for (const Variable &p : params_)
        bytes += static_cast<double>(p.value().numel()) * 4.0;
    return bytes;
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    if (momentum_ > 0.0f) {
        velocity_.reserve(params_.size());
        for (const Variable &p : params_)
            velocity_.push_back(Tensor::zeros(p.value().shape()));
    }
}

void
Sgd::step()
{
    GNN_SPAN("optim.sgd.step");
    for (size_t i = 0; i < params_.size(); ++i) {
        Variable &p = params_[i];
        if (!p.hasGrad())
            continue;
        float *pv = p.value().data();
        const float *pg = p.grad().data();
        if (momentum_ > 0.0f) {
            float *vel = velocity_[i].data();
            for (int64_t j = 0; j < p.value().numel(); ++j) {
                vel[j] = momentum_ * vel[j] + pg[j];
                pv[j] -= lr_ * vel[j];
            }
            emitUpdate("optim_sgd_momentum", p.value(), 3, 0);
        } else {
            for (int64_t j = 0; j < p.value().numel(); ++j)
                pv[j] -= lr_ * pg[j];
            emitUpdate("optim_sgd", p.value(), 1, 0);
        }
    }
}

void
Sgd::visitState(const std::function<void(Tensor &)> &slot,
                const std::function<void(int64_t &)> &scalar)
{
    (void)scalar;
    for (Tensor &v : velocity_)
        slot(v);
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Variable &p : params_) {
        m_.push_back(Tensor::zeros(p.value().shape()));
        v_.push_back(Tensor::zeros(p.value().shape()));
    }
}

void
Adam::step()
{
    GNN_SPAN("optim.adam.step");
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        Variable &p = params_[i];
        if (!p.hasGrad())
            continue;
        float *pv = p.value().data();
        const float *pg = p.grad().data();
        float *pm = m_[i].data();
        float *pvv = v_[i].data();
        for (int64_t j = 0; j < p.value().numel(); ++j) {
            const float g = pg[j];
            pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * g;
            pvv[j] = beta2_ * pvv[j] + (1.0f - beta2_) * g * g;
            const float mhat = pm[j] / bc1;
            const float vhat = pvv[j] / bc2;
            pv[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
        emitUpdate("optim_adam", p.value(), 8, 1);
    }
}

void
Adam::visitState(const std::function<void(Tensor &)> &slot,
                 const std::function<void(int64_t &)> &scalar)
{
    scalar(t_);
    for (Tensor &t : m_)
        slot(t);
    for (Tensor &t : v_)
        slot(t);
}

} // namespace nn
} // namespace gnnmark
