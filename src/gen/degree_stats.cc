#include "gen/degree_stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {
namespace gen {

DegreeAccumulator::DegreeAccumulator(int64_t num_vertices,
                                     int64_t max_tracked)
    : numVertices_(num_vertices)
{
    GNN_ASSERT(num_vertices > 0 && max_tracked > 0,
               "DegreeAccumulator: bad sizes");
    stride_ = 1;
    while (numVertices_ / stride_ > max_tracked)
        stride_ *= 2;
    counts_.assign(
        static_cast<size_t>((numVertices_ + stride_ - 1) / stride_), 0);
}

void
DegreeAccumulator::accumulate(const EdgeBlock &block)
{
    for (const auto &[u, v] : block.edges) {
        if (u % stride_ == 0)
            ++counts_[static_cast<size_t>(u / stride_)];
        if (v % stride_ == 0)
            ++counts_[static_cast<size_t>(v / stride_)];
        endpoints_ += 2;
    }
}

int64_t
DegreeAccumulator::residentBytes() const
{
    return static_cast<int64_t>(counts_.size() * sizeof(int32_t));
}

DegreeStats
DegreeAccumulator::finalize() const
{
    DegreeStats stats;
    stats.vertices = static_cast<int64_t>(counts_.size());
    stats.sampleStride = stride_;
    stats.endpointsCounted = endpoints_;
    if (counts_.empty())
        return stats;

    std::map<int64_t, int64_t> histogram; // degree -> vertex count
    int64_t min_deg = counts_[0], max_deg = counts_[0];
    double sum = 0.0;
    for (int32_t c : counts_) {
        min_deg = std::min<int64_t>(min_deg, c);
        max_deg = std::max<int64_t>(max_deg, c);
        sum += static_cast<double>(c);
        ++histogram[c];
    }
    stats.minDegree = min_deg;
    stats.maxDegree = max_deg;
    stats.meanDegree = sum / static_cast<double>(counts_.size());
    stats.distinctDegrees = static_cast<int64_t>(histogram.size());

    int64_t modal_count = 0;
    for (const auto &[deg, count] : histogram) {
        if (count > modal_count) {
            modal_count = count;
            stats.modalDegree = deg;
        }
    }
    stats.modalFraction = static_cast<double>(modal_count) /
                          static_cast<double>(counts_.size());

    // log-log least squares over degrees >= 1; needs at least three
    // distinct positive degrees to mean anything.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int64_t points = 0;
    for (const auto &[deg, count] : histogram) {
        if (deg < 1)
            continue;
        const double x = std::log(static_cast<double>(deg));
        const double y = std::log(static_cast<double>(count));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++points;
    }
    if (points >= 3) {
        const double denom =
            static_cast<double>(points) * sxx - sx * sx;
        if (denom > 1e-12) {
            stats.powerLawSlope =
                (static_cast<double>(points) * sxy - sx * sy) / denom;
            stats.slopeValid = true;
        }
    }
    return stats;
}

} // namespace gen
} // namespace gnnmark
