#include "gen/edge_stream.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "gen/families.hh"
#include "obs/metrics.hh"

namespace gnnmark {
namespace gen {

namespace {

/** Collects a unit range's edges into one block. */
class BlockSink : public EdgeSink
{
  public:
    explicit BlockSink(EdgeBlock &block) : block_(block) {}

    void
    edge(int64_t u, int64_t v) override
    {
        block_.edges.emplace_back(u, v);
    }

  private:
    EdgeBlock &block_;
};

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

uint64_t
edgeChecksum(uint64_t state, int64_t u, int64_t v)
{
    constexpr uint64_t kPrime = 0x100000001b3ULL;
    const uint64_t words[2] = {static_cast<uint64_t>(u),
                               static_cast<uint64_t>(v)};
    for (uint64_t w : words) {
        for (int byte = 0; byte < 8; ++byte) {
            state ^= (w >> (byte * 8)) & 0xff;
            state *= kPrime;
        }
    }
    return state;
}

ChunkedEdgeStream::ChunkedEdgeStream(const GeneratorConfig &cfg)
    : cfg_(cfg)
{
    const std::string err = validateConfig(cfg);
    GNN_ASSERT(err.empty(), "invalid GeneratorConfig: %s", err.c_str());
    units_ = unitCount(cfg);
    chunks_ = std::min<int64_t>(cfg.chunks, units_);
}

void
ChunkedEdgeStream::refill()
{
    const int64_t window =
        std::min<int64_t>(cfg_.lookahead, chunks_ - nextChunk_);
    if (window <= 0)
        return;
    const double begin = nowSec();
    std::vector<EdgeBlock> blocks(static_cast<size_t>(window));
    // One chunk per grain-1 iteration: workers generate whole chunks
    // concurrently, each into its private block. Unit-level seeding
    // makes the content independent of this scheduling.
    parallel_for(0, window, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const int64_t chunk = nextChunk_ + i;
            EdgeBlock &block = blocks[static_cast<size_t>(i)];
            block.chunkIndex = chunk;
            const int64_t unit_lo = chunk * units_ / chunks_;
            const int64_t unit_hi = (chunk + 1) * units_ / chunks_;
            BlockSink sink(block);
            for (int64_t u = unit_lo; u < unit_hi; ++u)
                generateUnit(cfg_, u, sink);
        }
    });
    nextChunk_ += window;
    for (EdgeBlock &block : blocks) {
        residentBytes_ += block.bytes();
        ready_.push_back(std::move(block));
    }
    peakResidentBytes_ = std::max(peakResidentBytes_, residentBytes_);
    generateSec_ += nowSec() - begin;

    obs::Metrics &metrics = obs::Metrics::instance();
    metrics.setGauge("gen.bytes_resident",
                     static_cast<double>(residentBytes_));
    metrics.setGauge("gen.bytes_resident_peak",
                     static_cast<double>(peakResidentBytes_));
}

bool
ChunkedEdgeStream::next(EdgeBlock &out)
{
    if (ready_.empty())
        refill();
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    residentBytes_ -= out.bytes();
    for (const auto &[u, v] : out.edges)
        checksum_ = edgeChecksum(checksum_, u, v);
    edgesEmitted_ += static_cast<int64_t>(out.edges.size());
    ++chunksEmitted_;

    obs::Metrics &metrics = obs::Metrics::instance();
    metrics.add("gen.chunks_emitted");
    metrics.setGauge("gen.edges_total",
                     static_cast<double>(edgesEmitted_));
    metrics.setGauge("gen.edges_per_sec", edgesPerSec());
    return true;
}

double
ChunkedEdgeStream::edgesPerSec() const
{
    if (generateSec_ <= 0.0)
        return 0.0;
    return static_cast<double>(edgesEmitted_) / generateSec_;
}

int64_t
residentBudgetBytes(const GeneratorConfig &cfg)
{
    // Budget against the *effective* chunk count: asking for more
    // chunks than there are units cannot shrink the window further.
    const int64_t chunks =
        std::min<int64_t>(cfg.chunks, unitCount(cfg));
    const int64_t per_chunk =
        (resolvedTargetEdges(cfg) + chunks - 1) / chunks;
    const int64_t edge_bytes =
        sizeof(std::pair<int64_t, int64_t>);
    return (cfg.lookahead + 1) * per_chunk * edge_bytes * 4 +
           (int64_t{1} << 16);
}

Graph
materialize(const GeneratorConfig &cfg)
{
    const int64_t n = resolvedVertices(cfg);
    GNN_ASSERT(n <= std::numeric_limits<int32_t>::max(),
               "materialize: %lld vertices exceed the 32-bit Graph id "
               "space; use the streaming path",
               static_cast<long long>(n));
    ChunkedEdgeStream stream(cfg);
    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(static_cast<size_t>(resolvedTargetEdges(cfg)));
    EdgeBlock block;
    while (stream.next(block)) {
        for (const auto &[u, v] : block.edges) {
            edges.emplace_back(static_cast<int32_t>(u),
                               static_cast<int32_t>(v));
        }
    }
    return Graph(n, std::move(edges), /*symmetric=*/true);
}

} // namespace gen
} // namespace gnnmark
