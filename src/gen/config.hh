/**
 * @file
 * The unified generator configuration facade (KaGen-style): one
 * struct names the family and the scale knobs, and every generation
 * entry point — materializing, streaming, the CLI verb, the benches —
 * goes through it. Resolution helpers pin down the derived quantities
 * (actual vertex count, target edge count, unit count) so callers and
 * reports agree on what a config means.
 */

#ifndef GNNMARK_GEN_CONFIG_HH
#define GNNMARK_GEN_CONFIG_HH

#include <cstdint>
#include <string>

namespace gnnmark {
namespace gen {

/** Graph family produced by the chunked generators. */
enum class Family : uint8_t
{
    Rmat,       ///< R-MAT / Kronecker recursive quadrant sampling
    Rgg2d,      ///< random geometric graph on the unit square
    Hyperbolic, ///< hyperbolic-like scale-free (power-law weights)
    Grid2d,     ///< rows x cols lattice, optionally a torus
};

/** Stable lower-case name, e.g. "rmat". */
const char *familyName(Family family);

/** Parse a family name; returns false on unknown input. */
bool parseFamily(const std::string &name, Family &family);

/**
 * One generated graph, fully described. Determinism contract: the
 * emitted edge sequence is a pure function of the *resolved* config —
 * the same for any thread count and any `chunks` value — because
 * seeding happens per fixed-size generation unit (see families.hh),
 * never per chunk or per worker.
 */
struct GeneratorConfig
{
    Family family = Family::Rmat;

    /** Requested vertex count (R-MAT rounds up to a power of two). */
    int64_t n = 1 << 16;

    /**
     * Target edge count; 0 derives it from avgDegree. Grid graphs
     * ignore it (the lattice fixes m), and the scale-free families
     * treat it as an expectation, not an exact count.
     */
    int64_t m = 0;

    /** Used when m == 0: m = n * avgDegree / 2. */
    double avgDegree = 8.0;

    uint64_t seed = 42;

    /**
     * Streaming granularity: the unit space is split into this many
     * contiguous chunks, each generated as one piece. More chunks =
     * smaller resident window; the edge *content* never changes.
     */
    int chunks = 8;

    /**
     * Chunks buffered ahead of the consumer (the generation window
     * runs this many chunks in parallel). Bounds resident memory
     * together with `chunks`.
     */
    int lookahead = 4;

    /** @{ R-MAT quadrant probabilities (d = 1 - a - b - c). */
    double rmatA = 0.57;
    double rmatB = 0.19;
    double rmatC = 0.19;
    /** @} */

    /** Hyperbolic/scale-free target degree exponent (> 2). */
    double gamma = 2.8;

    /** @{ Grid shape; 0 rows/cols = near-square factoring of n. */
    int64_t gridRows = 0;
    int64_t gridCols = 0;
    bool gridWrap = false; ///< torus edges across the border
    /** @} */
};

/**
 * Validate a config; returns an empty string when usable, otherwise a
 * one-line description of the first problem (the CLI surfaces it and
 * exits through usage).
 */
std::string validateConfig(const GeneratorConfig &cfg);

/** Resolved vertex count (R-MAT: next power of two >= n; grid: r*c). */
int64_t resolvedVertices(const GeneratorConfig &cfg);

/** Resolved target edge count (grid: exact lattice edge count). */
int64_t resolvedTargetEdges(const GeneratorConfig &cfg);

/** Resolved grid shape (valid for Family::Grid2d only). */
void resolvedGridShape(const GeneratorConfig &cfg, int64_t &rows,
                       int64_t &cols);

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GEN_CONFIG_HH
