/**
 * @file
 * Streaming edge delivery: the pull interface minibatch training and
 * the CLI consume, plus the chunked parallel producer behind it.
 *
 * A ChunkedEdgeStream partitions the config's unit space into
 * `chunks` contiguous ranges and generates a `lookahead`-deep window
 * of chunks in parallel on the shared thread pool, handing blocks to
 * the consumer strictly in chunk order. Because units are seeded
 * individually (families.hh), the concatenated edge sequence — and
 * therefore the running checksum — is bit-identical for any thread
 * count and any chunk granularity; only the resident window size
 * changes. No global edge list ever exists.
 */

#ifndef GNNMARK_GEN_EDGE_STREAM_HH
#define GNNMARK_GEN_EDGE_STREAM_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "gen/config.hh"
#include "graph/graph.hh"

namespace gnnmark {
namespace gen {

/** One streamed chunk of edges, in deterministic emission order. */
struct EdgeBlock
{
    std::vector<std::pair<int64_t, int64_t>> edges;
    int64_t chunkIndex = 0;

    int64_t
    bytes() const
    {
        return static_cast<int64_t>(
            edges.size() * sizeof(std::pair<int64_t, int64_t>));
    }
};

/** Pull interface: next() fills a block, false at end of stream. */
class EdgeStream
{
  public:
    virtual ~EdgeStream() = default;
    virtual bool next(EdgeBlock &out) = 0;
};

/** Order-dependent FNV-1a over an edge sequence (identity checks). */
uint64_t edgeChecksum(uint64_t state, int64_t u, int64_t v);

/** Initial checksum state. */
constexpr uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;

class ChunkedEdgeStream : public EdgeStream
{
  public:
    explicit ChunkedEdgeStream(const GeneratorConfig &cfg);

    bool next(EdgeBlock &out) override;

    const GeneratorConfig &config() const { return cfg_; }

    /** Chunk count actually used (cfg.chunks clamped to units). */
    int64_t chunkCount() const { return chunks_; }

    /** @{ Running totals over everything emitted so far. */
    int64_t edgesEmitted() const { return edgesEmitted_; }
    int64_t chunksEmitted() const { return chunksEmitted_; }
    uint64_t checksum() const { return checksum_; }
    /** @} */

    /** Peak bytes buffered inside the stream (window + in-flight). */
    int64_t peakResidentBytes() const { return peakResidentBytes_; }

    /** Seconds spent generating (excludes consumer time). */
    double generateSec() const { return generateSec_; }

    /** Edges per generation-second so far (0 before first refill). */
    double edgesPerSec() const;

  private:
    void refill();

    GeneratorConfig cfg_;
    int64_t units_ = 0;
    int64_t chunks_ = 0;
    int64_t nextChunk_ = 0; ///< next chunk index to generate
    std::deque<EdgeBlock> ready_;

    int64_t edgesEmitted_ = 0;
    int64_t chunksEmitted_ = 0;
    uint64_t checksum_ = kChecksumSeed;
    int64_t residentBytes_ = 0;
    int64_t peakResidentBytes_ = 0;
    double generateSec_ = 0.0;
};

/**
 * Resident-memory budget implied by a config: the generation window
 * ((lookahead + 1) chunks of ~m/chunks edges) with a 4x family-
 * variance allowance plus a fixed floor. The streaming tests assert
 * the producer's peak stays under this; a consumer holding one block
 * plus chunk-local state stays within a small multiple of it.
 */
int64_t residentBudgetBytes(const GeneratorConfig &cfg);

/**
 * Materializing path for small scales: drain a stream into a Graph
 * (undirected, deduplicated) the existing gen:: consumers can use.
 * Asserts the vertex count fits the 32-bit Graph id space.
 */
Graph materialize(const GeneratorConfig &cfg);

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GEN_EDGE_STREAM_HH
