/**
 * @file
 * Streaming degree-distribution validation: a fixed-size accumulator
 * that watches the edge stream go by and answers the shape questions
 * each family is judged on — power-law slope for the scale-free
 * generators, regularity for the lattice, degree spread for RGG. At
 * very large n the accumulator samples a deterministic stride of the
 * vertex space so its memory stays bounded while the fitted shape is
 * unchanged in expectation.
 */

#ifndef GNNMARK_GEN_DEGREE_STATS_HH
#define GNNMARK_GEN_DEGREE_STATS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "gen/edge_stream.hh"

namespace gnnmark {
namespace gen {

/** Shape summary of a generated degree distribution. */
struct DegreeStats
{
    int64_t vertices = 0;        ///< vertices tracked (post-stride)
    int64_t sampleStride = 1;    ///< 1 = exact; k = every k-th vertex
    int64_t endpointsCounted = 0;
    int64_t minDegree = 0;
    int64_t maxDegree = 0;
    double meanDegree = 0.0;
    /**
     * Least-squares slope of log(count) vs log(degree) over the
     * degree histogram (degrees >= 1). Scale-free families come out
     * clearly negative (≈ -(gamma-1) for the power-law weights);
     * regular families have too few distinct degrees for a fit and
     * report 0.
     */
    double powerLawSlope = 0.0;
    bool slopeValid = false;
    /** Fraction of tracked vertices at the modal degree. */
    double modalFraction = 0.0;
    int64_t modalDegree = 0;
    /** Count of distinct degree values observed. */
    int64_t distinctDegrees = 0;
};

class DegreeAccumulator
{
  public:
    /**
     * @param num_vertices  the graph's resolved vertex count
     * @param max_tracked   memory cap; above it every stride-th
     *                      vertex is tracked (stride chosen so the
     *                      tracked count stays under the cap)
     */
    explicit DegreeAccumulator(int64_t num_vertices,
                               int64_t max_tracked = int64_t{1} << 26);

    /** Count both endpoints of every edge in the block. */
    void accumulate(const EdgeBlock &block);

    /** Bytes held by the accumulator (for resident accounting). */
    int64_t residentBytes() const;

    DegreeStats finalize() const;

  private:
    int64_t numVertices_;
    int64_t stride_;
    std::vector<int32_t> counts_; ///< tracked-vertex degree counts
    int64_t endpoints_ = 0;
};

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GEN_DEGREE_STATS_HH
