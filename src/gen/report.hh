/**
 * @file
 * Pure-data generation run report. Header-only with no dependencies
 * beyond <string>/<cstdint>, so the core report printers and JSON
 * writers can consume it without linking the gen library (core sits
 * below gen in the layering), mirroring serve/report.hh.
 *
 * Every field except the wall-clock throughput figures derives from
 * the seeded generators alone, so the deterministic subset — and its
 * JSON rendering — is byte-identical across processes, thread counts
 * and chunk partitionings for a fixed configuration. The JSON twin
 * emits only that subset; wall-clock rates stay in the human table
 * and the telemetry record.
 */

#ifndef GNNMARK_GEN_REPORT_HH
#define GNNMARK_GEN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gnnmark {
namespace gen {

/**
 * One chunk-ordinal window of the streamed-training timeline: edges
 * consumed and minibatch-loss aggregates over `windowChunks` chunks.
 */
struct GenTrainWindow
{
    int64_t index = 0;
    int64_t firstChunk = 0; ///< inclusive
    int64_t lastChunk = 0;  ///< exclusive
    int64_t chunks = 0;     ///< chunks actually seen in the window
    int64_t edges = 0;
    double meanLoss = 0;
    double minLoss = 0;
    double maxLoss = 0;
};

/** Aggregate results of one generation (and optional training) run. */
struct GenReport
{
    /** @{ Configuration echo. */
    std::string family = "rmat";
    int64_t requestedVertices = 0;
    int64_t vertices = 0; ///< resolved (e.g. rmat rounds to pow2)
    int64_t targetEdges = 0;
    int64_t chunks = 0;   ///< effective chunk count
    int64_t lookahead = 0;
    uint64_t seed = 0;
    int threads = 0;
    /** @} */

    /** @{ Deterministic outcome. */
    int64_t edges = 0;
    int64_t chunksEmitted = 0;
    /** Order-dependent FNV-1a over every (u, v) emitted. */
    uint64_t checksum = 0;
    /** Peak bytes held in the stream's lookahead window. */
    int64_t peakResidentBytes = 0;
    /** Configured ceiling the peak is asserted against. */
    int64_t residentBudgetBytes = 0;
    /** @} */

    /** @{ Wall-clock (human table + telemetry only, never JSON). */
    double wallSec = 0;
    double edgesPerSec = 0;
    /** @} */

    /** @{ Degree-distribution shape (when --stats is on). */
    bool hasDegrees = false;
    int64_t degreeVertices = 0;
    int64_t degreeSampleStride = 1;
    int64_t minDegree = 0;
    int64_t maxDegree = 0;
    double meanDegree = 0;
    double powerLawSlope = 0;
    bool slopeValid = false;
    double modalFraction = 0;
    int64_t modalDegree = 0;
    int64_t distinctDegrees = 0;
    /** @} */

    /** @{ Streamed training (when --stream is on). */
    bool trained = false;
    int64_t trainBatches = 0;
    int64_t trainEdgesConsumed = 0;
    double trainFirstLoss = 0;
    double trainLastLoss = 0;
    int64_t trainPeakResidentBytes = 0;
    /** Window width in chunks (0 = windowing off, vector empty). */
    int64_t trainWindowChunks = 0;
    std::vector<GenTrainWindow> trainWindows;
    /** @} */
};

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GEN_REPORT_HH
