/**
 * @file
 * Streamed minibatch training over a generated edge stream: each
 * chunk block is compacted into a ChunkGraph, neighbour-sampled, and
 * fed through a SAGE-style aggregate + linear regression step — all
 * without ever materializing the full graph. The harness exists to
 * prove the acceptance criterion of the streaming generator: training
 * consumes a graph far larger than memory while peak resident bytes
 * stay inside the chunk budget.
 */

#ifndef GNNMARK_GEN_STREAM_TRAIN_HH
#define GNNMARK_GEN_STREAM_TRAIN_HH

#include <cstdint>
#include <vector>

#include "gen/edge_stream.hh"
#include "obs/window.hh"

namespace gnnmark {
namespace gen {

class DegreeAccumulator;

struct StreamTrainOptions
{
    int fanout = 8;        ///< neighbours sampled per seed
    int batchSize = 256;   ///< seeds per chunk minibatch
    int featDim = 16;      ///< hash-derived feature width
    double lr = 0.05;      ///< SGD learning rate
    uint64_t seed = 1234;  ///< sampling + label seed
    /**
     * Tumbling-window width, in chunks, for the edge-throughput and
     * loss series (0 disables windowing). Chunk ordinal stands in for
     * time: the stream is consumed in chunk order regardless of how
     * many threads generate it, so the series is deterministic.
     */
    int64_t windowChunks = 0;
};

struct StreamTrainResult
{
    int64_t batches = 0;       ///< minibatches trained
    int64_t edgesConsumed = 0; ///< edges pulled off the stream
    int64_t chunks = 0;        ///< chunk blocks consumed
    double firstLoss = 0.0;    ///< MSE of the first minibatch
    double lastLoss = 0.0;     ///< MSE of the final minibatch
    /**
     * Peak bytes resident in the training loop itself: the current
     * block, its compact subgraph, minibatch features, and the
     * optional degree accumulator. The stream's own lookahead window
     * is reported separately by ChunkedEdgeStream.
     */
    int64_t peakResidentBytes = 0;

    /** @{ Windowed series (empty unless opts.windowChunks > 0):
     *  per-window edges consumed and minibatch loss, indexed by
     *  chunk-ordinal windows. */
    std::vector<obs::WindowStats> edgeWindows;
    std::vector<obs::WindowStats> lossWindows;
    /** @} */
};

/**
 * Drain `stream`, training one minibatch per chunk. The regression
 * target is exactly linear in the aggregated features (true weights
 * derived from opts.seed), so the loss genuinely falls as the model
 * converges — a cheap end-to-end correctness signal.
 *
 * @param degrees  optional accumulator fed every block as it passes
 */
StreamTrainResult streamTrain(EdgeStream &stream,
                              const StreamTrainOptions &opts,
                              DegreeAccumulator *degrees = nullptr);

} // namespace gen
} // namespace gnnmark

#endif // GNNMARK_GEN_STREAM_TRAIN_HH
