#include "gen/families.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "base/power_law.hh"
#include "base/rng.hh"

namespace gnnmark {
namespace gen {

namespace {

/** Edges per R-MAT unit; fixed so units outlive chunk choices. */
constexpr int64_t kRmatUnitEdges = int64_t{1} << 14;

/** Expected edges per hyperbolic unit (mass-balanced boundaries). */
constexpr int64_t kHypUnitEdges = int64_t{1} << 14;

/** Family tags keep unit streams distinct across families. */
constexpr uint64_t kRmatTag = 0x524d4154ULL; // "RMAT"
constexpr uint64_t kRggTag = 0x52474732ULL;  // "RGG2"
constexpr uint64_t kHypTag = 0x48595042ULL;  // "HYPB"

/** The unit's private generator: pure in (seed, tag, unit). */
Rng
unitRng(const GeneratorConfig &cfg, uint64_t tag, int64_t unit)
{
    return Rng(cfg.seed ^ tag).split(static_cast<uint64_t>(unit));
}

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

// ---------------------------------------------------------------- rmat

int
rmatScale(const GeneratorConfig &cfg)
{
    const int64_t n = resolvedVertices(cfg);
    int scale = 0;
    while ((int64_t{1} << scale) < n)
        ++scale;
    return scale;
}

void
rmatUnit(const GeneratorConfig &cfg, int64_t unit, EdgeSink &sink)
{
    const int64_t m = resolvedTargetEdges(cfg);
    const int64_t lo = unit * kRmatUnitEdges;
    const int64_t hi = std::min(m, lo + kRmatUnitEdges);
    const int scale = rmatScale(cfg);
    const double ab = cfg.rmatA + cfg.rmatB;
    const double abc = ab + cfg.rmatC;
    Rng rng = unitRng(cfg, kRmatTag, unit);
    for (int64_t e = lo; e < hi; ++e) {
        int64_t row = 0, col = 0;
        for (int level = 0; level < scale; ++level) {
            const double u = rng.uniform();
            row <<= 1;
            col <<= 1;
            if (u < cfg.rmatA) {
                // top-left: no bits set
            } else if (u < ab) {
                col |= 1;
            } else if (u < abc) {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        sink.edge(row, col);
    }
}

// --------------------------------------------------------------- rgg2d

double
rggRadius(const GeneratorConfig &cfg)
{
    const double n = static_cast<double>(resolvedVertices(cfg));
    const double deg =
        2.0 * static_cast<double>(resolvedTargetEdges(cfg)) / n;
    // Expected degree of a uniform point: n * pi * r^2.
    return std::sqrt(deg / (M_PI * n));
}

struct Point
{
    int64_t id;
    double x, y;
};

/**
 * Regenerate cell `cell`'s points from its split seed. Cells own
 * contiguous vertex ranges; coordinates are uniform within the
 * cell's sub-square, which keeps the overall density uniform while
 * letting any worker rebuild any cell without communication.
 */
void
rggCellPoints(const GeneratorConfig &cfg, int64_t g, int64_t cell,
              std::vector<Point> &out)
{
    const int64_t n = resolvedVertices(cfg);
    const int64_t cells = g * g;
    const int64_t lo = cell * n / cells;
    const int64_t hi = (cell + 1) * n / cells;
    const double inv_g = 1.0 / static_cast<double>(g);
    const double x0 = static_cast<double>(cell % g) * inv_g;
    const double y0 = static_cast<double>(cell / g) * inv_g;
    Rng rng = unitRng(cfg, kRggTag, cell);
    out.clear();
    out.reserve(static_cast<size_t>(hi - lo));
    for (int64_t v = lo; v < hi; ++v) {
        Point p;
        p.id = v;
        p.x = x0 + rng.uniform() * inv_g;
        p.y = y0 + rng.uniform() * inv_g;
        out.push_back(p);
    }
}

void
rggUnit(const GeneratorConfig &cfg, int64_t unit, EdgeSink &sink)
{
    const int64_t g = rggGridSide(cfg);
    const double r = rggRadius(cfg);
    const double r2 = r * r;
    std::vector<Point> own, other;
    rggCellPoints(cfg, g, unit, own);

    // Intra-cell pairs (i < j keeps each pair unique).
    for (size_t i = 0; i < own.size(); ++i) {
        for (size_t j = i + 1; j < own.size(); ++j) {
            const double dx = own[i].x - own[j].x;
            const double dy = own[i].y - own[j].y;
            if (dx * dx + dy * dy <= r2)
                sink.edge(own[i].id, own[j].id);
        }
    }

    // Forward neighbours only (E, SW, S, SE): every cross-cell pair
    // is examined by exactly one cell — the one with the smaller id,
    // which also owns the smaller vertex ids, so (u, v) comes out
    // ordered. Cell width >= r guarantees no pair is missed.
    const int64_t row = unit / g, col = unit % g;
    const int64_t fwd[4][2] = {
        {row, col + 1}, {row + 1, col - 1}, {row + 1, col},
        {row + 1, col + 1}};
    for (const auto &rc : fwd) {
        if (rc[0] < 0 || rc[0] >= g || rc[1] < 0 || rc[1] >= g)
            continue;
        rggCellPoints(cfg, g, rc[0] * g + rc[1], other);
        for (const Point &a : own) {
            for (const Point &b : other) {
                const double dx = a.x - b.x;
                const double dy = a.y - b.y;
                if (dx * dx + dy * dy <= r2)
                    sink.edge(a.id, b.id);
            }
        }
    }
}

// ---------------------------------------------------- hyperbolic-like

/**
 * Power-law vertex weights w_v = (v+1)^-beta with beta = 1/(gamma-1):
 * the threshold-free hyperbolic analogue. W(x) approximates the
 * cumulative weight of vertices [0, x) in closed form so any unit can
 * normalise without a global pass.
 */
double
hypBeta(const GeneratorConfig &cfg)
{
    return 1.0 / (cfg.gamma - 1.0);
}

double
hypCumWeight(double x, double beta)
{
    return (std::pow(x + 1.0, 1.0 - beta) - 1.0) / (1.0 - beta);
}

/** First vertex of unit k: equalises expected edge mass per unit. */
int64_t
hypUnitBoundary(const GeneratorConfig &cfg, int64_t units, int64_t k)
{
    if (k <= 0)
        return 0;
    const int64_t n = resolvedVertices(cfg);
    if (k >= units)
        return n;
    const double beta = hypBeta(cfg);
    const double target = hypCumWeight(static_cast<double>(n), beta) *
                          static_cast<double>(k) /
                          static_cast<double>(units);
    const double v = std::pow(target * (1.0 - beta) + 1.0,
                              1.0 / (1.0 - beta)) -
                     1.0;
    return std::clamp<int64_t>(static_cast<int64_t>(v), 0, n);
}

int64_t
hypUnitCount(const GeneratorConfig &cfg)
{
    const int64_t n = resolvedVertices(cfg);
    const int64_t m = resolvedTargetEdges(cfg);
    return std::max<int64_t>(1, std::min(n, ceilDiv(m, kHypUnitEdges)));
}

void
hypUnit(const GeneratorConfig &cfg, int64_t unit, EdgeSink &sink)
{
    const int64_t n = resolvedVertices(cfg);
    const int64_t m = resolvedTargetEdges(cfg);
    const int64_t units = hypUnitCount(cfg);
    const int64_t lo = hypUnitBoundary(cfg, units, unit);
    const int64_t hi = hypUnitBoundary(cfg, units, unit + 1);
    const double beta = hypBeta(cfg);
    const double total_w = hypCumWeight(static_cast<double>(n), beta);
    const PowerLawSampler targets(
        n, PowerLawSampler::skewForExponent(beta));
    Rng rng = unitRng(cfg, kHypTag, unit);
    for (int64_t v = lo; v < hi; ++v) {
        const double w =
            std::pow(static_cast<double>(v + 1), -beta);
        const double mean =
            static_cast<double>(m) * w / total_w;
        int64_t draws = static_cast<int64_t>(mean);
        if (rng.bernoulli(mean - static_cast<double>(draws)))
            ++draws;
        for (int64_t d = 0; d < draws; ++d) {
            const int64_t t = targets.draw(rng);
            if (t != v)
                sink.edge(v, t);
        }
    }
}

// -------------------------------------------------------------- grid2d

void
gridUnit(const GeneratorConfig &cfg, int64_t unit, EdgeSink &sink)
{
    int64_t rows = 0, cols = 0;
    resolvedGridShape(cfg, rows, cols);
    const int64_t row = unit;
    const int64_t base = row * cols;
    for (int64_t c = 0; c < cols; ++c) {
        const int64_t v = base + c;
        if (c + 1 < cols)
            sink.edge(v, v + 1);
        else if (cfg.gridWrap)
            sink.edge(v, base);
        if (row + 1 < rows)
            sink.edge(v, v + cols);
        else if (cfg.gridWrap)
            sink.edge(v, c);
    }
}

} // namespace

int64_t
rggGridSide(const GeneratorConfig &cfg)
{
    const double r = rggRadius(cfg);
    const int64_t n = resolvedVertices(cfg);
    // Cell width must stay >= r for neighbour-only comparison to be
    // exhaustive; the sqrt(n) cap keeps cells from going empty on
    // sparse configs (fewer, fatter cells cost compares, not edges).
    const int64_t by_radius =
        r > 0 ? static_cast<int64_t>(1.0 / r) : n;
    const int64_t by_count = static_cast<int64_t>(
        std::sqrt(static_cast<double>(n))) + 1;
    return std::max<int64_t>(1, std::min(by_radius, by_count));
}

int64_t
unitCount(const GeneratorConfig &cfg)
{
    switch (cfg.family) {
      case Family::Rmat:
        return std::max<int64_t>(
            1, ceilDiv(resolvedTargetEdges(cfg), kRmatUnitEdges));
      case Family::Rgg2d: {
        const int64_t g = rggGridSide(cfg);
        return g * g;
      }
      case Family::Hyperbolic:
        return hypUnitCount(cfg);
      case Family::Grid2d: {
        int64_t rows = 0, cols = 0;
        resolvedGridShape(cfg, rows, cols);
        return rows;
      }
    }
    return 1;
}

void
generateUnit(const GeneratorConfig &cfg, int64_t unit, EdgeSink &sink)
{
    GNN_ASSERT(unit >= 0 && unit < unitCount(cfg),
               "generateUnit: unit %lld out of range",
               static_cast<long long>(unit));
    switch (cfg.family) {
      case Family::Rmat:
        rmatUnit(cfg, unit, sink);
        return;
      case Family::Rgg2d:
        rggUnit(cfg, unit, sink);
        return;
      case Family::Hyperbolic:
        hypUnit(cfg, unit, sink);
        return;
      case Family::Grid2d:
        gridUnit(cfg, unit, sink);
        return;
    }
}

} // namespace gen
} // namespace gnnmark
