#include "gen/stream_train.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "gen/degree_stats.hh"
#include "graph/batch.hh"
#include "graph/samplers.hh"

namespace gnnmark {
namespace gen {

namespace {

/**
 * Deterministic node feature: a hash of (global id, dimension)
 * mapped to [-1, 1]. Any worker can reconstruct any node's features
 * from its id alone, so no feature matrix is ever materialized.
 */
float
hashFeature(int64_t global_id, int k)
{
    uint64_t x = static_cast<uint64_t>(global_id) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(k) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    return static_cast<float>(2.0 * u - 1.0);
}

} // namespace

StreamTrainResult
streamTrain(EdgeStream &stream, const StreamTrainOptions &opts,
            DegreeAccumulator *degrees)
{
    GNN_ASSERT(opts.fanout > 0 && opts.batchSize > 0 && opts.featDim > 0,
               "streamTrain: bad options");
    StreamTrainResult result;

    std::unique_ptr<obs::WindowedSeries> edgeWin, lossWin;
    if (opts.windowChunks > 0) {
        edgeWin = std::make_unique<obs::WindowedSeries>(
            static_cast<double>(opts.windowChunks));
        lossWin = std::make_unique<obs::WindowedSeries>(
            static_cast<double>(opts.windowChunks));
    }

    // Ground-truth weights: the label of a minibatch row is exactly
    // linear in its aggregated features, so the linear model can fit.
    Rng true_rng = Rng(opts.seed).split(~uint64_t{0});
    std::vector<double> true_w(static_cast<size_t>(opts.featDim));
    for (double &w : true_w)
        w = true_rng.uniform(-1.0f, 1.0f);

    std::vector<double> model(static_cast<size_t>(opts.featDim), 0.0);
    std::vector<float> src_feat;  // [srcNodes, featDim]
    std::vector<double> agg;      // [batch, featDim]

    EdgeBlock block;
    while (stream.next(block)) {
        if (degrees)
            degrees->accumulate(block);
        ++result.chunks;
        result.edgesConsumed += static_cast<int64_t>(block.edges.size());
        if (edgeWin) {
            edgeWin->observe(
                static_cast<double>(result.chunks - 1),
                static_cast<double>(block.edges.size()));
        }
        if (block.edges.empty())
            continue;

        const ChunkGraph cg =
            ChunkGraph::fromEdges(block.edges, /*symmetric=*/true);
        const int64_t num_nodes = cg.numNodes();
        if (num_nodes == 0)
            continue;

        Rng rng = Rng(opts.seed).split(
            static_cast<uint64_t>(block.chunkIndex));
        const int64_t batch =
            std::min<int64_t>(opts.batchSize, num_nodes);
        std::vector<int32_t> seeds(static_cast<size_t>(batch));
        for (int32_t &s : seeds)
            s = static_cast<int32_t>(
                rng.randint(static_cast<uint64_t>(num_nodes)));

        NeighborSampler sampler(cg.graph, opts.fanout);
        const SampledBlock sampled = sampler.sample(seeds, rng);

        // Features for the sampled source frontier only.
        const size_t f = static_cast<size_t>(opts.featDim);
        src_feat.assign(sampled.srcNodes.size() * f, 0.0f);
        for (size_t i = 0; i < sampled.srcNodes.size(); ++i) {
            const int64_t global =
                cg.globalIds[static_cast<size_t>(sampled.srcNodes[i])];
            for (size_t k = 0; k < f; ++k)
                src_feat[i * f + k] =
                    hashFeature(global, static_cast<int>(k));
        }

        // Weighted-mean aggregation per destination.
        agg.assign(static_cast<size_t>(batch) * f, 0.0);
        for (size_t d = 0; d < sampled.dstNodes.size(); ++d) {
            const int32_t lo = sampled.offsets[d];
            const int32_t hi = sampled.offsets[d + 1];
            double wsum = 0.0;
            for (int32_t e = lo; e < hi; ++e) {
                const size_t src =
                    static_cast<size_t>(sampled.neighbors[e]);
                const double w = sampled.weights[e];
                wsum += w;
                for (size_t k = 0; k < f; ++k)
                    agg[d * f + k] += w * src_feat[src * f + k];
            }
            if (wsum > 0.0) {
                for (size_t k = 0; k < f; ++k)
                    agg[d * f + k] /= wsum;
            }
        }

        // One SGD step of linear regression on the aggregated rows.
        double loss = 0.0;
        std::vector<double> grad(f, 0.0);
        for (int64_t d = 0; d < batch; ++d) {
            double y = 0.0, p = 0.0;
            for (size_t k = 0; k < f; ++k) {
                const double h = agg[static_cast<size_t>(d) * f + k];
                y += true_w[k] * h;
                p += model[k] * h;
            }
            const double err = p - y;
            loss += err * err;
            for (size_t k = 0; k < f; ++k)
                grad[k] += 2.0 * err *
                           agg[static_cast<size_t>(d) * f + k];
        }
        loss /= static_cast<double>(batch);
        for (size_t k = 0; k < f; ++k)
            model[k] -= opts.lr * grad[k] / static_cast<double>(batch);

        if (result.batches == 0)
            result.firstLoss = loss;
        result.lastLoss = loss;
        ++result.batches;
        if (lossWin)
            lossWin->observe(static_cast<double>(result.chunks - 1),
                             loss);

        int64_t resident =
            block.bytes() + cg.bytes() +
            static_cast<int64_t>(src_feat.size() * sizeof(float)) +
            static_cast<int64_t>(agg.size() * sizeof(double));
        if (degrees)
            resident += degrees->residentBytes();
        result.peakResidentBytes =
            std::max(result.peakResidentBytes, resident);
    }
    if (edgeWin) {
        const double horizon = static_cast<double>(result.chunks);
        result.edgeWindows = edgeWin->series(horizon);
        result.lossWindows = lossWin->series(horizon);
    }
    return result;
}

} // namespace gen
} // namespace gnnmark
