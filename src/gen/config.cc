#include "gen/config.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/string_utils.hh"

namespace gnnmark {
namespace gen {

const char *
familyName(Family family)
{
    switch (family) {
      case Family::Rmat:
        return "rmat";
      case Family::Rgg2d:
        return "rgg2d";
      case Family::Hyperbolic:
        return "hyperbolic";
      case Family::Grid2d:
        return "grid2d";
    }
    return "unknown";
}

bool
parseFamily(const std::string &name, Family &family)
{
    for (Family f : {Family::Rmat, Family::Rgg2d, Family::Hyperbolic,
                     Family::Grid2d}) {
        if (name == familyName(f)) {
            family = f;
            return true;
        }
    }
    return false;
}

std::string
validateConfig(const GeneratorConfig &cfg)
{
    if (cfg.n <= 1)
        return strfmt("n must be > 1, got %lld",
                      static_cast<long long>(cfg.n));
    if (cfg.m < 0)
        return strfmt("m must be >= 0, got %lld",
                      static_cast<long long>(cfg.m));
    if (cfg.m == 0 && cfg.avgDegree <= 0)
        return strfmt("avgDegree must be > 0 when m is unset, got %g",
                      cfg.avgDegree);
    if (cfg.chunks < 1)
        return strfmt("chunks must be >= 1, got %d", cfg.chunks);
    if (cfg.lookahead < 1)
        return strfmt("lookahead must be >= 1, got %d", cfg.lookahead);
    if (cfg.family == Family::Rmat) {
        const double d = 1.0 - cfg.rmatA - cfg.rmatB - cfg.rmatC;
        if (cfg.rmatA <= 0 || cfg.rmatB <= 0 || cfg.rmatC <= 0 ||
            d <= 0) {
            return strfmt("rmat quadrant probabilities must be "
                          "positive and sum below 1 (a=%g b=%g c=%g)",
                          cfg.rmatA, cfg.rmatB, cfg.rmatC);
        }
    }
    if (cfg.family == Family::Hyperbolic &&
        (cfg.gamma <= 2.0 || cfg.gamma > 10.0)) {
        return strfmt("gamma must be in (2, 10], got %g", cfg.gamma);
    }
    if (cfg.family == Family::Grid2d) {
        if (cfg.gridRows < 0 || cfg.gridCols < 0)
            return "grid rows/cols must be >= 0 (0 = derive from n)";
        if ((cfg.gridRows == 0) != (cfg.gridCols == 0))
            return "grid rows and cols must be set together";
        int64_t rows = 0, cols = 0;
        resolvedGridShape(cfg, rows, cols);
        if (rows < 2 || cols < 2)
            return strfmt("grid needs rows and cols >= 2, got %lldx%lld",
                          static_cast<long long>(rows),
                          static_cast<long long>(cols));
    }
    return "";
}

namespace {

int64_t
nextPowerOfTwo(int64_t n)
{
    int64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

void
resolvedGridShape(const GeneratorConfig &cfg, int64_t &rows,
                  int64_t &cols)
{
    if (cfg.gridRows > 0 && cfg.gridCols > 0) {
        rows = cfg.gridRows;
        cols = cfg.gridCols;
        return;
    }
    // Near-square factoring: the largest divisor of n at or below
    // sqrt(n); falls back to a sqrt(n) x sqrt(n) lattice (dropping
    // the remainder vertices) when n is prime-ish.
    rows = static_cast<int64_t>(std::sqrt(static_cast<double>(cfg.n)));
    while (rows > 1 && cfg.n % rows != 0)
        --rows;
    if (rows == 1)
        rows = static_cast<int64_t>(
            std::sqrt(static_cast<double>(cfg.n)));
    cols = rows > 0 ? cfg.n / rows : 0;
}

int64_t
resolvedVertices(const GeneratorConfig &cfg)
{
    switch (cfg.family) {
      case Family::Rmat:
        return nextPowerOfTwo(cfg.n);
      case Family::Grid2d: {
        int64_t rows = 0, cols = 0;
        resolvedGridShape(cfg, rows, cols);
        return rows * cols;
      }
      case Family::Rgg2d:
      case Family::Hyperbolic:
        return cfg.n;
    }
    return cfg.n;
}

int64_t
resolvedTargetEdges(const GeneratorConfig &cfg)
{
    if (cfg.family == Family::Grid2d) {
        int64_t rows = 0, cols = 0;
        resolvedGridShape(cfg, rows, cols);
        const int64_t horiz = rows * (cfg.gridWrap ? cols : cols - 1);
        const int64_t vert = cols * (cfg.gridWrap ? rows : rows - 1);
        return horiz + vert;
    }
    if (cfg.m > 0)
        return cfg.m;
    const double m = cfg.avgDegree *
                     static_cast<double>(resolvedVertices(cfg)) / 2.0;
    return std::max<int64_t>(1, static_cast<int64_t>(m));
}

} // namespace gen
} // namespace gnnmark
