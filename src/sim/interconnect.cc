#include "sim/interconnect.hh"

#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

Interconnect::Interconnect(InterconnectConfig config) : cfg_(config)
{
    GNN_ASSERT(cfg_.linksPerGpu > 0 && cfg_.perLinkBandwidth > 0,
               "invalid interconnect configuration");
    GNN_ASSERT(cfg_.degradedHopFactor > 0 && cfg_.degradedHopFactor <= 1,
               "degraded hop factor must be in (0, 1], got %f",
               cfg_.degradedHopFactor);
}

double
Interconnect::ringBandwidth() const
{
    // A ring uses half the links in each direction.
    return cfg_.perLinkBandwidth * cfg_.linksPerGpu / 2.0;
}

double
Interconnect::allReduceTime(double bytes, int world) const
{
    if (world <= 1 || bytes <= 0)
        return 0.0;
    double w = static_cast<double>(world);
    double steps = 2.0 * (w - 1.0);
    // Every chunk crosses every hop, so the slowest hop gates the ring.
    return steps * (bytes / w) /
               (ringBandwidth() * cfg_.degradedHopFactor) +
           steps * cfg_.messageLatencySec;
}

double
Interconnect::broadcastTime(double bytes, int world) const
{
    if (world <= 1 || bytes <= 0)
        return 0.0;
    double hops = std::ceil(std::log2(static_cast<double>(world)));
    // The broadcast tree shares links with the degraded hop as well.
    return hops * (bytes / (ringBandwidth() * cfg_.degradedHopFactor) +
                   cfg_.messageLatencySec);
}

double
Interconnect::p2pTime(double bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return bytes / ringBandwidth() + cfg_.messageLatencySec;
}

} // namespace gnnmark
