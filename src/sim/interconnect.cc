#include "sim/interconnect.hh"

#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

Interconnect::Interconnect(InterconnectConfig config) : cfg_(config)
{
    GNN_ASSERT(cfg_.linksPerGpu > 0 && cfg_.perLinkBandwidth > 0,
               "invalid interconnect configuration");
}

double
Interconnect::ringBandwidth() const
{
    // A ring uses half the links in each direction.
    return cfg_.perLinkBandwidth * cfg_.linksPerGpu / 2.0;
}

double
Interconnect::allReduceTime(double bytes, int world) const
{
    if (world <= 1 || bytes <= 0)
        return 0.0;
    double w = static_cast<double>(world);
    double steps = 2.0 * (w - 1.0);
    return steps * (bytes / w) / ringBandwidth() +
           steps * cfg_.messageLatencySec;
}

double
Interconnect::broadcastTime(double bytes, int world) const
{
    if (world <= 1 || bytes <= 0)
        return 0.0;
    double hops = std::ceil(std::log2(static_cast<double>(world)));
    return hops * (bytes / ringBandwidth() + cfg_.messageLatencySec);
}

double
Interconnect::p2pTime(double bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return bytes / ringBandwidth() + cfg_.messageLatencySec;
}

} // namespace gnnmark
