/**
 * @file
 * Stream/event timing model for asynchronous device work.
 *
 * A SimStream is an in-order queue of timed operations: each op
 * becomes *ready* when its dependency is satisfied (a gradient bucket
 * filling, a kernel finishing) and *starts* when the stream's cursor
 * reaches it, CUDA-stream style. SimEvents carry completion points
 * across streams, so a communication stream can wait on compute-side
 * readiness without sharing a timeline.
 *
 * TimelineCollector is the compute-side feeder: it observes a
 * GpuDevice's kernel/transfer records plus the phase marks the
 * driving layers insert (iteration begin, backward begin/end) and
 * segments the launch stream into per-iteration IterationTimelines —
 * the input the DDP overlap model prices gradient buckets against.
 */

#ifndef GNNMARK_SIM_STREAM_HH
#define GNNMARK_SIM_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_record.hh"

namespace gnnmark {

/** One asynchronous operation scheduled on a SimStream. */
struct StreamOp
{
    std::string name;
    double readySec = 0; ///< earliest legal start (dependency ready)
    double startSec = 0; ///< max(readySec, stream cursor at enqueue)
    double endSec = 0;   ///< startSec + duration
};

/** A recorded completion point, usable for cross-stream waits. */
struct SimEvent
{
    double timeSec = 0;
};

/**
 * An in-order queue of timed async operations. Ops run back-to-back
 * but never before their ready time; the cursor is the completion
 * time of the last scheduled op.
 */
class SimStream
{
  public:
    explicit SimStream(std::string name = "stream");

    /**
     * Schedule an op that needs `duration_sec` of stream time and may
     * not start before `ready_sec`. Returns the scheduled record.
     */
    const StreamOp &enqueue(const std::string &op_name,
                            double ready_sec, double duration_sec);

    /** Stall the stream until `event` has completed. */
    void waitEvent(const SimEvent &event);

    /** Record an event at the stream's current completion point. */
    SimEvent recordEvent() const { return SimEvent{cursor_}; }

    /** Completion time of the last scheduled op (0 if idle). */
    double cursorSec() const { return cursor_; }

    const std::string &name() const { return name_; }
    const std::vector<StreamOp> &ops() const { return ops_; }

  private:
    std::string name_;
    double cursor_ = 0;
    std::vector<StreamOp> ops_;
};

/**
 * Kernel-timeline segmentation of one measured training iteration,
 * in *cumulative kernel time* from the iteration's first launch.
 * wallAtKernelTime() maps those points onto the device wall clock,
 * accounting for the transfer prologue and for dispatch-bound
 * stretching (when launch overhead, not kernel time, paces the
 * stream).
 */
struct IterationTimeline
{
    double kernelSec = 0;     ///< sum of kernel durations
    double transferSec = 0;   ///< host-to-device copy time
    int64_t kernelCount = 0;
    double launchOverheadSec = 0; ///< per-launch dispatch cost

    /** Backward window bounds; < 0 when no backward phase ran. */
    double backwardBeginKernelSec = -1;
    double backwardEndKernelSec = -1;
    /** Cumulative kernel time at each backward kernel's completion. */
    std::vector<double> backwardKernelEnds;

    bool hasBackward() const
    {
        return backwardBeginKernelSec >= 0 &&
               backwardEndKernelSec >= backwardBeginKernelSec &&
               !backwardKernelEnds.empty();
    }

    /** Iteration wall time (dispatch-aware, plus transfers). */
    double wallSec() const;

    /**
     * Wall-clock time at which cumulative kernel time `t` is reached.
     * Transfers are modeled as an iteration prologue; kernel time is
     * stretched uniformly when the stream is dispatch-bound.
     */
    double wallAtKernelTime(double t) const;

    /**
     * Wall-clock point at which the gradient for bucket `index` of
     * `count` equal buckets is ready: buckets fill in backward kernel
     * order, so bucket i completes at the ceil(N*(i+1)/count)-th
     * backward kernel's end. Falls back to the end of the iteration's
     * kernel stream when no backward window was marked.
     */
    double bucketReadySec(int index, int count) const;
};

/**
 * KernelObserver that splits a device's launch stream into
 * per-iteration timelines using phase marks. Kernels launched before
 * the first IterationBegin mark (warm-up) are ignored.
 */
class TimelineCollector : public KernelObserver
{
  public:
    explicit TimelineCollector(double launch_overhead_sec)
        : launchOverheadSec_(launch_overhead_sec)
    {
    }

    void onKernel(const KernelRecord &record) override;
    void onTransfer(const TransferRecord &record) override;
    void onPhase(PhaseMark mark) override;

    const std::vector<IterationTimeline> &iterations() const
    {
        return iterations_;
    }

    /** Drop everything collected so far. */
    void reset();

  private:
    double launchOverheadSec_;
    std::vector<IterationTimeline> iterations_;
    bool inBackward_ = false;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_STREAM_HH
