/**
 * @file
 * The simulated GPU.
 *
 * A GpuDevice accepts kernel launches (KernelDesc) from the operator
 * layer, simulates a sampled subset of warps in detail through the
 * cache/pipeline models, scales the results to the full grid, and
 * forwards a KernelRecord to registered observers. Per kernel name it
 * performs up to `detailSampleLimit` detailed simulations and reuses
 * averaged per-warp rates afterwards — mirroring the paper's nvprof
 * methodology of profiling each kernel for a bounded number of
 * invocations.
 *
 * Host-to-device copies are timed over a PCIe model and their sparsity
 * (fraction of zero values) is recorded, reproducing the paper's
 * patched-PyTorch transfer instrumentation.
 */

#ifndef GNNMARK_SIM_GPU_DEVICE_HH
#define GNNMARK_SIM_GPU_DEVICE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "sim/cache_model.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel_desc.hh"
#include "sim/kernel_record.hh"
#include "sim/trace_hook.hh"

namespace gnnmark {

/** A simulated GPU with persistent caches and a device timeline. */
class GpuDevice
{
  public:
    explicit GpuDevice(GpuConfig config = GpuConfig::v100(),
                       uint64_t seed = 1);

    const GpuConfig &config() const { return cfg_; }

    /** Execute a kernel; returns the (possibly sampled) metrics. */
    KernelRecord launch(const KernelDesc &desc);

    /**
     * @{ Timed, sparsity-instrumented host-to-device copies.
     * `device_addr` is the deterministic simulated address the bytes
     * land at (a Tensor's deviceAddr() or a DeviceSpan).
     */
    TransferRecord copyHostToDevice(const float *data, size_t count,
                                    uint64_t device_addr,
                                    const std::string &tag);
    TransferRecord copyHostToDevice(const int32_t *data, size_t count,
                                    uint64_t device_addr,
                                    const std::string &tag);
    /** @} */

    /**
     * @{ Timeline phase marks. Cost-free annotations the driving
     * layers insert between launches; forwarded to observers (as
     * PhaseMarks) and to the trace hook (as TraceMarkers), so both
     * live profilers and replayed traces can segment the kernel
     * stream into iterations and backward windows.
     */
    void markIterationBegin();
    void markBackwardBegin();
    void markBackwardEnd();
    /** @} */

    /** Register an observer that receives every kernel/transfer. */
    void addObserver(KernelObserver *observer);

    /** Remove all observers. */
    void clearObservers();

    /**
     * Attach (or detach, with nullptr) a capture hook that receives
     * the raw emission stream — launches with their detail-simulated
     * warp traces, transfer footprints, timeline markers. At most one
     * hook is active; recording costs one WarpTrace copy per sampled
     * warp and nothing when detached.
     */
    void setTraceHook(DeviceTraceHook *hook) { hook_ = hook; }

    /**
     * Re-issue a recorded host-to-device copy: the data itself is
     * gone, only its device address span and zero-value fraction
     * remain. Performs the same L2 install and PCIe timing as the
     * live copyHostToDevice paths.
     */
    TransferRecord replayHostToDevice(uint64_t addr, uint64_t bytes,
                                      double zero_fraction,
                                      const std::string &tag);

    /** Sum of simulated kernel durations. */
    double kernelTimeSec() const { return kernelTime_; }

    /** Sum of host-to-device transfer times. */
    double transferTimeSec() const { return transferTime_; }

    /**
     * Wall time of the launch stream: kernel execution overlaps the
     * host-side dispatch (asynchronous launches), so the stream is
     * bound by whichever is longer, plus the transfers.
     */
    double
    wallTimeSec() const
    {
        double dispatch =
            static_cast<double>(kernelCount_) * cfg_.launchOverheadSec;
        return std::max(kernelTime_, dispatch) + transferTime_;
    }

    int64_t kernelCount() const { return kernelCount_; }

    /** Zero the timeline (sampling caches and data caches persist). */
    void resetTimers();

    /** Drop all cached lines (L1s and L2). */
    void flushCaches();

    /** Forget per-kernel-name sampling state. */
    void resetSampling();

  private:
    /** Averaged per-warp rates for a kernel name. */
    struct SampleState
    {
        int64_t invocations = 0;
        int detailedRuns = 0;
        // Sums over detailed runs of per-warp quantities.
        double fp32PerWarp = 0, int32PerWarp = 0, memPerWarp = 0,
               miscPerWarp = 0, flopsPerWarp = 0, intOpsPerWarp = 0,
               loadsPerWarp = 0, divergentPerWarp = 0, l1AccPerWarp = 0,
               l1HitPerWarp = 0, l2AccPerWarp = 0, l2HitPerWarp = 0,
               dramBytesPerWarp = 0, cyclesPerWave = 0;
        StallVector stallsPerWarp{};
    };

    struct Geometry
    {
        int64_t totalWarps;
        int residentBlocks; ///< blocks co-resident on one SM
        int64_t waves;      ///< sequential waves per SM
        int activeSms;
    };

    Geometry computeGeometry(const KernelDesc &desc) const;
    KernelRecord simulateDetailed(
        const KernelDesc &desc, const Geometry &geo, SampleState &state,
        std::vector<std::pair<int64_t, WarpTrace>> *captured);
    KernelRecord replayFromSample(const KernelDesc &desc,
                                  const Geometry &geo,
                                  const SampleState &state);
    void finishRecord(KernelRecord &record, const Geometry &geo);
    TransferRecord recordTransfer(double bytes, double zero_fraction,
                                  const std::string &tag);
    void installInL2(uint64_t addr, size_t bytes);
    void notify(const KernelRecord &record);

    GpuConfig cfg_;
    Rng rng_;
    CacheModel l2_;
    std::vector<CacheModel> l1s_; ///< one per simulated SM
    std::unordered_map<std::string, SampleState> samples_;
    std::vector<KernelObserver *> observers_;
    DeviceTraceHook *hook_ = nullptr;

    double kernelTime_ = 0;
    double transferTime_ = 0;
    int64_t kernelCount_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_GPU_DEVICE_HH
