/**
 * @file
 * Multi-GPU interconnect model (NVLink, as on the paper's 4xV100 node:
 * six links per GPU, 300 GB/s aggregate).
 */

#ifndef GNNMARK_SIM_INTERCONNECT_HH
#define GNNMARK_SIM_INTERCONNECT_HH

namespace gnnmark {

/** NVLink parameters. */
struct InterconnectConfig
{
    int linksPerGpu = 6;
    double perLinkBandwidth = 25e9; ///< bytes/s per link per direction
    double messageLatencySec = 5e-6;
    /**
     * Fault model: remaining bandwidth fraction of the slowest ring
     * hop, in (0, 1]. A ring collective is a pipeline over every hop,
     * so one degraded link gates the whole collective; 1.0 = healthy.
     * Point-to-point copies are assumed to route around the bad link.
     */
    double degradedHopFactor = 1.0;
};

/**
 * Collective/point-to-point cost model over NVLink.
 *
 * All-reduce follows the standard ring formulation used by NCCL (and
 * thus by PyTorch DDP): 2(w-1)/w payload traversals at ring bandwidth
 * plus per-step latencies.
 */
class Interconnect
{
  public:
    explicit Interconnect(InterconnectConfig config = InterconnectConfig{});

    const InterconnectConfig &config() const { return cfg_; }

    /** Ring all-reduce of `bytes` across `world` GPUs; 0 if world <= 1. */
    double allReduceTime(double bytes, int world) const;

    /** One-to-all broadcast of `bytes`. */
    double broadcastTime(double bytes, int world) const;

    /** Point-to-point copy of `bytes` between two GPUs. */
    double p2pTime(double bytes) const;

  private:
    /** Bandwidth available to one ring direction. */
    double ringBandwidth() const;

    InterconnectConfig cfg_;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_INTERCONNECT_HH
