/**
 * @file
 * Deterministic fault injection against simulated time.
 *
 * A FaultPlan is an explicit list of fault events — replica crashes,
 * straggler slowdowns, degraded interconnect links, transient kernel
 * failures — each pinned to a simulated timestamp. Plans are either
 * written out by hand (reproducible scenarios) or generated from
 * Poisson rates by a seeded Rng. The FaultInjector answers stateless
 * queries about the fault environment at a given simulated time, so a
 * training harness that advances a simulated clock sees exactly the
 * same failures on every run with the same plan.
 */

#ifndef GNNMARK_SIM_FAULT_INJECTOR_HH
#define GNNMARK_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "base/rng.hh"

namespace gnnmark {

/** The fault kinds the injector models. */
enum class FaultKind : uint8_t
{
    ReplicaCrash,    ///< a replica stops responding permanently
    Straggler,       ///< a replica computes slower for a while
    DegradedLink,    ///< one ring hop loses bandwidth for a while
    TransientKernel, ///< one kernel/iteration fails and is retried
};

/** Human-readable fault kind, e.g. "crash". */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::ReplicaCrash;
    /** Simulated time at which the fault begins. */
    double timeSec = 0;
    /** Target replica (crash/straggler; ignored for link faults). */
    int replica = 0;
    /** How long the fault lasts; 0 means permanent. */
    double durationSec = 0;
    /**
     * Fault severity: straggler compute-time multiplier (> 1), or
     * remaining bandwidth fraction of the degraded hop (in (0, 1]).
     * Unused for crashes and transient kernel failures.
     */
    double magnitude = 1.0;
};

/** Poisson rates (events per simulated second) for plan generation. */
struct FaultRates
{
    double crashPerSec = 0;
    double stragglerPerSec = 0;
    double degradedLinkPerSec = 0;
    double transientPerSec = 0;

    /** @{ Severity/duration knobs for the generated events. */
    double stragglerSlowdown = 3.0;
    double stragglerDurationSec = 0.2;
    double linkFactor = 0.25;
    double linkDurationSec = 0.5;
    /** @} */
};

/** An ordered fault schedule. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Explicit event list (sorted by time on construction). */
    explicit FaultPlan(std::vector<FaultEvent> events);

    /**
     * Draw a plan from Poisson processes, one per fault kind, over
     * [0, horizonSec). Crash/straggler targets are uniform over
     * [0, world). Deterministic in (rng state, rates, horizon, world).
     *
     * Zero-rate channels draw no events (and consume no Rng state);
     * negative or non-finite rates are rejected. Generated events may
     * overlap on the same replica — crash/straggler precedence is a
     * query-time contract, see FaultInjector.
     */
    static FaultPlan generate(Rng &rng, const FaultRates &rates,
                              double horizonSec, int world);

    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

  private:
    std::vector<FaultEvent> events_; ///< sorted by timeSec
};

/**
 * Read-only oracle over a FaultPlan, queried by simulated time.
 *
 * Precedence for overlapping same-replica faults: a crash dominates a
 * straggler. Once crashed(replica, t) is true the replica performs no
 * work at all, so any straggler window covering the same replica and
 * time is moot; serviceFactor() encodes exactly this contract and is
 * what harnesses that price per-replica work should query.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan = FaultPlan{});

    const FaultPlan &plan() const { return plan_; }

    /**
     * Compute-time multiplier for `replica` at time `t`: the largest
     * magnitude among its active straggler events, or 1 if healthy.
     * Ignores crashes — use serviceFactor() when crash dominance
     * matters.
     */
    double stragglerFactor(int replica, double t) const;

    /**
     * Combined per-replica work multiplier: +infinity once the replica
     * has crashed (crash dominates straggler), else the straggler
     * factor. The serving layer prices batch service time with this.
     */
    double serviceFactor(int replica, double t) const;

    /**
     * Simulated time of the first crash of `replica`, or +infinity if
     * it never crashes. Lets an event-driven harness decide up front
     * whether a work item scheduled on [start, end) survives.
     */
    double crashTime(int replica) const;

    /**
     * Earliest time strictly after `t` at which the fault environment
     * changes (an event starts or a windowed event ends), or +infinity
     * when nothing changes after `t`. Event-driven harnesses use this
     * to re-evaluate routing decisions only when the world moved.
     */
    double nextTransitionAfter(double t) const;

    /**
     * Remaining bandwidth fraction of the worst degraded ring hop at
     * time `t`, or 1 if all links are healthy.
     */
    double linkFactor(double t) const;

    /** True if a crash of `replica` is scheduled at or before `t`. */
    bool crashed(int replica, double t) const;

    /**
     * Crash events with timeSec <= t, in schedule order (the harness
     * tracks which it has already recovered from).
     */
    std::vector<FaultEvent> crashesUpTo(double t) const;

    /** Transient kernel failures with timeSec in (t0, t1]. */
    int transientFailures(double t0, double t1) const;

  private:
    FaultPlan plan_;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_FAULT_INJECTOR_HH
