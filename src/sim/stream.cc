#include "sim/stream.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {

SimStream::SimStream(std::string name) : name_(std::move(name)) {}

const StreamOp &
SimStream::enqueue(const std::string &op_name, double ready_sec,
                   double duration_sec)
{
    GNN_ASSERT(duration_sec >= 0, "negative op duration");
    StreamOp op;
    op.name = op_name;
    op.readySec = ready_sec;
    op.startSec = std::max(ready_sec, cursor_);
    op.endSec = op.startSec + duration_sec;
    cursor_ = op.endSec;
    ops_.push_back(std::move(op));
    return ops_.back();
}

void
SimStream::waitEvent(const SimEvent &event)
{
    cursor_ = std::max(cursor_, event.timeSec);
}

double
IterationTimeline::wallSec() const
{
    const double dispatch =
        static_cast<double>(kernelCount) * launchOverheadSec;
    return std::max(kernelSec, dispatch) + transferSec;
}

double
IterationTimeline::wallAtKernelTime(double t) const
{
    if (kernelSec <= 0)
        return transferSec;
    const double clamped = std::min(std::max(t, 0.0), kernelSec);
    // When dispatch paces the stream, launches are spread over the
    // dispatch window, stretching cumulative kernel time uniformly.
    const double stretch = (wallSec() - transferSec) / kernelSec;
    return transferSec + clamped * stretch;
}

double
IterationTimeline::bucketReadySec(int index, int count) const
{
    GNN_ASSERT(count >= 1 && index >= 0 && index < count,
               "bucket index out of range");
    if (!hasBackward())
        return wallAtKernelTime(kernelSec);
    const size_t n = backwardKernelEnds.size();
    // Bucket i of `count` is full once fraction (i+1)/count of the
    // backward kernels have completed (grads are produced in kernel
    // order).
    size_t k = (n * static_cast<size_t>(index + 1) +
                static_cast<size_t>(count) - 1) /
               static_cast<size_t>(count);
    k = std::min(std::max<size_t>(k, 1), n);
    return wallAtKernelTime(backwardKernelEnds[k - 1]);
}

void
TimelineCollector::onKernel(const KernelRecord &record)
{
    if (iterations_.empty())
        return; // warm-up launch before the first iteration mark
    IterationTimeline &it = iterations_.back();
    it.kernelSec += record.timeSec;
    ++it.kernelCount;
    if (inBackward_)
        it.backwardKernelEnds.push_back(it.kernelSec);
}

void
TimelineCollector::onTransfer(const TransferRecord &record)
{
    if (iterations_.empty())
        return;
    iterations_.back().transferSec += record.timeSec;
}

void
TimelineCollector::onPhase(PhaseMark mark)
{
    switch (mark) {
      case PhaseMark::IterationBegin: {
        IterationTimeline it;
        it.launchOverheadSec = launchOverheadSec_;
        iterations_.push_back(it);
        inBackward_ = false;
        break;
      }
      case PhaseMark::BackwardBegin:
        if (!iterations_.empty()) {
            IterationTimeline &it = iterations_.back();
            if (it.backwardBeginKernelSec < 0)
                it.backwardBeginKernelSec = it.kernelSec;
            inBackward_ = true;
        }
        break;
      case PhaseMark::BackwardEnd:
        if (!iterations_.empty() && inBackward_) {
            iterations_.back().backwardEndKernelSec =
                iterations_.back().kernelSec;
        }
        inBackward_ = false;
        break;
    }
}

void
TimelineCollector::reset()
{
    iterations_.clear();
    inBackward_ = false;
}

} // namespace gnnmark
