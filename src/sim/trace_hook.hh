/**
 * @file
 * Capture hook on the device emission path.
 *
 * A DeviceTraceHook observes everything a GpuDevice consumes — kernel
 * launches with the warp traces chosen for detailed simulation,
 * host-to-device copies reduced to their footprint/sparsity, and the
 * timeline markers the drivers insert — which is exactly the
 * information needed to re-drive the cache/pipeline models later
 * without the tensor/op/model stack (NVBit-style capture once, replay
 * under any GpuConfig). The recorder lives in src/trace; this header
 * only defines the seam so the sim layer stays free of serialization
 * concerns.
 */

#ifndef GNNMARK_SIM_TRACE_HOOK_HH
#define GNNMARK_SIM_TRACE_HOOK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel_desc.hh"
#include "sim/warp_trace.hh"

namespace gnnmark {

/** Timeline markers drivers emit between launches (replayed as-is). */
enum class TraceMarker : uint8_t
{
    IterationBegin, ///< a measured training iteration starts
    TimersReset,    ///< GpuDevice::resetTimers (end of warm-up)
    CachesFlushed,  ///< GpuDevice::flushCaches
    SamplingReset,  ///< GpuDevice::resetSampling
    BackwardBegin,  ///< autograd reverse sweep starts (format v2)
    BackwardEnd,    ///< autograd reverse sweep done (format v2)
    NumMarkers
};

/** Printable marker name ("iteration-begin", ...). */
const char *traceMarkerName(TraceMarker marker);

/** Observer of the full device input stream (see file comment). */
class DeviceTraceHook
{
  public:
    virtual ~DeviceTraceHook() = default;

    /**
     * One kernel launch. `traced` holds the warps the device simulated
     * in detail this launch (empty when the launch reused averaged
     * sampling state), as (global warp id, recorded trace) pairs.
     */
    virtual void
    onLaunch(const KernelDesc &desc,
             std::vector<std::pair<int64_t, WarpTrace>> traced) = 0;

    /** One host-to-device copy, reduced to footprint and sparsity. */
    virtual void onTransfer(uint64_t addr, uint64_t bytes,
                            double zero_fraction,
                            const std::string &tag) = 0;

    /** A driver-inserted timeline marker. */
    virtual void onMarker(TraceMarker marker) = 0;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_TRACE_HOOK_HH
