#include "sim/warp_pipeline.hh"

#include <algorithm>
#include <bit>
#include <queue>

#include "base/logging.hh"

namespace gnnmark {

namespace {

/** Per-warp execution cursor. */
struct WarpState
{
    const WarpTrace *trace = nullptr;
    size_t pc = 0; ///< next TraceOp index
};

struct HeapEntry
{
    uint64_t ready;
    int warp;
    bool operator>(const HeapEntry &o) const { return ready > o.ready; }
};

} // namespace

WarpPipeline::WarpPipeline(const GpuConfig &config, CacheModel &l1,
                           CacheModel &l2, Rng &rng)
    : cfg_(config), l1_(l1), l2_(l2), rng_(rng)
{
}

WaveResult
WarpPipeline::run(const std::vector<const WarpTrace *> &warps,
                  const KernelDesc &desc)
{
    WaveResult res;

    // Full instruction counts come straight from the traces; the timed
    // replay below covers the recorded prefix and is extrapolated.
    uint64_t recorded_total = 0;
    for (const WarpTrace *w : warps) {
        res.fp32Instrs += static_cast<double>(w->counts.fp32);
        res.int32Instrs += static_cast<double>(w->counts.int32);
        res.memInstrs +=
            static_cast<double>(w->counts.loads + w->counts.stores);
        res.miscInstrs += static_cast<double>(w->counts.misc);
        res.flops += w->counts.flops;
        res.intOps += w->counts.intOps;
        recorded_total += w->recordedInstrs;
    }
    res.issued = res.fp32Instrs + res.int32Instrs + res.memInstrs +
                 res.miscInstrs;
    if (recorded_total == 0)
        return res;
    const double extrapolate =
        std::max(1.0, res.issued / static_cast<double>(recorded_total));

    // Fresh per-kernel I-caches (different code than the last kernel):
    // an L0 miss that also misses the (cold) L1I fetches from the L2 /
    // DRAM — the expensive path behind the paper's instruction-fetch
    // stalls on short kernels.
    CacheModel l0i(cfg_.l0ISizeBytes, cfg_.l0IAssoc, cfg_.cacheLineBytes);
    CacheModel l1i(cfg_.l1ISizeBytes, 4, cfg_.cacheLineBytes);
    const uint64_t code_bytes = std::max<uint64_t>(
        static_cast<uint64_t>(desc.codeBytes), cfg_.cacheLineBytes);
    // Kernel code sizes are almost always powers of two; mask instead
    // of dividing on the per-instruction fetch path when they are.
    const uint64_t code_mask =
        std::has_single_bit(code_bytes) ? code_bytes - 1 : 0;

    const double alu_ilp = desc.aluIlp > 0 ? desc.aluIlp : cfg_.aluIlp;
    const double load_dep = desc.loadDepFraction > 0 ? desc.loadDepFraction
                                                     : cfg_.loadDepFraction;
    const double alu_dep_prob = 1.0 / std::max(1.0, alu_ilp);
    const bool bypass_l1 = cfg_.l1BypassIrregular && desc.irregular;

    std::vector<WarpState> state(warps.size());
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> pending;
    for (size_t i = 0; i < warps.size(); ++i) {
        state[i].trace = warps[i];
        if (!warps[i]->ops.empty())
            pending.push(HeapEntry{0, static_cast<int>(i)});
    }

    std::vector<int> ready; // FIFO of issuable warps
    std::vector<int> kept;  // port-blocked this cycle (reused buffer)
    std::vector<int> rebuilt; // scratch for the re-queue (reused)
    size_t ready_head = 0;
    uint64_t now = 0;

    auto attribute = [&](StallReason r, double cycles) {
        res.stalls[static_cast<size_t>(r)] += cycles;
    };

    // Service one memory instruction; returns dependent-use latency.
    auto service_mem = [&](const WarpTrace &trace, const TraceOp &op,
                           uint64_t &issue_cost) -> uint64_t {
        const bool is_load = op.kind == InstrKind::Load;
        const bool is_atomic = op.kind == InstrKind::Atomic;
        uint64_t worst = 0;
        for (int l = 0; l < op.lineCount; ++l) {
            uint64_t addr = trace.lines[op.lineBegin + l];
            uint64_t lat;
            bool l1_hit = false;
            if (is_load && !bypass_l1 && !is_atomic) {
                l1_hit = l1_.access(addr);
                res.l1Accesses += 1;
                if (l1_hit)
                    res.l1Hits += 1;
            }
            if (l1_hit) {
                lat = cfg_.l1HitLatency;
            } else {
                bool l2_hit = l2_.access(addr);
                res.l2Accesses += 1;
                if (l2_hit) {
                    res.l2Hits += 1;
                    lat = cfg_.l2HitLatency;
                } else {
                    lat = cfg_.dramLatency;
                    res.dramBytes += cfg_.cacheLineBytes;
                }
                if (is_atomic)
                    lat += cfg_.atomicLatency;
            }
            worst = std::max(worst, lat);
        }
        // Divergent requests replay the LD/ST unit per excess line
        // beyond what an aligned coalesced access would need.
        const int extra_lines =
            op.lineCount > op.minLines ? op.lineCount - op.minLines : 0;
        issue_cost =
            1 + static_cast<uint64_t>(extra_lines) *
                    cfg_.divergenceReplayCycles;
        if (is_load) {
            res.loads += 1;
            if (op.divergent())
                res.divergentLoads += 1;
        }
        return worst;
    };

    while (!pending.empty() || ready_head < ready.size()) {
        // Promote warps whose results have landed.
        while (!pending.empty() && pending.top().ready <= now) {
            ready.push_back(pending.top().warp);
            pending.pop();
        }
        if (ready_head == ready.size()) {
            // Nothing issuable: jump to the next wake-up.
            GNN_ASSERT(!pending.empty(), "deadlock in pipeline model");
            now = pending.top().ready;
            continue;
        }

        // Issue up to issueWidth warps, subject to per-port throughput
        // (fp32/int32/LSU/SFU); port-blocked warps stay eligible.
        int slots = cfg_.issueWidth;
        int fp_ports = cfg_.fp32PortsPerCycle;
        int int_ports = cfg_.int32PortsPerCycle;
        int lsu_ports = cfg_.lsuPortsPerCycle;
        int sfu_ports = cfg_.sfuPortsPerCycle;
        kept.clear();
        while (slots > 0 && ready_head < ready.size()) {
            int wi = ready[ready_head++];
            switch (state[wi].trace->ops[state[wi].pc].kind) {
              case InstrKind::Fp32:
              case InstrKind::Fma:
                if (fp_ports == 0) {
                    kept.push_back(wi);
                    continue;
                }
                --fp_ports;
                break;
              case InstrKind::Sfu:
                if (sfu_ports == 0) {
                    kept.push_back(wi);
                    continue;
                }
                --sfu_ports;
                break;
              case InstrKind::Int32:
                if (int_ports == 0) {
                    kept.push_back(wi);
                    continue;
                }
                --int_ports;
                break;
              case InstrKind::Load:
              case InstrKind::Store:
              case InstrKind::Atomic:
              case InstrKind::SharedLoad:
              case InstrKind::SharedStore:
                if (lsu_ports == 0) {
                    kept.push_back(wi);
                    continue;
                }
                --lsu_ports;
                break;
              case InstrKind::Misc:
              case InstrKind::Barrier:
                break; // control issues on any slot
            }
            --slots;
            WarpState &ws = state[wi];
            const WarpTrace &trace = *ws.trace;
            const TraceOp &op = trace.ops[ws.pc];

            // Instruction fetch through the L0 / L1 I-caches.
            uint64_t fetch_delay = 0;
            const uint64_t ibyte =
                static_cast<uint64_t>(ws.pc) * cfg_.instrBytes;
            const uint64_t iaddr =
                code_mask != 0 ? (ibyte & code_mask) : ibyte % code_bytes;
            if (!l0i.access(iaddr)) {
                fetch_delay = l1i.access(iaddr)
                                  ? static_cast<uint64_t>(
                                        cfg_.ifetchMissCycles)
                                  : static_cast<uint64_t>(
                                        cfg_.ifetchColdCycles);
            }

            uint64_t gap = 1; // cycles until this warp may issue again
            StallReason reason = StallReason::ExecutionDependency;
            switch (op.kind) {
              case InstrKind::Fp32:
              case InstrKind::Fma:
              case InstrKind::Int32:
                if (rng_.bernoulli(alu_dep_prob))
                    gap = cfg_.aluLatency;
                break;
              case InstrKind::Sfu:
                gap = rng_.bernoulli(alu_dep_prob) ? cfg_.sfuLatency : 4;
                break;
              case InstrKind::Misc:
                gap = 1;
                break;
              case InstrKind::SharedLoad:
              case InstrKind::SharedStore:
                if (rng_.bernoulli(alu_dep_prob))
                    gap = cfg_.sharedLatency;
                break;
              case InstrKind::Barrier:
                gap = cfg_.barrierCycles;
                reason = StallReason::Synchronization;
                break;
              case InstrKind::Load: {
                uint64_t issue_cost = 1;
                uint64_t lat = service_mem(trace, op, issue_cost);
                reason = StallReason::MemoryDependency;
                gap = rng_.bernoulli(load_dep) ? lat + issue_cost
                                               : issue_cost;
                break;
              }
              case InstrKind::Store:
              case InstrKind::Atomic: {
                uint64_t issue_cost = 1;
                uint64_t lat = service_mem(trace, op, issue_cost);
                reason = StallReason::MemoryDependency;
                if (op.kind == InstrKind::Atomic) {
                    gap = rng_.bernoulli(0.3) ? lat + issue_cost
                                              : issue_cost + 2;
                } else {
                    gap = issue_cost; // stores are fire-and-forget
                }
                break;
              }
            }
            gap = std::max<uint64_t>(1, gap) + fetch_delay;
            if (gap > 1) {
                // Attribute the idle gap: fetch first, remainder to the
                // dependency class of the instruction just issued.
                if (fetch_delay > 0)
                    attribute(StallReason::InstructionFetch,
                              static_cast<double>(fetch_delay));
                uint64_t dep_gap = gap - fetch_delay;
                if (dep_gap > 1)
                    attribute(reason, static_cast<double>(dep_gap - 1));
            }

            ++ws.pc;
            if (ws.pc < trace.ops.size())
                pending.push(HeapEntry{now + gap, wi});
        }

        // Warps that were eligible but lost arbitration (or their
        // execution port) this cycle stay eligible for the next one.
        // The sampled attribution is capped per cycle, matching the
        // per-scheduler view nvprof reports (each scheduler sees at
        // most a few eligible-but-unissued warps).
        double left = static_cast<double>(
            kept.size() + (ready.size() - ready_head));
        if (left > 0) {
            attribute(StallReason::NotSelected,
                      std::min<double>(left, cfg_.issueWidth));
        }
        if (!kept.empty()) {
            // Re-queue port-blocked warps ahead of the unscanned ones.
            rebuilt.clear();
            rebuilt.reserve(kept.size() + ready.size() - ready_head);
            rebuilt.insert(rebuilt.end(), kept.begin(), kept.end());
            rebuilt.insert(rebuilt.end(),
                           ready.begin() + static_cast<long>(ready_head),
                           ready.end());
            ready.swap(rebuilt);
            ready_head = 0;
        } else if (ready_head > 1024) {
            // Compact the FIFO occasionally.
            ready.erase(ready.begin(),
                        ready.begin() + static_cast<long>(ready_head));
            ready_head = 0;
        }
        ++now;
    }

    res.cycles = static_cast<double>(now) * extrapolate;
    for (auto &s : res.stalls)
        s *= extrapolate;
    res.loads *= extrapolate;
    res.divergentLoads *= extrapolate;
    res.l1Accesses *= extrapolate;
    res.l1Hits *= extrapolate;
    res.l2Accesses *= extrapolate;
    res.l2Hits *= extrapolate;
    res.dramBytes *= extrapolate;
    return res;
}

} // namespace gnnmark
