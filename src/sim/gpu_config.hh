/**
 * @file
 * GPU hardware parameters for the timing model.
 *
 * The default preset models the NVIDIA V100 used in the paper: 80 SMs,
 * 14 TFLOPS fp32 peak, 128 KB combined L1 per SM, 6 MB shared L2,
 * 900 GB/s HBM2, and a 12 KB L0 instruction cache per SM.
 */

#ifndef GNNMARK_SIM_GPU_CONFIG_HH
#define GNNMARK_SIM_GPU_CONFIG_HH

#include <cstdint>

#include "base/units.hh"

namespace gnnmark {

/** Hardware and model parameters for a simulated GPU. */
struct GpuConfig
{
    // --- Compute resources ---
    int numSms = 80;            ///< streaming multiprocessors
    int warpSize = 32;          ///< threads per warp
    int maxWarpsPerSm = 64;     ///< resident warp limit per SM
    int maxBlocksPerSm = 32;    ///< resident block limit per SM
    int issueWidth = 4;         ///< warp instructions issued per SM cycle

    // Execution-port throughput (warp instructions per SM cycle).
    // 64 fp32 lanes => 2 warp-FMA/cycle (14.1 TFLOPS peak at 1.38 GHz).
    int fp32PortsPerCycle = 2;
    int int32PortsPerCycle = 2;
    int lsuPortsPerCycle = 2; ///< global + shared memory instructions
    int sfuPortsPerCycle = 1;
    double clockGhz = 1.38;     ///< SM clock

    // --- Data caches ---
    uint64_t l1SizeBytes = 128 * KiB; ///< combined L1/shared per SM
    int l1Assoc = 4;
    uint64_t l2SizeBytes = 6 * MiB;   ///< device-wide L2
    int l2Assoc = 16;
    int cacheLineBytes = 128;

    // --- Instruction cache ---
    uint64_t l0ISizeBytes = 12 * KiB; ///< per-SM L0 I-cache
    int l0IAssoc = 2;
    int instrBytes = 16;              ///< encoded size per instruction
    int ifetchMissCycles = 16;        ///< L0 miss, served from L1I
    uint64_t l1ISizeBytes = 128 * KiB; ///< per-SM L1 I-cache
    int ifetchColdCycles = 180;       ///< L1I cold miss (L2/DRAM)

    // --- Latencies (cycles) ---
    int aluLatency = 6;        ///< fp32 / int32 dependent-use latency
    int sfuLatency = 14;       ///< transcendental units
    int sharedLatency = 24;    ///< shared-memory dependent-use latency
    int l1HitLatency = 28;
    int l2HitLatency = 190;
    int dramLatency = 430;
    int atomicLatency = 240;   ///< global atomics resolve at the L2
    int barrierCycles = 30;    ///< average wait at a block-wide barrier
    int divergenceReplayCycles = 2; ///< per extra cache line in a request

    // --- Off-chip ---
    double dramBandwidth = 900e9; ///< HBM2 bytes/s
    double pcieBandwidth = 16e9;  ///< host-to-device bytes/s
    double pcieLatencySec = 10e-6;
    double launchOverheadSec = 2.5e-6; ///< host-side dispatch per kernel
    double kernelBaseTimeSec = 1.0e-6; ///< device-side floor per kernel

    // --- Data types ---
    int elemBytes = 4; ///< fp32; the fp16 ablation sets 2

    // --- Model knobs ---
    int detailSampleLimit = 6;      ///< detailed sims per kernel name
    int maxTraceInstrs = 2048;      ///< recorded instrs per sampled warp
    int simSmCount = 1;             ///< SMs simulated in detail
    bool l1BypassIrregular = false; ///< ablation: irregular ops skip L1
    bool h2dCompression = false;    ///< ablation: compress sparse copies
    double aluIlp = 2.0;            ///< default independent-instr window
    double loadDepFraction = 0.6;   ///< default P(next instr uses a load)

    /** The V100 configuration used throughout the paper. */
    static GpuConfig v100();

    /**
     * An A100-like configuration (108 SMs, 192 KB L1, 40 MB L2,
     * 1555 GB/s HBM2e) for architectural-sensitivity studies.
     */
    static GpuConfig a100();

    /** Clock frequency in Hz. */
    double clockHz() const { return clockGhz * 1e9; }
};

} // namespace gnnmark

#endif // GNNMARK_SIM_GPU_CONFIG_HH
