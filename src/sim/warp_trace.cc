#include "sim/warp_trace.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace gnnmark {

double
WarpTrace::extrapolationFactor() const
{
    if (recordedInstrs == 0)
        return 1.0;
    double factor = static_cast<double>(counts.total()) /
                    static_cast<double>(recordedInstrs);
    return std::max(1.0, factor);
}

WarpTraceSink::WarpTraceSink(WarpTrace &trace, int cap, int line_bytes)
    : trace_(trace), cap_(static_cast<uint64_t>(cap)),
      lineBytes_(line_bytes)
{
    GNN_ASSERT(cap > 0, "trace cap must be positive");
    GNN_ASSERT(line_bytes > 0 && std::has_single_bit(
                   static_cast<uint64_t>(line_bytes)),
               "line size must be a power of two");
    lineShift_ = std::countr_zero(static_cast<uint64_t>(line_bytes));
}

void
WarpTraceSink::recordAlu(InstrKind kind)
{
    if (trace_.recordedInstrs < cap_) {
        trace_.ops.push_back(TraceOp{kind, 0, 0, 0});
        ++trace_.recordedInstrs;
    }
}

void
WarpTraceSink::fp32(int n)
{
    trace_.counts.fp32 += n;
    trace_.counts.flops += 32.0 * n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::Fp32);
}

void
WarpTraceSink::fma(int n)
{
    trace_.counts.fp32 += n;
    trace_.counts.flops += 64.0 * n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::Fma);
}

void
WarpTraceSink::sfu(int n)
{
    trace_.counts.fp32 += n;
    trace_.counts.flops += 32.0 * n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::Sfu);
}

void
WarpTraceSink::int32(int n)
{
    trace_.counts.int32 += n;
    trace_.counts.intOps += 32.0 * n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::Int32);
}

void
WarpTraceSink::misc(int n)
{
    trace_.counts.misc += n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::Misc);
}

void
WarpTraceSink::recordMem(InstrKind kind, const uint64_t *addrs, int lanes,
                         int bytes_per_lane)
{
    GNN_ASSERT(lanes > 0 && lanes <= 32, "lanes out of range: %d", lanes);

    // Address arithmetic: every global access is preceded by IMAD-style
    // integer work in the compiled kernel (64-bit IMAD pairs plus the
    // predicate computation).
    int32(3);

    bool is_load = kind == InstrKind::Load;
    if (is_load) {
        ++trace_.counts.loads;
    } else {
        ++trace_.counts.stores;
    }

    if (trace_.recordedInstrs >= cap_)
        return;

    // Coalesce lane addresses into distinct line addresses, exactly as
    // the LD/ST unit would. A lane access can straddle two lines when
    // bytes_per_lane > 1 and the address is not line-aligned.
    uint64_t lane_lines[64];
    int n = 0;
    for (int i = 0; i < lanes; ++i) {
        uint64_t first = addrs[i] >> lineShift_;
        uint64_t last = (addrs[i] + bytes_per_lane - 1) >> lineShift_;
        lane_lines[n++] = first;
        if (last != first)
            lane_lines[n++] = last;
    }
    std::sort(lane_lines, lane_lines + n);
    int unique = static_cast<int>(
        std::unique(lane_lines, lane_lines + n) - lane_lines);

    TraceOp op;
    op.kind = kind;
    op.lineCount = static_cast<uint16_t>(unique);
    // A perfectly coalesced, aligned access by these lanes would need
    // this many lines; anything beyond is divergence / misalignment.
    op.minLines = static_cast<uint16_t>(
        (static_cast<uint64_t>(lanes) * bytes_per_lane + lineBytes_ - 1) /
        lineBytes_);
    op.lineBegin = static_cast<uint32_t>(trace_.lines.size());
    for (int i = 0; i < unique; ++i)
        trace_.lines.push_back(lane_lines[i] << lineShift_);
    trace_.ops.push_back(op);
    ++trace_.recordedInstrs;
}

void
WarpTraceSink::loadGlobal(const uint64_t *addrs, int lanes,
                          int bytes_per_lane)
{
    recordMem(InstrKind::Load, addrs, lanes, bytes_per_lane);
}

void
WarpTraceSink::storeGlobal(const uint64_t *addrs, int lanes,
                           int bytes_per_lane)
{
    recordMem(InstrKind::Store, addrs, lanes, bytes_per_lane);
}

void
WarpTraceSink::atomicGlobal(const uint64_t *addrs, int lanes,
                            int bytes_per_lane)
{
    recordMem(InstrKind::Atomic, addrs, lanes, bytes_per_lane);
}

void
WarpTraceSink::loadCoalesced(uint64_t base, int bytes_per_lane, int lanes)
{
    uint64_t addrs[32];
    for (int i = 0; i < lanes; ++i)
        addrs[i] = base + static_cast<uint64_t>(i) * bytes_per_lane;
    recordMem(InstrKind::Load, addrs, lanes, bytes_per_lane);
}

void
WarpTraceSink::storeCoalesced(uint64_t base, int bytes_per_lane, int lanes)
{
    uint64_t addrs[32];
    for (int i = 0; i < lanes; ++i)
        addrs[i] = base + static_cast<uint64_t>(i) * bytes_per_lane;
    recordMem(InstrKind::Store, addrs, lanes, bytes_per_lane);
}

void
WarpTraceSink::sharedLoad(int n)
{
    trace_.counts.misc += n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::SharedLoad);
}

void
WarpTraceSink::sharedStore(int n)
{
    trace_.counts.misc += n;
    for (int i = 0; i < n && trace_.recordedInstrs < cap_; ++i)
        recordAlu(InstrKind::SharedStore);
}

void
WarpTraceSink::barrier()
{
    trace_.counts.misc += 1;
    if (trace_.recordedInstrs < cap_)
        recordAlu(InstrKind::Barrier);
}

void
WarpTraceSink::scaleRemainder(double factor)
{
    GNN_ASSERT(factor >= 1.0, "scaleRemainder factor must be >= 1");
    TraceCounts &c = trace_.counts;
    c.fp32 = static_cast<uint64_t>(c.fp32 * factor);
    c.int32 = static_cast<uint64_t>(c.int32 * factor);
    c.misc = static_cast<uint64_t>(c.misc * factor);
    c.loads = static_cast<uint64_t>(c.loads * factor);
    c.stores = static_cast<uint64_t>(c.stores * factor);
    c.flops *= factor;
    c.intOps *= factor;
}

} // namespace gnnmark
