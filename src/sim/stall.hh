/**
 * @file
 * Warp issue-stall taxonomy, following nvprof's stall-reason metrics that
 * the paper reports in Fig. 5 (Memory Dependency, Execution Dependency,
 * Instruction Fetch, plus synchronization / throttle / scheduler buckets).
 */

#ifndef GNNMARK_SIM_STALL_HH
#define GNNMARK_SIM_STALL_HH

#include <array>
#include <string>

namespace gnnmark {

/** Reasons a resident warp cannot issue on a given cycle. */
enum class StallReason
{
    MemoryDependency,    ///< waiting on an outstanding global load
    ExecutionDependency, ///< waiting on an in-flight ALU/SFU result
    InstructionFetch,    ///< waiting on the instruction cache
    Synchronization,     ///< waiting at a block barrier
    MemoryThrottle,      ///< memory system saturated (bandwidth bound)
    NotSelected,         ///< eligible but scheduler picked another warp
    NumReasons
};

constexpr size_t kNumStallReasons =
    static_cast<size_t>(StallReason::NumReasons);

/** Printable name, e.g. "Memory Dependency". */
const std::string &stallReasonName(StallReason r);

/** Per-reason accumulator (warp-cycles). */
using StallVector = std::array<double, kNumStallReasons>;

} // namespace gnnmark

#endif // GNNMARK_SIM_STALL_HH
