/**
 * @file
 * Description of a kernel launch handed from the operator layer to the
 * GPU timing model.
 */

#ifndef GNNMARK_SIM_KERNEL_DESC_HH
#define GNNMARK_SIM_KERNEL_DESC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/op_class.hh"
#include "sim/warp_trace.hh"

namespace gnnmark {

/**
 * One kernel launch.
 *
 * `trace` is called by the device for the warps it chooses to simulate
 * in detail; it must be a pure function of the global warp id (same id,
 * same trace) so sampling is deterministic. Global warp ids enumerate
 * warps block-major: warp w of block b has id b * warpsPerBlock + w.
 */
struct KernelDesc
{
    std::string name;   ///< stable kernel identity (used for sampling)
    OpClass opClass = OpClass::Other;

    int64_t blocks = 1;    ///< grid size in thread blocks
    int warpsPerBlock = 4; ///< block size in warps

    /**
     * Static code footprint in bytes; drives the I-cache model.
     * Heavily unrolled kernels (GEMM, conv, sort) have large bodies.
     */
    int codeBytes = 4096;

    /**
     * Average independent-instruction window for ALU chains; higher
     * values hide ALU latency better (default taken from GpuConfig).
     */
    double aluIlp = 0.0;

    /**
     * Probability that the instruction after a global load consumes it
     * (0 => fully software-pipelined, 1 => pointer chasing). Default
     * taken from GpuConfig.
     */
    double loadDepFraction = 0.0;

    /** Irregular-access kernels may skip L1 under the bypass ablation. */
    bool irregular = false;

    /** Per-warp trace generator (see class comment). */
    std::function<void(int64_t warp_id, WarpTraceSink &sink)> trace;

    /**
     * Replay-mode alternative to `trace`: returns a pre-recorded warp
     * trace instead of generating one through a WarpTraceSink. Takes
     * precedence over `trace` when set; used by the trace replayer
     * (src/trace) to feed captured streams back through the
     * cache/pipeline models. Must be a pure function of the warp id,
     * like `trace`, and the returned reference must stay valid for
     * the duration of the launch (the device borrows it — no copy).
     */
    std::function<const WarpTrace &(int64_t warp_id)> replay;

    /**
     * (address, bytes) spans the full grid *writes*. The detailed sim
     * only replays a sample of warps, so the device installs these
     * spans into the L2 after the launch to model the write-allocate
     * footprint of the whole kernel (producer -> consumer locality).
     */
    std::vector<std::pair<uint64_t, uint64_t>> outputRanges;

    /**
     * (address, bytes) spans the full grid *reads*. Reads allocate in
     * the L2 as well, but only after the write footprint has claimed
     * its share of the post-launch install budget — inputs must never
     * masquerade as the kernel's write footprint.
     */
    std::vector<std::pair<uint64_t, uint64_t>> inputRanges;

    int64_t totalWarps() const { return blocks * warpsPerBlock; }
};

} // namespace gnnmark

#endif // GNNMARK_SIM_KERNEL_DESC_HH
