/**
 * @file
 * Measured results of a kernel launch (and of host-to-device copies),
 * as delivered to profiler observers. This is the model's analogue of
 * one nvprof row plus the NVBit divergence counters.
 */

#ifndef GNNMARK_SIM_KERNEL_RECORD_HH
#define GNNMARK_SIM_KERNEL_RECORD_HH

#include <cstdint>
#include <string>

#include "sim/op_class.hh"
#include "sim/stall.hh"

namespace gnnmark {

/** Per-launch metrics, scaled to the full grid. */
struct KernelRecord
{
    std::string name;
    OpClass opClass = OpClass::Other;
    int64_t invocation = 0; ///< per-name launch counter (0-based)
    bool detailed = false;  ///< freshly simulated vs. reused sample

    double timeSec = 0;     ///< kernel duration (excludes launch gap)
    double cycles = 0;      ///< SM cycles over the kernel duration
    int activeSms = 0;      ///< SMs with at least one resident block
    double ipc = 0;         ///< warp instrs / cycle / active SM

    // Dynamic instruction counts (warp instructions, full grid).
    double fp32Instrs = 0;
    double int32Instrs = 0;
    double memInstrs = 0;
    double miscInstrs = 0;
    double totalInstrs() const
    {
        return fp32Instrs + int32Instrs + memInstrs + miscInstrs;
    }

    // Lane-level arithmetic work (for GFLOPS / GIOPS).
    double flops = 0;
    double intOps = 0;

    // Memory behaviour.
    double loads = 0;          ///< global load instructions
    double divergentLoads = 0; ///< loads touching > 1 cache line
    double l1Accesses = 0;
    double l1Hits = 0;
    double l2Accesses = 0;
    double l2Hits = 0;
    double dramBytes = 0;

    // Warp issue-stall cycles by reason (relative magnitudes matter).
    StallVector stallCycles{};
};

/** One host-to-device copy, with the sparsity the paper tracks. */
struct TransferRecord
{
    std::string tag;      ///< caller-provided label (e.g. "features")
    double bytes = 0;
    double zeroFraction = 0; ///< fraction of zero-valued elements
    double timeSec = 0;
};

/**
 * Timeline phase marks the driving layer inserts between launches.
 * They carry no cost; observers use them to segment the kernel stream
 * (per-iteration splits, backward windows for the DDP overlap model).
 */
enum class PhaseMark : uint8_t
{
    IterationBegin, ///< a measured training iteration starts
    BackwardBegin,  ///< autograd reverse sweep starts emitting kernels
    BackwardEnd,    ///< last gradient-producing kernel has been issued
};

/**
 * Observer interface for profilers; a device forwards every kernel
 * launch and host-to-device transfer to its registered observers.
 */
class KernelObserver
{
  public:
    virtual ~KernelObserver() = default;
    virtual void onKernel(const KernelRecord &record) = 0;
    virtual void onTransfer(const TransferRecord &record) = 0;
    /** Phase mark forwarded by the device (default: ignored). */
    virtual void onPhase(PhaseMark mark) { (void)mark; }
};

} // namespace gnnmark

#endif // GNNMARK_SIM_KERNEL_RECORD_HH
