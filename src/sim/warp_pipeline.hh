/**
 * @file
 * In-order, multi-warp SM pipeline model.
 *
 * Replays the recorded traces of one wave of resident warps on one SM:
 * warps issue round-robin (up to issueWidth per cycle), dependent-use
 * latencies create issue stalls attributed per nvprof's taxonomy, and
 * memory instructions walk the L1 -> L2 -> DRAM hierarchy line by line.
 */

#ifndef GNNMARK_SIM_WARP_PIPELINE_HH
#define GNNMARK_SIM_WARP_PIPELINE_HH

#include <vector>

#include "base/rng.hh"
#include "sim/cache_model.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel_desc.hh"
#include "sim/stall.hh"
#include "sim/warp_trace.hh"

namespace gnnmark {

/** Aggregate results of simulating one wave on one SM. */
struct WaveResult
{
    double cycles = 0;  ///< wave duration (extrapolated) in SM cycles
    double issued = 0;  ///< warp instructions issued (full counts)

    // Instruction mix (full counts from the traces).
    double fp32Instrs = 0;
    double int32Instrs = 0;
    double memInstrs = 0;
    double miscInstrs = 0;
    double flops = 0;
    double intOps = 0;

    // Memory behaviour (extrapolated from the recorded prefix).
    double loads = 0;
    double divergentLoads = 0;
    double l1Accesses = 0;
    double l1Hits = 0;
    double l2Accesses = 0;
    double l2Hits = 0;
    double dramBytes = 0;

    StallVector stalls{}; ///< warp-stall cycles by reason (extrapolated)
};

/**
 * Pipeline simulator bound to one SM's L1 and the device L2.
 *
 * The caches persist across kernels (owned by the device); the L0
 * I-cache is rebuilt per run() since each kernel has different code.
 */
class WarpPipeline
{
  public:
    WarpPipeline(const GpuConfig &config, CacheModel &l1, CacheModel &l2,
                 Rng &rng);

    /**
     * Simulate one wave.
     * @param warps Recorded traces of the resident warps (borrowed;
     *              pointers let the replay path feed stored traces
     *              without copying them).
     * @param desc  The launch (for code size, ILP, bypass hints).
     */
    WaveResult run(const std::vector<const WarpTrace *> &warps,
                   const KernelDesc &desc);

    /** Convenience overload over owned traces (tests, ad-hoc waves). */
    WaveResult
    run(const std::vector<WarpTrace> &warps, const KernelDesc &desc)
    {
        std::vector<const WarpTrace *> ptrs;
        ptrs.reserve(warps.size());
        for (const WarpTrace &w : warps)
            ptrs.push_back(&w);
        return run(ptrs, desc);
    }

  private:
    const GpuConfig &cfg_;
    CacheModel &l1_;
    CacheModel &l2_;
    Rng &rng_;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_WARP_PIPELINE_HH
