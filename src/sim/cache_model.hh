/**
 * @file
 * Set-associative LRU cache model used for the GPU's L1 data caches,
 * the shared L2, and (with small geometry) the per-SM L0 I-caches.
 */

#ifndef GNNMARK_SIM_CACHE_MODEL_HH
#define GNNMARK_SIM_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

namespace gnnmark {

/**
 * A classic set-associative cache with true-LRU replacement.
 *
 * Addresses are byte addresses; the model tracks tags only (no data).
 * Statistics accumulate until resetStats().
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *                   line_bytes * assoc.
     * @param assoc      Ways per set.
     * @param line_bytes Line size (power of two).
     */
    CacheModel(uint64_t size_bytes, int assoc, int line_bytes);

    /**
     * Look up (and on miss, fill) the line containing addr.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Look up without filling on miss (used for bypass modelling). */
    bool probe(uint64_t addr) const;

    /** Drop all lines (e.g., between unrelated kernels for I-caches). */
    void flush();

    /** Zero the hit/miss counters (contents are kept). */
    void resetStats();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    /** Hit rate in [0,1]; 0 if no accesses yet. */
    double hitRate() const;

    int lineBytes() const { return lineBytes_; }
    uint64_t numSets() const { return numSets_; }
    int assoc() const { return assoc_; }

  private:
    struct Way
    {
        uint64_t tag = ~0ULL;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    int assoc_;
    int lineBytes_;
    int lineShift_;
    uint64_t numSets_;
    std::vector<Way> ways_; // numSets_ * assoc_, set-major
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_CACHE_MODEL_HH
