/**
 * @file
 * Set-associative LRU cache model used for the GPU's L1 data caches,
 * the shared L2, and (with small geometry) the per-SM L0 I-caches.
 */

#ifndef GNNMARK_SIM_CACHE_MODEL_HH
#define GNNMARK_SIM_CACHE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gnnmark {

/**
 * A classic set-associative cache with true-LRU replacement.
 *
 * Addresses are byte addresses; the model tracks tags only (no data).
 * Statistics accumulate until resetStats().
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *                   line_bytes * assoc.
     * @param assoc      Ways per set.
     * @param line_bytes Line size (power of two).
     */
    CacheModel(uint64_t size_bytes, int assoc, int line_bytes);

    /**
     * Look up (and on miss, fill) the line containing addr.
     * @return true on hit.
     */
    bool access(uint64_t addr)
    {
        const uint64_t line = addr >> lineShift_;
        return accessLine(line, setIndex(line));
    }

    /**
     * access() every line of [addr, addr+bytes), at most max_lines of
     * them — the bulk footprint-install path. State and statistics
     * end up identical to the equivalent per-line access() loop; the
     * sequential walk just pays the set-index reduction once.
     * @return lines touched.
     */
    int64_t accessLines(uint64_t addr, uint64_t bytes,
                        int64_t max_lines);

    /** Look up without filling on miss (used for bypass modelling). */
    bool probe(uint64_t addr) const;

    /** Drop all lines (e.g., between unrelated kernels for I-caches). */
    void flush();

    /** Zero the hit/miss counters (contents are kept). */
    void resetStats();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    /** Hit rate in [0,1]; 0 if no accesses yet. */
    double hitRate() const;

    int lineBytes() const { return lineBytes_; }
    uint64_t numSets() const { return numSets_; }
    int assoc() const { return assoc_; }

  private:
    /**
     * Reduce a line index to its set. Power-of-two set counts (every
     * L1/L0I/L1I geometry, most L2 points) take the mask path; the
     * general modulo produces the same index when they coincide, so
     * the choice never changes behaviour — only the cost of the
     * per-access hardware divide.
     */
    uint64_t setIndex(uint64_t line) const
    {
        return setMask_ != 0 ? (line & setMask_) : (line % numSets_);
    }

    /** One lookup with the set index already reduced. */
    bool accessLine(uint64_t line, uint64_t set)
    {
        ++clock_;
        return scanFill(line, static_cast<size_t>(set) * assoc_) >= 0;
    }

    /**
     * Scan/fill one set with clock_ already advanced. Returns the way
     * hit (>= 0) or ~way filled (< 0). The scan order over ways is
     * unobservable — a line appears in a set at most once — so
     * callers may probe a likely way first without changing results.
     */
    int scanFill(uint64_t line, size_t base)
    {
        const uint64_t *tags = tags_.data() + base;

        // Branchless tag scan (a line appears at most once per set, so
        // scanning past a match is harmless). Two select chains keep
        // the cmov dependency half as deep as one; at most one chain
        // ever holds a real way, so max() merges them.
        int h0 = -1;
        int h1 = -1;
        int w = 0;
        for (; w + 1 < assoc_; w += 2) {
            h0 = tags[w] == line ? w : h0;
            h1 = tags[w + 1] == line ? w + 1 : h1;
        }
        if (w < assoc_)
            h0 = tags[w] == line ? w : h0;
        const int hit_w = h0 > h1 ? h0 : h1;
        if (hit_w >= 0) {
            lastUse_[base + hit_w] = clock_;
            ++hits_;
            return hit_w;
        }

        // Miss: evict the lowest-indexed way with the smallest
        // lastUse. Packing the way index into the low bits turns the
        // LRU scan into a pure u64 min reduction (ties resolve to the
        // lower way, exactly like a first-strictly-smaller scan), and
        // two independent chains halve its latency. Invalid ways
        // carry lastUse 0, so they win exactly as a valid bit would;
        // the shift cannot overflow (the ctor caps assoc at 64 and a
        // clock of 2^58 accesses is unreachable).
        const uint64_t *use = lastUse_.data() + base;
        uint64_t m0 = ~0ULL;
        uint64_t m1 = ~0ULL;
        w = 0;
        for (; w + 1 < assoc_; w += 2) {
            const uint64_t k0 = (use[w] << 6) | static_cast<uint64_t>(w);
            const uint64_t k1 =
                (use[w + 1] << 6) | static_cast<uint64_t>(w + 1);
            m0 = k0 < m0 ? k0 : m0;
            m1 = k1 < m1 ? k1 : m1;
        }
        if (w < assoc_) {
            const uint64_t k0 = (use[w] << 6) | static_cast<uint64_t>(w);
            m0 = k0 < m0 ? k0 : m0;
        }
        const int victim = static_cast<int>((m0 < m1 ? m0 : m1) & 63U);
        tags_[base + victim] = line;
        lastUse_[base + victim] = clock_;
        ++misses_;
        return ~victim;
    }

    // Structure-of-arrays way storage (set-major): the tag scan is the
    // hottest loop in the simulator and contiguous u64 tags keep it in
    // as few host cache lines as possible. A line index never equals
    // kInvalidTag (addresses are shifted right by lineShift_), and
    // valid ways always carry lastUse >= 1, so the sentinel tag plus a
    // zero lastUse reproduce a valid bit exactly.
    static constexpr uint64_t kInvalidTag = ~0ULL;

    int assoc_;
    int lineBytes_;
    int lineShift_;
    uint64_t numSets_;
    uint64_t setMask_ = 0; ///< numSets_ - 1 when pow2, else 0 (modulo)
    std::vector<uint64_t> tags_;    // numSets_ * assoc_
    std::vector<uint64_t> lastUse_; // numSets_ * assoc_
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_CACHE_MODEL_HH
