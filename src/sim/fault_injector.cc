#include "sim/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace gnnmark {

namespace {

/** True if an event with a duration is active at time t. */
bool
activeAt(const FaultEvent &e, double t)
{
    if (t < e.timeSec)
        return false;
    return e.durationSec <= 0 || t < e.timeSec + e.durationSec;
}

/** Next arrival of a Poisson process with the given rate. */
double
nextArrival(Rng &rng, double rate)
{
    double u = 0;
    while (u == 0.0)
        u = rng.uniform();
    return -std::log(u) / rate;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ReplicaCrash:
        return "crash";
      case FaultKind::Straggler:
        return "straggler";
      case FaultKind::DegradedLink:
        return "degraded-link";
      case FaultKind::TransientKernel:
        return "transient";
    }
    return "unknown";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
    for (const FaultEvent &e : events_) {
        GNN_ASSERT(e.timeSec >= 0, "fault events need timeSec >= 0");
        if (e.kind == FaultKind::Straggler) {
            GNN_ASSERT(e.magnitude >= 1.0,
                       "straggler magnitude is a slowdown multiplier, "
                       "got %f",
                       e.magnitude);
        } else if (e.kind == FaultKind::DegradedLink) {
            GNN_ASSERT(e.magnitude > 0 && e.magnitude <= 1.0,
                       "degraded-link magnitude is a bandwidth "
                       "fraction in (0, 1], got %f",
                       e.magnitude);
        }
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.timeSec < b.timeSec;
                     });
}

FaultPlan
FaultPlan::generate(Rng &rng, const FaultRates &rates, double horizonSec,
                    int world)
{
    GNN_ASSERT(horizonSec > 0, "fault horizon must be positive");
    GNN_ASSERT(world >= 1, "fault plan needs world >= 1");
    for (double rate :
         {rates.crashPerSec, rates.stragglerPerSec,
          rates.degradedLinkPerSec, rates.transientPerSec}) {
        GNN_ASSERT(std::isfinite(rate) && rate >= 0,
                   "fault rates must be finite and >= 0, got %f", rate);
    }

    std::vector<FaultEvent> events;
    auto drawArrivals = [&](double rate, auto &&make) {
        // A zero-rate channel is silent and consumes no Rng state, so
        // enabling one fault kind never perturbs another's schedule.
        if (rate <= 0)
            return;
        for (double t = nextArrival(rng, rate); t < horizonSec;
             t += nextArrival(rng, rate)) {
            events.push_back(make(t));
        }
    };

    drawArrivals(rates.crashPerSec, [&](double t) {
        FaultEvent e;
        e.kind = FaultKind::ReplicaCrash;
        e.timeSec = t;
        e.replica = static_cast<int>(
            rng.randint(static_cast<uint64_t>(world)));
        return e;
    });
    drawArrivals(rates.stragglerPerSec, [&](double t) {
        FaultEvent e;
        e.kind = FaultKind::Straggler;
        e.timeSec = t;
        e.replica = static_cast<int>(
            rng.randint(static_cast<uint64_t>(world)));
        e.durationSec = rates.stragglerDurationSec;
        e.magnitude = rates.stragglerSlowdown;
        return e;
    });
    drawArrivals(rates.degradedLinkPerSec, [&](double t) {
        FaultEvent e;
        e.kind = FaultKind::DegradedLink;
        e.timeSec = t;
        e.durationSec = rates.linkDurationSec;
        e.magnitude = rates.linkFactor;
        return e;
    });
    drawArrivals(rates.transientPerSec, [&](double t) {
        FaultEvent e;
        e.kind = FaultKind::TransientKernel;
        e.timeSec = t;
        return e;
    });
    return FaultPlan(std::move(events));
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

double
FaultInjector::stragglerFactor(int replica, double t) const
{
    double factor = 1.0;
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::Straggler && e.replica == replica &&
            activeAt(e, t)) {
            factor = std::max(factor, e.magnitude);
        }
    }
    return factor;
}

double
FaultInjector::serviceFactor(int replica, double t) const
{
    // Crash dominates straggler: a dead replica does no work, however
    // slow a concurrent straggler window says it would have been.
    if (crashed(replica, t))
        return std::numeric_limits<double>::infinity();
    return stragglerFactor(replica, t);
}

double
FaultInjector::crashTime(int replica) const
{
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::ReplicaCrash && e.replica == replica)
            return e.timeSec; // events are sorted: first crash wins
    }
    return std::numeric_limits<double>::infinity();
}

double
FaultInjector::nextTransitionAfter(double t) const
{
    double next = std::numeric_limits<double>::infinity();
    for (const FaultEvent &e : plan_.events()) {
        if (e.timeSec > t)
            next = std::min(next, e.timeSec);
        if (e.durationSec > 0 && e.timeSec + e.durationSec > t)
            next = std::min(next, e.timeSec + e.durationSec);
    }
    return next;
}

double
FaultInjector::linkFactor(double t) const
{
    double factor = 1.0;
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::DegradedLink && activeAt(e, t))
            factor = std::min(factor, e.magnitude);
    }
    return factor;
}

bool
FaultInjector::crashed(int replica, double t) const
{
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::ReplicaCrash && e.replica == replica &&
            e.timeSec <= t) {
            return true;
        }
    }
    return false;
}

std::vector<FaultEvent>
FaultInjector::crashesUpTo(double t) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::ReplicaCrash && e.timeSec <= t)
            out.push_back(e);
    }
    return out;
}

int
FaultInjector::transientFailures(double t0, double t1) const
{
    int n = 0;
    for (const FaultEvent &e : plan_.events()) {
        if (e.kind == FaultKind::TransientKernel && e.timeSec > t0 &&
            e.timeSec <= t1) {
            ++n;
        }
    }
    return n;
}

} // namespace gnnmark
