#include "sim/op_class.hh"

#include "base/logging.hh"

namespace gnnmark {

const std::string &
opClassName(OpClass c)
{
    static const std::array<std::string, kNumOpClasses> names = {
        "GEMM",    "GEMV",        "SpMM",    "Conv",
        "BatchNorm", "ElementWise", "Reduction", "Scatter",
        "Gather",  "IndexSelect", "Sort",    "Other",
    };
    size_t i = static_cast<size_t>(c);
    GNN_ASSERT(i < kNumOpClasses, "invalid OpClass %zu", i);
    return names[i];
}

const std::array<OpClass, kNumOpClasses> &
allOpClasses()
{
    static const std::array<OpClass, kNumOpClasses> all = {
        OpClass::Gemm,      OpClass::Gemv,        OpClass::SpMM,
        OpClass::Conv,      OpClass::BatchNorm,   OpClass::ElementWise,
        OpClass::Reduction, OpClass::Scatter,     OpClass::Gather,
        OpClass::IndexSelect, OpClass::Sort,      OpClass::Other,
    };
    return all;
}

} // namespace gnnmark
