/**
 * @file
 * Per-warp instruction traces.
 *
 * Operator implementations describe what one warp of their kernel does
 * by calling WarpTraceSink methods in program order (ALU ops, global
 * loads/stores with real lane addresses, shared-memory ops, barriers).
 * The sink coalesces lane addresses into cache-line transactions and
 * records a compact trace that the pipeline model replays. Once the
 * recorded trace reaches the configured cap, further events only bump
 * the aggregate counters; the pipeline extrapolates timing from the
 * recorded prefix.
 */

#ifndef GNNMARK_SIM_WARP_TRACE_HH
#define GNNMARK_SIM_WARP_TRACE_HH

#include <cstdint>
#include <vector>

namespace gnnmark {

/** Instruction kinds distinguished by the pipeline model. */
enum class InstrKind : uint8_t
{
    Fp32,        ///< single-precision ALU op (1 flop/lane)
    Fma,         ///< fused multiply-add (2 flops/lane)
    Sfu,         ///< transcendental (exp, tanh, rsqrt, ...)
    Int32,       ///< integer ALU op
    Misc,        ///< control flow, predicates, moves
    Load,        ///< global load
    Store,       ///< global store
    Atomic,      ///< global atomic
    SharedLoad,  ///< shared-memory load
    SharedStore, ///< shared-memory store
    Barrier,     ///< block-wide __syncthreads()
};

/** One recorded warp instruction; memory ops reference the line pool. */
struct TraceOp
{
    InstrKind kind;
    uint16_t lineCount; ///< distinct cache lines (memory ops only)
    uint16_t minLines;  ///< lines a perfectly-coalesced access needs
    uint32_t lineBegin; ///< index of first line in the pool

    /** NVBit's divergence criterion: more lines than necessary. */
    bool divergent() const { return lineCount > minLines; }
};

/** Aggregate per-warp instruction counts (includes unrecorded tail). */
struct TraceCounts
{
    uint64_t fp32 = 0;   ///< fp32 + fma + sfu instruction count
    uint64_t int32 = 0;
    uint64_t misc = 0;   ///< control/moves + shared + barriers
    uint64_t loads = 0;
    uint64_t stores = 0; ///< stores + atomics
    double flops = 0;    ///< lane-level floating-point operations
    double intOps = 0;   ///< lane-level integer operations

    uint64_t total() const
    {
        return fp32 + int32 + misc + loads + stores;
    }
};

/**
 * Recorded trace plus full counts for one warp.
 */
class WarpTrace
{
  public:
    std::vector<TraceOp> ops;    ///< recorded prefix (<= cap instrs)
    std::vector<uint64_t> lines; ///< line-address pool for memory ops
    TraceCounts counts;          ///< full-execution counts
    uint64_t recordedInstrs = 0; ///< instructions in `ops`

    /** Ratio of full instruction count to recorded count (>= 1). */
    double extrapolationFactor() const;
};

/**
 * Builder interface operator kernels use to describe a warp's execution.
 *
 * All lane-address arrays hold `lanes <= 32` byte addresses; inactive
 * lanes are simply omitted. The sink coalesces addresses into distinct
 * cache-line transactions exactly as the hardware's LD/ST unit would.
 */
class WarpTraceSink
{
  public:
    /**
     * @param cap        Max instructions recorded in the trace.
     * @param line_bytes Cache line size for coalescing.
     */
    WarpTraceSink(WarpTrace &trace, int cap, int line_bytes);

    /** @{ ALU events; n identical instructions. */
    void fp32(int n = 1);
    void fma(int n = 1);
    void sfu(int n = 1);
    void int32(int n = 1);
    void misc(int n = 1);
    /** @} */

    /** Global load with explicit per-lane byte addresses. */
    void loadGlobal(const uint64_t *addrs, int lanes, int bytes_per_lane);

    /** Global store with explicit per-lane byte addresses. */
    void storeGlobal(const uint64_t *addrs, int lanes, int bytes_per_lane);

    /** Global atomic (read-modify-write resolved at the L2). */
    void atomicGlobal(const uint64_t *addrs, int lanes, int bytes_per_lane);

    /**
     * Fully coalesced load: lane i accesses base + i * bytes_per_lane.
     * This is the common streaming pattern of element-wise kernels.
     */
    void loadCoalesced(uint64_t base, int bytes_per_lane, int lanes = 32);

    /** Fully coalesced store (see loadCoalesced). */
    void storeCoalesced(uint64_t base, int bytes_per_lane, int lanes = 32);

    /** Shared-memory traffic (not visible to the data caches). */
    void sharedLoad(int n = 1);
    void sharedStore(int n = 1);

    /** Block-wide barrier. */
    void barrier();

    /**
     * True once the recorded trace is full; generators with very long
     * regular loops may break early and call scaleRemainder() instead
     * of generating events one by one.
     */
    bool full() const { return trace_.recordedInstrs >= cap_; }

    /**
     * Multiply all aggregate counts by `factor` to account for loop
     * iterations the generator skipped after full() became true.
     * Recorded trace is unaffected. factor >= 1.
     */
    void scaleRemainder(double factor);

  private:
    void recordAlu(InstrKind kind);
    void recordMem(InstrKind kind, const uint64_t *addrs, int lanes,
                   int bytes_per_lane);

    WarpTrace &trace_;
    uint64_t cap_;
    int lineBytes_;
    int lineShift_;
};

} // namespace gnnmark

#endif // GNNMARK_SIM_WARP_TRACE_HH
