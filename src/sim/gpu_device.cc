#include "sim/gpu_device.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "sim/warp_pipeline.hh"

namespace gnnmark {

GpuDevice::GpuDevice(GpuConfig config, uint64_t seed)
    : cfg_(config), rng_(seed),
      l2_(config.l2SizeBytes, config.l2Assoc, config.cacheLineBytes)
{
    GNN_ASSERT(cfg_.simSmCount >= 1 && cfg_.simSmCount <= cfg_.numSms,
               "simSmCount out of range");
    for (int s = 0; s < cfg_.simSmCount; ++s) {
        l1s_.emplace_back(cfg_.l1SizeBytes, cfg_.l1Assoc,
                          cfg_.cacheLineBytes);
    }
}

GpuDevice::Geometry
GpuDevice::computeGeometry(const KernelDesc &desc) const
{
    GNN_ASSERT(desc.blocks >= 1, "kernel '%s' has no blocks",
               desc.name.c_str());
    GNN_ASSERT(desc.warpsPerBlock >= 1 &&
               desc.warpsPerBlock <= cfg_.maxWarpsPerSm,
               "kernel '%s' has invalid block size", desc.name.c_str());

    Geometry geo;
    geo.totalWarps = desc.totalWarps();
    int by_warps = cfg_.maxWarpsPerSm / desc.warpsPerBlock;
    geo.residentBlocks =
        std::clamp(std::min(by_warps, cfg_.maxBlocksPerSm), 1,
                   cfg_.maxBlocksPerSm);
    int64_t blocks_per_sm =
        (desc.blocks + cfg_.numSms - 1) / cfg_.numSms;
    geo.waves = std::max<int64_t>(
        1, (blocks_per_sm + geo.residentBlocks - 1) / geo.residentBlocks);
    geo.activeSms = static_cast<int>(
        std::min<int64_t>(cfg_.numSms, desc.blocks));
    return geo;
}

KernelRecord
GpuDevice::simulateDetailed(
    const KernelDesc &desc, const Geometry &geo, SampleState &state,
    std::vector<std::pair<int64_t, WarpTrace>> *captured)
{
    GNN_ASSERT(desc.trace != nullptr || desc.replay != nullptr,
               "kernel '%s' has no trace generator", desc.name.c_str());

    KernelRecord rec;
    double sim_warps = 0;
    double cycles_per_wave = 0;

    // Generated traces are owned here; replayed traces are borrowed
    // from the recording. Reserve up front so pointers into `generated`
    // survive the push_backs.
    std::vector<WarpTrace> generated;
    if (!desc.replay) {
        generated.reserve(static_cast<size_t>(geo.residentBlocks) *
                          desc.warpsPerBlock);
    }

    for (int s = 0; s < cfg_.simSmCount; ++s) {
        // Blocks are distributed to SMs round-robin; simulate the first
        // resident wave of SM `s`.
        std::vector<const WarpTrace *> traces;
        generated.clear();
        for (int rb = 0; rb < geo.residentBlocks; ++rb) {
            int64_t block = s + static_cast<int64_t>(rb) * cfg_.numSms;
            if (block >= desc.blocks)
                break;
            for (int w = 0; w < desc.warpsPerBlock; ++w) {
                int64_t warp_id = block * desc.warpsPerBlock + w;
                const WarpTrace *trace;
                if (desc.replay) {
                    trace = &desc.replay(warp_id);
                } else {
                    generated.emplace_back();
                    WarpTraceSink sink(generated.back(),
                                       cfg_.maxTraceInstrs,
                                       cfg_.cacheLineBytes);
                    desc.trace(warp_id, sink);
                    trace = &generated.back();
                }
                if (captured != nullptr)
                    captured->emplace_back(warp_id, *trace);
                traces.push_back(trace);
            }
        }
        if (traces.empty())
            continue;

        // Volta invalidates the (non-coherent) L1 at kernel
        // boundaries; only the L2 persists across launches.
        l1s_[s].flush();
        WarpPipeline pipeline(cfg_, l1s_[s], l2_, rng_);
        WaveResult wave = pipeline.run(traces, desc);

        sim_warps += static_cast<double>(traces.size());
        cycles_per_wave += wave.cycles;
        rec.fp32Instrs += wave.fp32Instrs;
        rec.int32Instrs += wave.int32Instrs;
        rec.memInstrs += wave.memInstrs;
        rec.miscInstrs += wave.miscInstrs;
        rec.flops += wave.flops;
        rec.intOps += wave.intOps;
        rec.loads += wave.loads;
        rec.divergentLoads += wave.divergentLoads;
        rec.l1Accesses += wave.l1Accesses;
        rec.l1Hits += wave.l1Hits;
        rec.l2Accesses += wave.l2Accesses;
        rec.l2Hits += wave.l2Hits;
        rec.dramBytes += wave.dramBytes;
        for (size_t r = 0; r < kNumStallReasons; ++r)
            rec.stallCycles[r] += wave.stalls[r];
    }
    GNN_ASSERT(sim_warps > 0, "kernel '%s' produced no simulated warps",
               desc.name.c_str());
    cycles_per_wave /= cfg_.simSmCount;

    // Scale sampled counters to the full grid.
    const double scale = static_cast<double>(geo.totalWarps) / sim_warps;
    rec.fp32Instrs *= scale;
    rec.int32Instrs *= scale;
    rec.memInstrs *= scale;
    rec.miscInstrs *= scale;
    rec.flops *= scale;
    rec.intOps *= scale;
    rec.loads *= scale;
    rec.divergentLoads *= scale;
    rec.l1Accesses *= scale;
    rec.l1Hits *= scale;
    rec.l2Accesses *= scale;
    rec.l2Hits *= scale;
    rec.dramBytes *= scale;
    for (auto &sc : rec.stallCycles)
        sc *= scale;

    rec.cycles = cycles_per_wave * static_cast<double>(geo.waves);
    rec.detailed = true;

    // Update the per-name running averages used for replay.
    const double warps = static_cast<double>(geo.totalWarps);
    state.fp32PerWarp += rec.fp32Instrs / warps;
    state.int32PerWarp += rec.int32Instrs / warps;
    state.memPerWarp += rec.memInstrs / warps;
    state.miscPerWarp += rec.miscInstrs / warps;
    state.flopsPerWarp += rec.flops / warps;
    state.intOpsPerWarp += rec.intOps / warps;
    state.loadsPerWarp += rec.loads / warps;
    state.divergentPerWarp += rec.divergentLoads / warps;
    state.l1AccPerWarp += rec.l1Accesses / warps;
    state.l1HitPerWarp += rec.l1Hits / warps;
    state.l2AccPerWarp += rec.l2Accesses / warps;
    state.l2HitPerWarp += rec.l2Hits / warps;
    state.dramBytesPerWarp += rec.dramBytes / warps;
    state.cyclesPerWave += cycles_per_wave;
    for (size_t r = 0; r < kNumStallReasons; ++r)
        state.stallsPerWarp[r] += rec.stallCycles[r] / warps;
    ++state.detailedRuns;

    return rec;
}

KernelRecord
GpuDevice::replayFromSample(const KernelDesc &desc, const Geometry &geo,
                            const SampleState &state)
{
    const double n = static_cast<double>(state.detailedRuns);
    const double warps = static_cast<double>(geo.totalWarps);

    KernelRecord rec;
    rec.detailed = false;
    rec.fp32Instrs = state.fp32PerWarp / n * warps;
    rec.int32Instrs = state.int32PerWarp / n * warps;
    rec.memInstrs = state.memPerWarp / n * warps;
    rec.miscInstrs = state.miscPerWarp / n * warps;
    rec.flops = state.flopsPerWarp / n * warps;
    rec.intOps = state.intOpsPerWarp / n * warps;
    rec.loads = state.loadsPerWarp / n * warps;
    rec.divergentLoads = state.divergentPerWarp / n * warps;
    rec.l1Accesses = state.l1AccPerWarp / n * warps;
    rec.l1Hits = state.l1HitPerWarp / n * warps;
    rec.l2Accesses = state.l2AccPerWarp / n * warps;
    rec.l2Hits = state.l2HitPerWarp / n * warps;
    rec.dramBytes = state.dramBytesPerWarp / n * warps;
    for (size_t r = 0; r < kNumStallReasons; ++r)
        rec.stallCycles[r] = state.stallsPerWarp[r] / n * warps;
    rec.cycles = state.cyclesPerWave / n * static_cast<double>(geo.waves);
    (void)desc;
    return rec;
}

void
GpuDevice::finishRecord(KernelRecord &record, const Geometry &geo)
{
    double time_pipe = record.cycles / cfg_.clockHz();
    double time_bw = record.dramBytes / cfg_.dramBandwidth;
    if (time_bw > time_pipe) {
        // Bandwidth-bound: the extra wait shows up as memory throttle.
        double extra_cycles = (time_bw - time_pipe) * cfg_.clockHz();
        record.stallCycles[static_cast<size_t>(
            StallReason::MemoryThrottle)] += extra_cycles;
    }
    record.timeSec =
        std::max(time_pipe, time_bw) + cfg_.kernelBaseTimeSec;
    record.cycles = record.timeSec * cfg_.clockHz();
    record.activeSms = geo.activeSms;
    double per_sm_instrs =
        record.totalInstrs() / std::max(1, geo.activeSms);
    record.ipc = record.cycles > 0 ? per_sm_instrs / record.cycles : 0;
}

KernelRecord
GpuDevice::launch(const KernelDesc &desc)
{
    Geometry geo = computeGeometry(desc);
    SampleState &state = samples_[desc.name];

    KernelRecord rec;
    std::vector<std::pair<int64_t, WarpTrace>> captured;
    if (state.detailedRuns < cfg_.detailSampleLimit) {
        rec = simulateDetailed(desc, geo, state,
                               hook_ != nullptr ? &captured : nullptr);
    } else {
        rec = replayFromSample(desc, geo, state);
    }
    rec.name = desc.name;
    rec.opClass = desc.opClass;
    rec.invocation = state.invocations++;
    finishRecord(rec, geo);

    // Install the kernel's full data footprint into the L2 (the
    // sampled warps covered only a slice of it): the write-allocate
    // output spans first, then the grid-wide read spans with whatever
    // is left of the line budget.
    int64_t line_budget = 32768;
    for (const auto *ranges : {&desc.outputRanges, &desc.inputRanges}) {
        for (const auto &[addr, bytes] : *ranges) {
            if (line_budget <= 0)
                break;
            line_budget -= l2_.accessLines(addr, bytes, line_budget);
        }
    }

    kernelTime_ += rec.timeSec;
    ++kernelCount_;

    // Sim feed for the metrics registry. Kernel emission never leaves
    // the launching thread, so these are deterministic (see metrics.hh).
    {
        static obs::Counter launches("sim.kernel_launches");
        static obs::Counter cycles("sim.kernel_cycles");
        static obs::Counter l1_hits("sim.l1_hits");
        static obs::Counter l1_accesses("sim.l1_accesses");
        static obs::Counter l2_hits("sim.l2_hits");
        static obs::Counter l2_accesses("sim.l2_accesses");
        static obs::Counter dram_bytes("sim.dram_bytes");
        static obs::Counter stall_cycles("sim.stall_cycles");
        static obs::Histogram kernel_us("sim.kernel_time_us");
        launches.add();
        cycles.add(rec.cycles);
        l1_hits.add(rec.l1Hits);
        l1_accesses.add(rec.l1Accesses);
        l2_hits.add(rec.l2Hits);
        l2_accesses.add(rec.l2Accesses);
        dram_bytes.add(rec.dramBytes);
        double stalls = 0;
        for (double sc : rec.stallCycles)
            stalls += sc;
        stall_cycles.add(stalls);
        kernel_us.observe(rec.timeSec * 1e6);
    }

    notify(rec);
    if (hook_ != nullptr)
        hook_->onLaunch(desc, std::move(captured));
    return rec;
}

TransferRecord
GpuDevice::recordTransfer(double bytes, double zero_fraction,
                          const std::string &tag)
{
    TransferRecord tr;
    tr.tag = tag;
    tr.bytes = bytes;
    tr.zeroFraction = zero_fraction;
    double wire_bytes = bytes;
    if (cfg_.h2dCompression) {
        // Zero-value compression ablation: non-zeros plus a bitmap.
        wire_bytes = bytes * (1.0 - zero_fraction) + bytes / 32.0;
    }
    tr.timeSec = cfg_.pcieLatencySec + wire_bytes / cfg_.pcieBandwidth;
    transferTime_ += tr.timeSec;
    {
        static obs::Counter transfers("sim.transfers");
        static obs::Counter xfer_bytes("sim.transfer_bytes");
        static obs::Histogram xfer_kb("sim.transfer_kb");
        transfers.add();
        xfer_bytes.add(bytes);
        xfer_kb.observe(bytes / 1024.0);
    }
    for (auto *obs : observers_)
        obs->onTransfer(tr);
    return tr;
}

TransferRecord
GpuDevice::copyHostToDevice(const float *data, size_t count,
                            uint64_t device_addr, const std::string &tag)
{
    size_t zeros = 0;
    for (size_t i = 0; i < count; ++i) {
        if (data[i] == 0.0f)
            ++zeros;
    }
    double zf = count == 0 ? 0.0
                           : static_cast<double>(zeros) /
                                 static_cast<double>(count);
    const size_t bytes = count * static_cast<size_t>(cfg_.elemBytes);
    installInL2(device_addr, bytes);
    if (hook_ != nullptr)
        hook_->onTransfer(device_addr, bytes, zf, tag);
    return recordTransfer(static_cast<double>(bytes), zf, tag);
}

TransferRecord
GpuDevice::copyHostToDevice(const int32_t *data, size_t count,
                            uint64_t device_addr, const std::string &tag)
{
    size_t zeros = 0;
    for (size_t i = 0; i < count; ++i) {
        if (data[i] == 0)
            ++zeros;
    }
    double zf = count == 0 ? 0.0
                           : static_cast<double>(zeros) /
                                 static_cast<double>(count);
    const size_t bytes = count * sizeof(int32_t);
    installInL2(device_addr, bytes);
    if (hook_ != nullptr)
        hook_->onTransfer(device_addr, bytes, zf, tag);
    return recordTransfer(static_cast<double>(bytes), zf, tag);
}

TransferRecord
GpuDevice::replayHostToDevice(uint64_t addr, uint64_t bytes,
                              double zero_fraction, const std::string &tag)
{
    installInL2(addr, static_cast<size_t>(bytes));
    if (hook_ != nullptr)
        hook_->onTransfer(addr, bytes, zero_fraction, tag);
    return recordTransfer(static_cast<double>(bytes), zero_fraction, tag);
}

void
GpuDevice::installInL2(uint64_t addr, size_t bytes)
{
    // Host-to-device DMA writes allocate in the L2 on Volta.
    l2_.accessLines(addr, bytes, 32768);
}

void
GpuDevice::addObserver(KernelObserver *observer)
{
    observers_.push_back(observer);
}

void
GpuDevice::clearObservers()
{
    observers_.clear();
}

void
GpuDevice::notify(const KernelRecord &record)
{
    for (auto *obs : observers_)
        obs->onKernel(record);
}

void
GpuDevice::markIterationBegin()
{
    for (auto *obs : observers_)
        obs->onPhase(PhaseMark::IterationBegin);
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::IterationBegin);
}

void
GpuDevice::markBackwardBegin()
{
    for (auto *obs : observers_)
        obs->onPhase(PhaseMark::BackwardBegin);
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::BackwardBegin);
}

void
GpuDevice::markBackwardEnd()
{
    for (auto *obs : observers_)
        obs->onPhase(PhaseMark::BackwardEnd);
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::BackwardEnd);
}

void
GpuDevice::resetTimers()
{
    kernelTime_ = 0;
    transferTime_ = 0;
    kernelCount_ = 0;
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::TimersReset);
}

void
GpuDevice::flushCaches()
{
    l2_.flush();
    for (auto &l1 : l1s_)
        l1.flush();
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::CachesFlushed);
}

void
GpuDevice::resetSampling()
{
    samples_.clear();
    if (hook_ != nullptr)
        hook_->onMarker(TraceMarker::SamplingReset);
}

} // namespace gnnmark
