#include "sim/fault_plan_io.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/io.hh"
#include "base/string_utils.hh"

namespace gnnmark {

namespace {

constexpr const char *kMagic = "gnnmark-fault-plan";
constexpr const char *kVersion = "v1";

/** Parse "key=value"; throws Corrupt via `fail` on anything else. */
void
splitKeyValue(const std::string &token, const std::string &context,
              std::string &key, double &value)
{
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        throw IoError(IoError::Kind::Corrupt,
                      context + ": malformed field '" + token +
                          "' (want key=value)");
    }
    key = token.substr(0, eq);
    const std::string text = token.substr(eq + 1);
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !std::isfinite(value)) {
        throw IoError(IoError::Kind::Corrupt,
                      context + ": bad number '" + text + "' for field '" +
                          key + "'");
    }
}

bool
parseKind(const std::string &name, FaultKind &kind)
{
    for (FaultKind k :
         {FaultKind::ReplicaCrash, FaultKind::Straggler,
          FaultKind::DegradedLink, FaultKind::TransientKernel}) {
        if (name == faultKindName(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

/** Validate one parsed event; plan files are user input, so throw. */
void
validateEvent(const FaultEvent &e, const std::string &context)
{
    auto fail = [&](const std::string &detail) {
        throw IoError(IoError::Kind::Corrupt, context + ": " + detail);
    };
    if (e.timeSec < 0)
        fail("fault events need time >= 0");
    if (e.durationSec < 0)
        fail("fault events need duration >= 0");
    if (e.replica < 0)
        fail("fault events need replica >= 0");
    if (e.kind == FaultKind::Straggler && e.magnitude < 1.0)
        fail("straggler magnitude is a slowdown multiplier (>= 1)");
    if (e.kind == FaultKind::DegradedLink &&
        (e.magnitude <= 0 || e.magnitude > 1.0)) {
        fail("degraded-link magnitude is a bandwidth fraction in (0, 1]");
    }
}

} // namespace

std::string
faultPlanToText(const FaultPlan &plan)
{
    std::string out = strfmt("%s %s\n", kMagic, kVersion);
    for (const FaultEvent &e : plan.events()) {
        out += strfmt("%s time=%.17g", faultKindName(e.kind), e.timeSec);
        if (e.kind == FaultKind::ReplicaCrash ||
            e.kind == FaultKind::Straggler) {
            out += strfmt(" replica=%d", e.replica);
        }
        if (e.durationSec != 0)
            out += strfmt(" duration=%.17g", e.durationSec);
        if (e.kind == FaultKind::Straggler ||
            e.kind == FaultKind::DegradedLink) {
            out += strfmt(" magnitude=%.17g", e.magnitude);
        }
        out += "\n";
    }
    return out;
}

FaultPlan
faultPlanFromText(const std::string &text, const std::string &context)
{
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::vector<FaultEvent> events;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip trailing CR so plans edited on Windows still load.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::istringstream tokens(line);
        std::string first;
        if (!(tokens >> first) || first[0] == '#')
            continue;
        const std::string where = strfmt("%s:%d", context.c_str(), lineno);
        if (!sawHeader) {
            if (first != kMagic) {
                throw IoError(IoError::Kind::BadMagic,
                              where + ": not a fault plan (want '" +
                                  std::string(kMagic) + "')");
            }
            std::string version;
            if (!(tokens >> version) || version != kVersion) {
                throw IoError(IoError::Kind::BadVersion,
                              where + ": unsupported fault plan version '" +
                                  version + "'");
            }
            sawHeader = true;
            continue;
        }
        FaultEvent e;
        if (!parseKind(first, e.kind)) {
            throw IoError(IoError::Kind::Corrupt,
                          where + ": unknown fault kind '" + first + "'");
        }
        bool sawTime = false;
        std::string token;
        while (tokens >> token) {
            std::string key;
            double value = 0;
            splitKeyValue(token, where, key, value);
            if (key == "time") {
                e.timeSec = value;
                sawTime = true;
            } else if (key == "replica") {
                e.replica = static_cast<int>(value);
            } else if (key == "duration") {
                e.durationSec = value;
            } else if (key == "magnitude") {
                e.magnitude = value;
            } else {
                throw IoError(IoError::Kind::Corrupt,
                              where + ": unknown field '" + key + "'");
            }
        }
        if (!sawTime) {
            throw IoError(IoError::Kind::Corrupt,
                          where + ": fault event is missing 'time='");
        }
        validateEvent(e, where);
        events.push_back(e);
    }
    if (!sawHeader) {
        throw IoError(IoError::Kind::BadMagic,
                      context + ": empty file, not a fault plan");
    }
    return FaultPlan(std::move(events));
}

void
saveFaultPlan(const std::string &path, const FaultPlan &plan)
{
    const std::string text = faultPlanToText(plan);
    writeFileBytes(path,
                   std::vector<uint8_t>(text.begin(), text.end()));
}

FaultPlan
loadFaultPlan(const std::string &path)
{
    const std::vector<uint8_t> bytes = readFileBytes(path);
    return faultPlanFromText(
        std::string(bytes.begin(), bytes.end()),
        "fault plan '" + path + "'");
}

} // namespace gnnmark
