#include "sim/gpu_config.hh"

namespace gnnmark {

GpuConfig
GpuConfig::v100()
{
    // The defaults in the struct definition are the V100 numbers; this
    // factory exists so call sites read explicitly and so alternative
    // presets can be added without touching the defaults.
    return GpuConfig{};
}

GpuConfig
GpuConfig::a100()
{
    GpuConfig cfg;
    cfg.numSms = 108;
    cfg.clockGhz = 1.41;
    cfg.l1SizeBytes = 192 * KiB;
    cfg.l2SizeBytes = 40 * MiB;
    cfg.dramBandwidth = 1555e9;
    cfg.dramLatency = 470;  // HBM2e is slightly further away
    cfg.l2HitLatency = 200; // larger, partitioned L2
    return cfg;
}

} // namespace gnnmark
