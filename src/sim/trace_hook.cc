#include "sim/trace_hook.hh"

namespace gnnmark {

const char *
traceMarkerName(TraceMarker marker)
{
    switch (marker) {
      case TraceMarker::IterationBegin:
        return "iteration-begin";
      case TraceMarker::TimersReset:
        return "timers-reset";
      case TraceMarker::CachesFlushed:
        return "caches-flushed";
      case TraceMarker::SamplingReset:
        return "sampling-reset";
      case TraceMarker::BackwardBegin:
        return "backward-begin";
      case TraceMarker::BackwardEnd:
        return "backward-end";
      case TraceMarker::NumMarkers:
        break;
    }
    return "unknown";
}

} // namespace gnnmark
