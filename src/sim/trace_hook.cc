#include "sim/trace_hook.hh"

namespace gnnmark {

const char *
traceMarkerName(TraceMarker marker)
{
    switch (marker) {
      case TraceMarker::IterationBegin:
        return "iteration-begin";
      case TraceMarker::TimersReset:
        return "timers-reset";
      case TraceMarker::CachesFlushed:
        return "caches-flushed";
      case TraceMarker::SamplingReset:
        return "sampling-reset";
      case TraceMarker::NumMarkers:
        break;
    }
    return "unknown";
}

} // namespace gnnmark
