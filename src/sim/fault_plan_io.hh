/**
 * @file
 * On-disk fault plans: a line-oriented text format so hand-written
 * fault scenarios are reproducible, diffable artifacts.
 *
 *   gnnmark-fault-plan v1
 *   # free-form comment
 *   straggler time=0.5 replica=1 duration=2 magnitude=4
 *   crash time=1.25 replica=2
 *   degraded-link time=3 duration=1 magnitude=0.25
 *   transient time=4
 *
 * Times are absolute simulated seconds. Doubles round-trip exactly
 * (%.17g), so saving a generated plan and loading it back yields a
 * bitwise-identical schedule — the `gnnmark faults/serve --save-plan`
 * / `--plan` contract. Malformed input surfaces as IoError, never an
 * assert: a plan file is user input, not library state.
 */

#ifndef GNNMARK_SIM_FAULT_PLAN_IO_HH
#define GNNMARK_SIM_FAULT_PLAN_IO_HH

#include <string>

#include "sim/fault_injector.hh"

namespace gnnmark {

/** Serialize a plan to the text format above (events in time order). */
std::string faultPlanToText(const FaultPlan &plan);

/**
 * Parse the text format; `context` tags error messages (e.g. "fault
 * plan 'x.plan'"). Throws IoError(BadMagic/BadVersion/Corrupt).
 */
FaultPlan faultPlanFromText(const std::string &text,
                            const std::string &context);

/** Write a plan file; throws IoError on I/O failure. */
void saveFaultPlan(const std::string &path, const FaultPlan &plan);

/** Read a plan file; throws IoError on I/O or parse failure. */
FaultPlan loadFaultPlan(const std::string &path);

} // namespace gnnmark

#endif // GNNMARK_SIM_FAULT_PLAN_IO_HH
