/**
 * @file
 * Operation taxonomy used to classify GPU kernels, matching the operation
 * classes GNNMark reports in its execution-time breakdown (Fig. 2):
 * GEMM, SpMM, convolutions, scatters, gathers, reductions, index
 * selection, sorting and element-wise operations.
 */

#ifndef GNNMARK_SIM_OP_CLASS_HH
#define GNNMARK_SIM_OP_CLASS_HH

#include <array>
#include <string>

namespace gnnmark {

/** Kernel operation classes (the paper's Fig. 2 categories). */
enum class OpClass
{
    Gemm,        ///< dense matrix-matrix multiply
    Gemv,        ///< dense matrix-vector multiply
    SpMM,        ///< sparse-dense matrix multiply (CSR)
    Conv,        ///< 2D convolution
    BatchNorm,   ///< batch normalisation (train-time, two-pass)
    ElementWise, ///< per-element map ops (add, mul, ReLU, exp, ...)
    Reduction,   ///< full or segmented reductions
    Scatter,     ///< indexed writes (scatter/scatter-add)
    Gather,      ///< indexed reads along graph edges
    IndexSelect, ///< row selection / embedding lookup
    Sort,        ///< key or key-value sorting
    Other,       ///< anything else (RNG, loss bookkeeping, ...)
    NumClasses
};

constexpr size_t kNumOpClasses = static_cast<size_t>(OpClass::NumClasses);

/** Short printable name, e.g. "GEMM", "ElementWise". */
const std::string &opClassName(OpClass c);

/** All classes in declaration order (for iteration in reports). */
const std::array<OpClass, kNumOpClasses> &allOpClasses();

} // namespace gnnmark

#endif // GNNMARK_SIM_OP_CLASS_HH
