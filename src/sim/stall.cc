#include "sim/stall.hh"

#include "base/logging.hh"

namespace gnnmark {

const std::string &
stallReasonName(StallReason r)
{
    static const std::array<std::string, kNumStallReasons> names = {
        "Memory Dependency", "Execution Dependency", "Instruction Fetch",
        "Synchronization",   "Memory Throttle",      "Not Selected",
    };
    size_t i = static_cast<size_t>(r);
    GNN_ASSERT(i < kNumStallReasons, "invalid StallReason %zu", i);
    return names[i];
}

} // namespace gnnmark
