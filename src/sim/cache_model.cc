#include "sim/cache_model.hh"

#include <bit>

#include "base/logging.hh"

namespace gnnmark {

CacheModel::CacheModel(uint64_t size_bytes, int assoc, int line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    GNN_ASSERT(assoc > 0, "cache associativity must be positive");
    GNN_ASSERT(line_bytes > 0 && std::has_single_bit(
                   static_cast<uint64_t>(line_bytes)),
               "line size must be a power of two");
    GNN_ASSERT(size_bytes % (static_cast<uint64_t>(line_bytes) * assoc) == 0,
               "cache size must be a multiple of line*assoc");
    lineShift_ = std::countr_zero(static_cast<uint64_t>(line_bytes));
    numSets_ = size_bytes / (static_cast<uint64_t>(line_bytes) * assoc);
    GNN_ASSERT(numSets_ > 0, "cache must have at least one set");
    ways_.resize(numSets_ * assoc_);
}

bool
CacheModel::access(uint64_t addr)
{
    ++clock_;
    const uint64_t line = addr >> lineShift_;
    const uint64_t set = line % numSets_;
    Way *base = &ways_[set * assoc_];

    int victim = 0;
    uint64_t victim_use = ~0ULL;
    for (int w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = clock_;
            ++hits_;
            return true;
        }
        uint64_t use = way.valid ? way.lastUse : 0;
        if (use < victim_use) {
            victim_use = use;
            victim = w;
        }
    }
    Way &way = base[victim];
    way.valid = true;
    way.tag = line;
    way.lastUse = clock_;
    ++misses_;
    return false;
}

bool
CacheModel::probe(uint64_t addr) const
{
    const uint64_t line = addr >> lineShift_;
    const uint64_t set = line % numSets_;
    const Way *base = &ways_[set * assoc_];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
CacheModel::flush()
{
    for (auto &w : ways_)
        w = Way{};
}

void
CacheModel::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

double
CacheModel::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

} // namespace gnnmark
