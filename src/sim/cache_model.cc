#include "sim/cache_model.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace gnnmark {

CacheModel::CacheModel(uint64_t size_bytes, int assoc, int line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    GNN_ASSERT(assoc > 0 && assoc <= 64,
               "cache associativity must be in [1, 64]");
    GNN_ASSERT(line_bytes > 0 && std::has_single_bit(
                   static_cast<uint64_t>(line_bytes)),
               "line size must be a power of two");
    GNN_ASSERT(size_bytes % (static_cast<uint64_t>(line_bytes) * assoc) == 0,
               "cache size must be a multiple of line*assoc");
    lineShift_ = std::countr_zero(static_cast<uint64_t>(line_bytes));
    numSets_ = size_bytes / (static_cast<uint64_t>(line_bytes) * assoc);
    GNN_ASSERT(numSets_ > 0, "cache must have at least one set");
    if (std::has_single_bit(numSets_))
        setMask_ = numSets_ - 1;
    tags_.assign(numSets_ * assoc_, kInvalidTag);
    lastUse_.assign(numSets_ * assoc_, 0);
}

int64_t
CacheModel::accessLines(uint64_t addr, uint64_t bytes, int64_t max_lines)
{
    uint64_t line = addr >> lineShift_;
    const int64_t span = static_cast<int64_t>(
        (bytes + static_cast<uint64_t>(lineBytes_) - 1) >> lineShift_);
    const int64_t count = std::min<int64_t>(span, max_lines);
    // Consecutive lines map to consecutive sets, so one reduction
    // seeds an increment-and-wrap walk; each step is exactly access().
    // Adjacent sets tend to hold a range's tags at the same way index
    // (they were filled during the same pass), so the previous line's
    // way is probed first — a pure scan-order shortcut (see scanFill).
    uint64_t set = setIndex(line);
    int hint = 0;
    for (int64_t i = 0; i < count; ++i) {
        const size_t base = static_cast<size_t>(set) * assoc_;
        ++clock_;
        if (tags_[base + hint] == line) {
            lastUse_[base + hint] = clock_;
            ++hits_;
        } else {
            const int r = scanFill(line, base);
            hint = r >= 0 ? r : ~r;
        }
        ++line;
        if (++set == numSets_)
            set = 0;
    }
    return count;
}

bool
CacheModel::probe(uint64_t addr) const
{
    const uint64_t line = addr >> lineShift_;
    const size_t base = static_cast<size_t>(setIndex(line)) * assoc_;
    for (int w = 0; w < assoc_; ++w) {
        if (tags_[base + w] == line)
            return true;
    }
    return false;
}

void
CacheModel::flush()
{
    tags_.assign(tags_.size(), kInvalidTag);
    lastUse_.assign(lastUse_.size(), 0);
}

void
CacheModel::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

double
CacheModel::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

} // namespace gnnmark
