/**
 * @file
 * Compressed-sparse-row matrix used by the SpMM operator and by the
 * graph layer (adjacency matrices are CSR).
 */

#ifndef GNNMARK_TENSOR_CSR_HH
#define GNNMARK_TENSOR_CSR_HH

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "base/allocator.hh"

namespace gnnmark {

/** A rows x cols sparse fp32 matrix in CSR form. */
struct CsrMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> rowPtr;  ///< rows + 1 entries
    std::vector<int32_t> colIdx;  ///< nnz entries
    std::vector<float> vals;      ///< nnz entries

    int64_t nnz() const { return static_cast<int64_t>(colIdx.size()); }

    /** Structural sanity check; aborts (panic) on violation. */
    void validate() const;

    /**
     * Device addresses of the index/value arrays (for the GPU model).
     * Mapped lazily from DeviceAddrSpace on first use and shared by
     * copies of the matrix, so they are deterministic and stable for
     * the graph's lifetime. Call after the arrays are final.
     */
    uint64_t rowPtrAddr() const;
    uint64_t colIdxAddr() const;
    uint64_t valsAddr() const;

  private:
    mutable std::shared_ptr<DeviceSpan> rowPtrSpan_;
    mutable std::shared_ptr<DeviceSpan> colIdxSpan_;
    mutable std::shared_ptr<DeviceSpan> valsSpan_;
};

/** Build a CSR from (row, col, val) triples; duplicates are summed. */
CsrMatrix csrFromTriples(int64_t rows, int64_t cols,
                         std::vector<std::tuple<int32_t, int32_t, float>>
                             triples);

} // namespace gnnmark

#endif // GNNMARK_TENSOR_CSR_HH
