#include "tensor/storage.hh"

namespace gnnmark {

Storage::~Storage()
{
    if (host_ != nullptr) {
        alloc_->deallocate(host_, bytes_);
        DeviceAddrSpace::instance().unmap(va_, bytes_);
    }
}

std::shared_ptr<Storage>
Storage::allocate(size_t bytes, Allocator *alloc)
{
    if (bytes == 0) {
        // All zero-element tensors share one storage that owns nothing,
        // so default-constructed tensors cost no allocator traffic.
        static std::shared_ptr<Storage> empty(
            new Storage(nullptr, nullptr, 0, 0));
        return empty;
    }
    Allocator &a = alloc != nullptr ? *alloc : currentAllocator();
    void *host = a.allocate(bytes);
    const uint64_t va = DeviceAddrSpace::instance().map(bytes);
    return std::shared_ptr<Storage>(new Storage(&a, host, va, bytes));
}

} // namespace gnnmark
