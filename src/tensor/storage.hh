/**
 * @file
 * Refcounted storage behind Tensor: one host block from the bound
 * Allocator plus one deterministic device address from
 * DeviceAddrSpace. Views (reshape, row slices) share a Storage and
 * differ only by offset, so they are zero-copy by construction.
 */

#ifndef GNNMARK_TENSOR_STORAGE_HH
#define GNNMARK_TENSOR_STORAGE_HH

#include <cstddef>
#include <cstdint>
#include <memory>

#include "base/allocator.hh"

namespace gnnmark {

/**
 * One allocation: host bytes + simulated device address, returned to
 * both spaces on destruction. Always held by shared_ptr; copies of a
 * Tensor share the Storage (refcount = number of aliasing tensors).
 */
class Storage
{
  public:
    ~Storage();

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    /**
     * Allocate `bytes` (uninitialised) through `alloc`, or through the
     * thread-bound / default allocator when `alloc` is nullptr. A
     * zero-byte request returns a shared empty singleton that owns no
     * memory.
     */
    static std::shared_ptr<Storage> allocate(size_t bytes,
                                             Allocator *alloc = nullptr);

    /** @{ Host bytes (nullptr for the empty singleton). */
    float *f32() { return static_cast<float *>(host_); }
    const float *f32() const { return static_cast<const float *>(host_); }
    void *data() { return host_; }
    const void *data() const { return host_; }
    /** @} */

    size_t bytes() const { return bytes_; }

    /** Deterministic simulated device address of byte 0. */
    uint64_t deviceAddr() const { return va_; }

    /** The allocator that owns the host block (null for empty). */
    Allocator *allocator() const { return alloc_; }

  private:
    Storage(Allocator *alloc, void *host, uint64_t va, size_t bytes)
        : alloc_(alloc), host_(host), va_(va), bytes_(bytes)
    {
    }

    Allocator *alloc_;
    void *host_;
    uint64_t va_;
    size_t bytes_;
};

} // namespace gnnmark

#endif // GNNMARK_TENSOR_STORAGE_HH
