#include "tensor/csr.hh"

#include <algorithm>
#include <tuple>

#include "base/logging.hh"

namespace gnnmark {

void
CsrMatrix::validate() const
{
    GNN_ASSERT(rows >= 0 && cols >= 0, "negative csr dimensions");
    GNN_ASSERT(static_cast<int64_t>(rowPtr.size()) == rows + 1,
               "rowPtr size %zu != rows+1 (%lld)", rowPtr.size(),
               static_cast<long long>(rows + 1));
    GNN_ASSERT(rowPtr.empty() || rowPtr.front() == 0,
               "rowPtr must start at 0");
    GNN_ASSERT(colIdx.size() == vals.size(),
               "colIdx/vals size mismatch: %zu vs %zu", colIdx.size(),
               vals.size());
    for (int64_t r = 0; r < rows; ++r) {
        GNN_ASSERT(rowPtr[r] <= rowPtr[r + 1],
                   "rowPtr not monotone at row %lld",
                   static_cast<long long>(r));
    }
    GNN_ASSERT(rowPtr.empty() ||
               rowPtr.back() == static_cast<int32_t>(colIdx.size()),
               "rowPtr end %d != nnz %zu", rowPtr.back(), colIdx.size());
    for (int32_t c : colIdx) {
        GNN_ASSERT(c >= 0 && c < cols, "column index %d out of range", c);
    }
}

namespace {

uint64_t
lazySpanAddr(std::shared_ptr<DeviceSpan> &span, size_t bytes)
{
    if (span == nullptr)
        span = std::make_shared<DeviceSpan>(bytes);
    return span->addr();
}

} // namespace

uint64_t
CsrMatrix::rowPtrAddr() const
{
    return lazySpanAddr(rowPtrSpan_, rowPtr.size() * sizeof(int32_t));
}

uint64_t
CsrMatrix::colIdxAddr() const
{
    return lazySpanAddr(colIdxSpan_, colIdx.size() * sizeof(int32_t));
}

uint64_t
CsrMatrix::valsAddr() const
{
    return lazySpanAddr(valsSpan_, vals.size() * sizeof(float));
}

CsrMatrix
csrFromTriples(int64_t rows, int64_t cols,
               std::vector<std::tuple<int32_t, int32_t, float>> triples)
{
    std::sort(triples.begin(), triples.end(),
              [](const auto &a, const auto &b) {
                  if (std::get<0>(a) != std::get<0>(b))
                      return std::get<0>(a) < std::get<0>(b);
                  return std::get<1>(a) < std::get<1>(b);
              });

    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.assign(rows + 1, 0);

    for (size_t i = 0; i < triples.size();) {
        auto [r, c, v] = triples[i];
        GNN_ASSERT(r >= 0 && r < rows && c >= 0 && c < cols,
                   "triple (%d, %d) out of range", r, c);
        float sum = 0.0f;
        while (i < triples.size() && std::get<0>(triples[i]) == r &&
               std::get<1>(triples[i]) == c) {
            sum += std::get<2>(triples[i]);
            ++i;
        }
        m.colIdx.push_back(c);
        m.vals.push_back(sum);
        ++m.rowPtr[r + 1];
    }
    for (int64_t r = 0; r < rows; ++r)
        m.rowPtr[r + 1] += m.rowPtr[r];
    m.validate();
    return m;
}

} // namespace gnnmark
