#include "tensor/sparse.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

const char *
sparseFormatName(SparseFormat format)
{
    switch (format) {
      case SparseFormat::Csr:
        return "csr";
      case SparseFormat::Coo:
        return "coo";
      case SparseFormat::BlockedEll:
        return "bell";
    }
    GNN_PANIC("bad SparseFormat %d", static_cast<int>(format));
}

bool
parseSparseFormat(const std::string &name, SparseFormat *out)
{
    if (name == "csr")
        *out = SparseFormat::Csr;
    else if (name == "coo")
        *out = SparseFormat::Coo;
    else if (name == "bell" || name == "blocked-ell")
        *out = SparseFormat::BlockedEll;
    else
        return false;
    return true;
}

namespace {

uint64_t
lazySpanAddr(std::shared_ptr<DeviceSpan> &span, size_t bytes)
{
    if (span == nullptr)
        span = std::make_shared<DeviceSpan>(bytes);
    return span->addr();
}

} // namespace

void
CooMatrix::validate() const
{
    GNN_ASSERT(rows >= 0 && cols >= 0, "negative coo dimensions");
    GNN_ASSERT(rowIdx.size() == colIdx.size() &&
               colIdx.size() == vals.size(),
               "coo array size mismatch: %zu/%zu/%zu", rowIdx.size(),
               colIdx.size(), vals.size());
    for (size_t i = 0; i < rowIdx.size(); ++i) {
        GNN_ASSERT(rowIdx[i] >= 0 && rowIdx[i] < rows,
                   "row index %d out of range", rowIdx[i]);
        GNN_ASSERT(colIdx[i] >= 0 && colIdx[i] < cols,
                   "column index %d out of range", colIdx[i]);
        if (i > 0) {
            const bool sorted =
                rowIdx[i - 1] < rowIdx[i] ||
                (rowIdx[i - 1] == rowIdx[i] &&
                 colIdx[i - 1] < colIdx[i]);
            GNN_ASSERT(sorted, "coo entries not (row, col) sorted at %zu",
                       i);
        }
    }
}

uint64_t
CooMatrix::rowIdxAddr() const
{
    return lazySpanAddr(rowIdxSpan_, rowIdx.size() * sizeof(int32_t));
}

uint64_t
CooMatrix::colIdxAddr() const
{
    return lazySpanAddr(colIdxSpan_, colIdx.size() * sizeof(int32_t));
}

uint64_t
CooMatrix::valsAddr() const
{
    return lazySpanAddr(valsSpan_, vals.size() * sizeof(float));
}

int64_t
BlockedEllMatrix::nnz() const
{
    int64_t n = 0;
    for (int32_t c : rowNnz)
        n += c;
    return n;
}

void
BlockedEllMatrix::validate() const
{
    GNN_ASSERT(rows >= 0 && cols >= 0, "negative bell dimensions");
    GNN_ASSERT(static_cast<int64_t>(rowNnz.size()) == rows,
               "rowNnz size %zu != rows %lld", rowNnz.size(),
               static_cast<long long>(rows));
    GNN_ASSERT(static_cast<int64_t>(blockOff.size()) == blockCount() + 1,
               "blockOff size %zu != blockCount+1 %lld", blockOff.size(),
               static_cast<long long>(blockCount() + 1));
    GNN_ASSERT(blockOff.empty() || blockOff.front() == 0,
               "blockOff must start at 0");
    GNN_ASSERT(colIdx.size() == vals.size(),
               "colIdx/vals size mismatch: %zu vs %zu", colIdx.size(),
               vals.size());
    for (int64_t br = 0; br < blockCount(); ++br) {
        GNN_ASSERT(blockOff[br] <= blockOff[br + 1],
                   "blockOff not monotone at block %lld",
                   static_cast<long long>(br));
        GNN_ASSERT((blockOff[br + 1] - blockOff[br]) % kBlockRows == 0,
                   "block %lld slots not divisible by block height",
                   static_cast<long long>(br));
        const int64_t w = width(br);
        const int64_t r_end = std::min(rows, (br + 1) * kBlockRows);
        for (int64_t r = br * kBlockRows; r < r_end; ++r) {
            GNN_ASSERT(rowNnz[r] >= 0 && rowNnz[r] <= w,
                       "rowNnz[%lld]=%d exceeds block width %lld",
                       static_cast<long long>(r), rowNnz[r],
                       static_cast<long long>(w));
        }
    }
    GNN_ASSERT(blockOff.empty() ||
               blockOff.back() ==
                   static_cast<int64_t>(colIdx.size()),
               "blockOff end %lld != padded nnz %zu",
               static_cast<long long>(blockOff.back()), colIdx.size());
    for (int32_t c : colIdx) {
        GNN_ASSERT(c >= 0 && (c < cols || (c == 0 && cols == 0)),
                   "column index %d out of range", c);
    }
}

uint64_t
BlockedEllMatrix::rowNnzAddr() const
{
    return lazySpanAddr(rowNnzSpan_, rowNnz.size() * sizeof(int32_t));
}

uint64_t
BlockedEllMatrix::colIdxAddr() const
{
    return lazySpanAddr(colIdxSpan_, colIdx.size() * sizeof(int32_t));
}

uint64_t
BlockedEllMatrix::valsAddr() const
{
    return lazySpanAddr(valsSpan_, vals.size() * sizeof(float));
}

CooMatrix
cooFromCsr(const CsrMatrix &csr)
{
    CooMatrix coo;
    coo.rows = csr.rows;
    coo.cols = csr.cols;
    coo.rowIdx.reserve(csr.nnz());
    for (int64_t r = 0; r < csr.rows; ++r) {
        for (int32_t e = csr.rowPtr[r]; e < csr.rowPtr[r + 1]; ++e)
            coo.rowIdx.push_back(static_cast<int32_t>(r));
    }
    coo.colIdx = csr.colIdx;
    coo.vals = csr.vals;
    return coo;
}

BlockedEllMatrix
bellFromCsr(const CsrMatrix &csr)
{
    BlockedEllMatrix bell;
    bell.rows = csr.rows;
    bell.cols = csr.cols;
    bell.rowNnz.resize(csr.rows);
    const int64_t blocks = bell.blockCount();
    bell.blockOff.assign(blocks + 1, 0);
    for (int64_t br = 0; br < blocks; ++br) {
        int64_t w = 0;
        const int64_t r_end =
            std::min(csr.rows, (br + 1) * BlockedEllMatrix::kBlockRows);
        for (int64_t r = br * BlockedEllMatrix::kBlockRows; r < r_end;
             ++r) {
            const int64_t d = csr.rowPtr[r + 1] - csr.rowPtr[r];
            bell.rowNnz[r] = static_cast<int32_t>(d);
            w = std::max(w, d);
        }
        bell.blockOff[br + 1] =
            bell.blockOff[br] + w * BlockedEllMatrix::kBlockRows;
    }
    bell.colIdx.assign(bell.blockOff[blocks], 0);
    bell.vals.assign(bell.blockOff[blocks], 0.0f);
    for (int64_t r = 0; r < csr.rows; ++r) {
        int64_t slot = bell.rowOff(r);
        for (int32_t e = csr.rowPtr[r]; e < csr.rowPtr[r + 1];
             ++e, ++slot) {
            bell.colIdx[slot] = csr.colIdx[e];
            bell.vals[slot] = csr.vals[e];
        }
    }
    return bell;
}

CsrMatrix
csrFromCoo(const CooMatrix &coo)
{
    CsrMatrix csr;
    csr.rows = coo.rows;
    csr.cols = coo.cols;
    csr.rowPtr.assign(coo.rows + 1, 0);
    for (int32_t r : coo.rowIdx)
        ++csr.rowPtr[r + 1];
    for (int64_t r = 0; r < coo.rows; ++r)
        csr.rowPtr[r + 1] += csr.rowPtr[r];
    csr.colIdx = coo.colIdx;
    csr.vals = coo.vals;
    csr.validate();
    return csr;
}

CsrMatrix
csrFromBell(const BlockedEllMatrix &bell)
{
    CsrMatrix csr;
    csr.rows = bell.rows;
    csr.cols = bell.cols;
    csr.rowPtr.assign(bell.rows + 1, 0);
    for (int64_t r = 0; r < bell.rows; ++r)
        csr.rowPtr[r + 1] = csr.rowPtr[r] + bell.rowNnz[r];
    csr.colIdx.reserve(csr.rowPtr[bell.rows]);
    csr.vals.reserve(csr.rowPtr[bell.rows]);
    for (int64_t r = 0; r < bell.rows; ++r) {
        const int64_t off = bell.rowOff(r);
        for (int32_t t = 0; t < bell.rowNnz[r]; ++t) {
            csr.colIdx.push_back(bell.colIdx[off + t]);
            csr.vals.push_back(bell.vals[off + t]);
        }
    }
    csr.validate();
    return csr;
}

SparseMatrix::SparseMatrix(CsrMatrix csr)
    : format_(SparseFormat::Csr), rows_(csr.rows), cols_(csr.cols),
      nnz_(csr.nnz()),
      csr_(std::make_shared<const CsrMatrix>(std::move(csr)))
{
}

SparseMatrix::SparseMatrix(CooMatrix coo)
    : format_(SparseFormat::Coo), rows_(coo.rows), cols_(coo.cols),
      nnz_(coo.nnz()),
      coo_(std::make_shared<const CooMatrix>(std::move(coo)))
{
}

SparseMatrix::SparseMatrix(BlockedEllMatrix bell)
    : format_(SparseFormat::BlockedEll), rows_(bell.rows),
      cols_(bell.cols), nnz_(bell.nnz()),
      bell_(std::make_shared<const BlockedEllMatrix>(std::move(bell)))
{
}

SparseMatrix
SparseMatrix::fromCsr(CsrMatrix csr, SparseFormat format)
{
    switch (format) {
      case SparseFormat::Csr:
        return SparseMatrix(std::move(csr));
      case SparseFormat::Coo:
        return SparseMatrix(cooFromCsr(csr));
      case SparseFormat::BlockedEll:
        return SparseMatrix(bellFromCsr(csr));
    }
    GNN_PANIC("bad SparseFormat %d", static_cast<int>(format));
}

double
SparseMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz_) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

int64_t
SparseMatrix::footprintBytes() const
{
    switch (format_) {
      case SparseFormat::Csr:
        return static_cast<int64_t>(
            (csr_->rowPtr.size() + csr_->colIdx.size()) *
                sizeof(int32_t) +
            csr_->vals.size() * sizeof(float));
      case SparseFormat::Coo:
        return static_cast<int64_t>(
            (coo_->rowIdx.size() + coo_->colIdx.size()) *
                sizeof(int32_t) +
            coo_->vals.size() * sizeof(float));
      case SparseFormat::BlockedEll:
        return static_cast<int64_t>(
            bell_->blockOff.size() * sizeof(int64_t) +
            (bell_->rowNnz.size() + bell_->colIdx.size()) *
                sizeof(int32_t) +
            bell_->vals.size() * sizeof(float));
    }
    GNN_PANIC("bad SparseFormat %d", static_cast<int>(format_));
}

const CsrMatrix &
SparseMatrix::csr() const
{
    GNN_ASSERT(format_ == SparseFormat::Csr && csr_ != nullptr,
               "SparseMatrix is %s, not csr", sparseFormatName(format_));
    return *csr_;
}

const CooMatrix &
SparseMatrix::coo() const
{
    GNN_ASSERT(format_ == SparseFormat::Coo && coo_ != nullptr,
               "SparseMatrix is %s, not coo", sparseFormatName(format_));
    return *coo_;
}

const BlockedEllMatrix &
SparseMatrix::bell() const
{
    GNN_ASSERT(format_ == SparseFormat::BlockedEll && bell_ != nullptr,
               "SparseMatrix is %s, not bell",
               sparseFormatName(format_));
    return *bell_;
}

SparseMatrix
SparseMatrix::toFormat(SparseFormat format) const
{
    if (format == format_)
        return *this;
    return fromCsr(toCsr(), format);
}

CsrMatrix
SparseMatrix::toCsr() const
{
    switch (format_) {
      case SparseFormat::Csr:
        return *csr_;
      case SparseFormat::Coo:
        return csrFromCoo(*coo_);
      case SparseFormat::BlockedEll:
        return csrFromBell(*bell_);
    }
    GNN_PANIC("bad SparseFormat %d", static_cast<int>(format_));
}

} // namespace gnnmark
