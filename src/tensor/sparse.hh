/**
 * @file
 * Multi-format sparse matrix storage: COO and blocked-ELL companions
 * to the CSR baseline (tensor/csr.hh), plus the `SparseMatrix` value
 * type that wraps exactly one format behind a uniform surface.
 *
 * Every format stores its per-row entries in the same order CSR does
 * (ascending column within a row, rows ascending), so the SpMM host
 * kernels accumulate each output element in an identical floating-
 * point order and all formats produce bitwise-equal results — the
 * property the per-format equivalence tests assert exactly.
 */

#ifndef GNNMARK_TENSOR_SPARSE_HH
#define GNNMARK_TENSOR_SPARSE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/csr.hh"

namespace gnnmark {

/** Storage layouts understood by ops::spmm and Graph::adjacency(). */
enum class SparseFormat
{
    Csr,        ///< compressed sparse row (the baseline)
    Coo,        ///< coordinate triples, row-major sorted
    BlockedEll, ///< 8-row blocks padded to the block's max row degree
};

/** Short lower-case name ("csr", "coo", "bell") for CLI/report use. */
const char *sparseFormatName(SparseFormat format);

/** Parse a sparseFormatName() string; returns false on unknown name. */
bool parseSparseFormat(const std::string &name, SparseFormat *out);

/**
 * Coordinate-format sparse matrix. The invariant ops::spmm relies on:
 * entries are sorted by (row, col) ascending — the same order as the
 * CSR entry stream — so per-row accumulation order matches CSR.
 */
struct CooMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> rowIdx; ///< nnz entries, sorted ascending
    std::vector<int32_t> colIdx; ///< nnz entries
    std::vector<float> vals;     ///< nnz entries

    int64_t nnz() const { return static_cast<int64_t>(colIdx.size()); }

    /** Structural sanity check (incl. sort order); panics on violation. */
    void validate() const;

    /** @{ Lazy, stable device addresses (see CsrMatrix). */
    uint64_t rowIdxAddr() const;
    uint64_t colIdxAddr() const;
    uint64_t valsAddr() const;
    /** @} */

  private:
    mutable std::shared_ptr<DeviceSpan> rowIdxSpan_;
    mutable std::shared_ptr<DeviceSpan> colIdxSpan_;
    mutable std::shared_ptr<DeviceSpan> valsSpan_;
};

/**
 * Blocked-ELL: rows are grouped into blocks of kBlockRows; each block
 * is padded to the widest row it contains and stored row-major, so a
 * warp sweeping a block reads fully regular slabs (the cuSPARSE
 * blocked-ELL trade: padding waste buys coalesced access). Padded
 * slots carry col 0 / val 0 but are never touched by the host kernel
 * — `rowNnz` bounds each row's loop — so padding cannot perturb the
 * accumulation (no -0.0 + 0.0 hazards, no NaN leakage from B).
 */
struct BlockedEllMatrix
{
    static constexpr int64_t kBlockRows = 8;

    int64_t rows = 0;
    int64_t cols = 0;
    /** Slot offset of each row block (blockCount() + 1 entries). */
    std::vector<int64_t> blockOff;
    /** True (unpadded) entry count of each row (rows entries). */
    std::vector<int32_t> rowNnz;
    std::vector<int32_t> colIdx; ///< padded slots, CSR entry order
    std::vector<float> vals;     ///< padded slots

    int64_t blockCount() const
    {
        return (rows + kBlockRows - 1) / kBlockRows;
    }

    /** Padded row width of block `br` (slots per row). */
    int64_t width(int64_t br) const
    {
        return (blockOff[br + 1] - blockOff[br]) / kBlockRows;
    }

    /** First slot of row `r` inside its block. */
    int64_t rowOff(int64_t r) const
    {
        const int64_t br = r / kBlockRows;
        return blockOff[br] + (r - br * kBlockRows) * width(br);
    }

    /** True nnz (excludes padding). */
    int64_t nnz() const;

    /** Total slots including padding. */
    int64_t paddedNnz() const
    {
        return static_cast<int64_t>(colIdx.size());
    }

    /** Structural sanity check; panics on violation. */
    void validate() const;

    /** @{ Lazy, stable device addresses (see CsrMatrix). */
    uint64_t rowNnzAddr() const;
    uint64_t colIdxAddr() const;
    uint64_t valsAddr() const;
    /** @} */

  private:
    mutable std::shared_ptr<DeviceSpan> rowNnzSpan_;
    mutable std::shared_ptr<DeviceSpan> colIdxSpan_;
    mutable std::shared_ptr<DeviceSpan> valsSpan_;
};

/** @{ Format conversions. All preserve CSR entry order exactly. */
CooMatrix cooFromCsr(const CsrMatrix &csr);
BlockedEllMatrix bellFromCsr(const CsrMatrix &csr);
CsrMatrix csrFromCoo(const CooMatrix &coo);
CsrMatrix csrFromBell(const BlockedEllMatrix &bell);
/** @} */

/**
 * Value-semantic wrapper around exactly one sparse storage format.
 * Copies share the underlying buffers (and therefore the lazy device
 * spans, keeping simulated addresses stable), so passing a
 * SparseMatrix around is cheap.
 *
 * The CsrMatrix constructor is deliberately implicit: it is the
 * migration path that lets pre-existing `CsrMatrix` producers feed
 * the redesigned `ops::spmm(const SparseMatrix &, ...)` surface.
 */
class SparseMatrix
{
  public:
    SparseMatrix() : SparseMatrix(CsrMatrix{}) {}
    SparseMatrix(CsrMatrix csr); // NOLINT(google-explicit-constructor)
    SparseMatrix(CooMatrix coo); // NOLINT(google-explicit-constructor)
    SparseMatrix(BlockedEllMatrix bell); // NOLINT

    /** Convert a CSR into the requested storage format. */
    static SparseMatrix fromCsr(CsrMatrix csr, SparseFormat format);

    SparseFormat format() const { return format_; }
    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t nnz() const { return nnz_; }

    /** nnz / (rows * cols); 0 for degenerate shapes. */
    double density() const;

    /**
     * Bytes the active format occupies (index + value arrays,
     * including blocked-ELL padding) — the per-format term of the
     * roofline traffic model in `gnnmark ops`.
     */
    int64_t footprintBytes() const;

    /** @{ Typed accessors; panic if the format does not match. */
    const CsrMatrix &csr() const;
    const CooMatrix &coo() const;
    const BlockedEllMatrix &bell() const;
    /** @} */

    /**
     * This matrix re-stored as `format` (round-trips through CSR;
     * returns *this unchanged, sharing storage, if already there).
     */
    SparseMatrix toFormat(SparseFormat format) const;

    /** Materialise CSR storage whatever the current format. */
    CsrMatrix toCsr() const;

  private:
    SparseFormat format_ = SparseFormat::Csr;
    int64_t rows_ = 0;
    int64_t cols_ = 0;
    int64_t nnz_ = 0;
    std::shared_ptr<const CsrMatrix> csr_;
    std::shared_ptr<const CooMatrix> coo_;
    std::shared_ptr<const BlockedEllMatrix> bell_;
};

} // namespace gnnmark

#endif // GNNMARK_TENSOR_SPARSE_HH
