/**
 * @file
 * Dense fp32 tensor, the value type flowing through the operator layer.
 *
 * Tensors are contiguous, row-major, and reference-counted: copies are
 * shallow (sharing storage), clone() is deep. The storage address is
 * stable for the tensor's lifetime and doubles as the simulated device
 * address for the GPU cache models.
 */

#ifndef GNNMARK_TENSOR_TENSOR_HH
#define GNNMARK_TENSOR_TENSOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"

namespace gnnmark {

/** N-dimensional dense fp32 array (row-major, contiguous). */
class Tensor
{
  public:
    /** An empty 0-element tensor. */
    Tensor();

    /** Zero-initialised tensor of the given shape. */
    explicit Tensor(std::vector<int64_t> shape);

    /** @{ Factory helpers. */
    static Tensor zeros(std::vector<int64_t> shape);
    static Tensor ones(std::vector<int64_t> shape);
    static Tensor full(std::vector<int64_t> shape, float value);
    static Tensor fromVector(std::vector<int64_t> shape,
                             std::vector<float> values);
    /** i.i.d. N(0, stddev^2) entries. */
    static Tensor randn(std::vector<int64_t> shape, Rng &rng,
                        float stddev = 1.0f);
    /** i.i.d. U[lo, hi) entries. */
    static Tensor uniform(std::vector<int64_t> shape, Rng &rng, float lo,
                          float hi);
    /** @} */

    /** Number of elements. */
    int64_t numel() const { return numel_; }

    /** Number of dimensions. */
    int dim() const { return static_cast<int>(shape_.size()); }

    /** Extent of dimension d (negative d counts from the back). */
    int64_t size(int d) const;

    const std::vector<int64_t> &shape() const { return shape_; }

    /** True if this tensor has the same shape as `other`. */
    bool sameShape(const Tensor &other) const;

    /** @{ Raw element access. */
    float *data();
    const float *data() const;
    /** @} */

    /** @{ Indexed access (bounds-checked up to 4-D). */
    float &operator()(int64_t i);
    float operator()(int64_t i) const;
    float &operator()(int64_t i, int64_t j);
    float operator()(int64_t i, int64_t j) const;
    float &operator()(int64_t i, int64_t j, int64_t k);
    float operator()(int64_t i, int64_t j, int64_t k) const;
    float &operator()(int64_t i, int64_t j, int64_t k, int64_t l);
    float operator()(int64_t i, int64_t j, int64_t k, int64_t l) const;
    /** @} */

    /** View with a new shape (shares storage; numel must match). */
    Tensor reshape(std::vector<int64_t> shape) const;

    /** Deep copy. */
    Tensor clone() const;

    /** Set all elements to `value`. */
    void fill(float value);

    /** Set all elements to zero. */
    void zero();

    /** True if storage is allocated (numel may still be 0). */
    bool defined() const { return storage_ != nullptr; }

    /** Stable byte address of element 0, used as the device address. */
    uint64_t deviceAddr() const;

    /** Fraction of exactly-zero elements (sparsity, as in the paper). */
    double zeroFraction() const;

    /** Shape as a printable string, e.g. "[2, 3]". */
    std::string shapeString() const;

  private:
    std::vector<int64_t> shape_;
    int64_t numel_ = 0;
    /**
     * Pooled, 256-byte-aligned storage. Allocations are recycled by a
     * caching allocator (like the PyTorch CUDA allocator), so training
     * loops see stable "device" addresses across iterations — which is
     * what the persistent L2 model in the simulator observes.
     */
    std::shared_ptr<float> storage_;
    int64_t offset_ = 0; ///< element offset into storage (views)
};

/** Max |a - b| over all elements; shapes must match. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True if all elements differ by at most atol + rtol * |b|. */
bool allClose(const Tensor &a, const Tensor &b, float rtol = 1e-4f,
              float atol = 1e-5f);

} // namespace gnnmark

#endif // GNNMARK_TENSOR_TENSOR_HH
