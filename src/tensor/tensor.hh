/**
 * @file
 * Dense fp32 tensor, the value type flowing through the operator layer.
 *
 * Tensors are contiguous, row-major, and reference-counted: copies are
 * shallow (sharing Storage), clone() is deep. Storage carries both the
 * host bytes (from the run's bound Allocator) and a deterministic
 * simulated device address (from DeviceAddrSpace) that is stable for
 * the storage's lifetime — what the GPU cache models hash.
 *
 * Construction goes through the factories: `Tensor::empty` for
 * outputs every element of which is about to be written,
 * `Tensor::zeros` when the op accumulates into the buffer, so the
 * initialisation cost is always named at the call site.
 */

#ifndef GNNMARK_TENSOR_TENSOR_HH
#define GNNMARK_TENSOR_TENSOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "tensor/storage.hh"

namespace gnnmark {

/** N-dimensional dense fp32 array (row-major, contiguous). */
class Tensor
{
  public:
    /** An empty 0-element tensor (shares the empty Storage singleton). */
    Tensor();

    /** @{ Factory helpers (allocation via the bound Allocator). */
    /** Uninitialised storage: every element must be written before use. */
    static Tensor empty(std::vector<int64_t> shape);
    static Tensor zeros(std::vector<int64_t> shape);
    static Tensor ones(std::vector<int64_t> shape);
    static Tensor full(std::vector<int64_t> shape, float value);
    static Tensor fromVector(std::vector<int64_t> shape,
                             std::vector<float> values);
    /** i.i.d. N(0, stddev^2) entries. */
    static Tensor randn(std::vector<int64_t> shape, Rng &rng,
                        float stddev = 1.0f);
    /** i.i.d. U[lo, hi) entries. */
    static Tensor uniform(std::vector<int64_t> shape, Rng &rng, float lo,
                          float hi);
    /** @} */

    /** Number of elements. */
    int64_t numel() const { return numel_; }

    /** Number of dimensions. */
    int dim() const { return static_cast<int>(shape_.size()); }

    /** Extent of dimension d (negative d counts from the back). */
    int64_t size(int d) const;

    const std::vector<int64_t> &shape() const { return shape_; }

    /** True if this tensor has the same shape as `other`. */
    bool sameShape(const Tensor &other) const;

    /** @{ Raw element access. */
    float *data();
    const float *data() const;
    /** @} */

    /** @{ Indexed access (bounds-checked up to 4-D). */
    float &operator()(int64_t i);
    float operator()(int64_t i) const;
    float &operator()(int64_t i, int64_t j);
    float operator()(int64_t i, int64_t j) const;
    float &operator()(int64_t i, int64_t j, int64_t k);
    float operator()(int64_t i, int64_t j, int64_t k) const;
    float &operator()(int64_t i, int64_t j, int64_t k, int64_t l);
    float operator()(int64_t i, int64_t j, int64_t k, int64_t l) const;
    /** @} */

    /** View with a new shape (shares storage; numel must match). */
    Tensor reshape(std::vector<int64_t> shape) const;

    /**
     * Zero-copy view of rows [begin, end) (dim >= 1). Shares Storage
     * with this tensor: writes through either alias are visible to
     * both.
     */
    Tensor viewRows(int64_t begin, int64_t end) const;

    /** Deep copy. */
    Tensor clone() const;

    /** Set all elements to `value`. */
    void fill(float value);

    /** Set all elements to zero. */
    void zero();

    /** True if storage is allocated (numel may still be 0). */
    bool defined() const { return storage_ != nullptr; }

    /** True if both tensors alias the same Storage. */
    bool sharesStorageWith(const Tensor &other) const
    {
        return storage_ == other.storage_;
    }

    /** The underlying refcounted Storage (for tests/instrumentation). */
    const std::shared_ptr<Storage> &storage() const { return storage_; }

    /**
     * Deterministic simulated device address of element 0 (the
     * Storage's DeviceAddrSpace address plus the view offset).
     */
    uint64_t deviceAddr() const;

    /** Fraction of exactly-zero elements (sparsity, as in the paper). */
    double zeroFraction() const;

    /** Shape as a printable string, e.g. "[2, 3]". */
    std::string shapeString() const;

  private:
    std::vector<int64_t> shape_;
    int64_t numel_ = 0;
    /**
     * Refcounted storage from the bound Allocator. Under the caching
     * arena, freed blocks are recycled by size bucket, so a training
     * loop's activations land at the same host bytes and the same
     * device addresses every iteration — which is what the persistent
     * L2 model in the simulator observes.
     */
    std::shared_ptr<Storage> storage_;
    int64_t offset_ = 0; ///< element offset into storage (views)
};

/** Max |a - b| over all elements; shapes must match. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True if all elements differ by at most atol + rtol * |b|. */
bool allClose(const Tensor &a, const Tensor &b, float rtol = 1e-4f,
              float atol = 1e-5f);

} // namespace gnnmark

#endif // GNNMARK_TENSOR_TENSOR_HH
