#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/string_utils.hh"
#include "base/thread_pool.hh"

namespace gnnmark {

namespace {

/** Flat-loop grain for fills/copies/reductions over tensor storage. */
constexpr int64_t kFlatGrain = 1 << 15;

int64_t
shapeNumel(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        GNN_ASSERT(d >= 0, "negative dimension %lld",
                   static_cast<long long>(d));
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor()
    : shape_({0}), numel_(0), storage_(Storage::allocate(0))
{
}

Tensor
Tensor::empty(std::vector<int64_t> shape)
{
    Tensor t;
    t.shape_ = std::move(shape);
    t.numel_ = shapeNumel(t.shape_);
    t.offset_ = 0;
    t.storage_ = Storage::allocate(static_cast<size_t>(t.numel_) *
                                   sizeof(float));
    return t;
}

Tensor
Tensor::zeros(std::vector<int64_t> shape)
{
    Tensor t = empty(std::move(shape));
    float *p = t.data();
    parallel_for(0, t.numel_, kFlatGrain, [&](int64_t i0, int64_t i1) {
        std::fill(p + i0, p + i1, 0.0f);
    });
    return t;
}

Tensor
Tensor::ones(std::vector<int64_t> shape)
{
    return full(std::move(shape), 1.0f);
}

Tensor
Tensor::full(std::vector<int64_t> shape, float value)
{
    Tensor t = empty(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::fromVector(std::vector<int64_t> shape, std::vector<float> values)
{
    Tensor t = empty(std::move(shape));
    GNN_ASSERT(static_cast<int64_t>(values.size()) == t.numel(),
               "value count %zu does not match shape numel %lld",
               values.size(), static_cast<long long>(t.numel()));
    std::copy(values.begin(), values.end(), t.data());
    return t;
}

Tensor
Tensor::randn(std::vector<int64_t> shape, Rng &rng, float stddev)
{
    Tensor t = empty(std::move(shape));
    float *p = t.data();
    // Serial: consumes the shared RNG stream in element order.
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::uniform(std::vector<int64_t> shape, Rng &rng, float lo, float hi)
{
    Tensor t = empty(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = rng.uniform(lo, hi);
    return t;
}

int64_t
Tensor::size(int d) const
{
    int nd = dim();
    if (d < 0)
        d += nd;
    GNN_ASSERT(d >= 0 && d < nd, "dimension %d out of range for %d-d",
               d, nd);
    return shape_[d];
}

bool
Tensor::sameShape(const Tensor &other) const
{
    return shape_ == other.shape_;
}

float *
Tensor::data()
{
    return storage_->f32() + offset_;
}

const float *
Tensor::data() const
{
    return storage_->f32() + offset_;
}

float &
Tensor::operator()(int64_t i)
{
    GNN_ASSERT(dim() == 1 && i >= 0 && i < shape_[0],
               "bad 1-d index %lld", static_cast<long long>(i));
    return data()[i];
}

float
Tensor::operator()(int64_t i) const
{
    return const_cast<Tensor &>(*this)(i);
}

float &
Tensor::operator()(int64_t i, int64_t j)
{
    GNN_ASSERT(dim() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
               j < shape_[1], "bad 2-d index (%lld, %lld)",
               static_cast<long long>(i), static_cast<long long>(j));
    return data()[i * shape_[1] + j];
}

float
Tensor::operator()(int64_t i, int64_t j) const
{
    return const_cast<Tensor &>(*this)(i, j);
}

float &
Tensor::operator()(int64_t i, int64_t j, int64_t k)
{
    GNN_ASSERT(dim() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
               j < shape_[1] && k >= 0 && k < shape_[2],
               "bad 3-d index (%lld, %lld, %lld)",
               static_cast<long long>(i), static_cast<long long>(j),
               static_cast<long long>(k));
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::operator()(int64_t i, int64_t j, int64_t k) const
{
    return const_cast<Tensor &>(*this)(i, j, k);
}

float &
Tensor::operator()(int64_t i, int64_t j, int64_t k, int64_t l)
{
    GNN_ASSERT(dim() == 4 && i >= 0 && i < shape_[0] && j >= 0 &&
               j < shape_[1] && k >= 0 && k < shape_[2] && l >= 0 &&
               l < shape_[3], "bad 4-d index (%lld, %lld, %lld, %lld)",
               static_cast<long long>(i), static_cast<long long>(j),
               static_cast<long long>(k), static_cast<long long>(l));
    return data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

float
Tensor::operator()(int64_t i, int64_t j, int64_t k, int64_t l) const
{
    return const_cast<Tensor &>(*this)(i, j, k, l);
}

Tensor
Tensor::reshape(std::vector<int64_t> shape) const
{
    GNN_ASSERT(shapeNumel(shape) == numel_,
               "reshape numel mismatch: %lld vs %lld",
               static_cast<long long>(shapeNumel(shape)),
               static_cast<long long>(numel_));
    Tensor t = *this;
    t.shape_ = std::move(shape);
    return t;
}

Tensor
Tensor::viewRows(int64_t begin, int64_t end) const
{
    GNN_ASSERT(dim() >= 1, "viewRows needs dim >= 1, got %s",
               shapeString().c_str());
    GNN_ASSERT(begin >= 0 && begin <= end && end <= shape_[0],
               "viewRows: bad range [%lld, %lld) for %s",
               static_cast<long long>(begin),
               static_cast<long long>(end), shapeString().c_str());
    const int64_t stride =
        shape_[0] == 0 ? 0 : numel_ / shape_[0];
    Tensor t = *this;
    t.shape_[0] = end - begin;
    t.numel_ = t.shape_[0] * stride;
    t.offset_ = offset_ + begin * stride;
    return t;
}

Tensor
Tensor::clone() const
{
    Tensor t = empty(shape_);
    const float *src = data();
    float *dst = t.data();
    parallel_for(0, numel_, kFlatGrain, [&](int64_t i0, int64_t i1) {
        std::copy(src + i0, src + i1, dst + i0);
    });
    return t;
}

void
Tensor::fill(float value)
{
    float *p = data();
    parallel_for(0, numel_, kFlatGrain, [&](int64_t i0, int64_t i1) {
        std::fill(p + i0, p + i1, value);
    });
}

void
Tensor::zero()
{
    fill(0.0f);
}

uint64_t
Tensor::deviceAddr() const
{
    return storage_->deviceAddr() +
           static_cast<uint64_t>(offset_) * sizeof(float);
}

double
Tensor::zeroFraction() const
{
    if (numel_ == 0)
        return 0.0;
    const float *p = data();
    const int64_t zeros = parallel_reduce(
        0, numel_, kFlatGrain, static_cast<int64_t>(0),
        [&](int64_t i0, int64_t i1) {
            int64_t z = 0;
            for (int64_t i = i0; i < i1; ++i) {
                if (p[i] == 0.0f)
                    ++z;
            }
            return z;
        },
        [](int64_t acc, int64_t z) { return acc + z; });
    return static_cast<double>(zeros) / static_cast<double>(numel_);
}

std::string
Tensor::shapeString() const
{
    std::vector<std::string> dims;
    dims.reserve(shape_.size());
    for (int64_t d : shape_)
        dims.push_back(strfmt("%lld", static_cast<long long>(d)));
    return "[" + join(dims, ", ") + "]";
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    GNN_ASSERT(a.sameShape(b), "shape mismatch: %s vs %s",
               a.shapeString().c_str(), b.shapeString().c_str());
    const float *pa = a.data();
    const float *pb = b.data();
    // max() is order-insensitive, so chunking cannot change the result.
    return parallel_reduce(
        0, a.numel(), kFlatGrain, 0.0f,
        [&](int64_t i0, int64_t i1) {
            float worst = 0.0f;
            for (int64_t i = i0; i < i1; ++i)
                worst = std::max(worst, std::abs(pa[i] - pb[i]));
            return worst;
        },
        [](float acc, float w) { return std::max(acc, w); });
}

bool
allClose(const Tensor &a, const Tensor &b, float rtol, float atol)
{
    if (!a.sameShape(b))
        return false;
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        float tol = atol + rtol * std::abs(pb[i]);
        if (std::abs(pa[i] - pb[i]) > tol)
            return false;
    }
    return true;
}

} // namespace gnnmark
