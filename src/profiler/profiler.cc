#include "profiler/profiler.hh"

#include "base/logging.hh"

namespace gnnmark {

namespace {

void
accumulate(OpClassStats &s, const KernelRecord &r)
{
    s.timeSec += r.timeSec;
    s.launches += 1;
    s.flops += r.flops;
    s.intOps += r.intOps;
    s.cycles += r.cycles;
    s.instrs += r.totalInstrs();
    s.loads += r.loads;
    s.divergentLoads += r.divergentLoads;
    s.l1Accesses += r.l1Accesses;
    s.l1Hits += r.l1Hits;
    s.l2Accesses += r.l2Accesses;
    s.l2Hits += r.l2Hits;
    for (size_t i = 0; i < kNumStallReasons; ++i)
        s.stallCycles[i] += r.stallCycles[i];
}

double
ratio(double num, double den)
{
    return den > 0 ? num / den : 0.0;
}

} // namespace

double
OpClassStats::l1HitRate() const
{
    return ratio(l1Hits, l1Accesses);
}

double
OpClassStats::l2HitRate() const
{
    return ratio(l2Hits, l2Accesses);
}

double
OpClassStats::divergentLoadFraction() const
{
    return ratio(divergentLoads, loads);
}

void
Profiler::onKernel(const KernelRecord &r)
{
    accumulate(classes_[static_cast<size_t>(r.opClass)], r);
    accumulate(kernels_[r.name], r);

    totalTime_ += r.timeSec;
    ++totalLaunches_;
    fp32Instrs_ += r.fp32Instrs;
    int32Instrs_ += r.int32Instrs;
    otherInstrs_ += r.memInstrs + r.miscInstrs;
    flops_ += r.flops;
    intOps_ += r.intOps;
    cycleWeightedIpc_ += r.ipc * r.cycles;
    totalCycles_ += r.cycles;
    for (size_t i = 0; i < kNumStallReasons; ++i)
        stalls_[i] += r.stallCycles[i];
    loads_ += r.loads;
    divergentLoads_ += r.divergentLoads;
    l1Acc_ += r.l1Accesses;
    l1Hit_ += r.l1Hits;
    l2Acc_ += r.l2Accesses;
    l2Hit_ += r.l2Hits;
}

void
Profiler::onTransfer(const TransferRecord &r)
{
    transferBytes_ += r.bytes;
    transferZeroBytes_ += r.bytes * r.zeroFraction;
    transferTime_ += r.timeSec;
    sparsity_.push_back(
        SparsitySample{iteration_, r.tag, r.bytes, r.zeroFraction});
}

void
Profiler::onPhase(PhaseMark mark)
{
    if (mark == PhaseMark::IterationBegin)
        beginIteration();
}

void
Profiler::beginIteration()
{
    ++iteration_;
}

void
Profiler::reset()
{
    *this = Profiler();
}

std::array<double, kNumOpClasses>
Profiler::opTimeBreakdown() const
{
    std::array<double, kNumOpClasses> out{};
    for (size_t i = 0; i < kNumOpClasses; ++i)
        out[i] = ratio(classes_[i].timeSec, totalTime_);
    return out;
}

const OpClassStats &
Profiler::classStats(OpClass c) const
{
    return classes_[static_cast<size_t>(c)];
}

Profiler::InstructionMix
Profiler::instructionMix() const
{
    double total = fp32Instrs_ + int32Instrs_ + otherInstrs_;
    InstructionMix mix;
    mix.fp32Frac = ratio(fp32Instrs_, total);
    mix.int32Frac = ratio(int32Instrs_, total);
    mix.otherFrac = ratio(otherInstrs_, total);
    return mix;
}

double
Profiler::gflops() const
{
    return ratio(flops_, totalTime_) / 1e9;
}

double
Profiler::giops() const
{
    return ratio(intOps_, totalTime_) / 1e9;
}

double
Profiler::avgIpc() const
{
    return ratio(cycleWeightedIpc_, totalCycles_);
}

StallVector
Profiler::stallBreakdown() const
{
    double total = 0;
    for (double s : stalls_)
        total += s;
    StallVector out{};
    for (size_t i = 0; i < kNumStallReasons; ++i)
        out[i] = ratio(stalls_[i], total);
    return out;
}

double
Profiler::l1HitRate() const
{
    return ratio(l1Hit_, l1Acc_);
}

double
Profiler::l2HitRate() const
{
    return ratio(l2Hit_, l2Acc_);
}

double
Profiler::divergentLoadFraction() const
{
    return ratio(divergentLoads_, loads_);
}

double
Profiler::avgTransferSparsity() const
{
    return ratio(transferZeroBytes_, transferBytes_);
}

const std::vector<SparsitySample> &
Profiler::sparsityTimeline() const
{
    return sparsity_;
}

const std::map<std::string, OpClassStats> &
Profiler::kernelStats() const
{
    return kernels_;
}

} // namespace gnnmark
