/**
 * @file
 * Workload profiler: the suite's analogue of nvprof + NVBit + the
 * paper's patched-PyTorch transfer instrumentation.
 *
 * A Profiler observes a GpuDevice, accumulating every kernel record and
 * host-to-device transfer. It exposes exactly the aggregates the paper
 * reports: per-operation-class time breakdown (Fig. 2), dynamic
 * instruction mix (Fig. 3), GFLOPS/GIOPS and IPC (Fig. 4), stall
 * distribution (Fig. 5), cache hit rates and load divergence (Fig. 6),
 * and transfer sparsity (Figs. 7-8).
 */

#ifndef GNNMARK_PROFILER_PROFILER_HH
#define GNNMARK_PROFILER_PROFILER_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "sim/kernel_record.hh"
#include "sim/op_class.hh"
#include "sim/stall.hh"

namespace gnnmark {

/** Totals for one operation class (or one kernel name). */
struct OpClassStats
{
    double timeSec = 0;
    int64_t launches = 0;
    double flops = 0;
    double intOps = 0;
    double cycles = 0;
    double instrs = 0;
    double loads = 0;
    double divergentLoads = 0;
    double l1Accesses = 0;
    double l1Hits = 0;
    double l2Accesses = 0;
    double l2Hits = 0;
    StallVector stallCycles{};

    double l1HitRate() const;
    double l2HitRate() const;
    double divergentLoadFraction() const;
};

/** One host-to-device transfer, time-stamped by iteration. */
struct SparsitySample
{
    int64_t iteration;
    std::string tag;
    double bytes;
    double zeroFraction;
};

/** Accumulates device activity and computes the paper's metrics. */
class Profiler : public KernelObserver
{
  public:
    Profiler() = default;

    // KernelObserver interface.
    void onKernel(const KernelRecord &record) override;
    void onTransfer(const TransferRecord &record) override;
    void onPhase(PhaseMark mark) override;

    /** Advance the iteration counter used to time-stamp transfers. */
    void beginIteration();

    /** Drop everything recorded so far. */
    void reset();

    // --- Totals ---
    double totalKernelTimeSec() const { return totalTime_; }
    int64_t totalLaunches() const { return totalLaunches_; }

    // --- Fig. 2: execution-time breakdown by op class ---
    /** Fraction of kernel time per class (sums to 1 if any time). */
    std::array<double, kNumOpClasses> opTimeBreakdown() const;
    const OpClassStats &classStats(OpClass c) const;

    // --- Fig. 3: dynamic instruction mix ---
    /** Fractions of {int32, fp32, other} over all executed instrs. */
    struct InstructionMix
    {
        double int32Frac = 0;
        double fp32Frac = 0;
        double otherFrac = 0;
    };
    InstructionMix instructionMix() const;

    // --- Fig. 4: arithmetic throughput ---
    double gflops() const; ///< fp32 lane-ops / kernel time / 1e9
    double giops() const;  ///< int32 lane-ops / kernel time / 1e9
    double avgIpc() const; ///< cycle-weighted mean of per-kernel IPC

    // --- Fig. 5: stall distribution ---
    /** Normalised stall-cycle shares per reason (sums to 1). */
    StallVector stallBreakdown() const;

    // --- Fig. 6: caches and divergence ---
    double l1HitRate() const;
    double l2HitRate() const;
    double divergentLoadFraction() const;

    // --- Figs. 7-8: transfer sparsity ---
    /** Byte-weighted average fraction of zero values sent H2D. */
    double avgTransferSparsity() const;
    double totalTransferBytes() const { return transferBytes_; }
    double totalTransferTimeSec() const { return transferTime_; }
    const std::vector<SparsitySample> &sparsityTimeline() const;

    /** Per-kernel-name totals (the nvprof "GPU activities" view). */
    const std::map<std::string, OpClassStats> &kernelStats() const;

  private:
    std::array<OpClassStats, kNumOpClasses> classes_{};
    std::map<std::string, OpClassStats> kernels_;

    double totalTime_ = 0;
    int64_t totalLaunches_ = 0;
    double fp32Instrs_ = 0, int32Instrs_ = 0, otherInstrs_ = 0;
    double flops_ = 0, intOps_ = 0;
    double cycleWeightedIpc_ = 0, totalCycles_ = 0;
    StallVector stalls_{};
    double loads_ = 0, divergentLoads_ = 0;
    double l1Acc_ = 0, l1Hit_ = 0, l2Acc_ = 0, l2Hit_ = 0;

    double transferBytes_ = 0;
    double transferZeroBytes_ = 0;
    double transferTime_ = 0;
    int64_t iteration_ = 0;
    std::vector<SparsitySample> sparsity_;
};

} // namespace gnnmark

#endif // GNNMARK_PROFILER_PROFILER_HH
