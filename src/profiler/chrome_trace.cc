#include "profiler/chrome_trace.hh"

#include <sstream>

#include "base/io.hh"
#include "base/string_utils.hh"

namespace gnnmark {

namespace {

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

void
ChromeTraceWriter::onKernel(const KernelRecord &record)
{
    Event event;
    event.name = record.name;
    event.category = opClassName(record.opClass);
    event.tid = 0;
    event.startUs = kernelClockUs_;
    event.durationUs = record.timeSec * 1e6;
    kernelClockUs_ += event.durationUs;
    event.args = {
        {"op_class", opClassName(record.opClass)},
        {"invocation", strfmt("%lld",
                              static_cast<long long>(record.invocation))},
        {"detailed", record.detailed ? "true" : "false"},
        {"ipc", strfmt("%.3f", record.ipc)},
        {"instrs", strfmt("%.0f", record.totalInstrs())},
        {"l1_hit_rate",
         strfmt("%.4f", record.l1Accesses > 0
                            ? record.l1Hits / record.l1Accesses
                            : 0.0)},
        {"l2_hit_rate",
         strfmt("%.4f", record.l2Accesses > 0
                            ? record.l2Hits / record.l2Accesses
                            : 0.0)},
        {"dram_bytes", strfmt("%.0f", record.dramBytes)},
    };
    events_.push_back(std::move(event));
}

void
ChromeTraceWriter::onTransfer(const TransferRecord &record)
{
    Event event;
    event.name = "H2D " + record.tag;
    event.category = "transfer";
    event.tid = 1;
    event.startUs = transferClockUs_;
    event.durationUs = record.timeSec * 1e6;
    transferClockUs_ += event.durationUs;
    event.args = {
        {"bytes", strfmt("%.0f", record.bytes)},
        {"zero_fraction", strfmt("%.4f", record.zeroFraction)},
    };
    events_.push_back(std::move(event));
}

std::string
ChromeTraceWriter::json() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto thread_name = [&](int tid, const char *name) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
           << "\"}}";
    };
    thread_name(0, "kernels");
    thread_name(1, "h2d copies");
    for (const Event &event : events_) {
        os << ",\n";
        os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
           << ",\"name\":\"" << jsonEscape(event.name) << "\",\"cat\":\""
           << jsonEscape(event.category) << "\""
           << strfmt(",\"ts\":%.4f,\"dur\":%.4f", event.startUs,
                     event.durationUs)
           << ",\"args\":{";
        bool first_arg = true;
        for (const auto &[key, value] : event.args) {
            if (!first_arg)
                os << ",";
            first_arg = false;
            os << "\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
               << "\"";
        }
        os << "}}";
    }
    os << "\n]}\n";
    return os.str();
}

void
ChromeTraceWriter::write(const std::string &path) const
{
    const std::string doc = json();
    writeFileBytes(path, std::vector<uint8_t>(doc.begin(), doc.end()));
}

} // namespace gnnmark
