#include "profiler/chrome_trace.hh"

#include <algorithm>
#include <sstream>

#include "base/io.hh"
#include "base/string_utils.hh"
#include "obs/json.hh"

namespace gnnmark {

using obs::jsonEscape;

namespace {

/** Kernel lane tid of `rank` (rank 0 keeps the historical tid 0). */
int
kernelTid(int rank)
{
    return 2 * rank;
}

/** Transfer lane tid of `rank`. */
int
transferTid(int rank)
{
    return 2 * rank + 1;
}

} // namespace

void
ChromeTraceWriter::setRank(int rank)
{
    rank_ = rank;
    if (std::find(ranks_.begin(), ranks_.end(), rank) == ranks_.end()) {
        ranks_.push_back(rank);
        std::sort(ranks_.begin(), ranks_.end());
    }
}

void
ChromeTraceWriter::onKernel(const KernelRecord &record)
{
    Event event;
    event.name = record.name;
    event.category = opClassName(record.opClass);
    event.tid = kernelTid(rank_);
    event.startUs = kernelClockUs_[rank_];
    event.durationUs = record.timeSec * 1e6;
    kernelClockUs_[rank_] += event.durationUs;
    event.args = {
        {"op_class", opClassName(record.opClass)},
        {"invocation", strfmt("%lld",
                              static_cast<long long>(record.invocation))},
        {"detailed", record.detailed ? "true" : "false"},
        {"ipc", strfmt("%.3f", record.ipc)},
        {"instrs", strfmt("%.0f", record.totalInstrs())},
        {"l1_hit_rate",
         strfmt("%.4f", record.l1Accesses > 0
                            ? record.l1Hits / record.l1Accesses
                            : 0.0)},
        {"l2_hit_rate",
         strfmt("%.4f", record.l2Accesses > 0
                            ? record.l2Hits / record.l2Accesses
                            : 0.0)},
        {"dram_bytes", strfmt("%.0f", record.dramBytes)},
    };
    events_.push_back(std::move(event));
}

void
ChromeTraceWriter::onTransfer(const TransferRecord &record)
{
    Event event;
    event.name = "H2D " + record.tag;
    event.category = "transfer";
    event.tid = transferTid(rank_);
    event.startUs = transferClockUs_[rank_];
    event.durationUs = record.timeSec * 1e6;
    transferClockUs_[rank_] += event.durationUs;
    event.args = {
        {"bytes", strfmt("%.0f", record.bytes)},
        {"zero_fraction", strfmt("%.4f", record.zeroFraction)},
    };
    events_.push_back(std::move(event));
}

void
ChromeTraceWriter::mirrorDeviceLanes(int world)
{
    const size_t original = events_.size();
    for (int rank = 1; rank < world; ++rank) {
        if (std::find(ranks_.begin(), ranks_.end(), rank) ==
            ranks_.end()) {
            ranks_.push_back(rank);
        }
        for (size_t i = 0; i < original; ++i) {
            if (events_[i].tid != kernelTid(0) &&
                events_[i].tid != transferTid(0)) {
                continue;
            }
            Event copy = events_[i];
            copy.tid = events_[i].tid == kernelTid(0)
                           ? kernelTid(rank)
                           : transferTid(rank);
            copy.args.emplace_back("mirrored", "true");
            events_.push_back(std::move(copy));
        }
    }
    std::sort(ranks_.begin(), ranks_.end());
}

void
ChromeTraceWriter::addHostSpans(const std::vector<obs::ThreadSpans> &threads)
{
    for (const obs::ThreadSpans &thread : threads) {
        hostLaneNames_[thread.lane] = thread.threadName;
        for (const obs::SpanEvent &span : thread.spans) {
            Event event;
            event.name = span.name;
            event.category = "host";
            event.tid = thread.lane;
            event.startUs = span.startUs;
            event.durationUs = span.durUs;
            hostEvents_.push_back(std::move(event));
        }
        if (thread.dropped > 0) {
            Event note;
            note.name = strfmt("spans dropped: %lld",
                               static_cast<long long>(thread.dropped));
            note.category = "host";
            note.tid = thread.lane;
            note.startUs = 0;
            note.durationUs = 0;
            hostEvents_.push_back(std::move(note));
        }
    }
}

void
ChromeTraceWriter::addRequestLanes(
    const std::vector<obs::RequestTrace> &traces)
{
    // One lane per retained request, in request-id order (the tracer
    // drains them sorted); tid is just the lane ordinal so ids far
    // apart stay adjacent in the viewer.
    int tid = static_cast<int>(requestLaneNames_.size());
    for (const obs::RequestTrace &trace : traces) {
        std::string label =
            strfmt("req %lld", static_cast<long long>(trace.id));
        if (trace.exemplar)
            label += " [exemplar]";
        label += " (" + trace.outcome + ")";
        requestLaneNames_[tid] = label;
        for (const obs::RequestSpan &span : trace.spans) {
            Event event;
            event.name = span.name;
            event.category = "request";
            event.tid = tid;
            event.startUs = span.startSec * 1e6;
            event.durationUs = (span.endSec - span.startSec) * 1e6;
            if (!span.detail.empty())
                event.args.emplace_back("detail", span.detail);
            requestEvents_.push_back(std::move(event));
        }
        ++tid;
    }
}

std::string
ChromeTraceWriter::json() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto meta = [&](int pid, int tid, const char *what,
                    const std::string &name) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    };
    auto emit = [&](int pid, const Event &event) {
        os << ",\n";
        os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << event.tid
           << ",\"name\":\"" << jsonEscape(event.name) << "\",\"cat\":\""
           << jsonEscape(event.category) << "\""
           << strfmt(",\"ts\":%.4f,\"dur\":%.4f", event.startUs,
                     event.durationUs)
           << ",\"args\":{";
        bool first_arg = true;
        for (const auto &[key, value] : event.args) {
            if (!first_arg)
                os << ",";
            first_arg = false;
            os << "\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
               << "\"";
        }
        os << "}}";
    };

    // The two pids carry different clock domains: pid 1 runs on
    // simulated device time, pid 2 on the host monotonic clock.
    meta(1, 0, "process_name", "device (sim time)");
    for (int rank : ranks_) {
        const std::string suffix =
            rank == 0 ? "" : strfmt(" rank %d", rank);
        meta(1, kernelTid(rank), "thread_name", "kernels" + suffix);
        meta(1, transferTid(rank), "thread_name",
             "h2d copies" + suffix);
    }
    for (const Event &event : events_)
        emit(1, event);

    if (!hostEvents_.empty()) {
        meta(2, 0, "process_name", "host (wall clock)");
        for (const auto &[lane, name] : hostLaneNames_)
            meta(2, lane, "thread_name", name);
        for (const Event &event : hostEvents_)
            emit(2, event);
    }

    // pid 3 runs on simulated *serving* time (request arrivals are
    // epoch 0), a third clock domain next to device and host.
    if (!requestEvents_.empty()) {
        meta(3, 0, "process_name", "serving requests (sim time)");
        for (const auto &[lane, name] : requestLaneNames_)
            meta(3, lane, "thread_name", name);
        for (const Event &event : requestEvents_)
            emit(3, event);
    }
    os << "\n]}\n";
    return os.str();
}

void
ChromeTraceWriter::write(const std::string &path) const
{
    const std::string doc = json();
    writeFileBytes(path, std::vector<uint8_t>(doc.begin(), doc.end()));
}

} // namespace gnnmark
