/**
 * @file
 * Chrome-trace exporter: turns the kernel/transfer stream of a run
 * into the Trace Event JSON format that chrome://tracing, Perfetto and
 * speedscope load directly — the visual timeline companion to the
 * aggregate tables, and the model's stand-in for nvprof's timeline
 * export.
 *
 * Events are complete ("ph":"X") events. Device-side events live on
 * pid 1: kernels on tid 2*rank, host-to-device transfers on tid
 * 2*rank+1 (rank 0 keeps the historical tids 0/1). The simulated clock
 * has no epoch, so device timestamps are the running sum of event
 * durations per lane — the visual ordering and widths are what matter.
 *
 * Host-side spans (see obs/span.hh) are merged onto pid 2, one lane
 * per recording thread, timestamped on the host monotonic clock. The
 * two pids carry different clock domains on purpose; process_name
 * metadata labels each.
 */

#ifndef GNNMARK_PROFILER_CHROME_TRACE_HH
#define GNNMARK_PROFILER_CHROME_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/request_trace.hh"
#include "obs/span.hh"
#include "sim/kernel_record.hh"

namespace gnnmark {

/**
 * KernelObserver that accumulates Trace Event JSON. Attach alongside
 * the Profiler (RunOptions::extraObserver or trace replay's extra
 * observers), then call write() once the run finishes.
 */
class ChromeTraceWriter : public KernelObserver
{
  public:
    void onKernel(const KernelRecord &record) override;
    void onTransfer(const TransferRecord &record) override;

    /**
     * Attribute subsequent device events to DDP rank `rank` (own lane
     * pair, own running clocks). Rank 0 is the default.
     */
    void setRank(int rank);

    /**
     * Mirror rank 0's device lanes onto ranks 1..world-1. The DDP
     * model simulates one real device and treats replicas as lockstep
     * mirrors of rank 0's stream, so the mirrored lanes are the
     * honest visualisation of that model (args carry mirrored=true).
     */
    void mirrorDeviceLanes(int world);

    /**
     * Merge host-side spans (from SpanTracer::collect()) into the
     * trace as pid-2 lanes, one per recording thread.
     */
    void addHostSpans(const std::vector<obs::ThreadSpans> &threads);

    /**
     * Merge traced serving requests (ServingSimulator::
     * drainRequestTraces()) as pid-3 lanes — one lane per request,
     * labelled "req <id> [exemplar] (<outcome>)", spans on simulated
     * serving time. Instant marks become zero-width events; span
     * details ride in args.
     */
    void addRequestLanes(const std::vector<obs::RequestTrace> &traces);

    /** Number of events collected so far. */
    size_t eventCount() const
    {
        return events_.size() + hostEvents_.size() +
               requestEvents_.size();
    }

    /** Render the collected events as a Trace Event JSON document. */
    std::string json() const;

    /** Write the JSON document to `path`; throws IoError on failure. */
    void write(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        int tid = 0;
        double startUs = 0;
        double durationUs = 0;
        std::vector<std::pair<std::string, std::string>> args;
    };

    std::vector<Event> events_;
    std::vector<Event> hostEvents_;
    std::vector<Event> requestEvents_;
    std::map<int, std::string> requestLaneNames_; ///< tid -> lane label
    std::map<int, std::string> hostLaneNames_; ///< tid -> thread name
    int rank_ = 0;
    std::map<int, double> kernelClockUs_;   ///< per-rank kernel lane end
    std::map<int, double> transferClockUs_; ///< per-rank copy lane end
    std::vector<int> ranks_ = {0};          ///< ranks with lanes, sorted
};

} // namespace gnnmark

#endif // GNNMARK_PROFILER_CHROME_TRACE_HH
