/**
 * @file
 * Chrome-trace exporter: turns the kernel/transfer stream of a run
 * into the Trace Event JSON format that chrome://tracing, Perfetto and
 * speedscope load directly — the visual timeline companion to the
 * aggregate tables, and the model's stand-in for nvprof's timeline
 * export.
 *
 * Events are complete ("ph":"X") events on a single process: kernels
 * on tid 0, host-to-device transfers on tid 1. The simulated clock has
 * no epoch, so timestamps are the running sum of event durations per
 * lane — the visual ordering and widths are what matter.
 */

#ifndef GNNMARK_PROFILER_CHROME_TRACE_HH
#define GNNMARK_PROFILER_CHROME_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_record.hh"

namespace gnnmark {

/**
 * KernelObserver that accumulates Trace Event JSON. Attach alongside
 * the Profiler (RunOptions::extraObserver or trace replay's extra
 * observers), then call write() once the run finishes.
 */
class ChromeTraceWriter : public KernelObserver
{
  public:
    void onKernel(const KernelRecord &record) override;
    void onTransfer(const TransferRecord &record) override;

    /** Number of events collected so far. */
    size_t eventCount() const { return events_.size(); }

    /** Render the collected events as a Trace Event JSON document. */
    std::string json() const;

    /** Write the JSON document to `path`; throws IoError on failure. */
    void write(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        int tid = 0;
        double startUs = 0;
        double durationUs = 0;
        std::vector<std::pair<std::string, std::string>> args;
    };

    std::vector<Event> events_;
    double kernelClockUs_ = 0;   ///< running end of the kernel lane
    double transferClockUs_ = 0; ///< running end of the copy lane
};

} // namespace gnnmark

#endif // GNNMARK_PROFILER_CHROME_TRACE_HH
