/**
 * @file
 * Tape-free reverse-mode autograd over Tensors.
 *
 * Every differentiable operator (namespace ag) returns a Variable whose
 * node stores the parents and a backward closure. backward() performs a
 * topological sweep, fully accumulating each node's gradient before
 * invoking its closure. Backward closures call the instrumented ops::
 * functions, so the backward pass emits GPU kernels exactly like the
 * forward pass — GNN *training*, not inference, is what the device
 * model observes.
 */

#ifndef GNNMARK_OPS_VARIABLE_HH
#define GNNMARK_OPS_VARIABLE_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnmark {

namespace detail {

/** Autograd graph node. */
struct VarNode
{
    Tensor value;
    Tensor grad;             ///< valid iff gradDefined
    bool gradDefined = false;
    bool requiresGrad = false;
    std::vector<std::shared_ptr<VarNode>> parents;
    /** Propagates this node's grad into the parents (may be empty). */
    std::function<void(VarNode &self)> backward;
};

/** Accumulate `g` into the node's gradient (emits an add kernel). */
void accumulateGrad(VarNode &node, const Tensor &g);

} // namespace detail

/** A tensor participating in the autograd graph. */
class Variable
{
  public:
    /** Undefined variable (no node). */
    Variable() = default;

    /** Leaf variable. */
    explicit Variable(Tensor value, bool requires_grad = false);

    /** Leaf that accumulates gradients (a trainable parameter). */
    static Variable param(Tensor value);

    /**
     * Interior node produced by an operator.
     * requiresGrad is inherited from the parents; if none requires a
     * gradient the backward closure is dropped.
     */
    static Variable
    makeResult(Tensor value, std::vector<Variable> parents,
               std::function<void(detail::VarNode &self)> backward);

    bool defined() const { return node_ != nullptr; }

    const Tensor &value() const;
    Tensor &value();

    bool requiresGrad() const;

    /** Gradient; zeros of the value's shape if none accumulated yet. */
    const Tensor &grad() const;

    /** True once a gradient has been accumulated. */
    bool hasGrad() const;

    /** Drop the accumulated gradient. */
    void zeroGrad();

    /** Reverse sweep seeded with ones (use on scalar losses). */
    void backward();

    /** Reverse sweep with an explicit seed gradient. */
    void backward(const Tensor &seed);

    /** Same value, detached from the graph. */
    Variable detach() const;

    const std::shared_ptr<detail::VarNode> &node() const { return node_; }

  private:
    std::shared_ptr<detail::VarNode> node_;
};

} // namespace gnnmark

#endif // GNNMARK_OPS_VARIABLE_HH
