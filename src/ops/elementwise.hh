/**
 * @file
 * Element-wise operators (the paper's "element-wise" class): maps over
 * tensors such as add, mul, activations, dropout and copies. Each
 * computes on the host and emits a streaming kernel to the bound GPU.
 */

#ifndef GNNMARK_OPS_ELEMENTWISE_HH
#define GNNMARK_OPS_ELEMENTWISE_HH

#include "base/rng.hh"
#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/** c = a + b (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b);

/** c = a - b. */
Tensor sub(const Tensor &a, const Tensor &b);

/** c = a * b (Hadamard). */
Tensor mul(const Tensor &a, const Tensor &b);

/** c = a / b (Hadamard; caller guarantees b != 0). */
Tensor div(const Tensor &a, const Tensor &b);

/** c = a + alpha * b. */
Tensor addScaled(const Tensor &a, const Tensor &b, float alpha);

/** c = alpha * a. */
Tensor scale(const Tensor &a, float alpha);

/** c = a + alpha. */
Tensor addScalar(const Tensor &a, float alpha);

/** dst += src, in place (gradient accumulation). */
void addInto(Tensor &dst, const Tensor &src);

/** c = max(a, 0). */
Tensor relu(const Tensor &a);

/** grad of relu: g * (a > 0). */
Tensor reluGrad(const Tensor &grad_out, const Tensor &a);

/** PReLU with a single learnable slope: a >= 0 ? a : slope * a. */
Tensor prelu(const Tensor &a, float slope);

/** grad of prelu wrt input. */
Tensor preluGradInput(const Tensor &grad_out, const Tensor &a,
                      float slope);

/** grad of prelu wrt the slope (a scalar; summed over elements). */
float preluGradSlope(const Tensor &grad_out, const Tensor &a);

/** Logistic sigmoid. */
Tensor sigmoid(const Tensor &a);

/** grad of sigmoid given its output y: g * y * (1 - y). */
Tensor sigmoidGrad(const Tensor &grad_out, const Tensor &y);

/** Hyperbolic tangent. */
Tensor tanh(const Tensor &a);

/** grad of tanh given its output y: g * (1 - y^2). */
Tensor tanhGrad(const Tensor &grad_out, const Tensor &y);

/** Natural exponential. */
Tensor exp(const Tensor &a);

/** Natural logarithm (caller guarantees positivity). */
Tensor log(const Tensor &a);

/**
 * Inverted dropout: zeroes each element with probability p and scales
 * survivors by 1/(1-p). The 0/1-over-keep-prob mask is written to
 * *mask_out if non-null (needed for the backward pass).
 */
Tensor dropout(const Tensor &a, float p, Rng &rng,
               Tensor *mask_out = nullptr);

/** c[i][j] = a[i][j] + bias[j] for a [N, F] tensor. */
Tensor addBiasRows(const Tensor &a, const Tensor &bias);

/** Plain device-side copy (e.g. contiguous() after a view). */
Tensor copy(const Tensor &a);

/** Concatenate [Ni, F] tensors along rows into [sum Ni, F]. */
Tensor concatRows(const std::vector<Tensor> &parts);

/** Rows [begin, end) of a [N, F] tensor as a new tensor. */
Tensor sliceRows(const Tensor &a, int64_t begin, int64_t end);

/** Concatenate two [N, Fi] tensors along columns into [N, F1+F2]. */
Tensor concatCols(const Tensor &a, const Tensor &b);

/** Materialised 2-D transpose. */
Tensor transpose2d(const Tensor &a);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_ELEMENTWISE_HH
