#include "ops/reduce.hh"

#include <algorithm>
#include <limits>

#include "base/allocator.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/**
 * Flat-reduction grain: inputs below this stay in one chunk and keep
 * the exact serial accumulation order; larger inputs combine
 * fixed-boundary chunk partials in chunk order, which is bitwise
 * stable across thread counts.
 */
constexpr int64_t kReduceGrain = 1 << 16;

/**
 * Emit a row-reduction kernel: one warp per row, coalesced 32-wide
 * strides over the row followed by a shared-memory tree reduce.
 */
void
emitRowReduce(const std::string &base, int64_t n, int64_t f,
              uint64_t in_addr, uint64_t out_addr)
{
    if (ExecContext::device() == nullptr)
        return;
    const int eb = deviceElemBytes();
    const int64_t chunks = std::max<int64_t>(1, (f + 31) / 32);

    KernelDesc desc;
    desc.name = kernelName(base, {n, f});
    desc.opClass = OpClass::Reduction;
    desc.blocks = std::max<int64_t>(1, (n + 7) / 8);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 8 * 1024;
    desc.aluIlp = 2.0; // serial accumulator chain
    desc.loadDepFraction = 0.6;
    desc.outputRanges.emplace_back(out_addr,
                                   static_cast<uint64_t>(n) * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t row = warp_id;
        if (row >= n)
            return;
        int64_t done = 0;
        for (int64_t c = 0; c < chunks; ++c, ++done) {
            if (sink.full())
                break;
            sink.loadCoalesced(in_addr + (row * f + c * 32) * eb, eb);
            sink.fp32(1);
            sink.int32(2);
        }
        if (done < chunks && done > 0) {
            sink.scaleRemainder(static_cast<double>(chunks) /
                                static_cast<double>(done));
        }
        sink.sharedLoad(5);
        sink.fp32(5);
        uint64_t addr = out_addr + row * eb;
        sink.storeGlobal(&addr, 1, eb);
    };
    emitKernel(desc);
}

/**
 * Emit a column-reduction kernel: warps stride down the rows with
 * fully coalesced feature-slice loads.
 */
void
emitColReduce(const std::string &base, int64_t n, int64_t f,
              uint64_t in_addr, uint64_t out_addr)
{
    if (ExecContext::device() == nullptr)
        return;
    const int eb = deviceElemBytes();
    const int64_t chunks = std::max<int64_t>(1, (f + 31) / 32);

    // The grid tiles both axes; row-tile partials combine with global
    // atomics, so tall-skinny reductions still fill the device.
    const int64_t rows_per_block = 8 * 64;
    const int64_t row_tiles =
        std::max<int64_t>(1, (n + rows_per_block - 1) / rows_per_block);

    KernelDesc desc;
    desc.name = kernelName(base, {n, f});
    desc.opClass = OpClass::Reduction;
    desc.blocks = chunks * row_tiles;
    desc.warpsPerBlock = 8;
    desc.codeBytes = 8 * 1024;
    desc.aluIlp = 2.0;
    desc.loadDepFraction = 0.6;
    desc.outputRanges.emplace_back(out_addr,
                                   static_cast<uint64_t>(f) * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t block = warp_id / 8;
        const int64_t chunk = block / row_tiles;
        const int64_t row_tile = block % row_tiles;
        const int64_t lane_row = warp_id % 8; // 8 warps split the tile
        const int64_t first =
            row_tile * rows_per_block + lane_row * 64;
        for (int64_t r = 0; r < 64; ++r) {
            int64_t row = first + r;
            if (row >= n || sink.full())
                break;
            sink.loadCoalesced(in_addr + (row * f + chunk * 32) * eb, eb);
            sink.fp32(1);
            sink.int32(1);
        }
        sink.sharedStore(1);
        sink.barrier();
        sink.sharedLoad(3);
        sink.fp32(3);
        if (row_tiles > 1) {
            uint64_t addrs[32];
            for (int l = 0; l < 32; ++l) {
                addrs[l] = out_addr +
                           (chunk * 32 + l) * static_cast<uint64_t>(eb);
            }
            sink.atomicGlobal(addrs, 32, eb);
        } else {
            sink.storeCoalesced(out_addr + chunk * 32 * eb, eb);
        }
    };
    emitKernel(desc);
}

/** Row-broadcast kernels share the element-wise template. */
template <typename F>
Tensor
rowBroadcast(const Tensor &a, const Tensor &v, const char *name, F f)
{
    GNN_ASSERT(a.dim() == 2 && v.dim() == 1 && v.size(0) == a.size(0),
               "%s: bad shapes %s, %s", name, a.shapeString().c_str(),
               v.shapeString().c_str());
    Tensor c = Tensor::empty(a.shape()); // every element written below
    const int64_t n = a.size(0);
    const int64_t cols = a.size(1);
    const float *pa = a.data();
    const float *pv = v.data();
    float *pc = c.data();
    parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int64_t j = 0; j < cols; ++j)
                pc[i * cols + j] = f(pa[i * cols + j], pv[i]);
        }
    });
    ElementwiseSpec spec;
    spec.name = name;
    spec.elems = a.numel();
    spec.inAddrs = {a.deviceAddr(), v.deviceAddr()};
    spec.outAddrs = {c.deviceAddr()};
    spec.fp32PerElem = 1;
    spec.int32PerElem = 12;
    spec.elemBytes = deviceElemBytes();
    emitElementwise(spec);
    return c;
}

} // namespace

float
reduceSumAll(const Tensor &a)
{
    const float *p = a.data();
    const double sum = parallel_reduce(
        0, a.numel(), kReduceGrain, 0.0,
        [&](int64_t i0, int64_t i1) {
            double s = 0.0;
            for (int64_t i = i0; i < i1; ++i)
                s += p[i];
            return s;
        },
        [](double acc, double s) { return acc + s; });
    // Device side: a grid-wide tree reduction over the flat array.
    Tensor result = Tensor::empty({1});
    emitRowReduce("reduce_all", 1, a.numel(), a.deviceAddr(),
                  result.deviceAddr());
    return static_cast<float>(sum);
}

float
reduceMeanAll(const Tensor &a)
{
    GNN_ASSERT(a.numel() > 0, "mean of empty tensor");
    return reduceSumAll(a) / static_cast<float>(a.numel());
}

Tensor
reduceSumRows(const Tensor &a)
{
    GNN_SPAN("op.reduce.sum_rows");
    GNN_ASSERT(a.dim() == 2, "reduceSumRows needs 2-d, got %s",
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    Tensor out = Tensor::empty({n});
    const float *pa = a.data();
    float *po = out.data();
    parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            double s = 0.0;
            for (int64_t j = 0; j < f; ++j)
                s += pa[i * f + j];
            po[i] = static_cast<float>(s);
        }
    });
    emitRowReduce("reduce_rows", n, f, a.deviceAddr(), out.deviceAddr());
    return out;
}

Tensor
reduceMaxRows(const Tensor &a)
{
    GNN_SPAN("op.reduce.max_rows");
    GNN_ASSERT(a.dim() == 2, "reduceMaxRows needs 2-d, got %s",
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    Tensor out = Tensor::empty({n});
    const float *pa = a.data();
    float *po = out.data();
    parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            float best = -std::numeric_limits<float>::infinity();
            for (int64_t j = 0; j < f; ++j)
                best = std::max(best, pa[i * f + j]);
            po[i] = best;
        }
    });
    emitRowReduce("reduce_max_rows", n, f, a.deviceAddr(),
                  out.deviceAddr());
    return out;
}

std::vector<int32_t>
argmaxRows(const Tensor &a)
{
    GNN_ASSERT(a.dim() == 2, "argmaxRows needs 2-d, got %s",
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    std::vector<int32_t> out(n);
    const float *pa = a.data();
    parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            int32_t best = 0;
            for (int64_t j = 1; j < f; ++j) {
                if (pa[i * f + j] > pa[i * f + best])
                    best = static_cast<int32_t>(j);
            }
            out[i] = best;
        }
    });
    Tensor dummy = Tensor::empty({n}); // address carrier only
    emitRowReduce("reduce_argmax_rows", n, f, a.deviceAddr(),
                  dummy.deviceAddr());
    return out;
}

Tensor
reduceSumCols(const Tensor &a)
{
    GNN_SPAN("op.reduce.sum_cols");
    GNN_ASSERT(a.dim() == 2, "reduceSumCols needs 2-d, got %s",
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    Tensor out = Tensor::empty({f}); // std::copy fills every element
    const float *pa = a.data();
    float *po = out.data();
    // Row-chunk partial columns, combined in chunk order (exact serial
    // order whenever n fits one chunk).
    const int64_t row_grain = std::max<int64_t>(
        1, kReduceGrain / std::max<int64_t>(1, f));
    using Cols = std::vector<float>;
    Cols sums = parallel_reduce(
        0, n, row_grain, Cols(f, 0.0f),
        [&](int64_t i0, int64_t i1) {
            Cols s(f, 0.0f);
            for (int64_t i = i0; i < i1; ++i) {
                for (int64_t j = 0; j < f; ++j)
                    s[j] += pa[i * f + j];
            }
            return s;
        },
        [&](Cols acc, const Cols &s) {
            for (int64_t j = 0; j < f; ++j)
                acc[j] += s[j];
            return acc;
        });
    std::copy(sums.begin(), sums.end(), po);
    emitColReduce("reduce_cols", n, f, a.deviceAddr(), out.deviceAddr());
    return out;
}

namespace {

template <typename Combine>
Tensor
segmentReduce(const Tensor &src, const std::vector<int32_t> &offsets,
              const char *name, Combine combine, float init)
{
    GNN_SPAN("op.segment_reduce");
    GNN_ASSERT(src.dim() == 2, "%s needs 2-d src, got %s", name,
               src.shapeString().c_str());
    GNN_ASSERT(!offsets.empty(), "%s: empty offsets", name);
    const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
    const int64_t f = src.size(1);
    GNN_ASSERT(offsets.back() == src.size(0),
               "%s: offsets end %d != src rows %lld", name,
               offsets.back(), static_cast<long long>(src.size(0)));

    // Uninitialised output: every segment row is written below — empty
    // segments explicitly get zeros so max and sum agree on the value.
    Tensor out = Tensor::empty({segs, f});
    const float *ps = src.data();
    float *po = out.data();
    parallel_for(0, segs, 32, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
            GNN_ASSERT(offsets[s] <= offsets[s + 1],
                       "%s: offsets not monotone at %lld", name,
                       static_cast<long long>(s));
            if (offsets[s] == offsets[s + 1]) {
                for (int64_t j = 0; j < f; ++j)
                    po[s * f + j] = 0.0f;
                continue;
            }
            for (int64_t j = 0; j < f; ++j) {
                float acc = init;
                for (int32_t r = offsets[s]; r < offsets[s + 1]; ++r)
                    acc = combine(acc,
                                  ps[static_cast<int64_t>(r) * f + j]);
                po[s * f + j] = acc;
            }
        }
    });

    if (ExecContext::device() != nullptr) {
        const int eb = deviceElemBytes();
        const int64_t chunks = std::max<int64_t>(1, (f + 31) / 32);
        const uint64_t s_addr = src.deviceAddr();
        const uint64_t o_addr = out.deviceAddr();
        DeviceSpan off_span(offsets.size() * sizeof(int32_t));
        const uint64_t off_addr = off_span.addr();
        const int32_t *off = offsets.data();

        KernelDesc desc;
        desc.name = kernelName(name, {segs, f});
        desc.opClass = OpClass::Reduction;
        desc.blocks = std::max<int64_t>(1, (segs * chunks + 7) / 8);
        desc.warpsPerBlock = 8;
        desc.codeBytes = 8 * 1024;
        desc.aluIlp = 2.0;
        desc.loadDepFraction = 0.6;
        desc.outputRanges.emplace_back(
            o_addr, static_cast<uint64_t>(segs) * f * eb);
        desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
            const int64_t seg = warp_id / chunks;
            const int64_t chunk = warp_id % chunks;
            if (seg >= segs)
                return;
            const int lanes = static_cast<int>(
                std::min<int64_t>(32, f - chunk * 32));
            uint64_t oa = off_addr + seg * 4;
            sink.loadGlobal(&oa, 1, 8);
            sink.int32(2);
            int64_t rows = off[seg + 1] - off[seg];
            int64_t done = 0;
            for (int32_t r = off[seg]; r < off[seg + 1]; ++r, ++done) {
                if (sink.full())
                    break;
                sink.loadCoalesced(
                    s_addr + (static_cast<int64_t>(r) * f + chunk * 32) *
                                 eb, eb, lanes);
                sink.fp32(1);
                sink.int32(1);
            }
            if (done < rows && done > 0) {
                sink.scaleRemainder(static_cast<double>(rows) /
                                    static_cast<double>(done));
            }
            sink.storeCoalesced(o_addr + (seg * f + chunk * 32) * eb, eb,
                                lanes);
            sink.misc(1);
        };
        emitKernel(desc);
    }
    return out;
}

} // namespace

Tensor
segmentSumRows(const Tensor &src, const std::vector<int32_t> &offsets)
{
    return segmentReduce(src, offsets, "segment_sum",
                         [](float a, float b) { return a + b; }, 0.0f);
}

Tensor
segmentMaxRows(const Tensor &src, const std::vector<int32_t> &offsets)
{
    return segmentReduce(
        src, offsets, "segment_max",
        [](float a, float b) { return std::max(a, b); },
        -std::numeric_limits<float>::infinity());
}

Tensor
subRowsBy(const Tensor &a, const Tensor &v)
{
    return rowBroadcast(a, v, "ew_sub_rows",
                        [](float x, float y) { return x - y; });
}

Tensor
divRowsBy(const Tensor &a, const Tensor &v)
{
    return rowBroadcast(a, v, "ew_div_rows",
                        [](float x, float y) { return x / y; });
}

Tensor
mulRowsBy(const Tensor &a, const Tensor &v)
{
    return rowBroadcast(a, v, "ew_mul_rows",
                        [](float x, float y) { return x * y; });
}

} // namespace ops
} // namespace gnnmark
