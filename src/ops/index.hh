/**
 * @file
 * Indexed data-movement operators: index-select (embedding-style row
 * lookup), gather (edge-endpoint feature fetch) and scatter-add — the
 * irregular-access operations that dominate the aggregation phase of
 * GNN training in the paper.
 */

#ifndef GNNMARK_OPS_INDEX_HH
#define GNNMARK_OPS_INDEX_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/**
 * out[i] = a[idx[i]] for a [N, F] table; returns [M, F].
 * Classified IndexSelect (torch.index_select / embedding lookups).
 */
Tensor indexSelectRows(const Tensor &a, const std::vector<int32_t> &idx);

/**
 * Same data movement as indexSelectRows but classified Gather: used
 * for per-edge endpoint feature fetches during message passing.
 */
Tensor gatherRows(const Tensor &a, const std::vector<int32_t> &idx);

/**
 * out[idx[i]] += src[i] for src [M, F] into out [N, F] (atomics on
 * the device). Classified Scatter; the backward of gathers.
 */
void scatterAddRows(Tensor &out, const std::vector<int32_t> &idx,
                    const Tensor &src);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_INDEX_HH
