#include "ops/variable.hh"

#include <unordered_set>

#include "base/logging.hh"
#include "obs/span.hh"
#include "ops/elementwise.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

namespace detail {

void
accumulateGrad(VarNode &node, const Tensor &g)
{
    GNN_ASSERT(node.value.sameShape(g),
               "gradient shape %s does not match value shape %s",
               g.shapeString().c_str(), node.value.shapeString().c_str());
    if (!node.gradDefined) {
        node.grad = g.clone();
        node.gradDefined = true;
    } else {
        ops::addInto(node.grad, g);
    }
}

} // namespace detail

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<detail::VarNode>())
{
    node_->value = std::move(value);
    node_->requiresGrad = requires_grad;
}

Variable
Variable::param(Tensor value)
{
    return Variable(std::move(value), true);
}

Variable
Variable::makeResult(Tensor value, std::vector<Variable> parents,
                     std::function<void(detail::VarNode &)> backward)
{
    bool needs = false;
    for (const Variable &p : parents)
        needs = needs || (p.defined() && p.requiresGrad());

    Variable out(std::move(value), needs);
    if (needs) {
        for (const Variable &p : parents)
            out.node_->parents.push_back(p.node());
        out.node_->backward = std::move(backward);
    }
    return out;
}

const Tensor &
Variable::value() const
{
    GNN_ASSERT(defined(), "value() on undefined Variable");
    return node_->value;
}

Tensor &
Variable::value()
{
    GNN_ASSERT(defined(), "value() on undefined Variable");
    return node_->value;
}

bool
Variable::requiresGrad() const
{
    return defined() && node_->requiresGrad;
}

const Tensor &
Variable::grad() const
{
    GNN_ASSERT(defined(), "grad() on undefined Variable");
    if (!node_->gradDefined) {
        node_->grad = Tensor::zeros(node_->value.shape());
        node_->gradDefined = true;
    }
    return node_->grad;
}

bool
Variable::hasGrad() const
{
    return defined() && node_->gradDefined;
}

void
Variable::zeroGrad()
{
    if (defined()) {
        node_->gradDefined = false;
        node_->grad = Tensor();
    }
}

void
Variable::backward()
{
    backward(Tensor::ones(value().shape()));
}

void
Variable::backward(const Tensor &seed)
{
    GNN_SPAN("autograd.backward");
    GNN_ASSERT(defined(), "backward() on undefined Variable");
    GNN_ASSERT(requiresGrad(), "backward() on a non-grad Variable");

    // Mark the backward window on the device timeline: every kernel
    // emitted by the reverse sweep produces gradient data, which is
    // what the DDP overlap model buckets against.
    GpuDevice *device = ExecContext::device();
    if (device != nullptr)
        device->markBackwardBegin();

    // Topological order via iterative post-order DFS.
    std::vector<detail::VarNode *> topo;
    std::unordered_set<detail::VarNode *> visited;
    struct Frame
    {
        detail::VarNode *node;
        size_t next;
    };
    std::vector<Frame> stack;
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.next < f.node->parents.size()) {
            detail::VarNode *p = f.node->parents[f.next++].get();
            if (p != nullptr && p->requiresGrad &&
                visited.insert(p).second) {
                stack.push_back({p, 0});
            }
        } else {
            topo.push_back(f.node);
            stack.pop_back();
        }
    }

    detail::accumulateGrad(*node_, seed);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        detail::VarNode *n = *it;
        if (n->backward && n->gradDefined)
            n->backward(*n);
    }

    if (device != nullptr)
        device->markBackwardEnd();
}

Variable
Variable::detach() const
{
    if (!defined())
        return Variable();
    return Variable(node_->value, false);
}

} // namespace gnnmark
