#include "ops/elementwise.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/** Emit a standard unary/binary streaming kernel. */
void
emitMap(const std::string &name, const std::vector<const Tensor *> &ins,
        const std::vector<Tensor *> &outs, int fp, int sfu, int int32)
{
    ElementwiseSpec spec;
    spec.name = name;
    spec.elems = outs.empty() ? ins[0]->numel() : outs[0]->numel();
    for (const Tensor *t : ins)
        spec.inAddrs.push_back(t->deviceAddr());
    for (Tensor *t : outs)
        spec.outAddrs.push_back(t->deviceAddr());
    spec.fp32PerElem = fp;
    spec.sfuPerElem = sfu;
    spec.int32PerElem = int32;
    spec.elemBytes = deviceElemBytes();
    emitElementwise(spec);
}

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    GNN_ASSERT(a.sameShape(b), "%s: shape mismatch %s vs %s", op,
               a.shapeString().c_str(), b.shapeString().c_str());
}

/** Flat-loop grain: streaming maps only fan out on sizable arrays. */
constexpr int64_t kMapGrain = 4096;

template <typename F>
Tensor
binaryMap(const Tensor &a, const Tensor &b, const char *name, F f, int fp)
{
    checkSameShape(a, b, name);
    Tensor c = Tensor::empty(a.shape());
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallel_for(0, a.numel(), kMapGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pc[i] = f(pa[i], pb[i]);
    });
    emitMap(name, {&a, &b}, {&c}, fp, 0, 16);
    return c;
}

template <typename F>
Tensor
unaryMap(const Tensor &a, const char *name, F f, int fp, int sfu)
{
    Tensor c = Tensor::empty(a.shape());
    const float *pa = a.data();
    float *pc = c.data();
    parallel_for(0, a.numel(), kMapGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pc[i] = f(pa[i]);
    });
    emitMap(name, {&a}, {&c}, fp, sfu, 16);
    return c;
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    return binaryMap(a, b, "ew_add", [](float x, float y) { return x + y; },
                     1);
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return binaryMap(a, b, "ew_sub", [](float x, float y) { return x - y; },
                     1);
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return binaryMap(a, b, "ew_mul", [](float x, float y) { return x * y; },
                     1);
}

Tensor
div(const Tensor &a, const Tensor &b)
{
    return binaryMap(a, b, "ew_div", [](float x, float y) { return x / y; },
                     1);
}

Tensor
addScaled(const Tensor &a, const Tensor &b, float alpha)
{
    return binaryMap(a, b, "ew_axpy",
                     [alpha](float x, float y) { return x + alpha * y; },
                     1);
}

Tensor
scale(const Tensor &a, float alpha)
{
    return unaryMap(a, "ew_scale",
                    [alpha](float x) { return alpha * x; }, 1, 0);
}

Tensor
addScalar(const Tensor &a, float alpha)
{
    return unaryMap(a, "ew_adds",
                    [alpha](float x) { return x + alpha; }, 1, 0);
}

void
addInto(Tensor &dst, const Tensor &src)
{
    checkSameShape(dst, src, "ew_acc");
    float *pd = dst.data();
    const float *ps = src.data();
    parallel_for(0, dst.numel(), kMapGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pd[i] += ps[i];
    });
    emitMap("ew_acc", {&dst, &src}, {&dst}, 1, 0, 8);
}

Tensor
relu(const Tensor &a)
{
    return unaryMap(a, "ew_relu",
                    [](float x) { return x > 0 ? x : 0.0f; }, 1, 0);
}

Tensor
reluGrad(const Tensor &grad_out, const Tensor &a)
{
    return binaryMap(grad_out, a, "ew_relu_bwd",
                     [](float g, float x) { return x > 0 ? g : 0.0f; },
                     1);
}

Tensor
prelu(const Tensor &a, float slope)
{
    return unaryMap(a, "ew_prelu",
                    [slope](float x) { return x >= 0 ? x : slope * x; },
                    2, 0);
}

Tensor
preluGradInput(const Tensor &grad_out, const Tensor &a, float slope)
{
    return binaryMap(grad_out, a, "ew_prelu_bwd",
                     [slope](float g, float x) {
                         return x >= 0 ? g : slope * g;
                     },
                     2);
}

float
preluGradSlope(const Tensor &grad_out, const Tensor &a)
{
    checkSameShape(grad_out, a, "ew_prelu_bwd_slope");
    const float *pg = grad_out.data();
    const float *pa = a.data();
    const float sum = parallel_reduce(
        0, a.numel(), kMapGrain, 0.0f,
        [&](int64_t i0, int64_t i1) {
            float s = 0.0f;
            for (int64_t i = i0; i < i1; ++i) {
                if (pa[i] < 0)
                    s += pg[i] * pa[i];
            }
            return s;
        },
        [](float acc, float s) { return acc + s; });
    Tensor dummy = Tensor::empty({1}); // address carrier only
    emitMap("ew_prelu_bwd_slope", {&grad_out, &a}, {&dummy}, 2, 0, 2);
    return sum;
}

Tensor
sigmoid(const Tensor &a)
{
    return unaryMap(a, "ew_sigmoid",
                    [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
                    2, 1);
}

Tensor
sigmoidGrad(const Tensor &grad_out, const Tensor &y)
{
    return binaryMap(grad_out, y, "ew_sigmoid_bwd",
                     [](float g, float v) { return g * v * (1.0f - v); },
                     3);
}

Tensor
tanh(const Tensor &a)
{
    return unaryMap(a, "ew_tanh",
                    [](float x) { return std::tanh(x); }, 1, 1);
}

Tensor
tanhGrad(const Tensor &grad_out, const Tensor &y)
{
    return binaryMap(grad_out, y, "ew_tanh_bwd",
                     [](float g, float v) { return g * (1.0f - v * v); },
                     3);
}

Tensor
exp(const Tensor &a)
{
    return unaryMap(a, "ew_exp", [](float x) { return std::exp(x); }, 1,
                    1);
}

Tensor
log(const Tensor &a)
{
    return unaryMap(a, "ew_log", [](float x) { return std::log(x); }, 1,
                    1);
}

Tensor
dropout(const Tensor &a, float p, Rng &rng, Tensor *mask_out)
{
    GNN_ASSERT(p >= 0.0f && p < 1.0f, "dropout probability %f invalid",
               static_cast<double>(p));
    Tensor c = Tensor::empty(a.shape());
    Tensor mask = Tensor::empty(a.shape());
    const float keep = 1.0f - p;
    const float inv_keep = 1.0f / keep;
    const float *pa = a.data();
    float *pc = c.data();
    float *pm = mask.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        float m = rng.bernoulli(keep) ? inv_keep : 0.0f;
        pm[i] = m;
        pc[i] = pa[i] * m;
    }
    // Philox-style RNG per element costs a handful of integer ops.
    emitMap("ew_dropout", {&a}, {&c, &mask}, 2, 0, 12);
    if (mask_out != nullptr)
        *mask_out = mask;
    return c;
}

Tensor
addBiasRows(const Tensor &a, const Tensor &bias)
{
    GNN_ASSERT(a.dim() == 2 && bias.dim() == 1 &&
               a.size(1) == bias.size(0),
               "addBiasRows: bad shapes %s, %s", a.shapeString().c_str(),
               bias.shapeString().c_str());
    Tensor c = Tensor::empty(a.shape());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    const float *pa = a.data();
    const float *pb = bias.data();
    float *pc = c.data();
    parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int64_t j = 0; j < f; ++j)
                pc[i * f + j] = pa[i * f + j] + pb[j];
        }
    });
    emitMap("ew_bias", {&a, &bias}, {&c}, 1, 0, 10);
    return c;
}

Tensor
copy(const Tensor &a)
{
    Tensor c = a.clone();
    emitMap("ew_copy", {&a}, {&c}, 0, 0, 2);
    return c;
}

Tensor
concatRows(const std::vector<Tensor> &parts)
{
    GNN_ASSERT(!parts.empty(), "concatRows: no inputs");
    const int64_t f = parts[0].dim() == 2 ? parts[0].size(1) : 1;
    int64_t rows = 0;
    for (const Tensor &p : parts) {
        GNN_ASSERT(p.dim() == 2 && p.size(1) == f,
                   "concatRows: inconsistent shapes");
        rows += p.size(0);
    }
    Tensor c = Tensor::empty({rows, f});
    float *pc = c.data();
    for (const Tensor &p : parts) {
        std::copy(p.data(), p.data() + p.numel(), pc);
        pc += p.numel();
        const Tensor *pp = &p;
        emitMap("ew_copy", {pp}, {}, 0, 0, 2);
    }
    return c;
}

Tensor
sliceRows(const Tensor &a, int64_t begin, int64_t end)
{
    GNN_ASSERT(a.dim() == 2 && begin >= 0 && begin <= end &&
               end <= a.size(0), "sliceRows: bad range [%lld, %lld)",
               static_cast<long long>(begin), static_cast<long long>(end));
    const int64_t f = a.size(1);
    Tensor c = Tensor::empty({end - begin, f});
    std::copy(a.data() + begin * f, a.data() + end * f, c.data());
    emitMap("ew_copy", {&a}, {&c}, 0, 0, 2);
    return c;
}

Tensor
concatCols(const Tensor &a, const Tensor &b)
{
    GNN_ASSERT(a.dim() == 2 && b.dim() == 2 && a.size(0) == b.size(0),
               "concatCols: bad shapes %s, %s", a.shapeString().c_str(),
               b.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t fa = a.size(1);
    const int64_t fb = b.size(1);
    Tensor c = Tensor::empty({n, fa + fb});
    parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            std::copy(a.data() + i * fa, a.data() + (i + 1) * fa,
                      c.data() + i * (fa + fb));
            std::copy(b.data() + i * fb, b.data() + (i + 1) * fb,
                      c.data() + i * (fa + fb) + fa);
        }
    });
    emitMap("ew_concat", {&a, &b}, {&c}, 0, 0, 3);
    return c;
}

Tensor
transpose2d(const Tensor &a)
{
    GNN_ASSERT(a.dim() == 2, "transpose2d needs a 2-d tensor, got %s",
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t m = a.size(1);
    Tensor c = Tensor::empty({m, n});
    const float *pa = a.data();
    float *pc = c.data();
    parallel_for(0, m, 64, [&](int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = j0; j < j1; ++j)
                pc[j * n + i] = pa[i * m + j];
        }
    });
    emitMap("ew_transpose", {&a}, {&c}, 0, 0, 4);
    return c;
}

} // namespace ops
} // namespace gnnmark
