#include "ops/dispatch.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "obs/metrics.hh"
#include "ops/cpu_kernels.hh"

namespace gnnmark {
namespace ops {

const char *
gemmVariantName(GemmVariant v)
{
    switch (v) {
      case GemmVariant::Naive:
        return "naive";
      case GemmVariant::Tiled:
        return "tiled";
    }
    GNN_PANIC("bad GemmVariant %d", static_cast<int>(v));
}

const char *
spmmVariantName(SpmmVariant v)
{
    switch (v) {
      case SpmmVariant::CsrScalar:
        return "csr_scalar";
      case SpmmVariant::CsrVector:
        return "csr_vector";
      case SpmmVariant::Coo:
        return "coo";
      case SpmmVariant::Bell:
        return "bell";
    }
    GNN_PANIC("bad SpmmVariant %d", static_cast<int>(v));
}

struct Dispatch::Impl
{
    std::mutex mu; // guards calibration + env state
    bool calibrated = false;
    double calibMs = 0.0;
    bool measureMode = false;
    // Measured-mode preferences (meaningless in model mode).
    bool measuredPrefersNaiveGemm = false;
    bool measuredPrefersScalarSpmm = false;
    // GNNMARK_OP_VARIANT pins (nullopt = auto).
    std::optional<GemmVariant> gemmOverride;
    std::optional<SpmmVariant> spmmCsrOverride;

    std::atomic<bool> metricsEnabled{false};
    std::atomic<int64_t> gemmNaive{0};
    std::atomic<int64_t> gemmTiled{0};
    std::atomic<int64_t> spmmCsrScalar{0};
    std::atomic<int64_t> spmmCsrVector{0};
    std::atomic<int64_t> spmmCoo{0};
    std::atomic<int64_t> spmmBell{0};
};

namespace {

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Parsed pin from one key=value clause of GNNMARK_OP_VARIANT. */
struct OverridePins
{
    std::optional<GemmVariant> gemm;
    std::optional<SpmmVariant> spmmCsr;
};

void
applyOverrideClause(const std::string &clause, OverridePins *impl)
{
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
        warn("GNNMARK_OP_VARIANT: ignoring clause '%s' (want op=variant)",
             clause.c_str());
        return;
    }
    const std::string op = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);
    if (op == "gemm") {
        if (val == "naive")
            impl->gemm = GemmVariant::Naive;
        else if (val == "tiled")
            impl->gemm = GemmVariant::Tiled;
        else if (val == "auto")
            impl->gemm.reset();
        else
            warn("GNNMARK_OP_VARIANT: unknown gemm variant '%s'",
                 val.c_str());
    } else if (op == "spmm") {
        if (val == "scalar")
            impl->spmmCsr = SpmmVariant::CsrScalar;
        else if (val == "vector")
            impl->spmmCsr = SpmmVariant::CsrVector;
        else if (val == "auto")
            impl->spmmCsr.reset();
        else
            warn("GNNMARK_OP_VARIANT: unknown spmm variant '%s'",
                 val.c_str());
    } else {
        warn("GNNMARK_OP_VARIANT: unknown op '%s'", op.c_str());
    }
}

/** Seeded dense probe operand (values in [-1, 1), `zero_frac` zeros). */
std::vector<float>
probeDense(Rng &rng, int64_t elems, double zero_frac)
{
    std::vector<float> v(elems);
    for (auto &x : v) {
        x = rng.bernoulli(zero_frac) ? 0.0f
                                     : rng.uniform(-1.0f, 1.0f);
    }
    return v;
}

/** Seeded sparse probe matrix. */
CsrMatrix
probeCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(static_cast<int32_t>(r),
                                     static_cast<int32_t>(c),
                                     rng.uniform(-1.0f, 1.0f));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

} // namespace

Dispatch::Dispatch() : impl_(new Impl)
{
    reloadEnv();
}

Dispatch &
Dispatch::instance()
{
    static Dispatch d;
    return d;
}

void
Dispatch::reloadEnv()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    OverridePins pins;
    if (const char *env = std::getenv("GNNMARK_OP_VARIANT")) {
        std::string spec(env);
        size_t pos = 0;
        while (pos <= spec.size()) {
            size_t comma = spec.find(',', pos);
            if (comma == std::string::npos)
                comma = spec.size();
            if (comma > pos)
                applyOverrideClause(spec.substr(pos, comma - pos),
                                    &pins);
            pos = comma + 1;
        }
    }
    impl_->gemmOverride = pins.gemm;
    impl_->spmmCsrOverride = pins.spmmCsr;
    impl_->measureMode = false;
    if (const char *env = std::getenv("GNNMARK_OP_CALIBRATE")) {
        if (std::strcmp(env, "measure") == 0)
            impl_->measureMode = true;
        else if (std::strcmp(env, "model") != 0)
            warn("GNNMARK_OP_CALIBRATE: unknown mode '%s' "
                 "(want model|measure)", env);
    }
}

void
Dispatch::ensureCalibrated()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->calibrated)
        return;
    const auto t0 = std::chrono::steady_clock::now();
    Rng rng(0x05ca1ab1ed15ULL); // fixed probe seed

    // GEMM probe: odd n exercises the strip tail, half-zero A
    // exercises the skip path. Both variants must agree bitwise.
    {
        const int64_t m = 33, n = 40, k = 48;
        const std::vector<float> a = probeDense(rng, m * k, 0.5);
        const std::vector<float> b = probeDense(rng, k * n, 0.0);
        std::vector<float> c_naive(m * n, 0.0f);
        std::vector<float> c_tiled(m * n, 0.0f);
        double ms_naive = 0.0, ms_tiled = 0.0;
        {
            const auto s = std::chrono::steady_clock::now();
            kern::gemmNaive(a.data(), b.data(), c_naive.data(), m, n,
                            k);
            ms_naive = wallMs(s);
        }
        {
            const auto s = std::chrono::steady_clock::now();
            kern::gemmTiled(a.data(), b.data(), c_tiled.data(), m, n,
                            k);
            ms_tiled = wallMs(s);
        }
        GNN_ASSERT(std::memcmp(c_naive.data(), c_tiled.data(),
                               c_naive.size() * sizeof(float)) == 0,
                   "calibration: tiled GEMM diverged bitwise from "
                   "naive");
        if (impl_->measureMode)
            impl_->measuredPrefersNaiveGemm = ms_naive < ms_tiled;
    }

    // SpMM probe across every format and both CSR flavours.
    {
        const int64_t rows = 96, cols = 80, f = 40;
        const CsrMatrix csr = probeCsr(rng, rows, cols, 0.1);
        const CooMatrix coo = cooFromCsr(csr);
        const BlockedEllMatrix bell = bellFromCsr(csr);
        const std::vector<float> b = probeDense(rng, cols * f, 0.0);
        std::vector<float> c_scalar(rows * f, 0.0f);
        std::vector<float> c_vector(rows * f, 0.0f);
        std::vector<float> c_coo(rows * f, 0.0f);
        std::vector<float> c_bell(rows * f, 0.0f);
        double ms_scalar = 0.0, ms_vector = 0.0;
        {
            const auto s = std::chrono::steady_clock::now();
            kern::spmmCsrScalar(csr, b.data(), c_scalar.data(), f);
            ms_scalar = wallMs(s);
        }
        {
            const auto s = std::chrono::steady_clock::now();
            kern::spmmCsrVector(csr, b.data(), c_vector.data(), f);
            ms_vector = wallMs(s);
        }
        kern::spmmCoo(coo, b.data(), c_coo.data(), f);
        kern::spmmBell(bell, b.data(), c_bell.data(), f);
        const size_t bytes = c_scalar.size() * sizeof(float);
        GNN_ASSERT(std::memcmp(c_scalar.data(), c_vector.data(),
                               bytes) == 0,
                   "calibration: vectorized SpMM diverged bitwise "
                   "from scalar");
        GNN_ASSERT(std::memcmp(c_scalar.data(), c_coo.data(), bytes) ==
                       0,
                   "calibration: COO SpMM diverged bitwise from CSR");
        GNN_ASSERT(std::memcmp(c_scalar.data(), c_bell.data(),
                               bytes) == 0,
                   "calibration: blocked-ELL SpMM diverged bitwise "
                   "from CSR");
        if (impl_->measureMode)
            impl_->measuredPrefersScalarSpmm = ms_scalar < ms_vector;
    }

    impl_->calibMs = wallMs(t0);
    impl_->calibrated = true;
    if (impl_->metricsEnabled.load(std::memory_order_relaxed)) {
        obs::Metrics::instance().add("ops.calib.probes", 2.0);
        obs::Metrics::instance().setGauge("ops.calib.ms",
                                          impl_->calibMs);
    }
}

GemmVariant
Dispatch::chooseGemm(int64_t m, int64_t n, int64_t k,
                     double a_zero_frac)
{
    ensureCalibrated();
    GemmVariant v;
    if (impl_->gemmOverride) {
        v = *impl_->gemmOverride;
    } else if (impl_->measureMode && impl_->measuredPrefersNaiveGemm) {
        v = GemmVariant::Naive;
    } else if (m >= 4 && n >= 16 && k >= 4 && a_zero_frac <= 0.5) {
        // Register tiling amortises C traffic over K; once A is
        // mostly zeros the naive loop's whole-row skip wins instead.
        v = GemmVariant::Tiled;
    } else {
        v = GemmVariant::Naive;
    }
    auto &ctr = v == GemmVariant::Tiled ? impl_->gemmTiled
                                        : impl_->gemmNaive;
    ctr.fetch_add(1, std::memory_order_relaxed);
    if (impl_->metricsEnabled.load(std::memory_order_relaxed)) {
        obs::Metrics::instance().add(
            std::string("ops.variant.gemm_") + gemmVariantName(v));
    }
    return v;
}

SpmmVariant
Dispatch::chooseSpmm(SparseFormat format, int64_t m, int64_t f,
                     int64_t nnz)
{
    ensureCalibrated();
    SpmmVariant v;
    switch (format) {
      case SparseFormat::Coo:
        v = SpmmVariant::Coo;
        break;
      case SparseFormat::BlockedEll:
        v = SpmmVariant::Bell;
        break;
      case SparseFormat::Csr:
      default:
        if (impl_->spmmCsrOverride) {
            v = *impl_->spmmCsrOverride;
        } else if (impl_->measureMode &&
                   impl_->measuredPrefersScalarSpmm) {
            v = SpmmVariant::CsrScalar;
        } else if (f >= 16 && nnz > 0 && m > 0) {
            // Full register strips available; below that the strip
            // tail dominates and the scalar loop is simpler/faster.
            v = SpmmVariant::CsrVector;
        } else {
            v = SpmmVariant::CsrScalar;
        }
        break;
    }
    switch (v) {
      case SpmmVariant::CsrScalar:
        impl_->spmmCsrScalar.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpmmVariant::CsrVector:
        impl_->spmmCsrVector.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpmmVariant::Coo:
        impl_->spmmCoo.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpmmVariant::Bell:
        impl_->spmmBell.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (impl_->metricsEnabled.load(std::memory_order_relaxed)) {
        obs::Metrics::instance().add(
            std::string("ops.variant.spmm_") + spmmVariantName(v));
    }
    return v;
}

void
Dispatch::setMetricsEnabled(bool on)
{
    impl_->metricsEnabled.store(on, std::memory_order_relaxed);
}

bool
Dispatch::metricsEnabled() const
{
    return impl_->metricsEnabled.load(std::memory_order_relaxed);
}

DispatchStats
Dispatch::stats() const
{
    DispatchStats s;
    s.gemmNaive = impl_->gemmNaive.load(std::memory_order_relaxed);
    s.gemmTiled = impl_->gemmTiled.load(std::memory_order_relaxed);
    s.spmmCsrScalar =
        impl_->spmmCsrScalar.load(std::memory_order_relaxed);
    s.spmmCsrVector =
        impl_->spmmCsrVector.load(std::memory_order_relaxed);
    s.spmmCoo = impl_->spmmCoo.load(std::memory_order_relaxed);
    s.spmmBell = impl_->spmmBell.load(std::memory_order_relaxed);
    s.simd = kern::simdActive();
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        s.calibrated = impl_->calibrated;
        s.calibMs = impl_->calibMs;
        s.mode = impl_->measureMode ? "measure" : "model";
    }
    return s;
}

void
Dispatch::resetStats()
{
    impl_->gemmNaive.store(0, std::memory_order_relaxed);
    impl_->gemmTiled.store(0, std::memory_order_relaxed);
    impl_->spmmCsrScalar.store(0, std::memory_order_relaxed);
    impl_->spmmCsrVector.store(0, std::memory_order_relaxed);
    impl_->spmmCoo.store(0, std::memory_order_relaxed);
    impl_->spmmBell.store(0, std::memory_order_relaxed);
}

double
Dispatch::sampledZeroFraction(const float *data, int64_t count)
{
    if (count <= 0)
        return 0.0;
    const int64_t probes = std::min<int64_t>(count, 4096);
    const int64_t stride = count / probes;
    int64_t zeros = 0;
    for (int64_t i = 0; i < probes; ++i) {
        if (data[i * stride] == 0.0f)
            ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(probes);
}

} // namespace ops
} // namespace gnnmark
