/**
 * @file
 * Sorting operators. GNN frameworks sort constantly — neighbour lists,
 * batching orders, unique-node extraction for sampled subgraphs — and
 * the paper shows sorting taking up to 20.7% of PinSAGE's time. The
 * device kernels model a 4-pass LSD radix sort (histogram + scatter
 * per pass), the algorithm used by CUB/Thrust under PyTorch.
 */

#ifndef GNNMARK_OPS_SORT_HH
#define GNNMARK_OPS_SORT_HH

#include <cstdint>
#include <vector>

namespace gnnmark {
namespace ops {

/** Sort keys ascending in place (non-negative int32 keys). */
void sortKeys(std::vector<int32_t> &keys);

/**
 * Sort (key, value) pairs ascending by key, in place, stably.
 * Both vectors must have the same length.
 */
void sortKeyValue(std::vector<int32_t> &keys, std::vector<int32_t> &values);

/** Sorted deduplication; returns the unique keys ascending. */
std::vector<int32_t> sortedUnique(std::vector<int32_t> keys);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_SORT_HH
