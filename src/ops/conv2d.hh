/**
 * @file
 * 2-D convolution (NCHW), used by the spatio-temporal blocks of STGCN.
 * Forward plus the two backward operators (input and weight grads).
 */

#ifndef GNNMARK_OPS_CONV2D_HH
#define GNNMARK_OPS_CONV2D_HH

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/**
 * Convolve input [N, C, H, W] with weight [K, C, R, S]; zero padding
 * `pad` on both spatial axes, stride 1. Returns [N, K, OH, OW] where
 * OH = H + 2*pad - R + 1 and OW = W + 2*pad - S + 1.
 */
Tensor conv2d(const Tensor &input, const Tensor &weight, int pad = 0);

/** Gradient wrt the input; grad_out is [N, K, OH, OW]. */
Tensor conv2dGradInput(const Tensor &grad_out, const Tensor &weight,
                       const Tensor &input, int pad = 0);

/** Gradient wrt the weight. */
Tensor conv2dGradWeight(const Tensor &grad_out, const Tensor &input,
                        const Tensor &weight, int pad = 0);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_CONV2D_HH
