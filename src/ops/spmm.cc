#include "ops/spmm.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

Tensor
spmm(const CsrMatrix &a, const Tensor &b)
{
    GNN_SPAN("op.spmm");
    GNN_ASSERT(b.dim() == 2 && b.size(0) == a.cols,
               "spmm: A is %lldx%lld but B is %s",
               static_cast<long long>(a.rows),
               static_cast<long long>(a.cols), b.shapeString().c_str());
    const int64_t m = a.rows;
    const int64_t f = b.size(1);

    // One owner chunk per output row: bitwise identical results for
    // any thread count.
    Tensor c = Tensor::zeros({m, f});
    const float *pb = b.data();
    float *pc = c.data();
    parallel_for(0, m, 64, [&](int64_t r0, int64_t r1) {
        GNN_SPAN("op.spmm.chunk");
        for (int64_t r = r0; r < r1; ++r) {
            float *crow = pc + r * f;
            for (int32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e) {
                const float v = a.vals[e];
                const float *brow =
                    pb + static_cast<int64_t>(a.colIdx[e]) * f;
                for (int64_t j = 0; j < f; ++j)
                    crow[j] += v * brow[j];
            }
        }
    });

    if (ExecContext::device() != nullptr) {
        const int eb = deviceElemBytes();
        const int64_t fchunks = std::max<int64_t>(1, (f + 31) / 32);
        const uint64_t b_addr = b.deviceAddr();
        const uint64_t c_addr = c.deviceAddr();
        const uint64_t rp_addr = a.rowPtrAddr();
        const uint64_t ci_addr = a.colIdxAddr();
        const uint64_t v_addr = a.valsAddr();
        // Capturing raw pointers into `a` is safe: launch is synchronous.
        const int32_t *row_ptr = a.rowPtr.data();
        const int32_t *col_idx = a.colIdx.data();

        KernelDesc desc;
        desc.name = kernelName("spmm_csr", {m, f, a.nnz()});
        desc.opClass = OpClass::SpMM;
        desc.blocks = std::max<int64_t>(1, (m * fchunks + 7) / 8);
        desc.warpsPerBlock = 8;
        desc.codeBytes = 12 * 1024;
        desc.aluIlp = 2.5;
        desc.loadDepFraction = 0.6; // gathered row feeds the FMA
        desc.irregular = true;
        desc.outputRanges.emplace_back(
            c_addr, static_cast<uint64_t>(m) * f * eb);
        desc.inputRanges.emplace_back(
            b_addr, static_cast<uint64_t>(b.size(0)) * f * eb);
        desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
            const int64_t row = warp_id / fchunks;
            const int64_t chunk = warp_id % fchunks;
            if (row >= m)
                return;
            const int lanes = static_cast<int>(
                std::min<int64_t>(32, f - chunk * 32));
            // Row extent from rowPtr (two scalar loads).
            uint64_t rp = rp_addr + row * 4;
            sink.loadGlobal(&rp, 1, 8);
            sink.int32(2);
            const int32_t begin = row_ptr[row];
            const int32_t end = row_ptr[row + 1];
            int64_t done = 0;
            const int64_t nnz_row = end - begin;
            for (int32_t e = begin; e < end; ++e, ++done) {
                if (sink.full())
                    break;
                if ((e - begin) % 32 == 0) {
                    // One coalesced colIdx/vals fetch per 32 edges.
                    sink.loadCoalesced(ci_addr + e * 4, 4);
                    sink.loadCoalesced(v_addr + e * eb, eb);
                }
                // Gather the 32-wide feature slice of row colIdx[e].
                const int64_t col = col_idx[e];
                sink.loadCoalesced(
                    b_addr + (col * f + chunk * 32) * eb, eb, lanes);
                sink.fma(1);
                sink.int32(5);
            }
            if (done < nnz_row && done > 0) {
                sink.scaleRemainder(static_cast<double>(nnz_row) /
                                    static_cast<double>(done));
            }
            sink.storeCoalesced(c_addr + (row * f + chunk * 32) * eb, eb,
                                lanes);
            sink.misc(1);
        };
        emitKernel(desc);
    }
    return c;
}

} // namespace ops
} // namespace gnnmark
