#include "ops/spmm.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/span.hh"
#include "ops/cpu_kernels.hh"
#include "ops/dispatch.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/**
 * The CSR SpMM footprint the paper characterises: one warp per (row,
 * 32-feature chunk), gathering B rows by column index. Emitted for
 * CSR storage whatever host variant ran, so existing workload
 * baselines are untouched by dispatch decisions.
 */
void
emitSpmmCsrKernel(const CsrMatrix &a, const Tensor &b, const Tensor &c)
{
    if (ExecContext::device() == nullptr)
        return;
    const int64_t m = a.rows;
    const int64_t f = b.size(1);
    const int eb = deviceElemBytes();
    const int64_t fchunks = std::max<int64_t>(1, (f + 31) / 32);
    const uint64_t b_addr = b.deviceAddr();
    const uint64_t c_addr = c.deviceAddr();
    const uint64_t rp_addr = a.rowPtrAddr();
    const uint64_t ci_addr = a.colIdxAddr();
    const uint64_t v_addr = a.valsAddr();
    // Capturing raw pointers into `a` is safe: launch is synchronous.
    const int32_t *row_ptr = a.rowPtr.data();
    const int32_t *col_idx = a.colIdx.data();

    KernelDesc desc;
    desc.name = kernelName("spmm_csr", {m, f, a.nnz()});
    desc.opClass = OpClass::SpMM;
    desc.blocks = std::max<int64_t>(1, (m * fchunks + 7) / 8);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 12 * 1024;
    desc.aluIlp = 2.5;
    desc.loadDepFraction = 0.6; // gathered row feeds the FMA
    desc.irregular = true;
    desc.outputRanges.emplace_back(
        c_addr, static_cast<uint64_t>(m) * f * eb);
    desc.inputRanges.emplace_back(
        b_addr, static_cast<uint64_t>(b.size(0)) * f * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t row = warp_id / fchunks;
        const int64_t chunk = warp_id % fchunks;
        if (row >= m)
            return;
        const int lanes = static_cast<int>(
            std::min<int64_t>(32, f - chunk * 32));
        // Row extent from rowPtr (two scalar loads).
        uint64_t rp = rp_addr + row * 4;
        sink.loadGlobal(&rp, 1, 8);
        sink.int32(2);
        const int32_t begin = row_ptr[row];
        const int32_t end = row_ptr[row + 1];
        int64_t done = 0;
        const int64_t nnz_row = end - begin;
        for (int32_t e = begin; e < end; ++e, ++done) {
            if (sink.full())
                break;
            if ((e - begin) % 32 == 0) {
                // One coalesced colIdx/vals fetch per 32 edges.
                sink.loadCoalesced(ci_addr + e * 4, 4);
                sink.loadCoalesced(v_addr + e * eb, eb);
            }
            // Gather the 32-wide feature slice of row colIdx[e].
            const int64_t col = col_idx[e];
            sink.loadCoalesced(
                b_addr + (col * f + chunk * 32) * eb, eb, lanes);
            sink.fma(1);
            sink.int32(5);
        }
        if (done < nnz_row && done > 0) {
            sink.scaleRemainder(static_cast<double>(nnz_row) /
                                static_cast<double>(done));
        }
        sink.storeCoalesced(c_addr + (row * f + chunk * 32) * eb, eb,
                            lanes);
        sink.misc(1);
    };
    emitKernel(desc);
}

/**
 * COO footprint: edge-parallel, one warp per (32-edge group,
 * 32-feature chunk). Every edge scatters into its output row with a
 * global atomic — the contention cost that makes COO the worst GPU
 * format for power-law graphs despite its simplicity.
 */
void
emitSpmmCooKernel(const CooMatrix &a, const Tensor &b, const Tensor &c)
{
    if (ExecContext::device() == nullptr)
        return;
    const int64_t m = a.rows;
    const int64_t f = b.size(1);
    const int64_t nnz = a.nnz();
    const int eb = deviceElemBytes();
    const int64_t fchunks = std::max<int64_t>(1, (f + 31) / 32);
    const int64_t egroups = std::max<int64_t>(1, (nnz + 31) / 32);
    const uint64_t b_addr = b.deviceAddr();
    const uint64_t c_addr = c.deviceAddr();
    const uint64_t ri_addr = a.rowIdxAddr();
    const uint64_t ci_addr = a.colIdxAddr();
    const uint64_t v_addr = a.valsAddr();
    const int32_t *row_idx = a.rowIdx.data();
    const int32_t *col_idx = a.colIdx.data();

    KernelDesc desc;
    desc.name = kernelName("spmm_coo", {m, f, nnz});
    desc.opClass = OpClass::SpMM;
    desc.blocks = std::max<int64_t>(1, (egroups * fchunks + 7) / 8);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 10 * 1024;
    desc.aluIlp = 2.0;
    desc.loadDepFraction = 0.7; // gather feeds the atomic directly
    desc.irregular = true;
    desc.outputRanges.emplace_back(
        c_addr, static_cast<uint64_t>(m) * f * eb);
    desc.inputRanges.emplace_back(
        b_addr, static_cast<uint64_t>(b.size(0)) * f * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t group = warp_id / fchunks;
        const int64_t chunk = warp_id % fchunks;
        if (group >= egroups)
            return;
        const int lanes = static_cast<int>(
            std::min<int64_t>(32, f - chunk * 32));
        const int64_t e0 = group * 32;
        const int64_t e1 = std::min<int64_t>(nnz, e0 + 32);
        // One coalesced fetch of the group's triples.
        sink.loadCoalesced(ri_addr + e0 * 4, 4);
        sink.loadCoalesced(ci_addr + e0 * 4, 4);
        sink.loadCoalesced(v_addr + e0 * eb, eb);
        sink.int32(6);
        int64_t done = 0;
        for (int64_t e = e0; e < e1; ++e, ++done) {
            if (sink.full())
                break;
            const int64_t col = col_idx[e];
            const int64_t row = row_idx[e];
            sink.loadCoalesced(
                b_addr + (col * f + chunk * 32) * eb, eb, lanes);
            sink.fma(1);
            // Scatter: feature-strip atomics into the output row.
            uint64_t addrs[32];
            for (int l = 0; l < lanes; ++l) {
                addrs[l] = c_addr +
                           (row * f + chunk * 32 +
                            static_cast<int64_t>(l)) *
                               eb;
            }
            sink.atomicGlobal(addrs, lanes, eb);
            sink.int32(4);
        }
        const int64_t span = e1 - e0;
        if (done < span && done > 0) {
            sink.scaleRemainder(static_cast<double>(span) /
                                static_cast<double>(done));
        }
    };
    emitKernel(desc);
}

/**
 * Blocked-ELL footprint: one warp per (row, 32-feature chunk) like
 * CSR, but sweeping the block's padded width with fully regular
 * index/value slab reads — padding waste buys back coalescing and
 * predictable control flow (irregular = false).
 */
void
emitSpmmBellKernel(const BlockedEllMatrix &a, const Tensor &b,
                   const Tensor &c)
{
    if (ExecContext::device() == nullptr)
        return;
    const int64_t m = a.rows;
    const int64_t f = b.size(1);
    const int eb = deviceElemBytes();
    const int64_t fchunks = std::max<int64_t>(1, (f + 31) / 32);
    const uint64_t b_addr = b.deviceAddr();
    const uint64_t c_addr = c.deviceAddr();
    const uint64_t rn_addr = a.rowNnzAddr();
    const uint64_t ci_addr = a.colIdxAddr();
    const uint64_t v_addr = a.valsAddr();
    const int32_t *col_idx = a.colIdx.data();
    // Copy the tiny per-block geometry so the closure is self-owned.
    const std::vector<int64_t> block_off = a.blockOff;

    KernelDesc desc;
    desc.name = kernelName("spmm_bell", {m, f, a.nnz()});
    desc.opClass = OpClass::SpMM;
    desc.blocks = std::max<int64_t>(1, (m * fchunks + 7) / 8);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 9 * 1024;
    desc.aluIlp = 2.5;
    desc.loadDepFraction = 0.45; // regular slabs prefetch well
    desc.irregular = false;
    desc.outputRanges.emplace_back(
        c_addr, static_cast<uint64_t>(m) * f * eb);
    desc.inputRanges.emplace_back(
        b_addr, static_cast<uint64_t>(b.size(0)) * f * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t row = warp_id / fchunks;
        const int64_t chunk = warp_id % fchunks;
        if (row >= m)
            return;
        const int lanes = static_cast<int>(
            std::min<int64_t>(32, f - chunk * 32));
        const int64_t br = row / BlockedEllMatrix::kBlockRows;
        const int64_t width =
            (block_off[br + 1] - block_off[br]) /
            BlockedEllMatrix::kBlockRows;
        const int64_t off =
            block_off[br] +
            (row - br * BlockedEllMatrix::kBlockRows) * width;
        uint64_t rn = rn_addr + row * 4;
        sink.loadGlobal(&rn, 1, 4);
        sink.int32(2);
        int64_t done = 0;
        // The warp sweeps the full padded width: that is the price
        // blocked-ELL pays for regularity.
        for (int64_t t = 0; t < width; ++t, ++done) {
            if (sink.full())
                break;
            if (t % 32 == 0) {
                sink.loadCoalesced(ci_addr + (off + t) * 4, 4);
                sink.loadCoalesced(v_addr + (off + t) * eb, eb);
            }
            const int64_t col = col_idx[off + t];
            sink.loadCoalesced(
                b_addr + (col * f + chunk * 32) * eb, eb, lanes);
            sink.fma(1);
            sink.int32(3);
        }
        if (done < width && done > 0) {
            sink.scaleRemainder(static_cast<double>(width) /
                                static_cast<double>(done));
        }
        sink.storeCoalesced(c_addr + (row * f + chunk * 32) * eb, eb,
                            lanes);
        sink.misc(1);
    };
    emitKernel(desc);
}

Tensor
spmmCsrImpl(const CsrMatrix &a, const Tensor &b, SpmmVariant variant)
{
    const int64_t f = b.size(1);
    Tensor c = Tensor::zeros({a.rows, f});
    if (variant == SpmmVariant::CsrVector)
        kern::spmmCsrVector(a, b.data(), c.data(), f);
    else
        kern::spmmCsrScalar(a, b.data(), c.data(), f);
    emitSpmmCsrKernel(a, b, c);
    return c;
}

} // namespace

Tensor
spmm(const SparseMatrix &a, const Tensor &b)
{
    GNN_SPAN("op.spmm");
    GNN_ASSERT(b.dim() == 2 && b.size(0) == a.cols(),
               "spmm: A is %lldx%lld but B is %s",
               static_cast<long long>(a.rows()),
               static_cast<long long>(a.cols()),
               b.shapeString().c_str());
    const int64_t f = b.size(1);
    const SpmmVariant variant = Dispatch::instance().chooseSpmm(
        a.format(), a.rows(), f, a.nnz());
    switch (a.format()) {
      case SparseFormat::Coo: {
        Tensor c = Tensor::zeros({a.rows(), f});
        kern::spmmCoo(a.coo(), b.data(), c.data(), f);
        emitSpmmCooKernel(a.coo(), b, c);
        return c;
      }
      case SparseFormat::BlockedEll: {
        Tensor c = Tensor::zeros({a.rows(), f});
        kern::spmmBell(a.bell(), b.data(), c.data(), f);
        emitSpmmBellKernel(a.bell(), b, c);
        return c;
      }
      case SparseFormat::Csr:
      default:
        return spmmCsrImpl(a.csr(), b, variant);
    }
}

Tensor
spmm(const CsrMatrix &a, const Tensor &b)
{
    GNN_SPAN("op.spmm");
    GNN_ASSERT(b.dim() == 2 && b.size(0) == a.cols,
               "spmm: A is %lldx%lld but B is %s",
               static_cast<long long>(a.rows),
               static_cast<long long>(a.cols), b.shapeString().c_str());
    const SpmmVariant variant = Dispatch::instance().chooseSpmm(
        SparseFormat::Csr, a.rows, b.size(1), a.nnz());
    return spmmCsrImpl(a, b, variant);
}

} // namespace ops
} // namespace gnnmark
