#include "ops/exec_context.hh"

namespace gnnmark {

namespace {

thread_local GpuDevice *currentDevice = nullptr;

} // namespace

GpuDevice *
ExecContext::device()
{
    return currentDevice;
}

void
ExecContext::setDevice(GpuDevice *device)
{
    currentDevice = device;
}

DeviceGuard::DeviceGuard(GpuDevice *device) : prev_(ExecContext::device())
{
    ExecContext::setDevice(device);
}

DeviceGuard::~DeviceGuard()
{
    ExecContext::setDevice(prev_);
}

} // namespace gnnmark
