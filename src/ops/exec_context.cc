#include "ops/exec_context.hh"

namespace gnnmark {

namespace {

thread_local GpuDevice *currentDevice = nullptr;

} // namespace

GpuDevice *
ExecContext::device()
{
    return currentDevice;
}

Allocator &
ExecContext::allocator()
{
    // The allocator binding lives in base (bindAllocator) so the
    // tensor layer resolves the same thread-local without a
    // dependency on ops.
    return currentAllocator();
}

RunContext
ExecContext::current()
{
    RunContext ctx;
    ctx.device = currentDevice;
    ctx.allocator = boundAllocator();
    return ctx;
}

void
ExecContext::set(const RunContext &ctx)
{
    currentDevice = ctx.device;
    bindAllocator(ctx.allocator);
}

ContextGuard::ContextGuard(GpuDevice *device) : prev_(ExecContext::current())
{
    RunContext next = prev_;
    next.device = device; // keep the enclosing allocator binding
    ExecContext::set(next);
}

ContextGuard::ContextGuard(GpuDevice *device, Allocator *allocator)
    : prev_(ExecContext::current())
{
    RunContext next;
    next.device = device;
    next.allocator = allocator;
    ExecContext::set(next);
}

ContextGuard::ContextGuard(const RunContext &ctx)
    : prev_(ExecContext::current())
{
    ExecContext::set(ctx);
}

ContextGuard::~ContextGuard()
{
    ExecContext::set(prev_);
}

} // namespace gnnmark
