#include "ops/gemm.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/cpu_kernels.hh"
#include "ops/dispatch.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/** Plain row-major transpose into an allocator-recycled workspace
 *  tensor (no kernel emitted: cuBLAS consumes transposed operands
 *  natively). Under the caching arena the workspace block is reused
 *  across iterations instead of malloc'd per call. */
Tensor
hostTranspose(const float *src, int64_t rows, int64_t cols)
{
    Tensor out = Tensor::empty({cols, rows});
    float *po = out.data();
    parallel_for(0, rows, 64, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            for (int64_t j = 0; j < cols; ++j)
                po[j * rows + i] = src[i * cols + j];
        }
    });
    return out;
}

/**
 * Emit the tiled-GEMM kernel trace: 64x64 output tiles, 8 warps per
 * block, K consumed in 32-wide steps staged through shared memory.
 */
void
emitGemmKernel(const std::string &base, int64_t m, int64_t n, int64_t k,
               uint64_t a_addr, uint64_t b_addr, uint64_t c_addr)
{
    if (ExecContext::device() == nullptr)
        return;

    const int eb = deviceElemBytes();
    const int64_t tiles_m = (m + 63) / 64;
    const int64_t tiles_n = (n + 63) / 64;
    const int64_t ksteps = std::max<int64_t>(1, (k + 31) / 32);

    // Skinny GEMMs (few output tiles, deep K) use split-K kernels, as
    // cuBLAS does: the K loop is parallelised across blocks and the
    // partial products reduced in the epilogue.
    int64_t split_k = 1;
    while (tiles_m * tiles_n * split_k < 40 &&
           ksteps / split_k >= 8) {
        split_k *= 2;
    }
    const int64_t ksteps_per_split =
        (ksteps + split_k - 1) / split_k;

    KernelDesc desc;
    desc.name = kernelName(base, {m, n, k});
    desc.opClass = OpClass::Gemm;
    desc.blocks = tiles_m * tiles_n * split_k;
    desc.warpsPerBlock = 8;
    desc.codeBytes = 32 * 1024; // heavily unrolled main loop
    desc.aluIlp = 2.5;          // software pipelined
    desc.loadDepFraction = 0.35;
    desc.outputRanges.emplace_back(
        c_addr, static_cast<uint64_t>(m) * n * eb);
    desc.inputRanges.emplace_back(
        a_addr, static_cast<uint64_t>(m) * k * eb);
    desc.inputRanges.emplace_back(
        b_addr, static_cast<uint64_t>(k) * n * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t block = (warp_id / 8) / split_k;
        const int64_t kslice = (warp_id / 8) % split_k;
        const int warp = static_cast<int>(warp_id % 8);
        const int64_t tile_i = (block / tiles_n) * 64;
        const int64_t tile_j = (block % tiles_n) * 64;
        // Kernel prologue: tile coordinates, predicates, pointer setup.
        sink.int32(48);
        sink.misc(12);
        // Partial edge tiles execute predicated-off lanes: scale the
        // useful arithmetic by the live fraction of the tile.
        const double live_rows =
            static_cast<double>(std::min<int64_t>(64, m - tile_i)) / 64.0;
        const double live_cols =
            static_cast<double>(std::min<int64_t>(64, n - tile_j)) / 64.0;
        const int live_fma = std::max(
            32, static_cast<int>(512.0 * live_rows * live_cols));

        const int64_t s_begin = kslice * ksteps_per_split;
        const int64_t s_end =
            std::min<int64_t>(ksteps, s_begin + ksteps_per_split);
        int64_t done = 0;
        for (int64_t s = s_begin; s < s_end; ++s, ++done) {
            if (sink.full())
                break;
            const int64_t k0 = s * 32;
            // Only the live K lanes of the last (padded) step do work.
            const double live_k = static_cast<double>(
                std::min<int64_t>(32, k - k0)) / 32.0;
            const int step_fma = std::max(
                16, static_cast<int>(live_fma * live_k));
            // Cooperative tile staging: this warp loads 8 rows of the
            // A tile (64x32) and 4 rows of the B tile (32x64), each
            // row a fully coalesced 32-lane access.
            for (int r = 0; r < 8; ++r) {
                int64_t row = tile_i + warp * 8 + r;
                sink.loadCoalesced(
                    a_addr + (row * k + k0) * eb, eb);
            }
            for (int r = 0; r < 4; ++r) {
                int64_t row = k0 + warp * 4 + r;
                sink.loadCoalesced(
                    b_addr + (row * n + tile_j) * eb, eb);
            }
            sink.sharedStore(12);
            sink.int32(56);
            sink.barrier();
            // Each thread computes a 4x4 register tile over 32 k's.
            sink.sharedLoad(32);
            sink.fma(step_fma);
            sink.misc(6);
        }
        const int64_t my_steps = s_end - s_begin;
        if (done < my_steps && done > 0) {
            sink.scaleRemainder(static_cast<double>(my_steps) /
                                static_cast<double>(done));
        }
        // Epilogue: write the 64x64 tile (16 outputs per thread);
        // split-K slices accumulate into the workspace atomically.
        for (int r = 0; r < 2; ++r) {
            uint64_t addr =
                c_addr + ((tile_i + warp * 8 + r) * n + tile_j) * eb;
            if (split_k > 1) {
                uint64_t addrs[32];
                for (int l = 0; l < 32; ++l)
                    addrs[l] = addr + static_cast<uint64_t>(l) * eb;
                sink.atomicGlobal(addrs, 32, eb);
            } else {
                sink.storeCoalesced(addr, eb);
            }
        }
        sink.int32(4);
    };
    emitKernel(desc);
}

} // namespace

Tensor
gemm(const Tensor &a, const Tensor &b, GemmOpts opts)
{
    GNN_SPAN("op.gemm");
    GNN_ASSERT(a.dim() == 2 && b.dim() == 2,
               "gemm needs 2-d operands, got %s and %s",
               a.shapeString().c_str(), b.shapeString().c_str());
    const int64_t m = opts.trans_a ? a.size(1) : a.size(0);
    const int64_t ka = opts.trans_a ? a.size(0) : a.size(1);
    const int64_t kb = opts.trans_b ? b.size(1) : b.size(0);
    const int64_t n = opts.trans_b ? b.size(0) : b.size(1);
    GNN_ASSERT(ka == kb, "gemm inner-dimension mismatch: %lld vs %lld",
               static_cast<long long>(ka), static_cast<long long>(kb));
    const int64_t k = ka;

    // Normalise to row-major [M,K] x [K,N] on the host.
    Tensor at, bt;
    const float *pa = a.data();
    const float *pb = b.data();
    uint64_t a_addr = a.deviceAddr();
    uint64_t b_addr = b.deviceAddr();
    if (opts.trans_a) {
        at = hostTranspose(a.data(), a.size(0), a.size(1));
        pa = at.data();
        a_addr = at.deviceAddr();
    }
    if (opts.trans_b) {
        bt = hostTranspose(b.data(), b.size(0), b.size(1));
        pb = bt.data();
        b_addr = bt.deviceAddr();
    }

    // Pick the host variant from the shape and the sampled sparsity
    // of the normalised A; every variant is bitwise-equal (see
    // ops/cpu_kernels.hh), and each output row has exactly one
    // writer, so the result is identical for any thread count.
    Tensor c = Tensor::zeros({m, n});
    const GemmVariant variant = Dispatch::instance().chooseGemm(
        m, n, k, Dispatch::sampledZeroFraction(pa, m * k));
    if (variant == GemmVariant::Tiled)
        kern::gemmTiled(pa, pb, c.data(), m, n, k);
    else
        kern::gemmNaive(pa, pb, c.data(), m, n, k);

    emitGemmKernel("gemm", m, n, k, a_addr, b_addr, c.deviceAddr());
    return c;
}

Tensor
gemm(const Tensor &a, const Tensor &b, bool transpose_a,
     bool transpose_b)
{
    return gemm(a, b,
                GemmOpts{.trans_a = transpose_a,
                         .trans_b = transpose_b});
}

Tensor
gemv(const Tensor &a, const Tensor &x)
{
    GNN_SPAN("op.gemv");
    GNN_ASSERT(a.dim() == 2 && x.dim() == 1 && a.size(1) == x.size(0),
               "gemv: bad shapes %s, %s", a.shapeString().c_str(),
               x.shapeString().c_str());
    const int64_t m = a.size(0);
    const int64_t k = a.size(1);

    Tensor y = Tensor::empty({m});
    const float *pa = a.data();
    const float *px = x.data();
    float *py = y.data();
    parallel_for(0, m, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += pa[i * k + kk] * px[kk];
            py[i] = acc;
        }
    });

    if (ExecContext::device() != nullptr) {
        const int eb = deviceElemBytes();
        const uint64_t a_addr = a.deviceAddr();
        const uint64_t x_addr = x.deviceAddr();
        const uint64_t y_addr = y.deviceAddr();
        const int64_t kchunks = std::max<int64_t>(1, (k + 31) / 32);

        KernelDesc desc;
        desc.name = kernelName("gemv", {m, k});
        desc.opClass = OpClass::Gemv;
        desc.blocks = std::max<int64_t>(1, (m + 7) / 8);
        desc.warpsPerBlock = 8;
        desc.codeBytes = 6 * 1024;
        desc.aluIlp = 3.0;
        desc.loadDepFraction = 0.5;
        desc.outputRanges.emplace_back(
            y_addr, static_cast<uint64_t>(m) * eb);
        desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
            const int64_t row = warp_id; // one warp per output row
            if (row >= m)
                return;
            int64_t done = 0;
            for (int64_t ck = 0; ck < kchunks; ++ck, ++done) {
                if (sink.full())
                    break;
                sink.loadCoalesced(a_addr + (row * k + ck * 32) * eb, eb);
                sink.loadCoalesced(x_addr + ck * 32 * eb, eb);
                sink.fma(1);
                sink.int32(1);
            }
            if (done < kchunks && done > 0) {
                sink.scaleRemainder(static_cast<double>(kchunks) /
                                    static_cast<double>(done));
            }
            // Warp tree-reduction of the partial sums.
            sink.sharedLoad(5);
            sink.fp32(5);
            uint64_t addr = y_addr + row * eb;
            sink.storeGlobal(&addr, 1, eb);
        };
        emitKernel(desc);
    }
    return y;
}

} // namespace ops
} // namespace gnnmark
