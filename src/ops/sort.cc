#include "ops/sort.hh"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "base/allocator.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

constexpr int kRadixBits = 8;
constexpr int kBuckets = 1 << kRadixBits;
constexpr int kPasses = 32 / kRadixBits;

/** Emit one radix-pass histogram kernel: coalesced key reads plus
 *  shared-memory bucket counting. */
void
emitHistogram(int64_t n, uint64_t key_addr, int pass)
{
    if (ExecContext::device() == nullptr || n == 0)
        return;
    FlatGrid grid = flatGrid(n);
    const int64_t total_threads = grid.totalThreads();
    const int ept = grid.elemsPerThread;

    KernelDesc desc;
    desc.name = kernelName("radix_histogram", {n});
    desc.opClass = OpClass::Sort;
    desc.blocks = grid.blocks;
    desc.warpsPerBlock = grid.warpsPerBlock;
    desc.codeBytes = 10 * 1024;
    desc.aluIlp = 3.0;
    desc.loadDepFraction = 0.6;
    (void)pass;
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        for (int c = 0; c < ept; ++c) {
            int64_t first = c * total_threads + warp_id * 32;
            if (first >= n)
                break;
            int lanes =
                static_cast<int>(std::min<int64_t>(32, n - first));
            sink.loadCoalesced(key_addr + first * 4, 4, lanes);
            sink.int32(12);      // shift, mask, lane vote
            sink.sharedStore(1); // shared histogram bump
            sink.misc(1);
        }
        sink.barrier();
        sink.sharedLoad(8); // flush shared histogram to global
        sink.int32(8);
        sink.storeCoalesced(key_addr, 4, 8);
    };
    emitKernel(desc);
}

/**
 * Emit one radix-pass scatter kernel with the *actual* destination
 * addresses of the stable partition — the divergent writes that make
 * sorting expensive on a GPU.
 */
void
emitScatter(int64_t n, uint64_t in_addr, uint64_t out_addr,
            const std::vector<int32_t> &dest, bool with_values)
{
    if (ExecContext::device() == nullptr || n == 0)
        return;
    const int32_t *pdest = dest.data();

    KernelDesc desc;
    desc.name = kernelName(with_values ? "radix_scatter_kv"
                                       : "radix_scatter", {n});
    desc.opClass = OpClass::Sort;
    desc.blocks = std::max<int64_t>(1, (n + 255) / 256);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 24 * 1024; // rank computation is bulky
    desc.aluIlp = 2.5;
    desc.loadDepFraction = 0.6;
    desc.irregular = true;
    desc.outputRanges.emplace_back(out_addr,
                                   static_cast<uint64_t>(n) * 4);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t first = warp_id * 32;
        if (first >= n)
            return;
        const int lanes =
            static_cast<int>(std::min<int64_t>(32, n - first));
        sink.loadCoalesced(in_addr + first * 4, 4, lanes);
        sink.int32(24); // digit extract + warp-scan rank
        sink.sharedLoad(4);
        sink.sharedStore(2);
        uint64_t addrs[32];
        for (int l = 0; l < lanes; ++l) {
            addrs[l] = out_addr +
                       static_cast<int64_t>(pdest[first + l]) * 4;
        }
        sink.storeGlobal(addrs, lanes, 4);
        if (with_values) {
            sink.loadCoalesced(in_addr + first * 4, 4, lanes);
            sink.storeGlobal(addrs, lanes, 4);
        }
        sink.misc(2);
    };
    emitKernel(desc);
}

void
radixSort(std::vector<int32_t> &keys, std::vector<int32_t> *values)
{
    GNN_SPAN("op.radix_sort");
    const int64_t n = static_cast<int64_t>(keys.size());
    if (n <= 1)
        return;
    for (int32_t k : keys) {
        GNN_ASSERT(k >= 0, "radix sort requires non-negative keys, got %d",
                   k);
    }

    std::vector<int32_t> key_buf(n), val_buf(values != nullptr ? n : 0);
    std::vector<int32_t> dest(n);

    // Ping-pong device mappings for the key arrays; swapped alongside
    // the host vectors so emitted addresses track the logical buffers.
    DeviceSpan keys_span(static_cast<size_t>(n) * sizeof(int32_t));
    DeviceSpan buf_span(static_cast<size_t>(n) * sizeof(int32_t));

    // Chunk layout is a pure function of n, so every pass below is an
    // exact integer computation independent of the worker count.
    constexpr int64_t kGrain = 1 << 14;
    const int64_t chunks = (n + kGrain - 1) / kGrain;
    std::vector<std::array<int64_t, kBuckets>> chunk_counts(
        static_cast<size_t>(chunks));

    for (int pass = 0; pass < kPasses; ++pass) {
        const int shift = pass * kRadixBits;

        // Per-chunk histograms.
        parallel_for(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            auto &c = chunk_counts[static_cast<size_t>(i0 / kGrain)];
            c.fill(0);
            for (int64_t i = i0; i < i1; ++i)
                ++c[(keys[i] >> shift) & (kBuckets - 1)];
        });

        // Serial scan: bucket bases across all chunks, then the running
        // per-bucket cursor each chunk starts from. Scanning chunks in
        // ascending order keeps the partition stable.
        std::array<int64_t, kBuckets> totals{};
        for (const auto &c : chunk_counts) {
            for (int b = 0; b < kBuckets; ++b)
                totals[b] += c[b];
        }
        std::vector<std::array<int64_t, kBuckets>> chunk_offsets(
            static_cast<size_t>(chunks));
        std::array<int64_t, kBuckets> next{};
        int64_t running = 0;
        for (int b = 0; b < kBuckets; ++b) {
            next[b] = running;
            running += totals[b];
        }
        for (int64_t c = 0; c < chunks; ++c) {
            chunk_offsets[static_cast<size_t>(c)] = next;
            for (int b = 0; b < kBuckets; ++b)
                next[b] += chunk_counts[static_cast<size_t>(c)][b];
        }

        // Parallel rank assignment: each chunk walks its own cursor copy.
        parallel_for(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            std::array<int64_t, kBuckets> offs =
                chunk_offsets[static_cast<size_t>(i0 / kGrain)];
            for (int64_t i = i0; i < i1; ++i) {
                const int b = (keys[i] >> shift) & (kBuckets - 1);
                dest[i] = static_cast<int32_t>(offs[b]++);
            }
        });

        emitHistogram(n, keys_span.addr(), pass);
        emitScatter(n, keys_span.addr(), buf_span.addr(), dest,
                    values != nullptr);

        // dest is a permutation, so the scatter writes never collide.
        parallel_for(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i)
                key_buf[dest[i]] = keys[i];
        });
        keys.swap(key_buf);
        std::swap(keys_span, buf_span);
        if (values != nullptr) {
            parallel_for(0, n, kGrain, [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i)
                    val_buf[dest[i]] = (*values)[i];
            });
            values->swap(val_buf);
        }
    }
}

} // namespace

void
sortKeys(std::vector<int32_t> &keys)
{
    radixSort(keys, nullptr);
}

void
sortKeyValue(std::vector<int32_t> &keys, std::vector<int32_t> &values)
{
    GNN_ASSERT(keys.size() == values.size(),
               "sortKeyValue: %zu keys vs %zu values", keys.size(),
               values.size());
    radixSort(keys, &values);
}

std::vector<int32_t>
sortedUnique(std::vector<int32_t> keys)
{
    sortKeys(keys);
    const int64_t n = static_cast<int64_t>(keys.size());
    std::vector<int32_t> out;
    out.reserve(keys.size());
    for (int64_t i = 0; i < n; ++i) {
        if (i == 0 || keys[i] != keys[i - 1])
            out.push_back(keys[i]);
    }
    // Adjacent-difference flagging + compaction kernel.
    if (ExecContext::device() != nullptr && n > 0) {
        DeviceSpan keys_span(keys.size() * sizeof(int32_t));
        DeviceSpan out_span(out.size() * sizeof(int32_t));
        ElementwiseSpec spec;
        spec.name = "unique_flags";
        spec.elems = n;
        spec.inAddrs = {keys_span.addr()};
        spec.outAddrs = {out_span.addr()};
        spec.fp32PerElem = 0;
        spec.int32PerElem = 5;
        spec.opClass = OpClass::Other;
        emitElementwise(spec);
    }
    return out;
}

} // namespace ops
} // namespace gnnmark
