/**
 * @file
 * Dense matrix multiply operators (GEMM / GEMV), the workhorses of the
 * update (MLP) phase of GNN training.
 */

#ifndef GNNMARK_OPS_GEMM_HH
#define GNNMARK_OPS_GEMM_HH

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/** Transpose options for ops::gemm (designated-initialiser friendly:
 *  `gemm(a, b, {.trans_b = true})`). */
struct GemmOpts
{
    bool trans_a = false;
    bool trans_b = false;
};

/**
 * C = op(A) * op(B) where op transposes when the corresponding
 * GemmOpts flag is set. Shapes: op(A) is [M, K], op(B) is [K, N];
 * returns [M, N]. The host kernel (naive vs. register-tiled) is
 * picked per call by ops::Dispatch from the operand shape and the
 * sampled sparsity of op(A); all variants are bitwise-equal and the
 * simulated kernel (cuBLAS-style 64x64 tiles, split-K for skinny
 * shapes) is the same whichever host variant ran.
 */
Tensor gemm(const Tensor &a, const Tensor &b, GemmOpts opts = {});

/**
 * @deprecated Bool-flag entry point kept for one release; use the
 * GemmOpts overload. (`transpose_a` has no default so `gemm(a, b)`
 * resolves uniquely to the new surface.)
 */
[[deprecated("use ops::gemm(a, b, GemmOpts{...})")]]
Tensor gemm(const Tensor &a, const Tensor &b, bool transpose_a,
            bool transpose_b = false);

/** y = A * x for A [M, K], x [K]; returns [M]. */
Tensor gemv(const Tensor &a, const Tensor &x);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_GEMM_HH
