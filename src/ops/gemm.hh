/**
 * @file
 * Dense matrix multiply operators (GEMM / GEMV), the workhorses of the
 * update (MLP) phase of GNN training.
 */

#ifndef GNNMARK_OPS_GEMM_HH
#define GNNMARK_OPS_GEMM_HH

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/**
 * C = op(A) * op(B) where op transposes when the flag is set.
 * Shapes: op(A) is [M, K], op(B) is [K, N]; returns [M, N].
 */
Tensor gemm(const Tensor &a, const Tensor &b, bool transpose_a = false,
            bool transpose_b = false);

/** y = A * x for A [M, K], x [K]; returns [M]. */
Tensor gemv(const Tensor &a, const Tensor &x);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_GEMM_HH
