/**
 * @file
 * Host compute kernels behind ops::gemm / ops::spmm — the scalar
 * baselines plus the register-tiled / vectorized variants selected by
 * ops::Dispatch. Exposed as raw array kernels (no sim emission, no
 * dispatch) so bench_ext_ops and the calibration pass can time and
 * cross-check them in isolation.
 *
 * Bit-compatibility contract: for a given operand set, every variant
 * of an op produces bitwise-identical fp32 output. This holds because
 * the variants only change *where* partial sums live (registers vs.
 * memory) and *which axis* is vectorized (the independent j/feature
 * axis), never the per-output-element accumulation order, and because
 * the AVX2 paths use explicit separate mul/add intrinsics (no FMA
 * contraction). The calibration pass re-verifies this at runtime and
 * panics on divergence.
 */

#ifndef GNNMARK_OPS_CPU_KERNELS_HH
#define GNNMARK_OPS_CPU_KERNELS_HH

#include <cstdint>

#include "tensor/csr.hh"
#include "tensor/sparse.hh"

namespace gnnmark {
namespace ops {
namespace kern {

/** True when the AVX2 code paths are compiled in and the CPU has
 *  AVX2; the tiled/vector kernels silently fall back to equivalent
 *  scalar register-blocked loops otherwise. */
bool simdActive();

/**
 * @{ C = A * B for row-major A [m,k], B [k,n] into zero-initialised C
 * [m,n]. `naive` is the historical loop (memory-accumulating, with a
 * zero-skip on A elements); `tiled` holds a 4x16 register tile of C
 * across the full K loop and streams B in 16-column panels, keeping
 * the same kk-ascending per-element order and the same zero-skip.
 */
void gemmNaive(const float *a, const float *b, float *c, int64_t m,
               int64_t n, int64_t k);
void gemmTiled(const float *a, const float *b, float *c, int64_t m,
               int64_t n, int64_t k);
/** @} */

/**
 * @{ C = A * B for sparse A and row-major dense B [A.cols, f] into
 * zero-initialised C [A.rows, f]. `csrScalar` is the historical
 * edge-outer loop; `csrVector` keeps a 16-float feature strip of the
 * output row in registers across the row's edges (edge order
 * unchanged). The COO kernel walks the row-sorted entry stream with
 * per-chunk binary search; blocked-ELL walks padded slabs bounded by
 * the true per-row entry count. All four are bitwise-equal.
 */
void spmmCsrScalar(const CsrMatrix &a, const float *b, float *c,
                   int64_t f);
void spmmCsrVector(const CsrMatrix &a, const float *b, float *c,
                   int64_t f);
void spmmCoo(const CooMatrix &a, const float *b, float *c, int64_t f);
void spmmBell(const BlockedEllMatrix &a, const float *b, float *c,
              int64_t f);
/** @} */

} // namespace kern
} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_CPU_KERNELS_HH
