#include "ops/var_ops.hh"

#include <cmath>

#include "base/allocator.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "ops/batchnorm.hh"
#include "ops/conv2d.hh"
#include "ops/elementwise.hh"
#include "ops/gemm.hh"
#include "ops/index.hh"
#include "ops/kernel_common.hh"
#include "ops/reduce.hh"
#include "ops/softmax.hh"
#include "ops/spmm.hh"

namespace gnnmark {
namespace ag {

namespace {

using detail::VarNode;

/** Accumulate into parent `i` of `self` if it wants a gradient. */
void
backInto(VarNode &self, size_t i, const Tensor &g)
{
    GNN_ASSERT(i < self.parents.size(), "bad parent index %zu", i);
    auto &p = self.parents[i];
    if (p != nullptr && p->requiresGrad)
        detail::accumulateGrad(*p, g);
}

bool
wantsGrad(const VarNode &self, size_t i)
{
    return i < self.parents.size() && self.parents[i] != nullptr &&
           self.parents[i]->requiresGrad;
}

/** Filled tensor produced through an (instrumented) element-wise op. */
Tensor
filled(const std::vector<int64_t> &shape, float v)
{
    return ops::addScalar(Tensor::zeros(shape), v);
}

} // namespace

Variable
add(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        ops::add(a.value(), b.value()), {a, b}, [](VarNode &self) {
            backInto(self, 0, self.grad);
            backInto(self, 1, self.grad);
        });
}

Variable
sub(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        ops::sub(a.value(), b.value()), {a, b}, [](VarNode &self) {
            backInto(self, 0, self.grad);
            backInto(self, 1, ops::scale(self.grad, -1.0f));
        });
}

Variable
mul(const Variable &a, const Variable &b)
{
    Tensor av = a.value(), bv = b.value();
    return Variable::makeResult(
        ops::mul(av, bv), {a, b}, [av, bv](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::mul(self.grad, bv));
            if (wantsGrad(self, 1))
                backInto(self, 1, ops::mul(self.grad, av));
        });
}

Variable
div(const Variable &a, const Variable &b)
{
    Tensor av = a.value(), bv = b.value();
    Tensor y = ops::div(av, bv);
    return Variable::makeResult(
        y, {a, b}, [av, bv, y](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::div(self.grad, bv));
            if (wantsGrad(self, 1)) {
                // d/db (a/b) = -a / b^2 = -y / b
                Tensor gb = ops::scale(
                    ops::div(ops::mul(self.grad, y), bv), -1.0f);
                backInto(self, 1, gb);
            }
        });
}

Variable
scale(const Variable &a, float alpha)
{
    return Variable::makeResult(
        ops::scale(a.value(), alpha), {a}, [alpha](VarNode &self) {
            backInto(self, 0, ops::scale(self.grad, alpha));
        });
}

Variable
addScalar(const Variable &a, float alpha)
{
    return Variable::makeResult(
        ops::addScalar(a.value(), alpha), {a}, [](VarNode &self) {
            backInto(self, 0, self.grad);
        });
}

Variable
relu(const Variable &a)
{
    Tensor av = a.value();
    return Variable::makeResult(
        ops::relu(av), {a}, [av](VarNode &self) {
            backInto(self, 0, ops::reluGrad(self.grad, av));
        });
}

Variable
prelu(const Variable &a, const Variable &slope)
{
    GNN_ASSERT(slope.value().numel() == 1, "prelu slope must be scalar");
    Tensor av = a.value();
    const float s = slope.value().data()[0];
    return Variable::makeResult(
        ops::prelu(av, s), {a, slope}, [av, s](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0,
                         ops::preluGradInput(self.grad, av, s));
            if (wantsGrad(self, 1)) {
                Tensor gs = Tensor::zeros({1});
                gs(0) = ops::preluGradSlope(self.grad, av);
                backInto(self, 1, gs);
            }
        });
}

Variable
sigmoid(const Variable &a)
{
    Tensor y = ops::sigmoid(a.value());
    return Variable::makeResult(y, {a}, [y](VarNode &self) {
        backInto(self, 0, ops::sigmoidGrad(self.grad, y));
    });
}

Variable
tanh(const Variable &a)
{
    Tensor y = ops::tanh(a.value());
    return Variable::makeResult(y, {a}, [y](VarNode &self) {
        backInto(self, 0, ops::tanhGrad(self.grad, y));
    });
}

Variable
exp(const Variable &a)
{
    Tensor y = ops::exp(a.value());
    return Variable::makeResult(y, {a}, [y](VarNode &self) {
        backInto(self, 0, ops::mul(self.grad, y));
    });
}

Variable
dropout(const Variable &a, float p, Rng &rng)
{
    Tensor mask;
    Tensor y = ops::dropout(a.value(), p, rng, &mask);
    return Variable::makeResult(y, {a}, [mask](VarNode &self) {
        backInto(self, 0, ops::mul(self.grad, mask));
    });
}

Variable
gemm(const Variable &a, const Variable &b, ops::GemmOpts opts)
{
    Tensor av = a.value(), bv = b.value();
    return Variable::makeResult(
        ops::gemm(av, bv, opts), {a, b},
        [av, bv, opts](VarNode &self) {
            if (wantsGrad(self, 0)) {
                Tensor ga = opts.trans_a
                    ? ops::gemm(bv, self.grad,
                                {.trans_a = opts.trans_b,
                                 .trans_b = true})
                    : ops::gemm(self.grad, bv,
                                {.trans_b = !opts.trans_b});
                backInto(self, 0, ga);
            }
            if (wantsGrad(self, 1)) {
                Tensor gb = opts.trans_b
                    ? ops::gemm(self.grad, av,
                                {.trans_a = true,
                                 .trans_b = opts.trans_a})
                    : ops::gemm(av, self.grad,
                                {.trans_a = !opts.trans_a});
                backInto(self, 1, gb);
            }
        });
}

Variable
gemm(const Variable &a, const Variable &b, bool transpose_a,
     bool transpose_b)
{
    return gemm(a, b,
                ops::GemmOpts{.trans_a = transpose_a,
                              .trans_b = transpose_b});
}

Variable
spmm(const SparseMatrix &a, const SparseMatrix &a_t, const Variable &b)
{
    GNN_ASSERT(a.rows() == a_t.cols() && a.cols() == a_t.rows() &&
               a.nnz() == a_t.nnz(),
               "spmm: a_t is not the transpose of a");
    // The backward may run after the caller's adjacency goes out of
    // scope; SparseMatrix copies share storage, so capturing one
    // keeps it alive cheaply.
    return Variable::makeResult(
        ops::spmm(a, b.value()), {b}, [a_t](VarNode &self) {
            backInto(self, 0, ops::spmm(a_t, self.grad));
        });
}

Variable
spmm(const CsrMatrix &a, const CsrMatrix &a_t, const Variable &b)
{
    return spmm(SparseMatrix(a), SparseMatrix(a_t), b);
}

Variable
addBiasRows(const Variable &x, const Variable &bias)
{
    return Variable::makeResult(
        ops::addBiasRows(x.value(), bias.value()), {x, bias},
        [](VarNode &self) {
            backInto(self, 0, self.grad);
            if (wantsGrad(self, 1))
                backInto(self, 1, ops::reduceSumCols(self.grad));
        });
}

namespace {

Variable
rowLookup(const Variable &a, const std::vector<int32_t> &idx, bool gather)
{
    Tensor out = gather ? ops::gatherRows(a.value(), idx)
                        : ops::indexSelectRows(a.value(), idx);
    const int64_t n = a.value().size(0);
    std::vector<int32_t> idx_copy = idx;
    return Variable::makeResult(
        out, {a}, [idx_copy, n](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            Tensor ga = Tensor::zeros({n, self.value.size(1)});
            ops::scatterAddRows(ga, idx_copy, self.grad);
            backInto(self, 0, ga);
        });
}

} // namespace

Variable
indexSelectRows(const Variable &a, const std::vector<int32_t> &idx)
{
    return rowLookup(a, idx, false);
}

Variable
gatherRows(const Variable &a, const std::vector<int32_t> &idx)
{
    return rowLookup(a, idx, true);
}

Variable
scatterSumRows(const Variable &src, const std::vector<int32_t> &idx,
               int64_t num_rows)
{
    GNN_ASSERT(src.value().dim() == 2, "scatterSumRows: src must be 2-d");
    Tensor out = Tensor::zeros({num_rows, src.value().size(1)});
    ops::scatterAddRows(out, idx, src.value());
    std::vector<int32_t> idx_copy = idx;
    return Variable::makeResult(
        out, {src}, [idx_copy](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::gatherRows(self.grad, idx_copy));
        });
}

Variable
segmentSumRows(const Variable &src, const std::vector<int32_t> &offsets)
{
    const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
    Tensor sums = ops::segmentSumRows(src.value(), offsets);
    std::vector<int32_t> row_seg(src.value().size(0));
    for (int64_t s = 0; s < segs; ++s) {
        for (int32_t r = offsets[s]; r < offsets[s + 1]; ++r)
            row_seg[r] = static_cast<int32_t>(s);
    }
    return Variable::makeResult(
        sums, {src}, [row_seg](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::gatherRows(self.grad, row_seg));
        });
}

Variable
transpose2d(const Variable &a)
{
    return Variable::makeResult(
        ops::transpose2d(a.value()), {a}, [](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::transpose2d(self.grad));
        });
}

Variable
mulRowsByConst(const Variable &a, const Tensor &v)
{
    return Variable::makeResult(
        ops::mulRowsBy(a.value(), v), {a}, [v](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0, ops::mulRowsBy(self.grad, v));
        });
}

Variable
segmentMeanRows(const Variable &src, const std::vector<int32_t> &offsets)
{
    const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
    Tensor sums = ops::segmentSumRows(src.value(), offsets);

    Tensor inv_count = Tensor::zeros({segs});
    std::vector<int32_t> row_seg(src.value().size(0));
    for (int64_t s = 0; s < segs; ++s) {
        const int32_t cnt = offsets[s + 1] - offsets[s];
        inv_count(s) = cnt > 0 ? 1.0f / static_cast<float>(cnt) : 0.0f;
        for (int32_t r = offsets[s]; r < offsets[s + 1]; ++r)
            row_seg[r] = static_cast<int32_t>(s);
    }
    Tensor out = ops::mulRowsBy(sums, inv_count);
    return Variable::makeResult(
        out, {src}, [row_seg, inv_count](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            Tensor scaled = ops::mulRowsBy(self.grad, inv_count);
            backInto(self, 0, ops::gatherRows(scaled, row_seg));
        });
}

Variable
concatRows(const std::vector<Variable> &parts)
{
    std::vector<Tensor> values;
    std::vector<int64_t> sizes;
    values.reserve(parts.size());
    for (const Variable &p : parts) {
        values.push_back(p.value());
        sizes.push_back(p.value().size(0));
    }
    return Variable::makeResult(
        ops::concatRows(values), parts, [sizes](VarNode &self) {
            int64_t row = 0;
            for (size_t i = 0; i < sizes.size(); ++i) {
                if (wantsGrad(self, i)) {
                    backInto(self, i,
                             ops::sliceRows(self.grad, row,
                                            row + sizes[i]));
                }
                row += sizes[i];
            }
        });
}

Variable
concatCols(const Variable &a, const Variable &b)
{
    const int64_t fa = a.value().size(1);
    const int64_t fb = b.value().size(1);
    return Variable::makeResult(
        ops::concatCols(a.value(), b.value()), {a, b},
        [fa, fb](VarNode &self) {
            const int64_t n = self.value.size(0);
            const float *pg = self.grad.data();
            if (wantsGrad(self, 0)) {
                Tensor ga = Tensor::zeros({n, fa});
                float *pa = ga.data();
                parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                        std::copy(pg + i * (fa + fb),
                                  pg + i * (fa + fb) + fa, pa + i * fa);
                    }
                });
                // Split is another strided copy on the device.
                ElementwiseSpec spec;
                spec.name = "ew_split";
                spec.elems = n * fa;
                spec.inAddrs = {self.grad.deviceAddr()};
                spec.outAddrs = {ga.deviceAddr()};
                spec.fp32PerElem = 0;
                spec.int32PerElem = 3;
                emitElementwise(spec);
                backInto(self, 0, ga);
            }
            if (wantsGrad(self, 1)) {
                Tensor gb = Tensor::zeros({n, fb});
                float *pb = gb.data();
                parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                        std::copy(pg + i * (fa + fb) + fa,
                                  pg + (i + 1) * (fa + fb), pb + i * fb);
                    }
                });
                ElementwiseSpec spec;
                spec.name = "ew_split";
                spec.elems = n * fb;
                spec.inAddrs = {self.grad.deviceAddr()};
                spec.outAddrs = {gb.deviceAddr()};
                spec.fp32PerElem = 0;
                spec.int32PerElem = 3;
                emitElementwise(spec);
                backInto(self, 1, gb);
            }
        });
}

Variable
sliceRows(const Variable &a, int64_t begin, int64_t end)
{
    const int64_t n = a.value().size(0);
    return Variable::makeResult(
        ops::sliceRows(a.value(), begin, end), {a},
        [begin, end, n](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            Tensor ga = Tensor::zeros({n, self.value.size(1)});
            std::copy(self.grad.data(),
                      self.grad.data() + self.grad.numel(),
                      ga.data() + begin * self.value.size(1));
            (void)end;
            ElementwiseSpec spec;
            spec.name = "ew_copy";
            spec.elems = self.grad.numel();
            spec.inAddrs = {self.grad.deviceAddr()};
            spec.outAddrs = {ga.deviceAddr()};
            spec.fp32PerElem = 0;
            spec.int32PerElem = 2;
            emitElementwise(spec);
            backInto(self, 0, ga);
        });
}

Variable
sliceCols(const Variable &a, int64_t begin, int64_t end)
{
    const Tensor &av = a.value();
    GNN_ASSERT(av.dim() == 2 && begin >= 0 && begin <= end &&
               end <= av.size(1), "sliceCols: bad range [%lld, %lld)",
               static_cast<long long>(begin),
               static_cast<long long>(end));
    const int64_t n = av.size(0);
    const int64_t f = av.size(1);
    const int64_t w = end - begin;

    Tensor out = Tensor::zeros({n, w});
    const float *pa = av.data();
    float *po = out.data();
    parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            std::copy(pa + i * f + begin, pa + i * f + end, po + i * w);
        }
    });
    ElementwiseSpec spec;
    spec.name = "ew_slice_cols";
    spec.elems = out.numel();
    spec.inAddrs = {av.deviceAddr()};
    spec.outAddrs = {out.deviceAddr()};
    spec.fp32PerElem = 0;
    spec.int32PerElem = 3;
    emitElementwise(spec);

    return Variable::makeResult(
        out, {a}, [begin, n, f, w](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            Tensor ga = Tensor::zeros({n, f});
            const float *pg = self.grad.data();
            float *pga = ga.data();
            parallel_for(0, n, 128, [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                    std::copy(pg + i * w, pg + (i + 1) * w,
                              pga + i * f + begin);
                }
            });
            ElementwiseSpec bwd;
            bwd.name = "ew_slice_cols_bwd";
            bwd.elems = self.grad.numel();
            bwd.inAddrs = {self.grad.deviceAddr()};
            bwd.outAddrs = {ga.deviceAddr()};
            bwd.fp32PerElem = 0;
            bwd.int32PerElem = 3;
            emitElementwise(bwd);
            backInto(self, 0, ga);
        });
}

Variable
reshape(const Variable &a, std::vector<int64_t> shape)
{
    std::vector<int64_t> old_shape = a.value().shape();
    return Variable::makeResult(
        a.value().reshape(std::move(shape)), {a},
        [old_shape](VarNode &self) {
            backInto(self, 0, self.grad.reshape(old_shape));
        });
}

Variable
softmaxRows(const Variable &a)
{
    Tensor y = ops::softmaxRows(a.value());
    return Variable::makeResult(y, {a}, [y](VarNode &self) {
        backInto(self, 0, ops::softmaxRowsBackward(self.grad, y));
    });
}

Variable
logSoftmaxRows(const Variable &a)
{
    Tensor y = ops::logSoftmaxRows(a.value());
    return Variable::makeResult(y, {a}, [y](VarNode &self) {
        backInto(self, 0, ops::logSoftmaxRowsBackward(self.grad, y));
    });
}

Variable
meanAll(const Variable &a)
{
    const int64_t n = a.value().numel();
    Tensor out = Tensor::zeros({1});
    out(0) = ops::reduceMeanAll(a.value());
    std::vector<int64_t> shape = a.value().shape();
    return Variable::makeResult(out, {a}, [n, shape](VarNode &self) {
        const float g = self.grad(0) / static_cast<float>(n);
        backInto(self, 0, filled(shape, g));
    });
}

Variable
sumAll(const Variable &a)
{
    Tensor out = Tensor::zeros({1});
    out(0) = ops::reduceSumAll(a.value());
    std::vector<int64_t> shape = a.value().shape();
    return Variable::makeResult(out, {a}, [shape](VarNode &self) {
        backInto(self, 0, filled(shape, self.grad(0)));
    });
}

Variable
meanRows(const Variable &a)
{
    const int64_t f = a.value().size(1);
    Tensor sums = ops::reduceSumRows(a.value());
    Tensor out = ops::scale(sums, 1.0f / static_cast<float>(f));
    std::vector<int64_t> shape = a.value().shape();
    return Variable::makeResult(out, {a}, [f, shape](VarNode &self) {
        if (!wantsGrad(self, 0))
            return;
        Tensor ga = Tensor::zeros(shape);
        const float inv = 1.0f / static_cast<float>(f);
        parallel_for(0, shape[0], 128, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
                for (int64_t j = 0; j < f; ++j)
                    ga(i, j) = self.grad(i) * inv;
            }
        });
        ElementwiseSpec spec;
        spec.name = "ew_bcast_rows";
        spec.elems = ga.numel();
        spec.inAddrs = {self.grad.deviceAddr()};
        spec.outAddrs = {ga.deviceAddr()};
        spec.fp32PerElem = 1;
        spec.int32PerElem = 3;
        emitElementwise(spec);
        backInto(self, 0, ga);
    });
}

Variable
nllLoss(const Variable &log_probs, const std::vector<int32_t> &labels)
{
    const Tensor &lp = log_probs.value();
    GNN_ASSERT(lp.dim() == 2 &&
               static_cast<int64_t>(labels.size()) == lp.size(0),
               "nllLoss: %zu labels for %s", labels.size(),
               lp.shapeString().c_str());
    const int64_t n = lp.size(0);
    const int64_t f = lp.size(1);

    const double sum = parallel_reduce(
        0, n, int64_t{1} << 15, 0.0,
        [&](int64_t i0, int64_t i1) {
            double s = 0.0;
            for (int64_t i = i0; i < i1; ++i) {
                GNN_ASSERT(labels[i] >= 0 && labels[i] < f,
                           "nllLoss: label %d out of range", labels[i]);
                s -= lp(i, labels[i]);
            }
            return s;
        },
        [](double acc, double s) { return acc + s; });
    Tensor out = Tensor::zeros({1});
    out(0) = static_cast<float>(sum / static_cast<double>(n));

    // The label gather + mean shows up as a small reduction kernel.
    DeviceSpan labels_span(labels.size() * sizeof(int32_t));
    ElementwiseSpec fwd;
    fwd.name = "nll_fwd";
    fwd.elems = n;
    fwd.inAddrs = {lp.deviceAddr(), labels_span.addr()};
    fwd.outAddrs = {out.deviceAddr()};
    fwd.fp32PerElem = 1;
    fwd.int32PerElem = 3;
    fwd.opClass = OpClass::Reduction;
    emitElementwise(fwd);

    std::vector<int32_t> labels_copy = labels;
    return Variable::makeResult(
        out, {log_probs}, [labels_copy, n, f](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            const float g = self.grad(0) / static_cast<float>(n);
            Tensor ga = Tensor::zeros({n, f});
            parallel_for(0, n, 256, [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i)
                    ga(i, labels_copy[i]) = -g;
            });
            DeviceSpan labels_span(labels_copy.size() *
                                   sizeof(int32_t));
            ElementwiseSpec bwd;
            bwd.name = "nll_bwd";
            bwd.elems = n;
            bwd.inAddrs = {labels_span.addr()};
            bwd.outAddrs = {ga.deviceAddr()};
            bwd.fp32PerElem = 1;
            bwd.int32PerElem = 3;
            emitElementwise(bwd);
            backInto(self, 0, ga);
        });
}

Variable
mseLoss(const Variable &pred, const Variable &target)
{
    Variable diff = sub(pred, target);
    return meanAll(mul(diff, diff));
}

Variable
bceWithLogits(const Variable &logits, const Tensor &targets)
{
    const Tensor &x = logits.value();
    GNN_ASSERT(x.sameShape(targets), "bceWithLogits: shape mismatch");
    const int64_t n = x.numel();

    // loss_i = max(x,0) - x*y + log1p(exp(-|x|))
    const float *px = x.data();
    const float *py = targets.data();
    const double sum = parallel_reduce(
        0, n, int64_t{1} << 15, 0.0,
        [&](int64_t i0, int64_t i1) {
            double s = 0.0;
            for (int64_t i = i0; i < i1; ++i) {
                const double xv = px[i];
                s += std::max(xv, 0.0) - xv * py[i] +
                     std::log1p(std::exp(-std::abs(xv)));
            }
            return s;
        },
        [](double acc, double s) { return acc + s; });
    Tensor out = Tensor::zeros({1});
    out(0) = static_cast<float>(sum / static_cast<double>(n));

    ElementwiseSpec fwd;
    fwd.name = "bce_fwd";
    fwd.elems = n;
    fwd.inAddrs = {x.deviceAddr(), targets.deviceAddr()};
    fwd.outAddrs = {out.deviceAddr()};
    fwd.fp32PerElem = 3;
    fwd.sfuPerElem = 2;
    fwd.int32PerElem = 2;
    fwd.opClass = OpClass::Reduction;
    emitElementwise(fwd);

    Tensor y = targets;
    return Variable::makeResult(
        out, {logits}, [y, n](VarNode &self) {
            if (!wantsGrad(self, 0))
                return;
            const Tensor &x_in = self.parents[0]->value;
            Tensor s = ops::sigmoid(x_in);
            Tensor d = ops::sub(s, y);
            backInto(self, 0,
                     ops::scale(d, self.grad(0) / static_cast<float>(n)));
        });
}

Variable
conv2d(const Variable &input, const Variable &weight, int pad)
{
    Tensor iv = input.value(), wv = weight.value();
    return Variable::makeResult(
        ops::conv2d(iv, wv, pad), {input, weight},
        [iv, wv, pad](VarNode &self) {
            if (wantsGrad(self, 0))
                backInto(self, 0,
                         ops::conv2dGradInput(self.grad, wv, iv, pad));
            if (wantsGrad(self, 1))
                backInto(self, 1,
                         ops::conv2dGradWeight(self.grad, iv, wv, pad));
        });
}

Variable
batchNorm(const Variable &x, const Variable &gamma, const Variable &beta,
          float eps)
{
    auto state = std::make_shared<ops::BatchNormState>();
    Tensor gv = gamma.value();
    Tensor y = ops::batchNorm(x.value(), gv, beta.value(), eps, *state);
    return Variable::makeResult(
        y, {x, gamma, beta}, [state, gv](VarNode &self) {
            Tensor gx, ggamma, gbeta;
            ops::batchNormBackward(self.grad, gv, *state, gx, ggamma,
                                   gbeta);
            backInto(self, 0, gx);
            backInto(self, 1, ggamma);
            backInto(self, 2, gbeta);
        });
}

Variable
layerNorm(const Variable &x, const Variable &gamma, const Variable &beta,
          float eps)
{
    auto state = std::make_shared<ops::LayerNormState>();
    Tensor gv = gamma.value();
    Tensor y = ops::layerNorm(x.value(), gv, beta.value(), eps, *state);
    return Variable::makeResult(
        y, {x, gamma, beta}, [state, gv](VarNode &self) {
            Tensor gx, ggamma, gbeta;
            ops::layerNormBackward(self.grad, gv, *state, gx, ggamma,
                                   gbeta);
            backInto(self, 0, gx);
            backInto(self, 1, ggamma);
            backInto(self, 2, gbeta);
        });
}

} // namespace ag
} // namespace gnnmark
