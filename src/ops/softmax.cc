#include "ops/softmax.hh"

#include "base/logging.hh"
#include "obs/span.hh"
#include "ops/elementwise.hh"
#include "ops/reduce.hh"

namespace gnnmark {
namespace ops {

Tensor
softmaxRows(const Tensor &a)
{
    GNN_SPAN("op.softmax");
    GNN_ASSERT(a.dim() == 2, "softmaxRows needs 2-d, got %s",
               a.shapeString().c_str());
    Tensor shifted = subRowsBy(a, reduceMaxRows(a));
    Tensor e = exp(shifted);
    return divRowsBy(e, reduceSumRows(e));
}

Tensor
logSoftmaxRows(const Tensor &a)
{
    GNN_SPAN("op.log_softmax");
    GNN_ASSERT(a.dim() == 2, "logSoftmaxRows needs 2-d, got %s",
               a.shapeString().c_str());
    Tensor shifted = subRowsBy(a, reduceMaxRows(a));
    Tensor e = exp(shifted);
    Tensor lse = log(reduceSumRows(e).reshape({a.size(0), 1}));
    return subRowsBy(shifted, lse.reshape({a.size(0)}));
}

Tensor
softmaxRowsBackward(const Tensor &grad_out, const Tensor &y)
{
    GNN_SPAN("op.softmax.backward");
    Tensor gy = mul(grad_out, y);
    Tensor dot = reduceSumRows(gy);
    return mul(y, subRowsBy(grad_out, dot));
}

Tensor
logSoftmaxRowsBackward(const Tensor &grad_out, const Tensor &log_y)
{
    GNN_SPAN("op.log_softmax.backward");
    Tensor y = exp(log_y);
    Tensor sum_g = reduceSumRows(grad_out);
    return sub(grad_out, mulRowsBy(y, sum_g));
}

} // namespace ops
} // namespace gnnmark
