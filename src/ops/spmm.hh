/**
 * @file
 * Sparse-dense matrix multiply (SpMM) over CSR adjacency matrices —
 * the aggregation workhorse of GCN-style layers.
 */

#ifndef GNNMARK_OPS_SPMM_HH
#define GNNMARK_OPS_SPMM_HH

#include "tensor/csr.hh"
#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/**
 * C = A * B for CSR A [M, N] and dense B [N, F]; returns [M, F].
 * One warp processes one (row, 32-feature chunk) pair, gathering B
 * rows by column index — the access pattern that gives SpMM its poor
 * L1 locality in the paper.
 */
Tensor spmm(const CsrMatrix &a, const Tensor &b);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_SPMM_HH
