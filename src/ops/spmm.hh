/**
 * @file
 * Sparse-dense matrix multiply (SpMM) over multi-format sparse
 * adjacency matrices — the aggregation workhorse of GCN-style layers.
 */

#ifndef GNNMARK_OPS_SPMM_HH
#define GNNMARK_OPS_SPMM_HH

#include "tensor/csr.hh"
#include "tensor/sparse.hh"
#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/**
 * C = A * B for sparse A [M, N] and dense B [N, F]; returns [M, F].
 *
 * The host loop runs on the thread pool with one owner chunk per
 * output row (bitwise identical for any thread count); ops::Dispatch
 * picks the host kernel — scalar or register-strip vectorized for
 * CSR, the dedicated COO / blocked-ELL kernels otherwise — and every
 * variant produces bitwise-equal results (see ops/cpu_kernels.hh).
 *
 * The *simulated* kernel keeps the GPU mapping the paper
 * characterises: one warp per (row, 32-feature chunk), gathering B
 * rows by column index for CSR/COO — the access pattern behind
 * SpMM's poor L1 locality — while blocked-ELL trades padding waste
 * for regular slab reads.
 */
Tensor spmm(const SparseMatrix &a, const Tensor &b);

/**
 * @deprecated CSR-only entry point kept for one release; use
 * `ops::spmm(const SparseMatrix &, const Tensor &)`.
 */
[[deprecated("use ops::spmm(const SparseMatrix &, const Tensor &)")]]
Tensor spmm(const CsrMatrix &a, const Tensor &b);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_SPMM_HH
