#include "ops/batchnorm.hh"

#include <cmath>
#include <utility>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/** Emit the two batch-norm kernels: a stats pass and an apply pass. */
void
emitNormKernels(const char *base, int64_t n, int64_t f, uint64_t x_addr,
                uint64_t y_addr, int extra_passes = 0)
{
    if (ExecContext::device() == nullptr)
        return;
    const int eb = deviceElemBytes();
    const int64_t chunks = std::max<int64_t>(1, (f + 31) / 32);

    // Pass 1: per-column mean/variance (Welford over row strides).
    {
        KernelDesc desc;
        desc.name = kernelName(std::string(base) + "_stats", {n, f});
        desc.opClass = OpClass::BatchNorm;
        desc.blocks = chunks;
        desc.warpsPerBlock = 8;
        desc.codeBytes = 10 * 1024;
        desc.aluIlp = 2.0;
        desc.loadDepFraction = 0.6;
        desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
            const int64_t chunk = warp_id / 8;
            const int64_t slice = warp_id % 8;
            const int64_t rows = (n + 7) / 8;
            int64_t done = 0;
            for (int64_t r = 0; r < rows; ++r, ++done) {
                if (sink.full())
                    break;
                int64_t row = slice * rows + r;
                if (row >= n)
                    break;
                sink.loadCoalesced(x_addr + (row * f + chunk * 32) * eb,
                                   eb);
                sink.fp32(3); // running mean + m2 updates
                sink.int32(1);
            }
            if (done < rows && done > 1) {
                sink.scaleRemainder(static_cast<double>(rows) /
                                    static_cast<double>(done));
            }
            sink.sharedStore(2);
            sink.barrier();
            sink.sharedLoad(6);
            sink.fp32(6);
            sink.sfu(1); // rsqrt
            sink.storeCoalesced(y_addr + chunk * 32 * eb, eb);
        };
        emitKernel(desc);
    }

    // Pass 2 (+ optional backward passes): streaming normalise/apply.
    for (int p = 0; p <= extra_passes; ++p) {
        ElementwiseSpec spec;
        spec.name = std::string(base) + "_apply";
        spec.elems = n * f;
        spec.inAddrs = {x_addr};
        spec.outAddrs = {y_addr};
        spec.fp32PerElem = 4;
        spec.int32PerElem = 12;
        spec.opClass = OpClass::BatchNorm;
        spec.elemBytes = eb;
        emitElementwise(spec);
    }
}

void
checkNormArgs(const Tensor &x, const Tensor &gamma, const Tensor &beta,
              int64_t stat_dim, const char *name)
{
    GNN_ASSERT(x.dim() == 2, "%s: x must be 2-d, got %s", name,
               x.shapeString().c_str());
    GNN_ASSERT(gamma.dim() == 1 && gamma.size(0) == stat_dim &&
               beta.dim() == 1 && beta.size(0) == stat_dim,
               "%s: gamma/beta must be [%lld]", name,
               static_cast<long long>(stat_dim));
}

} // namespace

Tensor
batchNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps, BatchNormState &state)
{
    GNN_SPAN("op.batchnorm");
    const int64_t n = x.size(0);
    const int64_t f = x.dim() == 2 ? x.size(1) : 0;
    checkNormArgs(x, gamma, beta, f, "batchNorm");
    GNN_ASSERT(n > 0, "batchNorm over an empty batch");

    state.mean = Tensor::empty({f});
    state.invStd = Tensor::empty({f});
    state.xhat = Tensor::empty({n, f});
    Tensor y = Tensor::empty({n, f});

    const float *px = x.data();
    // Per-column stats: every column is owned by one chunk.
    parallel_for(0, f, 16, [&](int64_t j0, int64_t j1) {
        for (int64_t j = j0; j < j1; ++j) {
            double sum = 0.0, sq = 0.0;
            for (int64_t i = 0; i < n; ++i) {
                const double v = px[i * f + j];
                sum += v;
                sq += v * v;
            }
            const double mean = sum / n;
            const double var = std::max(0.0, sq / n - mean * mean);
            state.mean(j) = static_cast<float>(mean);
            state.invStd(j) =
                static_cast<float>(1.0 / std::sqrt(var + eps));
        }
    });
    parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int64_t j = 0; j < f; ++j) {
                const float xh =
                    (x(i, j) - state.mean(j)) * state.invStd(j);
                state.xhat(i, j) = xh;
                y(i, j) = gamma(j) * xh + beta(j);
            }
        }
    });
    emitNormKernels("batchnorm", n, f, x.deviceAddr(), y.deviceAddr());
    return y;
}

void
batchNormBackward(const Tensor &grad_out, const Tensor &gamma,
                  const BatchNormState &state, Tensor &grad_x,
                  Tensor &grad_gamma, Tensor &grad_beta)
{
    GNN_SPAN("op.batchnorm.backward");
    const int64_t n = state.xhat.size(0);
    const int64_t f = state.xhat.size(1);
    GNN_ASSERT(grad_out.dim() == 2 && grad_out.size(0) == n &&
               grad_out.size(1) == f, "batchNormBackward: bad grad shape");

    grad_x = Tensor::empty({n, f});
    grad_gamma = Tensor::empty({f});
    grad_beta = Tensor::empty({f});

    parallel_for(0, f, 8, [&](int64_t j0, int64_t j1) {
        for (int64_t j = j0; j < j1; ++j) {
            double sum_g = 0.0, sum_gx = 0.0;
            for (int64_t i = 0; i < n; ++i) {
                sum_g += grad_out(i, j);
                sum_gx += grad_out(i, j) * state.xhat(i, j);
            }
            grad_beta(j) = static_cast<float>(sum_g);
            grad_gamma(j) = static_cast<float>(sum_gx);
            const float inv_n = 1.0f / static_cast<float>(n);
            for (int64_t i = 0; i < n; ++i) {
                grad_x(i, j) = gamma(j) * state.invStd(j) *
                               (grad_out(i, j) -
                                static_cast<float>(sum_g) * inv_n -
                                state.xhat(i, j) *
                                    static_cast<float>(sum_gx) * inv_n);
            }
        }
    });
    emitNormKernels("batchnorm_bwd", n, f, grad_out.deviceAddr(),
                    grad_x.deviceAddr(), 1);
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps, LayerNormState &state)
{
    GNN_SPAN("op.layernorm");
    const int64_t n = x.size(0);
    const int64_t f = x.dim() == 2 ? x.size(1) : 0;
    checkNormArgs(x, gamma, beta, f, "layerNorm");
    GNN_ASSERT(f > 0, "layerNorm over empty rows");

    state.mean = Tensor::empty({n});
    state.invStd = Tensor::empty({n});
    state.xhat = Tensor::empty({n, f});
    Tensor y = Tensor::empty({n, f});

    parallel_for(0, n, 32, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            double sum = 0.0, sq = 0.0;
            for (int64_t j = 0; j < f; ++j) {
                const double v = x(i, j);
                sum += v;
                sq += v * v;
            }
            const double mean = sum / f;
            const double var = std::max(0.0, sq / f - mean * mean);
            state.mean(i) = static_cast<float>(mean);
            state.invStd(i) =
                static_cast<float>(1.0 / std::sqrt(var + eps));
            for (int64_t j = 0; j < f; ++j) {
                const float xh =
                    (x(i, j) - state.mean(i)) * state.invStd(i);
                state.xhat(i, j) = xh;
                y(i, j) = gamma(j) * xh + beta(j);
            }
        }
    });
    emitNormKernels("layernorm", n, f, x.deviceAddr(), y.deviceAddr());
    return y;
}

void
layerNormBackward(const Tensor &grad_out, const Tensor &gamma,
                  const LayerNormState &state, Tensor &grad_x,
                  Tensor &grad_gamma, Tensor &grad_beta)
{
    const int64_t n = state.xhat.size(0);
    const int64_t f = state.xhat.size(1);
    GNN_ASSERT(grad_out.dim() == 2 && grad_out.size(0) == n &&
               grad_out.size(1) == f, "layerNormBackward: bad grad shape");

    grad_x = Tensor::empty({n, f});
    grad_gamma = Tensor::empty({f});
    grad_beta = Tensor::empty({f});

    // grad_x rows are independent, but grad_gamma/grad_beta accumulate
    // across rows: give each chunk private accumulators and combine them
    // in ascending chunk order so the sum order never depends on the
    // thread count.
    using Acc = std::pair<std::vector<float>, std::vector<float>>;
    Acc sums = parallel_reduce(
        0, n, 32,
        Acc(std::vector<float>(f, 0.0f), std::vector<float>(f, 0.0f)),
        [&](int64_t i0, int64_t i1) {
            Acc local(std::vector<float>(f, 0.0f),
                      std::vector<float>(f, 0.0f));
            for (int64_t i = i0; i < i1; ++i) {
                double sum_g = 0.0, sum_gx = 0.0;
                for (int64_t j = 0; j < f; ++j) {
                    const float gg = grad_out(i, j) * gamma(j);
                    sum_g += gg;
                    sum_gx += gg * state.xhat(i, j);
                    local.first[j] += grad_out(i, j) * state.xhat(i, j);
                    local.second[j] += grad_out(i, j);
                }
                const float inv_f = 1.0f / static_cast<float>(f);
                for (int64_t j = 0; j < f; ++j) {
                    const float gg = grad_out(i, j) * gamma(j);
                    grad_x(i, j) =
                        state.invStd(i) *
                        (gg - static_cast<float>(sum_g) * inv_f -
                         state.xhat(i, j) *
                             static_cast<float>(sum_gx) * inv_f);
                }
            }
            return local;
        },
        [f](Acc acc, const Acc &local) {
            for (int64_t j = 0; j < f; ++j) {
                acc.first[j] += local.first[j];
                acc.second[j] += local.second[j];
            }
            return acc;
        });
    for (int64_t j = 0; j < f; ++j) {
        grad_gamma(j) = sums.first[j];
        grad_beta(j) = sums.second[j];
    }
    emitNormKernels("layernorm_bwd", n, f, grad_out.deviceAddr(),
                    grad_x.deviceAddr(), 1);
}

} // namespace ops
} // namespace gnnmark
