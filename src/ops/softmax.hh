/**
 * @file
 * Row-wise (log-)softmax, decomposed into the reduction + element-wise
 * kernels the profiler sees under PyTorch.
 */

#ifndef GNNMARK_OPS_SOFTMAX_HH
#define GNNMARK_OPS_SOFTMAX_HH

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/** Row-wise softmax of a [N, F] tensor. */
Tensor softmaxRows(const Tensor &a);

/** Row-wise log-softmax. */
Tensor logSoftmaxRows(const Tensor &a);

/** Backward of softmaxRows given its output y: y*(g - sum(g*y)). */
Tensor softmaxRowsBackward(const Tensor &grad_out, const Tensor &y);

/** Backward of logSoftmaxRows given its output log_y. */
Tensor logSoftmaxRowsBackward(const Tensor &grad_out, const Tensor &log_y);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_SOFTMAX_HH
