/**
 * @file
 * Runtime variant selector for the host compute kernels (the op
 * autotuning layer, ROADMAP item 4). ops::gemm / ops::spmm ask the
 * Dispatch singleton which kernel flavour to run for the operands at
 * hand; the choice is keyed on measured shape and sparsity through a
 * deterministic closed-form cost model, so a given workload always
 * picks the same variants on every run and every thread count.
 *
 * Selection contract (documented in DESIGN.md):
 *  1. `GNNMARK_OP_VARIANT` (e.g. "gemm=naive,spmm=vector") pins a
 *     variant per op and wins over everything else — the CI
 *     reproducibility escape hatch.
 *  2. Otherwise the model decides from shape/sparsity. Because every
 *     variant of an op is bitwise-equal (see cpu_kernels.hh), the
 *     choice affects host wall time only — never results, never the
 *     simulated kernel stream for existing workloads.
 *  3. A one-shot seeded calibration pass runs before the first
 *     decision: it cross-checks every variant pair for bitwise
 *     equality on fixed probe operands (panics on divergence) and
 *     warms the kernels. With `GNNMARK_OP_CALIBRATE=measure` it also
 *     times the probes and lets local measurement override the model
 *     — explicitly non-reproducible, never the default.
 */

#ifndef GNNMARK_OPS_DISPATCH_HH
#define GNNMARK_OPS_DISPATCH_HH

#include <cstdint>
#include <string>

#include "tensor/sparse.hh"

namespace gnnmark {
namespace ops {

/** Host kernel flavours for the dense matmul. */
enum class GemmVariant
{
    Naive, ///< kk-outer memory-accumulating loop with zero-skip
    Tiled, ///< 4x16 register-tiled, vectorized (see cpu_kernels.hh)
};

/** Host kernel flavours for SpMM (format picks the last two). */
enum class SpmmVariant
{
    CsrScalar, ///< edge-outer memory-accumulating loop
    CsrVector, ///< register feature strips, vectorized
    Coo,       ///< row-sorted coordinate stream
    Bell,      ///< blocked-ELL padded slabs
};

const char *gemmVariantName(GemmVariant v);
const char *spmmVariantName(SpmmVariant v);

/** Point-in-time counters for the opstats report / ops.* metrics. */
struct DispatchStats
{
    int64_t gemmNaive = 0;
    int64_t gemmTiled = 0;
    int64_t spmmCsrScalar = 0;
    int64_t spmmCsrVector = 0;
    int64_t spmmCoo = 0;
    int64_t spmmBell = 0;
    bool simd = false;       ///< AVX2 paths active on this host
    bool calibrated = false; ///< one-shot calibration has run
    double calibMs = 0.0;    ///< wall time of the calibration pass
    std::string mode;        ///< "model" or "measure"
};

class Dispatch
{
  public:
    static Dispatch &instance();

    /**
     * Pick the host variant for op(A)[m,k] x op(B)[k,n].
     * `a_zero_frac` is the sampled zero fraction of (normalised) A —
     * the naive loop's per-element zero-skip beats register tiling
     * once A is mostly zeros (post-ReLU activations).
     */
    GemmVariant chooseGemm(int64_t m, int64_t n, int64_t k,
                           double a_zero_frac);

    /**
     * Pick the host kernel for C = A * B over sparse A stored as
     * `format` with `m` rows, `nnz` entries and `f` output features.
     * COO / blocked-ELL storage pins its kernel; CSR chooses between
     * the scalar and vectorized flavours.
     */
    SpmmVariant chooseSpmm(SparseFormat format, int64_t m, int64_t f,
                           int64_t nnz);

    /**
     * Arm/disarm `ops.*` recording into obs::Metrics. Off by default
     * so variant counters never leak into the full metrics snapshots
     * that gated telemetry baselines diff exactly; `--opstats` and
     * `gnnmark ops` arm it.
     */
    void setMetricsEnabled(bool on);
    bool metricsEnabled() const;

    DispatchStats stats() const;
    void resetStats();

    /** Re-read GNNMARK_OP_VARIANT / GNNMARK_OP_CALIBRATE (tests). */
    void reloadEnv();

    /**
     * Deterministic strided sample of the zero fraction of `data`
     * (up to 4096 probes, stride chosen from `count` alone).
     */
    static double sampledZeroFraction(const float *data, int64_t count);

  private:
    Dispatch();
    void ensureCalibrated();

    struct Impl;
    Impl *impl_; ///< leaked on purpose (worker threads may outlive exit)
};

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_DISPATCH_HH
