#include "ops/index.hh"

#include <algorithm>

#include "base/allocator.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

/**
 * Emit the row-lookup kernel shared by index-select and gather.
 * Threads are assigned to flattened (row, feature) positions, so when
 * F < 32 one warp touches several (scattered) table rows — the source
 * of the divergent loads the paper measures with NVBit.
 */
void
emitRowLookup(const char *base, OpClass cls, int64_t f, uint64_t tbl_addr,
              uint64_t out_addr, uint64_t idx_addr,
              const std::vector<int32_t> &idx)
{
    if (ExecContext::device() == nullptr || idx.empty() || f == 0)
        return;
    const int eb = deviceElemBytes();
    const int64_t m = static_cast<int64_t>(idx.size());
    const int64_t elems = m * f;
    const int32_t *pidx = idx.data();

    KernelDesc desc;
    desc.name = kernelName(base, {m, f});
    desc.opClass = cls;
    desc.blocks = std::max<int64_t>(1, (elems + 255) / 256);
    desc.warpsPerBlock = 8;
    desc.codeBytes = 4 * 1024;
    desc.aluIlp = 2.0;
    desc.loadDepFraction = 0.7; // loaded row goes (mostly) to the store
    desc.irregular = true;
    const bool is_scatter = cls == OpClass::Scatter;
    // For gather-style lookups `out_addr` is the written array and the
    // table is read; scatter-add flips the roles (atomic adds into the
    // table, contiguous reads of the source).
    if (is_scatter) {
        desc.outputRanges.emplace_back(
            tbl_addr, static_cast<uint64_t>(m) * f * eb);
        desc.inputRanges.emplace_back(
            out_addr, static_cast<uint64_t>(elems) * eb);
    } else {
        desc.outputRanges.emplace_back(
            out_addr, static_cast<uint64_t>(elems) * eb);
        desc.inputRanges.emplace_back(
            tbl_addr, static_cast<uint64_t>(m) * f * eb);
    }
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t first = warp_id * 32;
        if (first >= elems)
            return;
        const int lanes =
            static_cast<int>(std::min<int64_t>(32, elems - first));
        // Index fetch: one idx element per distinct row in the warp.
        uint64_t iaddrs[32];
        uint64_t taddrs[32];
        for (int l = 0; l < lanes; ++l) {
            const int64_t flat = first + l;
            const int64_t i = flat / f;
            const int64_t j = flat % f;
            iaddrs[l] = idx_addr + i * 4;
            taddrs[l] =
                tbl_addr + (static_cast<int64_t>(pidx[i]) * f + j) * eb;
        }
        sink.int32(22); // row/col decompose: div, mod, muls
        sink.loadGlobal(iaddrs, lanes, 4);
        if (is_scatter) {
            // Read the contiguous source, atomically add into the table.
            sink.loadCoalesced(out_addr + first * eb, eb, lanes);
            sink.fp32(1);
            sink.atomicGlobal(taddrs, lanes, eb);
        } else {
            sink.loadGlobal(taddrs, lanes, eb);
            sink.storeCoalesced(out_addr + first * eb, eb, lanes);
        }
        sink.misc(1);
    };
    emitKernel(desc);
}

Tensor
rowLookup(const Tensor &a, const std::vector<int32_t> &idx,
          const char *base, OpClass cls)
{
    GNN_SPAN("op.row_lookup");
    GNN_ASSERT(a.dim() == 2, "%s needs a 2-d table, got %s", base,
               a.shapeString().c_str());
    const int64_t n = a.size(0);
    const int64_t f = a.size(1);
    const int64_t m = static_cast<int64_t>(idx.size());

    Tensor out = Tensor::empty({m, f});
    const float *pa = a.data();
    float *po = out.data();
    parallel_for(0, m, 256, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const int32_t r = idx[i];
            GNN_ASSERT(r >= 0 && r < n,
                       "%s: index %d out of range [0, %lld)", base, r,
                       static_cast<long long>(n));
            std::copy(pa + static_cast<int64_t>(r) * f,
                      pa + static_cast<int64_t>(r + 1) * f, po + i * f);
        }
    });
    DeviceSpan idx_span(idx.size() * sizeof(int32_t));
    emitRowLookup(base, cls, f, a.deviceAddr(), out.deviceAddr(),
                  idx_span.addr(), idx);
    return out;
}

} // namespace

Tensor
indexSelectRows(const Tensor &a, const std::vector<int32_t> &idx)
{
    return rowLookup(a, idx, "index_select", OpClass::IndexSelect);
}

Tensor
gatherRows(const Tensor &a, const std::vector<int32_t> &idx)
{
    return rowLookup(a, idx, "gather_rows", OpClass::Gather);
}

void
scatterAddRows(Tensor &out, const std::vector<int32_t> &idx,
               const Tensor &src)
{
    GNN_SPAN("op.scatter_add");
    GNN_ASSERT(out.dim() == 2 && src.dim() == 2 &&
               out.size(1) == src.size(1),
               "scatterAddRows: bad shapes %s, %s",
               out.shapeString().c_str(), src.shapeString().c_str());
    GNN_ASSERT(static_cast<int64_t>(idx.size()) == src.size(0),
               "scatterAddRows: %zu indices for %lld rows", idx.size(),
               static_cast<long long>(src.size(0)));
    const int64_t n = out.size(0);
    const int64_t f = out.size(1);
    float *po = out.data();
    const float *ps = src.data();
    for (size_t i = 0; i < idx.size(); ++i) {
        const int32_t r = idx[i];
        GNN_ASSERT(r >= 0 && r < n,
                   "scatterAddRows: index %d out of range [0, %lld)", r,
                   static_cast<long long>(n));
        for (int64_t j = 0; j < f; ++j)
            po[static_cast<int64_t>(r) * f + j] +=
                ps[static_cast<int64_t>(i) * f + j];
    }
    // In the kernel trace the roles flip: coalesced reads of src,
    // atomic adds into the table.
    DeviceSpan idx_span(idx.size() * sizeof(int32_t));
    emitRowLookup("scatter_add", OpClass::Scatter, f, out.deviceAddr(),
                  src.deviceAddr(), idx_span.addr(), idx);
}

} // namespace ops
} // namespace gnnmark
