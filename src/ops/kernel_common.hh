/**
 * @file
 * Shared helpers for building and emitting kernel descriptors from
 * operator implementations.
 */

#ifndef GNNMARK_OPS_KERNEL_COMMON_HH
#define GNNMARK_OPS_KERNEL_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_desc.hh"

namespace gnnmark {

/**
 * Round a size to a coarse logarithmic bucket (2 bins per octave) so
 * kernels with near-identical shapes share one sampling identity, the
 * way nvprof groups invocations of the same kernel symbol.
 */
int64_t sizeBucket(int64_t n);

/** Append a bucketed shape suffix to a kernel base name. */
std::string kernelName(const std::string &base,
                       std::initializer_list<int64_t> dims);

/**
 * Launch `desc` on the currently bound device (no-op without one).
 */
void emitKernel(const KernelDesc &desc);

/**
 * Bytes per floating-point element on the bound device (4 for fp32,
 * 2 under the half-precision ablation, 4 with no device bound).
 */
int deviceElemBytes();

/**
 * Build a grid for a flat 1-D range: 8 warps (256 threads) per block,
 * each thread covering `elems_per_thread` elements grid-stride.
 */
struct FlatGrid
{
    int64_t blocks;
    int warpsPerBlock;
    int elemsPerThread;
    int64_t totalThreads() const { return blocks * warpsPerBlock * 32; }
};
FlatGrid flatGrid(int64_t elems, int elems_per_thread = 4);

/**
 * Specification of a streaming element-wise kernel: each element reads
 * one value from every input array, applies a fixed op template, and
 * writes every output array.
 */
struct ElementwiseSpec
{
    std::string name;
    int64_t elems = 0;
    std::vector<uint64_t> inAddrs;  ///< device addrs of input arrays
    std::vector<uint64_t> outAddrs; ///< device addrs of output arrays
    int fp32PerElem = 1;  ///< plain fp ops per element
    int sfuPerElem = 0;   ///< transcendental ops per element
    int int32PerElem = 2; ///< addressing/index integer ops per element
    OpClass opClass = OpClass::ElementWise;
    int elemBytes = 4;
};

/** Emit the element-wise kernel described by `spec`. */
void emitElementwise(const ElementwiseSpec &spec);

} // namespace gnnmark

#endif // GNNMARK_OPS_KERNEL_COMMON_HH
