#include "ops/kernel_common.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/string_utils.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

int64_t
sizeBucket(int64_t n)
{
    if (n <= 2)
        return n;
    // Two bins per octave: n is rounded down to m or 1.5*m where m is
    // the largest power of two <= n.
    int64_t m = 1;
    while ((m << 1) <= n)
        m <<= 1;
    return n >= m + m / 2 ? m + m / 2 : m;
}

std::string
kernelName(const std::string &base, std::initializer_list<int64_t> dims)
{
    std::string out = base;
    for (int64_t d : dims)
        out += strfmt("_%lld", static_cast<long long>(sizeBucket(d)));
    return out;
}

void
emitKernel(const KernelDesc &desc)
{
    if (GpuDevice *dev = ExecContext::device())
        dev->launch(desc);
}

int
deviceElemBytes()
{
    GpuDevice *dev = ExecContext::device();
    return dev != nullptr ? dev->config().elemBytes : 4;
}

FlatGrid
flatGrid(int64_t elems, int elems_per_thread)
{
    GNN_ASSERT(elems >= 0, "negative element count");
    GNN_ASSERT(elems_per_thread >= 1, "elems_per_thread must be >= 1");
    FlatGrid g;
    g.warpsPerBlock = 8;
    g.elemsPerThread = elems_per_thread;
    int64_t threads = std::max<int64_t>(
        1, (elems + elems_per_thread - 1) / elems_per_thread);
    g.blocks = std::max<int64_t>(1, (threads + 255) / 256);
    return g;
}

void
emitElementwise(const ElementwiseSpec &spec)
{
    if (ExecContext::device() == nullptr || spec.elems == 0)
        return;

    FlatGrid grid = flatGrid(spec.elems);
    const int64_t total_threads = grid.totalThreads();
    const int64_t elems = spec.elems;
    const int elem_bytes = spec.elemBytes;
    const auto in_addrs = spec.inAddrs;
    const auto out_addrs = spec.outAddrs;
    const int fp = spec.fp32PerElem;
    const int sf = spec.sfuPerElem;
    const int in32 = spec.int32PerElem;
    const int ept = grid.elemsPerThread;

    KernelDesc desc;
    desc.name = kernelName(spec.name, {spec.elems});
    desc.opClass = spec.opClass;
    desc.blocks = grid.blocks;
    desc.warpsPerBlock = grid.warpsPerBlock;
    desc.codeBytes = 2048 + 256 * (fp + sf + in32);
    desc.aluIlp = 3.0;           // simple independent per-element work
    desc.loadDepFraction = 0.7; // partially unrolled consume-after-load
    for (uint64_t a : out_addrs) {
        desc.outputRanges.emplace_back(
            a, static_cast<uint64_t>(spec.elems) * elem_bytes);
    }
    // Input footprints land in the L2 too (read by the whole grid).
    for (uint64_t a : in_addrs) {
        desc.inputRanges.emplace_back(
            a, static_cast<uint64_t>(spec.elems) * elem_bytes);
    }
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        // Grid-stride loop: chunk c covers elements
        // [c*total_threads + warp*32, +32) for this warp's lanes.
        for (int c = 0; c < ept; ++c) {
            int64_t first = c * total_threads + warp_id * 32;
            if (first >= elems)
                break;
            int lanes = static_cast<int>(
                std::min<int64_t>(32, elems - first));
            sink.int32(in32);
            for (uint64_t a : in_addrs)
                sink.loadCoalesced(a + first * elem_bytes, elem_bytes,
                                   lanes);
            if (fp > 0)
                sink.fp32(fp);
            if (sf > 0)
                sink.sfu(sf);
            for (uint64_t a : out_addrs)
                sink.storeCoalesced(a + first * elem_bytes, elem_bytes,
                                    lanes);
            sink.misc(1);
        }
    };
    emitKernel(desc);
}

} // namespace gnnmark
