#include "ops/conv2d.hh"

#include <algorithm>
#include <vector>

#include "base/allocator.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"

namespace gnnmark {
namespace ops {

namespace {

struct ConvDims
{
    int64_t n, c, h, w; // input
    int64_t k, r, s;    // filters
    int64_t oh, ow;     // output
};

ConvDims
checkDims(const Tensor &input, const Tensor &weight, int pad)
{
    GNN_ASSERT(input.dim() == 4 && weight.dim() == 4,
               "conv2d: need NCHW input and KCRS weight, got %s / %s",
               input.shapeString().c_str(), weight.shapeString().c_str());
    GNN_ASSERT(input.size(1) == weight.size(1),
               "conv2d: channel mismatch %lld vs %lld",
               static_cast<long long>(input.size(1)),
               static_cast<long long>(weight.size(1)));
    ConvDims d;
    d.n = input.size(0);
    d.c = input.size(1);
    d.h = input.size(2);
    d.w = input.size(3);
    d.k = weight.size(0);
    d.r = weight.size(2);
    d.s = weight.size(3);
    d.oh = d.h + 2 * pad - d.r + 1;
    d.ow = d.w + 2 * pad - d.s + 1;
    GNN_ASSERT(d.oh >= 1 && d.ow >= 1,
               "conv2d: kernel larger than padded input");
    return d;
}

/**
 * Persistent device workspace for the materialised patch matrix (the
 * cuDNN-style im2col buffer, reused across convolutions).
 */
uint64_t
convWorkspaceAddr(size_t bytes)
{
    // Grows monotonically and keeps its mapping between calls, so the
    // address is stable once the largest convolution has run.
    static DeviceSpan workspace;
    if (workspace.bytes() < bytes)
        workspace = DeviceSpan(bytes);
    return workspace.addr();
}

/**
 * Emit the im2col + GEMM kernel pair of a cuDNN-style convolution.
 * The im2col pass streams the input into the patch workspace (pure
 * data movement, heavy on index arithmetic); the GEMM part computes
 * [N*OH*OW, K] = [N*OH*OW, C*R*S] x [C*R*S, K] from it.
 */
void
emitConvKernel(const char *base, const ConvDims &d, uint64_t in_addr,
               uint64_t w_addr, uint64_t out_addr)
{
    if (ExecContext::device() == nullptr)
        return;
    const int eb = deviceElemBytes();

    // --- im2col pass: pure data movement + index arithmetic ---
    {
        const int64_t patch_elems =
            d.n * d.oh * d.ow * d.c * d.r * d.s;
        const uint64_t ws_addr = convWorkspaceAddr(
            static_cast<size_t>(patch_elems) * eb);
        const int64_t in_elems = d.n * d.c * d.h * d.w;

        KernelDesc im2col;
        im2col.name =
            kernelName(std::string(base) + "_im2col", {patch_elems});
        im2col.opClass = OpClass::Conv;
        im2col.blocks =
            std::max<int64_t>(1, (patch_elems + 1023) / 1024);
        im2col.warpsPerBlock = 8;
        im2col.codeBytes = 6 * 1024;
        im2col.aluIlp = 2.5;
        im2col.loadDepFraction = 0.6;
        im2col.outputRanges.emplace_back(
            ws_addr, static_cast<uint64_t>(patch_elems) * eb);
        im2col.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
            const int64_t first = warp_id * 128;
            if (first >= patch_elems)
                return;
            for (int c = 0; c < 6; ++c) {
                // (n, oh, ow, c, r, s) unravelling: div/mod chains.
                sink.int32(12);
                const int64_t src =
                    (first * 7 + c * 131) % std::max<int64_t>(
                                                32, in_elems - 32);
                sink.loadCoalesced(in_addr + src * eb, eb);
                sink.storeCoalesced(
                    ws_addr + ((first + c * 32) % patch_elems) * eb, eb);
            }
            sink.misc(2);
        };
        emitKernel(im2col);
        in_addr = ws_addr; // the GEMM consumes the patch matrix
    }

    const int64_t gemm_m = d.n * d.oh * d.ow;
    const int64_t gemm_k = d.c * d.r * d.s;
    const int64_t tiles_m = (gemm_m + 63) / 64;
    const int64_t tiles_k = std::max<int64_t>(1, (d.k + 63) / 64);
    const int64_t ksteps = std::max<int64_t>(1, (gemm_k + 31) / 32);
    const int64_t hw = d.h * d.w;
    const int64_t ohow = d.oh * d.ow;

    KernelDesc desc;
    desc.name = kernelName(base, {gemm_m, d.k, gemm_k});
    desc.opClass = OpClass::Conv;
    desc.blocks = tiles_m * tiles_k;
    desc.warpsPerBlock = 8;
    desc.codeBytes = 48 * 1024; // implicit-gemm kernels are huge
    desc.aluIlp = 1.2;
    desc.loadDepFraction = 0.85;
    desc.outputRanges.emplace_back(
        out_addr, static_cast<uint64_t>(gemm_m) * d.k * eb);
    desc.trace = [=](int64_t warp_id, WarpTraceSink &sink) {
        const int64_t block = warp_id / 8;
        const int warp = static_cast<int>(warp_id % 8);
        const int64_t tile_row = (block / tiles_k) * 64;
        // Implicit-gemm prologue: im2col coordinate algebra.
        sink.int32(64);
        sink.misc(12);
        const double live_rows =
            static_cast<double>(std::min<int64_t>(64, gemm_m - tile_row)) /
            64.0;
        const double live_cols = static_cast<double>(
            std::min<int64_t>(64, d.k)) / 64.0;
        const int live_fma = std::max(
            32, static_cast<int>(512.0 * live_rows * live_cols));

        int64_t done = 0;
        for (int64_t st = 0; st < ksteps; ++st, ++done) {
            if (sink.full())
                break;
            // Only the live K lanes of the last (padded) step do work.
            const double live_k =
                static_cast<double>(std::min<int64_t>(
                    32, gemm_k - st * 32)) / 32.0;
            const int step_fma = std::max(
                16, static_cast<int>(live_fma * live_k));
            // Cooperative staging of a 64x32 patch tile: 8 distinct
            // 32-element input segments per warp per step, streaming
            // across steps (the tile is reused out of shared memory,
            // not the L1).
            const int64_t in_elems = d.n * d.c * hw;
            for (int rr = 0; rr < 8; ++rr) {
                int64_t offset =
                    (tile_row * gemm_k + st * 2048 +
                     (warp * 8 + rr) * 32) %
                    std::max<int64_t>(32, in_elems - 32);
                sink.loadCoalesced(in_addr + offset * eb, eb);
            }
            // Filter slice (small; high cache residency).
            for (int rr = 0; rr < 2; ++rr) {
                sink.loadCoalesced(
                    w_addr + ((st * 32) % gemm_k) * d.k * eb, eb);
            }
            sink.sharedStore(10);
            sink.int32(96); // address algebra for the implicit gemm
            sink.barrier();
            sink.sharedLoad(32);
            sink.fma(step_fma);
            sink.misc(6);
        }
        if (done < ksteps && done > 0) {
            sink.scaleRemainder(static_cast<double>(ksteps) /
                                static_cast<double>(done));
        }
        for (int rr = 0; rr < 2; ++rr) {
            int64_t out_pos = (tile_row + warp * 8 + rr) % gemm_m;
            sink.storeCoalesced(out_addr + out_pos * d.k * eb, eb);
        }
        sink.int32(6);
    };
    emitKernel(desc);
}

/** im2col: patch matrix [N*OH*OW, C*R*S], zero-padded. */
std::vector<float>
im2col(const Tensor &input, const ConvDims &d, int pad)
{
    const int64_t gemm_m = d.n * d.oh * d.ow;
    const int64_t gemm_k = d.c * d.r * d.s;
    const int64_t ohow = d.oh * d.ow;
    std::vector<float> patches(gemm_m * gemm_k, 0.0f);
    const float *in = input.data();
    parallel_for(0, gemm_m, 64, [&](int64_t m0, int64_t m1) {
        for (int64_t m = m0; m < m1; ++m) {
            const int64_t n = m / ohow;
            const int64_t oh = (m % ohow) / d.ow;
            const int64_t ow = m % d.ow;
            float *row = patches.data() + m * gemm_k;
            for (int64_t c = 0; c < d.c; ++c) {
                for (int64_t r = 0; r < d.r; ++r) {
                    const int64_t ih = oh + r - pad;
                    if (ih < 0 || ih >= d.h)
                        continue;
                    const float *src =
                        in + ((n * d.c + c) * d.h + ih) * d.w;
                    for (int64_t sx = 0; sx < d.s; ++sx) {
                        const int64_t iw = ow + sx - pad;
                        if (iw >= 0 && iw < d.w)
                            row[(c * d.r + r) * d.s + sx] = src[iw];
                    }
                }
            }
        }
    });
    return patches;
}

/**
 * col2im: accumulate patch-space gradients back into input space.
 * Patches of one image overlap in input space, so the parallel grain
 * is a whole image: chunks own disjoint [n0, n1) batch slices.
 */
void
col2im(const std::vector<float> &dpatches, const ConvDims &d, int pad,
       Tensor &gin)
{
    float *out = gin.data();
    parallel_for(0, d.n, 1, [&](int64_t n0, int64_t n1) {
    for (int64_t n = n0; n < n1; ++n) {
        int64_t m = n * d.oh * d.ow;
        for (int64_t oh = 0; oh < d.oh; ++oh) {
            for (int64_t ow = 0; ow < d.ow; ++ow, ++m) {
                const float *row =
                    dpatches.data() + m * (d.c * d.r * d.s);
                for (int64_t c = 0; c < d.c; ++c) {
                    for (int64_t r = 0; r < d.r; ++r) {
                        const int64_t ih = oh + r - pad;
                        if (ih < 0 || ih >= d.h)
                            continue;
                        float *dst =
                            out + ((n * d.c + c) * d.h + ih) * d.w;
                        for (int64_t sx = 0; sx < d.s; ++sx) {
                            const int64_t iw = ow + sx - pad;
                            if (iw >= 0 && iw < d.w)
                                dst[iw] += row[(c * d.r + r) * d.s + sx];
                        }
                    }
                }
            }
        }
    }
    });
}

} // namespace

Tensor
conv2d(const Tensor &input, const Tensor &weight, int pad)
{
    GNN_SPAN("op.conv2d");
    ConvDims d = checkDims(input, weight, pad);
    Tensor out = Tensor::empty({d.n, d.k, d.oh, d.ow});

    const int64_t gemm_m = d.n * d.oh * d.ow;
    const int64_t gemm_k = d.c * d.r * d.s;
    std::vector<float> patches = im2col(input, d, pad);

    // W transposed once so the inner product streams contiguously.
    std::vector<float> wt(gemm_k * d.k);
    const float *w = weight.data();
    for (int64_t ko = 0; ko < d.k; ++ko) {
        for (int64_t kk = 0; kk < gemm_k; ++kk)
            wt[kk * d.k + ko] = w[ko * gemm_k + kk];
    }

    // out_mat[m][ko] = sum_k patches[m][k] * wt[k][ko], written back
    // in NKHW order. Each chunk owns its output pixels outright.
    const int64_t ohow = d.oh * d.ow;
    float *po = out.data();
    parallel_for(0, gemm_m, 32, [&](int64_t m0, int64_t m1) {
        std::vector<float> out_row(d.k);
        for (int64_t m = m0; m < m1; ++m) {
            std::fill(out_row.begin(), out_row.end(), 0.0f);
            const float *prow = patches.data() + m * gemm_k;
            for (int64_t kk = 0; kk < gemm_k; ++kk) {
                const float p = prow[kk];
                if (p == 0.0f)
                    continue;
                const float *wrow = wt.data() + kk * d.k;
                for (int64_t ko = 0; ko < d.k; ++ko)
                    out_row[ko] += p * wrow[ko];
            }
            const int64_t n = m / ohow;
            const int64_t pix = m % ohow;
            for (int64_t ko = 0; ko < d.k; ++ko)
                po[(n * d.k + ko) * ohow + pix] = out_row[ko];
        }
    });
    emitConvKernel("conv2d_fwd", d, input.deviceAddr(),
                   weight.deviceAddr(), out.deviceAddr());
    return out;
}

Tensor
conv2dGradInput(const Tensor &grad_out, const Tensor &weight,
                const Tensor &input, int pad)
{
    GNN_SPAN("op.conv2d.grad_input");
    ConvDims d = checkDims(input, weight, pad);
    GNN_ASSERT(grad_out.dim() == 4 && grad_out.size(0) == d.n &&
               grad_out.size(1) == d.k && grad_out.size(2) == d.oh &&
               grad_out.size(3) == d.ow,
               "conv2dGradInput: grad_out shape %s unexpected",
               grad_out.shapeString().c_str());

    // col2im accumulates, so the gradient buffer must start zeroed.
    Tensor gin = Tensor::zeros({d.n, d.c, d.h, d.w});
    const int64_t gemm_m = d.n * d.oh * d.ow;
    const int64_t gemm_k = d.c * d.r * d.s;
    const int64_t ohow = d.oh * d.ow;

    // dP[m][k] = sum_ko gout[m][ko] * W[ko][k], then col2im.
    std::vector<float> dpatches(gemm_m * gemm_k, 0.0f);
    const float *go = grad_out.data();
    const float *w = weight.data();
    parallel_for(0, gemm_m, 32, [&](int64_t m0, int64_t m1) {
        for (int64_t m = m0; m < m1; ++m) {
            const int64_t n = m / ohow;
            const int64_t pix = m % ohow;
            float *drow = dpatches.data() + m * gemm_k;
            for (int64_t ko = 0; ko < d.k; ++ko) {
                const float g = go[(n * d.k + ko) * ohow + pix];
                if (g == 0.0f)
                    continue;
                const float *wrow = w + ko * gemm_k;
                for (int64_t kk = 0; kk < gemm_k; ++kk)
                    drow[kk] += g * wrow[kk];
            }
        }
    });
    col2im(dpatches, d, pad, gin);
    emitConvKernel("conv2d_bwd_data", d, grad_out.deviceAddr(),
                   weight.deviceAddr(), gin.deviceAddr());
    return gin;
}

Tensor
conv2dGradWeight(const Tensor &grad_out, const Tensor &input,
                 const Tensor &weight, int pad)
{
    GNN_SPAN("op.conv2d.grad_weight");
    ConvDims d = checkDims(input, weight, pad);
    Tensor gw = Tensor::empty({d.k, d.c, d.r, d.s});
    const int64_t gemm_m = d.n * d.oh * d.ow;
    const int64_t gemm_k = d.c * d.r * d.s;
    const int64_t ohow = d.oh * d.ow;

    // dW[ko][k] = sum_m gout[m][ko] * P[m][k]. The filter gradient is
    // shared across all m, so chunks accumulate private copies that
    // are combined in fixed chunk order (thread-count independent; a
    // single chunk reproduces the serial order exactly).
    std::vector<float> patches = im2col(input, d, pad);
    const float *go = grad_out.data();
    float *pw = gw.data();
    const int64_t wg_elems = d.k * gemm_k;
    using Acc = std::vector<float>;
    Acc dw = parallel_reduce(
        0, gemm_m, 512, Acc(wg_elems, 0.0f),
        [&](int64_t m0, int64_t m1) {
            Acc local(wg_elems, 0.0f);
            for (int64_t m = m0; m < m1; ++m) {
                const int64_t n = m / ohow;
                const int64_t pix = m % ohow;
                const float *prow = patches.data() + m * gemm_k;
                for (int64_t ko = 0; ko < d.k; ++ko) {
                    const float g = go[(n * d.k + ko) * ohow + pix];
                    if (g == 0.0f)
                        continue;
                    float *wrow = local.data() + ko * gemm_k;
                    for (int64_t kk = 0; kk < gemm_k; ++kk)
                        wrow[kk] += g * prow[kk];
                }
            }
            return local;
        },
        [&](Acc acc, const Acc &local) {
            for (int64_t i = 0; i < wg_elems; ++i)
                acc[i] += local[i];
            return acc;
        });
    std::copy(dw.begin(), dw.end(), pw);
    emitConvKernel("conv2d_bwd_filter", d, grad_out.deviceAddr(),
                   input.deviceAddr(), gw.deviceAddr());
    return gw;
}

} // namespace ops
} // namespace gnnmark
