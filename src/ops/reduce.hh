/**
 * @file
 * Reduction operators: full, row-wise, column-wise and segmented
 * reductions, plus the row-broadcast companions used by softmax and
 * normalisation layers.
 */

#ifndef GNNMARK_OPS_REDUCE_HH
#define GNNMARK_OPS_REDUCE_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/** Sum over all elements. */
float reduceSumAll(const Tensor &a);

/** Mean over all elements. */
float reduceMeanAll(const Tensor &a);

/** Per-row sum of a [N, F] tensor; returns [N]. */
Tensor reduceSumRows(const Tensor &a);

/** Per-row max of a [N, F] tensor; returns [N]. */
Tensor reduceMaxRows(const Tensor &a);

/** Per-row argmax of a [N, F] tensor. */
std::vector<int32_t> argmaxRows(const Tensor &a);

/** Per-column sum of a [N, F] tensor; returns [F] (bias gradients). */
Tensor reduceSumCols(const Tensor &a);

/**
 * Segment sum: rows of src [E, F] are grouped by the CSR-style offsets
 * (offsets.size() == N + 1); returns [N, F]. Segment e covers src rows
 * [offsets[n], offsets[n+1]).
 */
Tensor segmentSumRows(const Tensor &src,
                      const std::vector<int32_t> &offsets);

/** Segment max with the same convention; empty segments yield 0. */
Tensor segmentMaxRows(const Tensor &src,
                      const std::vector<int32_t> &offsets);

/** @{ Row broadcasts: combine each row of a [N, F] with v [N]. */
Tensor subRowsBy(const Tensor &a, const Tensor &v);
Tensor divRowsBy(const Tensor &a, const Tensor &v);
Tensor mulRowsBy(const Tensor &a, const Tensor &v);
/** @} */

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_REDUCE_HH
