/**
 * @file
 * Differentiable operator wrappers (namespace ag): each calls the
 * instrumented ops:: forward and registers a backward closure that
 * itself calls instrumented ops::, so both halves of training emit
 * kernels into the device model.
 */

#ifndef GNNMARK_OPS_VAR_OPS_HH
#define GNNMARK_OPS_VAR_OPS_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "ops/gemm.hh"
#include "ops/variable.hh"
#include "tensor/csr.hh"
#include "tensor/sparse.hh"

namespace gnnmark {
namespace ag {

/** @{ Arithmetic. */
Variable add(const Variable &a, const Variable &b);
Variable sub(const Variable &a, const Variable &b);
Variable mul(const Variable &a, const Variable &b);
Variable div(const Variable &a, const Variable &b);
Variable scale(const Variable &a, float alpha);
Variable addScalar(const Variable &a, float alpha);
/** @} */

/** @{ Activations. */
Variable relu(const Variable &a);
Variable prelu(const Variable &a, const Variable &slope);
Variable sigmoid(const Variable &a);
Variable tanh(const Variable &a);
Variable exp(const Variable &a);
/** @} */

/** Inverted dropout (train mode). */
Variable dropout(const Variable &a, float p, Rng &rng);

/** C = op(A) op(B) (see ops::gemm). */
Variable gemm(const Variable &a, const Variable &b,
              ops::GemmOpts opts = {});

/** @deprecated Bool-flag entry point; use the GemmOpts overload. */
[[deprecated("use ag::gemm(a, b, ops::GemmOpts{...})")]]
Variable gemm(const Variable &a, const Variable &b, bool transpose_a,
              bool transpose_b = false);

/**
 * C = A B for a constant sparse A; `a_t` is A transposed (used by
 * the backward pass: dB = A^T dC). Both operands may be in any
 * SparseFormat; copies share storage, so capturing them is cheap.
 */
Variable spmm(const SparseMatrix &a, const SparseMatrix &a_t,
              const Variable &b);

/** @deprecated CSR-only entry point; use the SparseMatrix overload. */
[[deprecated("use ag::spmm(const SparseMatrix &, const SparseMatrix &, "
             "const Variable &)")]]
Variable spmm(const CsrMatrix &a, const CsrMatrix &a_t, const Variable &b);

/** y = x + bias broadcast over rows. */
Variable addBiasRows(const Variable &x, const Variable &bias);

/** Row lookup out[i] = a[idx[i]] (IndexSelect class). */
Variable indexSelectRows(const Variable &a,
                         const std::vector<int32_t> &idx);

/** Row lookup classified as a Gather (edge endpoint fetch). */
Variable gatherRows(const Variable &a, const std::vector<int32_t> &idx);

/**
 * Scatter-sum src rows into `num_rows` bins: out[idx[i]] += src[i].
 * The backward gathers grad rows back to the sources.
 */
Variable scatterSumRows(const Variable &src,
                        const std::vector<int32_t> &idx, int64_t num_rows);

/** Segmented sum over CSR-style offsets (child-sum aggregation). */
Variable segmentSumRows(const Variable &src,
                        const std::vector<int32_t> &offsets);

/** Segmented mean over CSR-style offsets (graph readout pooling). */
Variable segmentMeanRows(const Variable &src,
                         const std::vector<int32_t> &offsets);

/** Materialised 2-D transpose. */
Variable transpose2d(const Variable &a);

/** Multiply each row of a [N, F] variable by constant v [N]. */
Variable mulRowsByConst(const Variable &a, const Tensor &v);

/** Concatenate along rows. */
Variable concatRows(const std::vector<Variable> &parts);

/** Concatenate two [N, Fi] tensors along columns. */
Variable concatCols(const Variable &a, const Variable &b);

/** Rows [begin, end). */
Variable sliceRows(const Variable &a, int64_t begin, int64_t end);

/** Columns [begin, end) of a [N, F] tensor. */
Variable sliceCols(const Variable &a, int64_t begin, int64_t end);

/** View with a new shape. */
Variable reshape(const Variable &a, std::vector<int64_t> shape);

/** Row-wise softmax / log-softmax. */
Variable softmaxRows(const Variable &a);
Variable logSoftmaxRows(const Variable &a);

/** Mean over all elements -> scalar [1]. */
Variable meanAll(const Variable &a);

/** Sum over all elements -> scalar [1]. */
Variable sumAll(const Variable &a);

/** Per-row mean of [N, F] -> [N]. */
Variable meanRows(const Variable &a);

/** Negative log-likelihood of log-probs at the labels -> scalar. */
Variable nllLoss(const Variable &log_probs,
                 const std::vector<int32_t> &labels);

/** Mean squared error -> scalar. */
Variable mseLoss(const Variable &pred, const Variable &target);

/** Numerically-stable binary cross-entropy on logits -> scalar. */
Variable bceWithLogits(const Variable &logits, const Tensor &targets);

/** 2-D convolution, stride 1, zero padding `pad`. */
Variable conv2d(const Variable &input, const Variable &weight,
                int pad = 0);

/** Train-mode batch norm over [N, F]. */
Variable batchNorm(const Variable &x, const Variable &gamma,
                   const Variable &beta, float eps = 1e-5f);

/** Row-wise layer norm over [N, F]. */
Variable layerNorm(const Variable &x, const Variable &gamma,
                   const Variable &beta, float eps = 1e-5f);

} // namespace ag
} // namespace gnnmark

#endif // GNNMARK_OPS_VAR_OPS_HH
