/**
 * @file
 * Train-mode batch normalisation over [N, F] feature matrices (the
 * form DeepGCN applies between its residual GCN layers), plus row-wise
 * layer normalisation used by transformer-style models.
 */

#ifndef GNNMARK_OPS_BATCHNORM_HH
#define GNNMARK_OPS_BATCHNORM_HH

#include "tensor/tensor.hh"

namespace gnnmark {
namespace ops {

/** Saved forward statistics needed by the backward pass. */
struct BatchNormState
{
    Tensor mean;   ///< [F]
    Tensor invStd; ///< [F]
    Tensor xhat;   ///< [N, F] normalised input
};

/**
 * y = gamma * (x - mean) / sqrt(var + eps) + beta, with batch
 * statistics over the rows. Returns y and fills `state`.
 */
Tensor batchNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps, BatchNormState &state);

/** Gradients of batchNorm. Outputs are allocated by the callee. */
void batchNormBackward(const Tensor &grad_out, const Tensor &gamma,
                       const BatchNormState &state, Tensor &grad_x,
                       Tensor &grad_gamma, Tensor &grad_beta);

/** Per-row layer norm state. */
struct LayerNormState
{
    Tensor mean;   ///< [N]
    Tensor invStd; ///< [N]
    Tensor xhat;   ///< [N, F]
};

/** Row-wise layer normalisation with learnable gamma/beta [F]. */
Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps, LayerNormState &state);

/** Gradients of layerNorm. */
void layerNormBackward(const Tensor &grad_out, const Tensor &gamma,
                       const LayerNormState &state, Tensor &grad_x,
                       Tensor &grad_gamma, Tensor &grad_beta);

} // namespace ops
} // namespace gnnmark

#endif // GNNMARK_OPS_BATCHNORM_HH
