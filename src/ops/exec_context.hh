/**
 * @file
 * Binding between the operator layer and a simulated GPU.
 *
 * Operators compute real results on the host; when a device is bound
 * via DeviceGuard they additionally emit kernel launches into it. With
 * no device bound, operators are pure CPU math (handy for numerics
 * tests).
 */

#ifndef GNNMARK_OPS_EXEC_CONTEXT_HH
#define GNNMARK_OPS_EXEC_CONTEXT_HH

#include "sim/gpu_device.hh"

namespace gnnmark {

/** Thread-local current device for operator kernel emission. */
class ExecContext
{
  public:
    /** Currently bound device, or nullptr. */
    static GpuDevice *device();

  private:
    friend class DeviceGuard;
    static void setDevice(GpuDevice *device);
};

/** RAII scope that binds a device as the current execution target. */
class DeviceGuard
{
  public:
    explicit DeviceGuard(GpuDevice *device);
    ~DeviceGuard();

    DeviceGuard(const DeviceGuard &) = delete;
    DeviceGuard &operator=(const DeviceGuard &) = delete;

  private:
    GpuDevice *prev_;
};

} // namespace gnnmark

#endif // GNNMARK_OPS_EXEC_CONTEXT_HH
