/**
 * @file
 * Binding between the operator layer and a run's execution policy:
 * the simulated GPU kernels are emitted into, and the Allocator
 * tensor storage is drawn from.
 *
 * Operators compute real results on the host; when a device is bound
 * via ContextGuard they additionally emit kernel launches into it.
 * With no device bound, operators are pure CPU math (handy for
 * numerics tests). The allocator binding rides the same guard so both
 * policies are resolved from one binding point; with no allocator
 * bound, storage comes from the GNNMARK_ALLOC-selected default.
 */

#ifndef GNNMARK_OPS_EXEC_CONTEXT_HH
#define GNNMARK_OPS_EXEC_CONTEXT_HH

#include "base/allocator.hh"
#include "sim/gpu_device.hh"

namespace gnnmark {

/** One run's execution bindings (either may be null = unbound). */
struct RunContext
{
    GpuDevice *device = nullptr;
    Allocator *allocator = nullptr;
};

/** Thread-local current context for the operator layer. */
class ExecContext
{
  public:
    /** Currently bound device, or nullptr. */
    static GpuDevice *device();

    /** The run's allocator: bound one, else the process default. */
    static Allocator &allocator();

    /** Both bindings as they currently stand. */
    static RunContext current();

  private:
    friend class ContextGuard;
    static void set(const RunContext &ctx);
};

/**
 * RAII scope binding a RunContext as the current execution target.
 * The single-argument form keeps the enclosing allocator binding, so
 * device-only guards nested inside a run inherit the run's memory
 * policy.
 */
class ContextGuard
{
  public:
    explicit ContextGuard(GpuDevice *device);
    ContextGuard(GpuDevice *device, Allocator *allocator);
    explicit ContextGuard(const RunContext &ctx);
    ~ContextGuard();

    ContextGuard(const ContextGuard &) = delete;
    ContextGuard &operator=(const ContextGuard &) = delete;

  private:
    RunContext prev_;
};

} // namespace gnnmark

#endif // GNNMARK_OPS_EXEC_CONTEXT_HH
