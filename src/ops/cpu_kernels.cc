#include "ops/cpu_kernels.hh"

#include <algorithm>

#include "base/thread_pool.hh"
#include "obs/span.hh"

// AVX2 paths are compiled via per-function target attributes rather
// than a TU-wide -mavx2: a TU-wide flag would let the compiler emit
// AVX2 in shared inline/template instantiations (std::function,
// vector) whose COMDAT copy the linker may pick for the whole
// program, crashing pre-AVX2 hosts. Per-function targeting confines
// AVX2 to exactly the kernels guarded by simdActive(). No FMA: the
// intrinsics below use separate mul/add so results stay bitwise equal
// to the scalar baselines (and to the committed report baselines).
#if defined(__x86_64__) && defined(__GNUC__)
#define GNNMARK_AVX2 1
#include <immintrin.h>
#else
#define GNNMARK_AVX2 0
#endif

namespace gnnmark {
namespace ops {
namespace kern {

bool
simdActive()
{
#if GNNMARK_AVX2
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
#else
    return false;
#endif
}

namespace {

/** One output row of the naive GEMM: kk-outer, zero-skip on A,
 *  memory-accumulating j loop (the historical op body). */
inline void
gemmNaiveRow(const float *arow, int64_t k, const float *b, int64_t n,
             float *crow)
{
    for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f)
            continue;
        const float *brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j)
            crow[j] += aik * brow[j];
    }
}

/** Column remainder (n % 16) of a 4-row group, naive order. */
inline void
gemmRows4Tail(const float *a, int64_t k, const float *b, int64_t n,
              float *c, int64_t j0)
{
    for (int64_t kk = 0; kk < k; ++kk) {
        const float *brow = b + kk * n;
        for (int r = 0; r < 4; ++r) {
            const float av = a[r * k + kk];
            if (av == 0.0f)
                continue;
            float *crow = c + r * n;
            for (int64_t j = j0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/**
 * 4x16 register tile over the full K extent, scalar flavour. Each
 * C element still accumulates in ascending-kk order with the same
 * zero-skip, so the result is bitwise equal to gemmNaiveRow; the win
 * is C staying in registers (one store per element instead of one
 * load+store per nonzero A element).
 */
void
gemmRows4Scalar(const float *a, int64_t k, const float *b, int64_t n,
                float *c)
{
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        float acc[4][16] = {};
        for (int64_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j;
            for (int r = 0; r < 4; ++r) {
                const float av = a[r * k + kk];
                if (av == 0.0f)
                    continue;
                for (int t = 0; t < 16; ++t)
                    acc[r][t] += av * brow[t];
            }
        }
        for (int r = 0; r < 4; ++r) {
            for (int t = 0; t < 16; ++t)
                c[r * n + j + t] = acc[r][t];
        }
    }
    if (j < n)
        gemmRows4Tail(a, k, b, n, c, j);
}

#if GNNMARK_AVX2
/** 4x16 register tile, AVX2 flavour (separate mul/add — no FMA). */
__attribute__((target("avx2"))) void
gemmRows4Avx2(const float *a, int64_t k, const float *b, int64_t n,
              float *c)
{
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m256 acc[4][2];
        for (int r = 0; r < 4; ++r)
            acc[r][0] = acc[r][1] = _mm256_setzero_ps();
        for (int64_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j;
            const __m256 b0 = _mm256_loadu_ps(brow);
            const __m256 b1 = _mm256_loadu_ps(brow + 8);
            for (int r = 0; r < 4; ++r) {
                const float av = a[r * k + kk];
                if (av == 0.0f)
                    continue;
                const __m256 va = _mm256_set1_ps(av);
                acc[r][0] =
                    _mm256_add_ps(acc[r][0], _mm256_mul_ps(va, b0));
                acc[r][1] =
                    _mm256_add_ps(acc[r][1], _mm256_mul_ps(va, b1));
            }
        }
        for (int r = 0; r < 4; ++r) {
            _mm256_storeu_ps(c + r * n + j, acc[r][0]);
            _mm256_storeu_ps(c + r * n + j + 8, acc[r][1]);
        }
    }
    if (j < n)
        gemmRows4Tail(a, k, b, n, c, j);
}
#endif

/** Feature-strip remainder (f % 16) of one SpMM row, naive order. */
inline void
spmmRowTail(const int32_t *ci, const float *vals, int32_t begin,
            int32_t end, const float *b, int64_t f, float *crow,
            int64_t j0)
{
    for (int32_t e = begin; e < end; ++e) {
        const float v = vals[e];
        const float *brow = b + static_cast<int64_t>(ci[e]) * f;
        for (int64_t j = j0; j < f; ++j)
            crow[j] += v * brow[j];
    }
}

/**
 * One CSR row with 16-float feature strips held in registers across
 * the row's edge list (edge order unchanged), scalar flavour.
 */
void
spmmRowScalar(const int32_t *ci, const float *vals, int32_t begin,
              int32_t end, const float *b, int64_t f, float *crow)
{
    int64_t j = 0;
    for (; j + 16 <= f; j += 16) {
        float acc[16] = {};
        for (int32_t e = begin; e < end; ++e) {
            const float v = vals[e];
            const float *brow =
                b + static_cast<int64_t>(ci[e]) * f + j;
            for (int t = 0; t < 16; ++t)
                acc[t] += v * brow[t];
        }
        for (int t = 0; t < 16; ++t)
            crow[j + t] = acc[t];
    }
    if (j < f)
        spmmRowTail(ci, vals, begin, end, b, f, crow, j);
}

#if GNNMARK_AVX2
/** One CSR row, AVX2 flavour (separate mul/add — no FMA). */
__attribute__((target("avx2"))) void
spmmRowAvx2(const int32_t *ci, const float *vals, int32_t begin,
            int32_t end, const float *b, int64_t f, float *crow)
{
    int64_t j = 0;
    for (; j + 16 <= f; j += 16) {
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        for (int32_t e = begin; e < end; ++e) {
            const __m256 vv = _mm256_set1_ps(vals[e]);
            const float *brow =
                b + static_cast<int64_t>(ci[e]) * f + j;
            a0 = _mm256_add_ps(a0,
                               _mm256_mul_ps(vv, _mm256_loadu_ps(brow)));
            a1 = _mm256_add_ps(
                a1, _mm256_mul_ps(vv, _mm256_loadu_ps(brow + 8)));
        }
        _mm256_storeu_ps(crow + j, a0);
        _mm256_storeu_ps(crow + j + 8, a1);
    }
    if (j < f)
        spmmRowTail(ci, vals, begin, end, b, f, crow, j);
}
#endif

} // namespace

void
gemmNaive(const float *a, const float *b, float *c, int64_t m,
          int64_t n, int64_t k)
{
    parallel_for(0, m, 16, [&](int64_t i0, int64_t i1) {
        GNN_SPAN("op.gemm.chunk");
        for (int64_t i = i0; i < i1; ++i)
            gemmNaiveRow(a + i * k, k, b, n, c + i * n);
    });
}

void
gemmTiled(const float *a, const float *b, float *c, int64_t m,
          int64_t n, int64_t k)
{
    const bool simd = simdActive();
    parallel_for(0, m, 16, [&](int64_t i0, int64_t i1) {
        GNN_SPAN("op.gemm.chunk");
        int64_t i = i0;
        for (; i + 4 <= i1; i += 4) {
#if GNNMARK_AVX2
            if (simd) {
                gemmRows4Avx2(a + i * k, k, b, n, c + i * n);
                continue;
            }
#else
            (void)simd;
#endif
            gemmRows4Scalar(a + i * k, k, b, n, c + i * n);
        }
        for (; i < i1; ++i)
            gemmNaiveRow(a + i * k, k, b, n, c + i * n);
    });
}

void
spmmCsrScalar(const CsrMatrix &a, const float *b, float *c, int64_t f)
{
    parallel_for(0, a.rows, 64, [&](int64_t r0, int64_t r1) {
        GNN_SPAN("op.spmm.chunk");
        for (int64_t r = r0; r < r1; ++r) {
            float *crow = c + r * f;
            for (int32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e) {
                const float v = a.vals[e];
                const float *brow =
                    b + static_cast<int64_t>(a.colIdx[e]) * f;
                for (int64_t j = 0; j < f; ++j)
                    crow[j] += v * brow[j];
            }
        }
    });
}

void
spmmCsrVector(const CsrMatrix &a, const float *b, float *c, int64_t f)
{
    const bool simd = simdActive();
    const int32_t *ci = a.colIdx.data();
    const float *vals = a.vals.data();
    parallel_for(0, a.rows, 64, [&](int64_t r0, int64_t r1) {
        GNN_SPAN("op.spmm.chunk");
        for (int64_t r = r0; r < r1; ++r) {
            const int32_t begin = a.rowPtr[r];
            const int32_t end = a.rowPtr[r + 1];
            float *crow = c + r * f;
#if GNNMARK_AVX2
            if (simd) {
                spmmRowAvx2(ci, vals, begin, end, b, f, crow);
                continue;
            }
#else
            (void)simd;
#endif
            spmmRowScalar(ci, vals, begin, end, b, f, crow);
        }
    });
}

void
spmmCoo(const CooMatrix &a, const float *b, float *c, int64_t f)
{
    const int64_t nnz = a.nnz();
    const int32_t *ri = a.rowIdx.data();
    // Chunk boundaries fall on row boundaries (found by binary
    // search), so every output row still has exactly one writer.
    parallel_for(0, a.rows, 64, [&](int64_t r0, int64_t r1) {
        GNN_SPAN("op.spmm.chunk");
        const int32_t *p = std::lower_bound(
            ri, ri + nnz, static_cast<int32_t>(r0));
        for (int64_t i = p - ri; i < nnz && ri[i] < r1; ++i) {
            float *crow = c + static_cast<int64_t>(ri[i]) * f;
            const float v = a.vals[i];
            const float *brow =
                b + static_cast<int64_t>(a.colIdx[i]) * f;
            for (int64_t j = 0; j < f; ++j)
                crow[j] += v * brow[j];
        }
    });
}

void
spmmBell(const BlockedEllMatrix &a, const float *b, float *c, int64_t f)
{
    // Grain 64 is a multiple of kBlockRows, so chunks never split a
    // block row.
    parallel_for(0, a.rows, 64, [&](int64_t r0, int64_t r1) {
        GNN_SPAN("op.spmm.chunk");
        for (int64_t r = r0; r < r1; ++r) {
            const int64_t off = a.rowOff(r);
            const int32_t cnt = a.rowNnz[r];
            float *crow = c + r * f;
            for (int32_t t = 0; t < cnt; ++t) {
                const float v = a.vals[off + t];
                const float *brow =
                    b + static_cast<int64_t>(a.colIdx[off + t]) * f;
                for (int64_t j = 0; j < f; ++j)
                    crow[j] += v * brow[j];
            }
        }
    });
}

} // namespace kern
} // namespace ops
} // namespace gnnmark
