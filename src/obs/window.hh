/**
 * @file
 * Deterministic streaming quantile sketches and tumbling windows over
 * simulated time.
 *
 * QuantileSketch is a fixed-layout log-spaced bucket sketch: an
 * observation lands in bucket floor(8*log2(v)) + offset, so eight
 * sub-buckets cover every octave and a reported quantile is at most
 * ~4.5% from the true value. Buckets hold integer counts, merging two
 * sketches is element-wise addition, and a quantile is read off the
 * cumulative counts by nearest rank — no floating-point accumulation
 * order anywhere, so the same multiset of observations produces the
 * same sketch bytes on any thread count or merge order.
 *
 * WindowedSeries buckets (time, value) observations into tumbling
 * windows of fixed width on the *simulated* clock: window k covers
 * [k*w, (k+1)*w). Each window keeps a count, an exact sum/min/max and
 * a QuantileSketch, so an end-of-run report can print a p50/p95/p99
 * *series* instead of one all-run number. Observations must come from
 * a single thread (both the serving event loop and the streamed
 * trainer are single-threaded consumers), which is what keeps the
 * exact sums deterministic too.
 */

#ifndef GNNMARK_OBS_WINDOW_HH
#define GNNMARK_OBS_WINDOW_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace gnnmark {
namespace obs {

/** Number of log-spaced buckets in a QuantileSketch. */
constexpr size_t kSketchBuckets = 512;

/**
 * Mergeable fixed-bucket quantile sketch. Bucket 0 collects v <= 0
 * (and NaN); bucket b >= 1 covers [2^((b-1)/8 - 24), 2^(b/8 - 24)),
 * i.e. ~6e-8 up to ~2^40 with 8 sub-buckets per octave. A quantile
 * reports the geometric midpoint of the nearest-rank bucket.
 */
class QuantileSketch
{
  public:
    /** Record one observation. */
    void observe(double value);

    /** Element-wise add another sketch's counts. */
    void merge(const QuantileSketch &other);

    /** Total observations recorded. */
    int64_t count() const { return count_; }

    /**
     * Nearest-rank quantile for q in (0, 1]: the representative value
     * of the bucket holding the ceil(q * count)-th observation, or 0
     * when the sketch is empty.
     */
    double quantile(double q) const;

    /** Bucket index an observation lands in (see class doc). */
    static int bucketFor(double value);

    /** Representative (geometric midpoint) value of bucket `b`. */
    static double bucketValue(int b);

    const std::array<int64_t, kSketchBuckets> &buckets() const
    {
        return buckets_;
    }

  private:
    std::array<int64_t, kSketchBuckets> buckets_{};
    int64_t count_ = 0;
};

/** Aggregates of one tumbling window, emitted by WindowedSeries. */
struct WindowStats
{
    int64_t index = 0;   ///< window number (start = index * width)
    double startSec = 0; ///< inclusive window start
    double endSec = 0;   ///< exclusive window end
    int64_t count = 0;
    double sum = 0;
    double minValue = 0; ///< 0 when the window is empty
    double maxValue = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;

    double mean() const { return count > 0 ? sum / count : 0; }
};

/**
 * Tumbling-window series over simulated time. Windows materialize
 * lazily (a quiet window costs nothing until series() fills the gap),
 * and windowCap bounds runaway cardinality from a tiny width against
 * a long horizon: observations past the cap collapse into the last
 * window rather than growing without bound.
 */
class WindowedSeries
{
  public:
    /** @param widthSec  window width; must be > 0. */
    explicit WindowedSeries(double widthSec, int64_t windowCap = 4096);

    /** Record `value` at simulated time `t` (t < 0 clamps to 0). */
    void observe(double t, double value);

    double widthSec() const { return widthSec_; }

    /** Total observations across all windows. */
    int64_t totalCount() const { return total_; }

    /** Observations that hit the windowCap collapse (diagnostic). */
    int64_t cappedCount() const { return capped_; }

    /**
     * Contiguous window stats from window 0 through the later of the
     * last populated window and `horizonSec` (quiet gaps emit empty
     * windows, so every series over the same horizon has the same
     * length). Empty input and horizon <= 0 produce an empty vector.
     */
    std::vector<WindowStats> series(double horizonSec) const;

  private:
    struct Window
    {
        int64_t count = 0;
        double sum = 0;
        double minValue = 0;
        double maxValue = 0;
        QuantileSketch sketch;
    };

    double widthSec_;
    int64_t cap_;
    int64_t total_ = 0;
    int64_t capped_ = 0;
    std::map<int64_t, Window> windows_;
};

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_WINDOW_HH
