/**
 * @file
 * Host-side scoped-span tracing — the suite's analogue of NVTX ranges.
 *
 * A span is a named interval on the host timeline: op dispatch,
 * autograd backward, optimizer step, DDP phases, checkpoint I/O, trace
 * record/replay. Spans are recorded with GNN_SPAN("name") at the top
 * of an instrumented scope; the tracer keeps one buffer per thread
 * (pool workers included), so recording never contends across threads
 * beyond one uncontended per-buffer lock, and a merged dump preserves
 * which thread ran what — that dump becomes the host lanes of the
 * Chrome trace timeline.
 *
 * Tracing is off by default: a disabled GNN_SPAN is a single relaxed
 * atomic load, so instrumented builds measure identically to
 * uninstrumented ones (the perf-regression gate depends on this).
 */

#ifndef GNNMARK_OBS_SPAN_HH
#define GNNMARK_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gnnmark {
namespace obs {

/** One completed span, timed on the host monotonic clock. */
struct SpanEvent
{
    const char *name;   ///< static string from the GNN_SPAN literal
    double startUs = 0; ///< microseconds since the tracer's epoch
    double durUs = 0;
};

/** All spans recorded by one thread, with its timeline identity. */
struct ThreadSpans
{
    std::string threadName; ///< "host", "host-2", "worker-0", ...
    int lane = 0;           ///< stable lane id for trace exporters
    int64_t dropped = 0;    ///< spans discarded past the buffer cap
    std::vector<SpanEvent> spans;
};

/** Process-wide span collector with per-thread buffers. */
class SpanTracer
{
  public:
    static SpanTracer &instance();

    /** Turn recording on/off (off by default). */
    void setEnabled(bool enabled);

    /** Cheap check used by GNN_SPAN before touching any state. */
    static bool
    enabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    /** Drop every recorded span (buffers stay registered). */
    void clear();

    /** Merged copy of all per-thread buffers (host thread first). */
    std::vector<ThreadSpans> collect() const;

    /** Total spans currently buffered across all threads. */
    size_t spanCount() const;

    /** Microseconds since the tracer's construction. */
    double nowUs() const;

    /** Record a completed span on the calling thread's buffer. */
    void record(const char *name, double start_us, double end_us);

  private:
    SpanTracer();

    struct Buffer;
    Buffer &threadBuffer();

    static std::atomic<bool> enabledFlag_;

    struct Impl;
    Impl *impl_; ///< leaked on purpose: threads may outlive statics
};

/**
 * RAII span: samples the clock in the constructor when tracing is
 * enabled and records on destruction. Enable-state is latched at
 * construction so a mid-scope toggle cannot record a torn span.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (SpanTracer::enabled()) {
            name_ = name;
            startUs_ = SpanTracer::instance().nowUs();
        }
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr) {
            SpanTracer &tracer = SpanTracer::instance();
            tracer.record(name_, startUs_, tracer.nowUs());
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_ = nullptr;
    double startUs_ = 0;
};

} // namespace obs
} // namespace gnnmark

#define GNN_SPAN_CONCAT2(a, b) a##b
#define GNN_SPAN_CONCAT(a, b) GNN_SPAN_CONCAT2(a, b)

/** Open a scoped host span named `name` (a string literal). */
#define GNN_SPAN(name) \
    ::gnnmark::obs::ScopedSpan GNN_SPAN_CONCAT(gnn_span_, __LINE__)(name)

#endif // GNNMARK_OBS_SPAN_HH
