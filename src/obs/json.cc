#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "base/string_utils.hh"

namespace gnnmark {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    if (value == std::floor(value) && std::fabs(value) < 9.007199e15)
        return strfmt("%lld", static_cast<long long>(value));
    return strfmt("%.12g", value);
}

// --- JsonWriter ---

void
JsonWriter::comma()
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    if (!needComma_.empty())
        needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    if (!needComma_.empty())
        needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    // The value after a key must not emit another comma.
    if (!needComma_.empty())
        needComma_.back() = false;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    out_ += strfmt("%lld", static_cast<long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

// --- Parser ---

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text)
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(const char *lit)
    {
        for (const char *p = lit; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal (expected ") + lit + ")");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Our writer only emits \u00xx; decode BMP points as
                // UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            fail("malformed number '" + tok + "'");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = d;
        return v;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        JsonValue v;
        switch (c) {
          case '{': {
            v.type = JsonValue::Type::Object;
            ++pos_;
            if (consumeIf('}'))
                return v;
            while (true) {
                std::string k = (skipWs(), parseString());
                expect(':');
                v.object.emplace_back(std::move(k), parseValue());
                if (consumeIf('}'))
                    return v;
                expect(',');
            }
          }
          case '[': {
            v.type = JsonValue::Type::Array;
            ++pos_;
            if (consumeIf(']'))
                return v;
            while (true) {
                v.array.push_back(parseValue());
                if (consumeIf(']'))
                    return v;
                expect(',');
            }
          }
          case '"':
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
          case 't':
            expectLiteral("true");
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
          case 'f':
            expectLiteral("false");
            v.type = JsonValue::Type::Bool;
            return v;
          case 'n':
            expectLiteral("null");
            return v;
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
                return parseNumber();
            fail("unexpected character");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

void
flattenNumbers(const JsonValue &v, const std::string &prefix,
               std::map<std::string, double> &out)
{
    switch (v.type) {
      case JsonValue::Type::Number:
        out[prefix] = v.number;
        break;
      case JsonValue::Type::Bool:
        out[prefix] = v.boolean ? 1.0 : 0.0;
        break;
      case JsonValue::Type::Array:
        for (size_t i = 0; i < v.array.size(); ++i)
            flattenNumbers(v.array[i],
                           prefix + "." + std::to_string(i), out);
        break;
      case JsonValue::Type::Object:
        for (const auto &[k, child] : v.object)
            flattenNumbers(child, prefix.empty() ? k : prefix + "." + k,
                           out);
        break;
      default:
        break;
    }
}

} // namespace obs
} // namespace gnnmark
