#include "obs/bench_compare.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "base/io.hh"
#include "base/string_utils.hh"
#include "obs/json.hh"

namespace gnnmark {
namespace obs {

namespace {

bool
containsAny(const std::string &key, const std::vector<std::string> &subs)
{
    for (const auto &s : subs) {
        if (!s.empty() && key.find(s) != std::string::npos)
            return true;
    }
    return false;
}

std::string
readFileText(const std::string &path)
{
    std::vector<uint8_t> bytes = readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

/** Prefix for one JSONL record, from its type/workload/iteration. */
std::string
recordPrefix(const JsonValue &record, int line_number)
{
    std::string type = "record";
    if (const JsonValue *t = record.find("type"); t && t->isString())
        type = t->string;
    std::string scope;
    if (const JsonValue *w = record.find("workload"); w && w->isString())
        scope = w->string;
    std::string prefix = type;
    if (!scope.empty())
        prefix += "." + scope;
    if (const JsonValue *it = record.find("iteration");
        it && it->isNumber()) {
        prefix += strfmt(".%lld",
                         static_cast<long long>(it->number));
    } else if (scope.empty()) {
        prefix += strfmt(".%d", line_number);
    }
    return prefix;
}

} // namespace

double
toleranceForKey(const CompareOptions &opts, const std::string &key)
{
    double tol = opts.defaultTolerance;
    size_t best = 0;
    for (const auto &[prefix, t] : opts.tolerances) {
        if (key.compare(0, prefix.size(), prefix) == 0 &&
            prefix.size() >= best) {
            best = prefix.size();
            tol = t;
        }
    }
    return tol;
}

CompareResult
compareMetricMaps(const std::map<std::string, double> &baseline,
                  const std::map<std::string, double> &candidate,
                  const CompareOptions &opts)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    CompareResult result;

    for (const auto &[key, base] : baseline) {
        if (containsAny(key, opts.ignoreSubstrings)) {
            ++result.ignoredKeys;
            continue;
        }
        auto it = candidate.find(key);
        if (it == candidate.end()) {
            if (!opts.allowMissing)
                result.failures.push_back(
                    {key, base, nan, 0, 0, "missing"});
            continue;
        }
        ++result.comparedKeys;
        const double cand = it->second;
        const double tol = toleranceForKey(opts, key);
        const double scale = std::max(std::fabs(base), std::fabs(cand));
        const double rel =
            scale == 0 ? 0 : std::fabs(cand - base) / scale;
        // NaN on either side never satisfies <=, so it always fails.
        const bool ok = std::isfinite(base) && std::isfinite(cand)
            ? rel <= tol ||
                  std::fabs(cand - base) <= opts.absoluteFloor
            : (std::isnan(base) && std::isnan(cand)) || base == cand;
        if (!ok)
            result.failures.push_back(
                {key, base, cand, rel, tol, "regression"});
    }

    for (const auto &[key, cand] : candidate) {
        if (containsAny(key, opts.ignoreSubstrings)) {
            ++result.ignoredKeys;
            continue;
        }
        if (baseline.find(key) == baseline.end() && !opts.allowMissing)
            result.failures.push_back({key, nan, cand, 0, 0, "extra"});
    }
    return result;
}

std::map<std::string, double>
flattenTelemetryFile(const std::string &path)
{
    const std::string text = readFileText(path);
    std::map<std::string, double> out;

    // Try whole-document JSON first (report files); fall back to JSONL.
    try {
        JsonValue doc = parseJson(text);
        flattenNumbers(doc, "", out);
        return out;
    } catch (const JsonError &) {
    }

    std::istringstream in(text);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue record = parseJson(line); // throws with offset info
        flattenNumbers(record, recordPrefix(record, line_number), out);
    }
    return out;
}

std::string
describeFailure(const CompareFailure &f)
{
    if (f.reason == "missing")
        return strfmt("MISSING  %s (baseline %s, absent in candidate)",
                      f.key.c_str(), jsonNumber(f.baseline).c_str());
    if (f.reason == "extra")
        return strfmt("EXTRA    %s (candidate %s, absent in baseline)",
                      f.key.c_str(), jsonNumber(f.candidate).c_str());
    return strfmt("REGRESS  %s  baseline=%s candidate=%s "
                  "rel_err=%.4g tol=%.4g",
                  f.key.c_str(), jsonNumber(f.baseline).c_str(),
                  jsonNumber(f.candidate).c_str(), f.relativeError,
                  f.tolerance);
}

} // namespace obs
} // namespace gnnmark
