#include "obs/bench_compare.hh"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "base/io.hh"
#include "base/string_utils.hh"
#include "obs/json.hh"

namespace gnnmark {
namespace obs {

namespace {

bool
containsAny(const std::string &key, const std::vector<std::string> &subs)
{
    for (const auto &s : subs) {
        if (!s.empty() && key.find(s) != std::string::npos)
            return true;
    }
    return false;
}

std::string
readFileText(const std::string &path)
{
    std::vector<uint8_t> bytes = readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

/** Prefix for one JSONL record, from its type/workload/iteration. */
std::string
recordPrefix(const JsonValue &record, int line_number)
{
    std::string type = "record";
    if (const JsonValue *t = record.find("type"); t && t->isString())
        type = t->string;
    std::string scope;
    if (const JsonValue *w = record.find("workload"); w && w->isString())
        scope = w->string;
    std::string prefix = type;
    if (!scope.empty())
        prefix += "." + scope;
    if (const JsonValue *it = record.find("iteration");
        it && it->isNumber()) {
        prefix += strfmt(".%lld",
                         static_cast<long long>(it->number));
    } else if (scope.empty()) {
        prefix += strfmt(".%d", line_number);
    }
    return prefix;
}

/**
 * True when `key` is a flattened histogram bucket
 * ("...histograms.<name>.<digits>"); sets prefix/bucket on success.
 */
bool
histogramBucketKey(const std::string &key, std::string &prefix,
                   int &bucket)
{
    const size_t hist = key.find(".histograms.");
    if (hist == std::string::npos)
        return false;
    const size_t dot = key.rfind('.');
    if (dot == std::string::npos || dot < hist + 12)
        return false;
    const std::string last = key.substr(dot + 1);
    if (last.empty() ||
        last.find_first_not_of("0123456789") != std::string::npos)
        return false;
    prefix = key.substr(0, dot);
    bucket = std::atoi(last.c_str());
    return true;
}

/** Nearest-rank quantile over log2 buckets (Metrics layout). */
double
bucketQuantile(const std::map<int, double> &buckets, double total,
               double q)
{
    if (total <= 0)
        return 0;
    double rank = std::ceil(q * total);
    if (rank < 1)
        rank = 1;
    double seen = 0;
    double value = 0;
    for (const auto &[b, count] : buckets) {
        value = b == 0 ? 0.0 : std::exp2(b - 31.5);
        seen += count;
        if (seen >= rank)
            return value;
    }
    return value;
}

/** True for a derived percentile key made by collapseHistogramBuckets. */
bool
derivedPercentileKey(const std::string &key)
{
    if (key.find(".histograms.") == std::string::npos)
        return false;
    const size_t n = key.size();
    return n >= 4 && (key.compare(n - 4, 4, ".p50") == 0 ||
                      key.compare(n - 4, 4, ".p95") == 0 ||
                      key.compare(n - 4, 4, ".p99") == 0);
}

} // namespace

std::map<std::string, double>
collapseHistogramBuckets(const std::map<std::string, double> &flat)
{
    std::map<std::string, double> out;
    std::map<std::string, std::map<int, double>> hists;
    for (const auto &[key, value] : flat) {
        std::string prefix;
        int bucket = 0;
        if (histogramBucketKey(key, prefix, bucket))
            hists[prefix][bucket] = value;
        else
            out[key] = value;
    }
    for (const auto &[prefix, buckets] : hists) {
        double total = 0;
        for (const auto &[b, count] : buckets)
            total += count;
        out[prefix + ".count"] = total;
        out[prefix + ".p50"] = bucketQuantile(buckets, total, 0.50);
        out[prefix + ".p95"] = bucketQuantile(buckets, total, 0.95);
        out[prefix + ".p99"] = bucketQuantile(buckets, total, 0.99);
    }
    return out;
}

double
toleranceForKey(const CompareOptions &opts, const std::string &key)
{
    double tol = opts.defaultTolerance;
    size_t best = 0;
    for (const auto &[prefix, t] : opts.tolerances) {
        if (key.compare(0, prefix.size(), prefix) == 0 &&
            prefix.size() >= best) {
            best = prefix.size();
            tol = t;
        }
    }
    return tol;
}

CompareResult
compareMetricMaps(const std::map<std::string, double> &baseline,
                  const std::map<std::string, double> &candidate,
                  const CompareOptions &opts)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    CompareResult result;

    std::map<std::string, double> baseCollapsed, candCollapsed;
    const std::map<std::string, double> *basePtr = &baseline;
    const std::map<std::string, double> *candPtr = &candidate;
    if (opts.histogramPercentiles) {
        baseCollapsed = collapseHistogramBuckets(baseline);
        candCollapsed = collapseHistogramBuckets(candidate);
        basePtr = &baseCollapsed;
        candPtr = &candCollapsed;
    }
    const std::map<std::string, double> &base_map = *basePtr;
    const std::map<std::string, double> &cand_map = *candPtr;

    for (const auto &[key, base] : base_map) {
        if (containsAny(key, opts.ignoreSubstrings)) {
            ++result.ignoredKeys;
            continue;
        }
        auto it = cand_map.find(key);
        if (it == cand_map.end()) {
            if (!opts.allowMissing)
                result.failures.push_back(
                    {key, base, nan, 0, 0, "missing"});
            continue;
        }
        ++result.comparedKeys;
        const double cand = it->second;
        const double tol =
            opts.histogramPercentiles && derivedPercentileKey(key)
                ? opts.histogramTolerance
                : toleranceForKey(opts, key);
        const double scale = std::max(std::fabs(base), std::fabs(cand));
        const double rel =
            scale == 0 ? 0 : std::fabs(cand - base) / scale;
        // NaN on either side never satisfies <=, so it always fails.
        const bool ok = std::isfinite(base) && std::isfinite(cand)
            ? rel <= tol ||
                  std::fabs(cand - base) <= opts.absoluteFloor
            : (std::isnan(base) && std::isnan(cand)) || base == cand;
        if (!ok)
            result.failures.push_back(
                {key, base, cand, rel, tol, "regression"});
    }

    for (const auto &[key, cand] : cand_map) {
        if (containsAny(key, opts.ignoreSubstrings)) {
            ++result.ignoredKeys;
            continue;
        }
        if (base_map.find(key) == base_map.end() && !opts.allowMissing)
            result.failures.push_back({key, nan, cand, 0, 0, "extra"});
    }
    return result;
}

std::map<std::string, double>
flattenTelemetryFile(const std::string &path)
{
    const std::string text = readFileText(path);
    std::map<std::string, double> out;

    // Try whole-document JSON first (report files); fall back to JSONL.
    try {
        JsonValue doc = parseJson(text);
        flattenNumbers(doc, "", out);
        return out;
    } catch (const JsonError &) {
    }

    std::istringstream in(text);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue record = parseJson(line); // throws with offset info
        flattenNumbers(record, recordPrefix(record, line_number), out);
    }
    return out;
}

std::string
describeFailure(const CompareFailure &f)
{
    if (f.reason == "missing")
        return strfmt("MISSING  %s (baseline %s, absent in candidate)",
                      f.key.c_str(), jsonNumber(f.baseline).c_str());
    if (f.reason == "extra")
        return strfmt("EXTRA    %s (candidate %s, absent in baseline)",
                      f.key.c_str(), jsonNumber(f.candidate).c_str());
    return strfmt("REGRESS  %s  baseline=%s candidate=%s "
                  "rel_err=%.4g tol=%.4g",
                  f.key.c_str(), jsonNumber(f.baseline).c_str(),
                  jsonNumber(f.candidate).c_str(), f.relativeError,
                  f.tolerance);
}

} // namespace obs
} // namespace gnnmark
