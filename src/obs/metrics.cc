#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "base/logging.hh"

namespace gnnmark {
namespace obs {

namespace {

/** Overflow alias every over-cap counter/histogram name maps onto. */
const char *const kOverflowName = "obs.dropped_names";

} // namespace

struct Metrics::Impl
{
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<double> counters;
        std::vector<std::array<int64_t, kHistogramBuckets>> histograms;
    };

    mutable std::mutex registry;
    std::vector<std::string> counterNames;
    std::map<std::string, size_t> counterIds;
    std::vector<std::string> histogramNames;
    std::map<std::string, size_t> histogramIds;
    std::map<std::string, double> gauges;
    std::vector<std::unique_ptr<Shard>> shards;
    size_t cardinalityLimit = 4096;
    int64_t droppedNames = 0;

    // Registry lock must be held. The overflow alias is itself a
    // name, so it is interned on first overflow, not eagerly — a
    // process that never overflows never snapshots it.
    size_t totalNames() const
    {
        return counterNames.size() + histogramNames.size() + gauges.size();
    }

    bool atCapacity(const std::string &name)
    {
        if (totalNames() < cardinalityLimit || name == kOverflowName)
            return false;
        droppedNames++;
        // Identical text on purpose: the warn() limiter collapses
        // duplicates, so a cardinality explosion costs a handful of
        // lines, not one per runaway name.
        warn("metrics: cardinality limit %zu reached; dropping new "
             "metric names",
             cardinalityLimit);
        return true;
    }

    Shard &
    threadShard()
    {
        thread_local Shard *tls = nullptr;
        if (tls == nullptr) {
            auto shard = std::make_unique<Shard>();
            std::lock_guard<std::mutex> lock(registry);
            tls = shard.get();
            shards.push_back(std::move(shard));
        }
        return *tls;
    }
};

Metrics::Metrics() : impl_(new Impl)
{
}

Metrics &
Metrics::instance()
{
    static Metrics metrics;
    return metrics;
}

size_t
Metrics::counterId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->registry);
    auto it = impl_->counterIds.find(name);
    if (it != impl_->counterIds.end())
        return it->second;
    if (impl_->atCapacity(name)) {
        auto alias = impl_->counterIds.find(kOverflowName);
        if (alias != impl_->counterIds.end())
            return alias->second;
        const size_t id = impl_->counterNames.size();
        impl_->counterNames.push_back(kOverflowName);
        impl_->counterIds.emplace(kOverflowName, id);
        return id;
    }
    const size_t id = impl_->counterNames.size();
    impl_->counterNames.push_back(name);
    impl_->counterIds.emplace(name, id);
    return id;
}

size_t
Metrics::histogramId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->registry);
    auto it = impl_->histogramIds.find(name);
    if (it != impl_->histogramIds.end())
        return it->second;
    if (impl_->atCapacity(name)) {
        auto alias = impl_->histogramIds.find(kOverflowName);
        if (alias != impl_->histogramIds.end())
            return alias->second;
        const size_t id = impl_->histogramNames.size();
        impl_->histogramNames.push_back(kOverflowName);
        impl_->histogramIds.emplace(kOverflowName, id);
        return id;
    }
    const size_t id = impl_->histogramNames.size();
    impl_->histogramNames.push_back(name);
    impl_->histogramIds.emplace(name, id);
    return id;
}

void
Metrics::addById(size_t id, double delta)
{
    Impl::Shard &shard = impl_->threadShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.counters.size() <= id)
        shard.counters.resize(id + 1, 0.0);
    shard.counters[id] += delta;
}

void
Metrics::observeById(size_t id, double value)
{
    Impl::Shard &shard = impl_->threadShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.histograms.size() <= id)
        shard.histograms.resize(id + 1);
    ++shard.histograms[id][static_cast<size_t>(histogramBucket(value))];
}

void
Metrics::add(const std::string &name, double delta)
{
    addById(counterId(name), delta);
}

void
Metrics::observe(const std::string &name, double value)
{
    observeById(histogramId(name), value);
}

void
Metrics::setGauge(const std::string &name, double value)
{
    if (!std::isfinite(value)) {
        warn("metrics: rejecting non-finite gauge write to \"%s\"",
             name.c_str());
        return;
    }
    std::lock_guard<std::mutex> lock(impl_->registry);
    auto it = impl_->gauges.find(name);
    if (it != impl_->gauges.end()) {
        it->second = value;
        return;
    }
    if (impl_->atCapacity(name))
        return;
    impl_->gauges.emplace(name, value);
}

void
Metrics::setCardinalityLimit(size_t limit)
{
    std::lock_guard<std::mutex> lock(impl_->registry);
    impl_->cardinalityLimit = limit;
}

int64_t
Metrics::droppedNames() const
{
    std::lock_guard<std::mutex> lock(impl_->registry);
    return impl_->droppedNames;
}

int
Metrics::histogramBucket(double value)
{
    if (!(value > 0))
        return 0;
    const int bucket = 32 + static_cast<int>(std::floor(std::log2(value)));
    return std::clamp(bucket, 1, static_cast<int>(kHistogramBuckets) - 1);
}

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> registry(impl_->registry);
    MetricsSnapshot snap;
    snap.gauges = impl_->gauges;

    std::vector<double> counters(impl_->counterNames.size(), 0.0);
    std::vector<std::array<int64_t, kHistogramBuckets>> histograms(
        impl_->histogramNames.size());
    for (auto &h : histograms)
        h.fill(0);

    for (const auto &shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (size_t i = 0; i < shard->counters.size(); ++i)
            counters[i] += shard->counters[i];
        for (size_t i = 0; i < shard->histograms.size(); ++i) {
            for (size_t b = 0; b < kHistogramBuckets; ++b)
                histograms[i][b] += shard->histograms[i][b];
        }
    }

    for (size_t i = 0; i < counters.size(); ++i)
        snap.counters[impl_->counterNames[i]] = counters[i];
    for (size_t i = 0; i < histograms.size(); ++i)
        snap.histograms[impl_->histogramNames[i]] = histograms[i];
    return snap;
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> registry(impl_->registry);
    impl_->gauges.clear();
    impl_->cardinalityLimit = 4096;
    impl_->droppedNames = 0;
    for (const auto &shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        std::fill(shard->counters.begin(), shard->counters.end(), 0.0);
        for (auto &h : shard->histograms)
            h.fill(0);
    }
}

} // namespace obs
} // namespace gnnmark
