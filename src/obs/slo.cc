#include "obs/slo.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {
namespace obs {

BurnRateMonitor::BurnRateMonitor(double target, double windowSec)
    : target_(target), windowSec_(windowSec), budget_(1.0 - target)
{
    GNN_ASSERT(target > 0 && target < 1,
               "SLO target must be in (0,1), got %f", target);
    GNN_ASSERT(windowSec > 0, "SLO window width must be > 0");
    // Default rule pair, SRE-workbook shape scaled to simulated
    // horizons of tens of windows: the page rule needs a hard, fresh
    // burn; the ticket rule catches slower sustained burn.
    rules_ = {
        {"fast_burn", "page", 4, 1, 14.4},
        {"slow_burn", "ticket", 8, 2, 6.0},
    };
    open_.resize(rules_.size());
}

void BurnRateMonitor::setRules(std::vector<BurnRateRule> rules)
{
    GNN_ASSERT(goods_.empty(), "setRules must precede addWindow");
    rules_ = std::move(rules);
    open_.assign(rules_.size(), Open{});
}

double BurnRateMonitor::burnOver(int lookback) const
{
    // Use the windows we have when the run is younger than the
    // lookback — short simulations still get alerts, and the result
    // is a pure function of the window counts either way.
    size_t n = goods_.size();
    size_t take = std::min<size_t>(static_cast<size_t>(lookback), n);
    int64_t total = 0, good = 0;
    for (size_t i = n - take; i < n; i++) {
        total += totals_[i];
        good += goods_[i];
    }
    if (total == 0)
        return 0;
    double errFrac = static_cast<double>(total - good) / total;
    return errFrac / budget_;
}

void BurnRateMonitor::evaluate()
{
    int64_t w = static_cast<int64_t>(goods_.size()) - 1;
    int64_t total = totals_.back();
    int64_t errors = total - goods_.back();
    for (size_t r = 0; r < rules_.size(); r++) {
        const BurnRateRule &rule = rules_[r];
        double burnLong = burnOver(rule.longWindows);
        double burnShort = burnOver(rule.shortWindows);
        bool firing =
            burnLong >= rule.threshold && burnShort >= rule.threshold;
        Open &open = open_[r];
        if (firing) {
            if (!open.active) {
                open.active = true;
                open.alert = SloAlert{};
                open.alert.rule = rule.name;
                open.alert.severity = rule.severity;
                open.alert.startWindow = w;
                open.errors = 0;
                open.total = 0;
            }
            open.alert.endWindow = w;
            open.alert.peakBurn = std::max(open.alert.peakBurn, burnLong);
            open.errors += errors;
            open.total += total;
        } else if (open.active) {
            open.active = false;
            open.alert.startSec = open.alert.startWindow * windowSec_;
            open.alert.endSec = (open.alert.endWindow + 1) * windowSec_;
            open.alert.errorFraction =
                open.total > 0
                    ? static_cast<double>(open.errors) / open.total
                    : 0;
            alerts_.push_back(open.alert);
        }
    }
}

void BurnRateMonitor::addWindow(int64_t good, int64_t total)
{
    GNN_ASSERT(!finished_, "addWindow after finish");
    GNN_ASSERT(good >= 0 && total >= good,
               "bad SLO window counts good=%lld total=%lld",
               static_cast<long long>(good), static_cast<long long>(total));
    goods_.push_back(good);
    totals_.push_back(total);
    cumErrors_ += total - good;
    cumTotal_ += total;

    BurnPoint p;
    p.window = static_cast<int64_t>(goods_.size()) - 1;
    p.total = total;
    p.errors = total - good;
    p.burnRate =
        total > 0 ? (static_cast<double>(p.errors) / total) / budget_ : 0;
    p.budgetConsumed = budgetConsumed();
    points_.push_back(p);

    evaluate();
}

void BurnRateMonitor::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (Open &open : open_) {
        if (!open.active)
            continue;
        open.active = false;
        open.alert.startSec = open.alert.startWindow * windowSec_;
        open.alert.endSec = (open.alert.endWindow + 1) * windowSec_;
        open.alert.errorFraction =
            open.total > 0 ? static_cast<double>(open.errors) / open.total
                           : 0;
        alerts_.push_back(open.alert);
    }
    // Alerts close in rule order as burn subsides; present them in
    // time order so the report timeline reads chronologically.
    std::stable_sort(alerts_.begin(), alerts_.end(),
                     [](const SloAlert &a, const SloAlert &b) {
                         return a.startWindow < b.startWindow;
                     });
}

double BurnRateMonitor::budgetConsumed() const
{
    if (cumTotal_ == 0)
        return 0;
    double errFrac = static_cast<double>(cumErrors_) / cumTotal_;
    return errFrac / budget_;
}

} // namespace obs
} // namespace gnnmark
