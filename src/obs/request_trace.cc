#include "obs/request_trace.hh"

#include <algorithm>

namespace gnnmark {
namespace obs {

RequestTracer::RequestTracer(int64_t sampleEvery, size_t laneCap)
    : sampleEvery_(sampleEvery), laneCap_(laneCap)
{
}

bool RequestTracer::tracing(int64_t id) const
{
    if (sampled(id))
        return true;
    auto it = pending_.find(id);
    return it != pending_.end() && it->second.retained;
}

void RequestTracer::addSpan(int64_t id, const std::string &name,
                            double startSec, double endSec,
                            const std::string &detail)
{
    // Spans accumulate for every request until finish() decides its
    // fate: a request only becomes an exemplar (shed/timeout/hedge
    // win) partway through its life, and by then the early spans must
    // already exist. pending_ stays bounded by in-flight requests.
    Pending &p = pending_[id];
    RequestSpan s;
    s.name = name;
    s.startSec = startSec;
    s.endSec = std::max(startSec, endSec);
    s.detail = detail;
    p.spans.push_back(std::move(s));
}

void RequestTracer::addMark(int64_t id, const std::string &name,
                            double atSec, const std::string &detail)
{
    addSpan(id, name, atSec, atSec, detail);
}

void RequestTracer::retain(int64_t id)
{
    pending_[id].retained = true;
}

void RequestTracer::finish(int64_t id, const std::string &outcome)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;
    const bool exemplar = it->second.retained && !sampled(id);
    const bool keep = sampled(id) || it->second.retained;
    if (keep) {
        // Sampled and exemplar traces spend separate lane budgets so
        // a healthy warm-up full of sampled requests cannot starve
        // the exemplars that only appear once faults kick in.
        size_t &used = exemplar ? keptExemplar_ : keptSampled_;
        if (used < laneCap_) {
            ++used;
            RequestTrace t;
            t.id = id;
            t.outcome = outcome;
            t.exemplar = exemplar;
            t.spans = std::move(it->second.spans);
            kept_.push_back(std::move(t));
            traced_++;
        } else {
            droppedByCap_++;
        }
    }
    pending_.erase(it);
}

std::vector<RequestTrace> RequestTracer::drain()
{
    std::vector<RequestTrace> out = std::move(kept_);
    kept_.clear();
    std::sort(out.begin(), out.end(),
              [](const RequestTrace &a, const RequestTrace &b) {
                  return a.id < b.id;
              });
    return out;
}

} // namespace obs
} // namespace gnnmark
