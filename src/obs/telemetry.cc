#include "obs/telemetry.hh"

#include "base/io.hh"
#include "obs/json.hh"

namespace gnnmark {
namespace obs {

TelemetrySink::TelemetrySink(const std::string &path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_.is_open()) {
        throw IoError(IoError::Kind::OpenFailed,
                      "telemetry file '" + path + "': cannot open for "
                      "writing");
    }
}

void
TelemetrySink::writeRecord(const std::string &json_object)
{
    out_ << json_object << '\n';
    ++records_;
    if (!out_) {
        throw IoError(IoError::Kind::ShortWrite,
                      "telemetry file '" + path_ + "': write failed");
    }
}

bool
TelemetrySink::good()
{
    out_.flush();
    return static_cast<bool>(out_);
}

void
writeMetricsSnapshot(JsonWriter &w, const MetricsSnapshot &snapshot)
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : snapshot.counters)
        w.key(name).value(value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, value] : snapshot.gauges)
        w.key(name).value(value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, buckets] : snapshot.histograms) {
        size_t last = buckets.size();
        while (last > 0 && buckets[last - 1] == 0)
            --last;
        w.key(name).beginArray();
        for (size_t b = 0; b < last; ++b)
            w.value(buckets[b]);
        w.endArray();
    }
    w.endObject();
    w.endObject();
}

} // namespace obs
} // namespace gnnmark
