/**
 * @file
 * Request-scoped span tracing for the serving simulator.
 *
 * Unlike obs::SpanTracer (wall-clock scopes on real threads), this
 * tracer records spans with explicit simulated-time extents: the
 * serving event loop calls addSpan()/addMark() as each request moves
 * through admission → queue → batch → inference → retry/hedge →
 * resolution, then finish()es the request with its outcome.
 *
 * Sampling is exemplar-style: every Nth request id is kept
 * (id % sampleEvery == 0), and any request explicitly retain()-ed —
 * the serving loop retains shed, timed-out and hedge-won requests —
 * is kept regardless of sampling, because the interesting requests
 * are precisely the ones a uniform sample misses. Unsampled,
 * unretained requests drop their spans at finish(), so memory is
 * bounded by in-flight requests plus the retained-lane cap.
 *
 * Retained requests become per-request lanes in the Chrome trace
 * (profiler::ChromeTraceWriter::addRequestLanes). Sampled and
 * exemplar traces draw on separate `laneCap` budgets — a long healthy
 * warm-up cannot crowd out the exemplars that arrive once faults
 * start. Each budget keeps its first `laneCap` traces by finish
 * order, re-sorted by request id at drain, so trace output is
 * byte-stable across thread counts and processes.
 */

#ifndef GNNMARK_OBS_REQUEST_TRACE_HH
#define GNNMARK_OBS_REQUEST_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gnnmark {
namespace obs {

/** One simulated-time span or instant within a request's life. */
struct RequestSpan
{
    std::string name;     ///< e.g. "queue_wait", "infer", "hedge"
    double startSec = 0;
    double endSec = 0;    ///< == startSec for instant marks
    std::string detail;   ///< optional, e.g. "replica=2 batch=17"
};

/** A fully traced request: its span chain plus final outcome. */
struct RequestTrace
{
    int64_t id = 0;
    std::string outcome;   ///< outcomeName() of the final state
    bool exemplar = false; ///< retained outside uniform sampling
    std::vector<RequestSpan> spans;
};

/**
 * Collects span chains for sampled/retained requests. All methods
 * are meant for a single-threaded event loop; no locking.
 */
class RequestTracer
{
  public:
    /**
     * @param sampleEvery keep ids with id % sampleEvery == 0
     *                    (0 disables uniform sampling entirely).
     * @param laneCap     max retained traces per class — sampled and
     *                    exemplar each get their own laneCap budget
     *                    (first-N by finish order, re-sorted by id at
     *                    drain).
     */
    explicit RequestTracer(int64_t sampleEvery, size_t laneCap = 256);

    /** True when the request's spans are worth recording right now. */
    bool tracing(int64_t id) const;

    /** Append a [start, end) span to the request's chain. */
    void addSpan(int64_t id, const std::string &name, double startSec,
                 double endSec, const std::string &detail = "");

    /** Append an instant mark (zero-width span). */
    void addMark(int64_t id, const std::string &name, double atSec,
                 const std::string &detail = "");

    /**
     * Force-keep this request even if unsampled (shed / timeout /
     * hedge-won exemplars). Call any time before finish().
     */
    void retain(int64_t id);

    /** Close the request: keep its trace if sampled/retained. */
    void finish(int64_t id, const std::string &outcome);

    /** Retained traces in ascending request-id order. */
    std::vector<RequestTrace> drain();

    int64_t sampleEvery() const { return sampleEvery_; }
    /** Traces actually kept (== lanes the Chrome trace will show). */
    int64_t tracedCount() const { return traced_; }
    /** Keep-eligible traces dropped because a lane budget was full. */
    int64_t droppedByCap() const { return droppedByCap_; }

  private:
    struct Pending
    {
        bool retained = false;
        std::vector<RequestSpan> spans;
    };

    bool sampled(int64_t id) const
    {
        return sampleEvery_ > 0 && id % sampleEvery_ == 0;
    }

    int64_t sampleEvery_;
    size_t laneCap_;
    size_t keptSampled_ = 0;
    size_t keptExemplar_ = 0;
    int64_t traced_ = 0;
    int64_t droppedByCap_ = 0;
    std::map<int64_t, Pending> pending_;
    std::vector<RequestTrace> kept_;
};

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_REQUEST_TRACE_HH
