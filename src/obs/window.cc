#include "obs/window.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gnnmark {
namespace obs {

// Bucket layout: 8 sub-buckets per octave, octaves offset so that
// 2^-24 (~6e-8) maps to bucket 1. Index math uses std::floor on
// log2(v), which is deterministic for a given libm; all quantile
// reads then operate on integer counts only.
int QuantileSketch::bucketFor(double value)
{
    if (!(value > 0)) // catches v <= 0 and NaN
        return 0;
    double idx = std::floor(8.0 * (std::log2(value) + 24.0)) + 1.0;
    if (idx < 1)
        return 1;
    if (idx > static_cast<double>(kSketchBuckets - 1))
        return static_cast<int>(kSketchBuckets - 1);
    return static_cast<int>(idx);
}

double QuantileSketch::bucketValue(int b)
{
    if (b <= 0)
        return 0;
    // Geometric midpoint of [2^((b-1)/8 - 24), 2^(b/8 - 24)).
    return std::exp2((b - 0.5) / 8.0 - 24.0);
}

void QuantileSketch::observe(double value)
{
    buckets_[bucketFor(value)]++;
    count_++;
}

void QuantileSketch::merge(const QuantileSketch &other)
{
    for (size_t i = 0; i < kSketchBuckets; i++)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

double QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    int64_t rank = static_cast<int64_t>(std::ceil(q * count_));
    if (rank < 1)
        rank = 1;
    int64_t seen = 0;
    for (size_t i = 0; i < kSketchBuckets; i++) {
        seen += buckets_[i];
        if (seen >= rank)
            return bucketValue(static_cast<int>(i));
    }
    return bucketValue(static_cast<int>(kSketchBuckets - 1));
}

WindowedSeries::WindowedSeries(double widthSec, int64_t windowCap)
    : widthSec_(widthSec), cap_(windowCap)
{
    GNN_ASSERT(widthSec > 0, "WindowedSeries width must be > 0");
    GNN_ASSERT(windowCap > 0, "WindowedSeries cap must be > 0");
}

void WindowedSeries::observe(double t, double value)
{
    if (t < 0)
        t = 0;
    int64_t idx = static_cast<int64_t>(std::floor(t / widthSec_));
    if (idx >= cap_) {
        idx = cap_ - 1;
        capped_++;
    }
    Window &w = windows_[idx];
    if (w.count == 0) {
        w.minValue = value;
        w.maxValue = value;
    } else {
        w.minValue = std::min(w.minValue, value);
        w.maxValue = std::max(w.maxValue, value);
    }
    w.count++;
    w.sum += value;
    w.sketch.observe(value);
    total_++;
}

std::vector<WindowStats> WindowedSeries::series(double horizonSec) const
{
    int64_t last = -1;
    if (!windows_.empty())
        last = windows_.rbegin()->first;
    if (horizonSec > 0) {
        // ceil(horizon / width) windows cover [0, horizon); a horizon
        // landing exactly on a boundary does not open a new window.
        int64_t fromHorizon =
            static_cast<int64_t>(std::ceil(horizonSec / widthSec_)) - 1;
        fromHorizon = std::min(fromHorizon, cap_ - 1);
        last = std::max(last, fromHorizon);
    }
    std::vector<WindowStats> out;
    if (last < 0)
        return out;
    out.reserve(static_cast<size_t>(last) + 1);
    for (int64_t i = 0; i <= last; i++) {
        WindowStats s;
        s.index = i;
        s.startSec = i * widthSec_;
        s.endSec = (i + 1) * widthSec_;
        auto it = windows_.find(i);
        if (it != windows_.end()) {
            const Window &w = it->second;
            s.count = w.count;
            s.sum = w.sum;
            s.minValue = w.minValue;
            s.maxValue = w.maxValue;
            s.p50 = w.sketch.quantile(0.50);
            s.p95 = w.sketch.quantile(0.95);
            s.p99 = w.sketch.quantile(0.99);
        }
        out.push_back(s);
    }
    return out;
}

} // namespace obs
} // namespace gnnmark
