/**
 * @file
 * Regression-gate comparison engine behind tools/bench_diff.
 *
 * Both inputs are flattened to dotted-path -> number maps (a plain JSON
 * report becomes "figure2.gcn.sm_occupancy"; a JSONL telemetry file
 * becomes "iteration.<workload>.<iter>.loss" / "manifest.<workload>.*")
 * and compared key-by-key with relative tolerances. Wall-clock keys
 * (substring "wall_time" or "host_") are skipped: they are the only
 * nondeterministic fields the telemetry contract allows.
 */

#ifndef GNNMARK_OBS_BENCH_COMPARE_HH
#define GNNMARK_OBS_BENCH_COMPARE_HH

#include <map>
#include <string>
#include <vector>

namespace gnnmark {
namespace obs {

/** Tolerances and filters for compareMetricMaps. */
struct CompareOptions
{
    /** Relative tolerance applied when no per-key rule matches. */
    double defaultTolerance = 0.0;
    /**
     * Absolute difference below which a pair always passes, whatever
     * its relative error. Keeps near-zero fractions (a 3e-5 stall
     * share, say) from tripping a relative gate on noise-level drift.
     */
    double absoluteFloor = 0.0;
    /**
     * Per-key-prefix tolerances; the longest matching prefix wins over
     * defaultTolerance. E.g. {"iteration.", 0.05} loosens every
     * per-iteration field while keeping manifest aggregates exact.
     */
    std::map<std::string, double> tolerances;
    /** Keys containing any of these substrings are never compared. */
    std::vector<std::string> ignoreSubstrings = {"wall_time", "host_"};
    /** Accept keys present on only one side (else they are failures). */
    bool allowMissing = false;
    /**
     * Collapse flattened log2-histogram bucket arrays (keys of the
     * form "<prefix>.histograms.<name>.<bucket>") into derived
     * "<prefix>.histograms.<name>.{count,p50,p95,p99}" keys before
     * comparing, instead of matching raw buckets bucket-by-bucket.
     * Derived percentile keys compare under histogramTolerance;
     * counts compare under the normal tolerance rules.
     */
    bool histogramPercentiles = false;
    /**
     * Relative tolerance for derived percentile keys. Adjacent log2
     * buckets differ by 2x (relative error 0.5 against the larger),
     * so the default passes one-bucket drift and fails two or more.
     */
    double histogramTolerance = 0.5;
};

/** One per-key comparison outcome that exceeded its tolerance. */
struct CompareFailure
{
    std::string key;
    double baseline = 0;  ///< NaN when missing from baseline
    double candidate = 0; ///< NaN when missing from candidate
    double relativeError = 0;
    double tolerance = 0;
    std::string reason; ///< "regression", "missing", "extra"
};

/** Aggregate result of one comparison. */
struct CompareResult
{
    int comparedKeys = 0;
    int ignoredKeys = 0;
    std::vector<CompareFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Tolerance that applies to `key` under `opts` (longest prefix). */
double toleranceForKey(const CompareOptions &opts, const std::string &key);

/**
 * Replace flattened histogram bucket keys with derived
 * count/p50/p95/p99 keys (see CompareOptions::histogramPercentiles).
 * Bucket indices use the obs::Metrics log2 layout: bucket 0 reads as
 * value 0, bucket b as the geometric midpoint 2^(b - 31.5). Keys that
 * are not histogram buckets pass through untouched.
 */
std::map<std::string, double> collapseHistogramBuckets(
    const std::map<std::string, double> &flat);

/** Compare two flattened metric maps under `opts`. */
CompareResult compareMetricMaps(
    const std::map<std::string, double> &baseline,
    const std::map<std::string, double> &candidate,
    const CompareOptions &opts);

/**
 * Flatten a telemetry or report file into a metric map. The format is
 * sniffed per line: a file whose every non-blank line parses as a JSON
 * object is treated as JSONL; records are prefixed
 * "iteration.<workload>.<iteration>." or "<type>.<workload>." using the
 * record's own "type"/"workload"/"iteration" fields (falling back to
 * the line number when absent). A file that parses as a single JSON
 * document is flattened directly. Throws JsonError / IoError.
 */
std::map<std::string, double> flattenTelemetryFile(
    const std::string &path);

/** Human-readable one-line summary of one failure. */
std::string describeFailure(const CompareFailure &f);

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_BENCH_COMPARE_HH
