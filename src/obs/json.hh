/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * with deterministic number formatting (telemetry snapshots must be
 * byte-stable across runs), and a small recursive-descent parser used
 * by bench_diff and the trace schema tests. No third-party deps.
 */

#ifndef GNNMARK_OBS_JSON_HH
#define GNNMARK_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gnnmark {
namespace obs {

/** Escape `s` for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Format a double deterministically: integral values below 2^53 print
 * without a fraction, everything else as %.12g; NaN/Inf (invalid in
 * JSON) print as null.
 */
std::string jsonNumber(double value);

/**
 * Streaming JSON writer. Call sequence is validated only by JSON
 * syntax being context-free here: the writer tracks whether a comma
 * is due per nesting level; mismatched begin/end pairs are the
 * caller's bug and surface as malformed output in tests.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &k);
    JsonWriter &value(double v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }
    JsonWriter &value(bool v);

    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    std::vector<bool> needComma_; ///< one flag per open container
};

/** Error thrown by parseJson on malformed input. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** A parsed JSON document node (object keys keep insertion order). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
};

/** Parse one JSON document; throws JsonError on malformed input. */
JsonValue parseJson(const std::string &text);

/**
 * Flatten every numeric leaf of `v` into dotted paths under `prefix`
 * ("a.b.3.c" for arrays), appending into `out`. Booleans count as 0/1;
 * strings and nulls are skipped.
 */
void flattenNumbers(const JsonValue &v, const std::string &prefix,
                    std::map<std::string, double> &out);

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_JSON_HH
