#include "obs/span.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "base/thread_pool.hh"

namespace gnnmark {
namespace obs {

namespace {

/** Per-thread buffers are bounded so a forgotten enabled tracer can't
 *  grow without limit; the overflow is counted, not silently lost. */
constexpr size_t kMaxSpansPerThread = size_t(1) << 21;

using Clock = std::chrono::steady_clock;

} // namespace

std::atomic<bool> SpanTracer::enabledFlag_{false};

struct SpanTracer::Buffer
{
    std::string threadName;
    int lane = 0;
    int64_t dropped = 0;
    std::vector<SpanEvent> spans;
    mutable std::mutex mutex; ///< recording thread vs. collect()/clear()
};

struct SpanTracer::Impl
{
    Clock::time_point epoch = Clock::now();
    mutable std::mutex registry;
    std::vector<std::unique_ptr<Buffer>> buffers;
    int hostThreads = 0; ///< non-pool threads registered so far
};

SpanTracer::SpanTracer() : impl_(new Impl)
{
}

SpanTracer &
SpanTracer::instance()
{
    static SpanTracer tracer;
    return tracer;
}

void
SpanTracer::setEnabled(bool enabled)
{
    enabledFlag_.store(enabled, std::memory_order_relaxed);
}

double
SpanTracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     impl_->epoch)
        .count();
}

SpanTracer::Buffer &
SpanTracer::threadBuffer()
{
    thread_local Buffer *tls = nullptr;
    if (tls == nullptr) {
        auto buf = std::make_unique<Buffer>();
        std::lock_guard<std::mutex> lock(impl_->registry);
        const int worker = ThreadPool::currentWorkerIndex();
        if (worker >= 0) {
            // Pool workers sit on lanes 1..N so the primary host
            // thread keeps lane 0 at the top of the timeline.
            buf->threadName = "worker-" + std::to_string(worker);
            buf->lane = 1 + worker;
        } else {
            const int k = impl_->hostThreads++;
            buf->threadName =
                k == 0 ? "host" : "host-" + std::to_string(k + 1);
            buf->lane = k == 0 ? 0 : 1000 + k;
        }
        tls = buf.get();
        impl_->buffers.push_back(std::move(buf));
    }
    return *tls;
}

void
SpanTracer::record(const char *name, double start_us, double end_us)
{
    Buffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.spans.size() >= kMaxSpansPerThread) {
        ++buf.dropped;
        return;
    }
    buf.spans.push_back(SpanEvent{name, start_us, end_us - start_us});
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> registry(impl_->registry);
    for (auto &buf : impl_->buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        buf->spans.clear();
        buf->dropped = 0;
    }
}

std::vector<ThreadSpans>
SpanTracer::collect() const
{
    std::lock_guard<std::mutex> registry(impl_->registry);
    std::vector<ThreadSpans> out;
    out.reserve(impl_->buffers.size());
    for (const auto &buf : impl_->buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        ThreadSpans t;
        t.threadName = buf->threadName;
        t.lane = buf->lane;
        t.dropped = buf->dropped;
        t.spans = buf->spans;
        out.push_back(std::move(t));
    }
    // Buffers register in first-record order, which depends on thread
    // scheduling; lanes are stable, so sort on them to keep the
    // documented host-first, deterministic ordering.
    std::sort(out.begin(), out.end(),
              [](const ThreadSpans &a, const ThreadSpans &b) {
                  return a.lane < b.lane;
              });
    return out;
}

size_t
SpanTracer::spanCount() const
{
    std::lock_guard<std::mutex> registry(impl_->registry);
    size_t n = 0;
    for (const auto &buf : impl_->buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        n += buf->spans.size();
    }
    return n;
}

} // namespace obs
} // namespace gnnmark
