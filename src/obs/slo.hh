/**
 * @file
 * SLO error-budget accounting and multi-window burn-rate alerting.
 *
 * The monitor consumes one (good, total) pair per tumbling window —
 * the serving path feeds it slo_met vs offered per window — and
 * evaluates classic multi-window burn-rate rules: an alert fires in a
 * window when BOTH a long lookback and a short lookback burn the
 * error budget faster than the rule's threshold. Burn rate is
 * (error fraction) / (1 - target): burn 1.0 spends the budget exactly
 * at the allowed pace, burn 14.4 exhausts a 30-day budget in 2 days.
 * The short window keeps alerts from lingering after recovery; the
 * long window keeps one bad blip from paging.
 *
 * Consecutive firing windows coalesce into one SloAlert interval, so
 * a straggler fault injected over [0.15h, 0.85h] shows up as a single
 * alert whose [startSec, endSec) overlaps the fault — the correlation
 * the report and telemetry records exist to expose. Everything is
 * integer window arithmetic over counts: deterministic across thread
 * counts and processes.
 */

#ifndef GNNMARK_OBS_SLO_HH
#define GNNMARK_OBS_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gnnmark {
namespace obs {

/** One burn-rate rule: long/short lookbacks in windows + threshold. */
struct BurnRateRule
{
    std::string name;     ///< e.g. "fast_burn"
    std::string severity; ///< e.g. "page" or "ticket"
    int longWindows = 6;  ///< long lookback length, in windows
    int shortWindows = 1; ///< short lookback length, in windows
    double threshold = 0; ///< fire when both lookbacks burn >= this
};

/** A coalesced run of consecutive windows where one rule fired. */
struct SloAlert
{
    std::string rule;
    std::string severity;
    int64_t startWindow = 0; ///< first firing window index
    int64_t endWindow = 0;   ///< last firing window index (inclusive)
    double startSec = 0;     ///< startWindow * width
    double endSec = 0;       ///< (endWindow + 1) * width
    double peakBurn = 0;     ///< max long-window burn while firing
    double errorFraction = 0; ///< errors/total over the firing span
};

/** Per-window budget ledger row (for the report timeline). */
struct BurnPoint
{
    int64_t window = 0;
    int64_t total = 0;
    int64_t errors = 0;
    double burnRate = 0;        ///< this window's burn
    double budgetConsumed = 0;  ///< cumulative error budget fraction spent
};

/**
 * Multi-window burn-rate monitor. Feed windows in order with
 * addWindow(); read alerts() / points() after the last window.
 * Defaults follow the SRE-workbook shape scaled to simulation
 * horizons: a fast "page" rule (short lookback, high threshold) and a
 * slow "ticket" rule (long lookback, low threshold).
 */
class BurnRateMonitor
{
  public:
    /**
     * @param target SLO target in (0,1), e.g. 0.99 → 1% error budget.
     * @param windowSec window width (for alert start/end seconds).
     */
    BurnRateMonitor(double target, double windowSec);

    /** Replace the default rules (call before the first addWindow). */
    void setRules(std::vector<BurnRateRule> rules);

    /** Append the next window's (good, total) counts, in time order. */
    void addWindow(int64_t good, int64_t total);

    /** Finish the open alert interval, if any (idempotent). */
    void finish();

    double target() const { return target_; }
    const std::vector<BurnRateRule> &rules() const { return rules_; }
    const std::vector<SloAlert> &alerts() const { return alerts_; }
    const std::vector<BurnPoint> &points() const { return points_; }

    /** Fraction of the total error budget consumed so far. */
    double budgetConsumed() const;

  private:
    struct Open
    {
        bool active = false;
        SloAlert alert;
        int64_t errors = 0;
        int64_t total = 0;
    };

    double burnOver(int lookback) const;
    void evaluate();

    double target_;
    double windowSec_;
    double budget_; ///< 1 - target
    std::vector<BurnRateRule> rules_;
    std::vector<int64_t> goods_;
    std::vector<int64_t> totals_;
    std::vector<BurnPoint> points_;
    std::vector<SloAlert> alerts_;
    std::vector<Open> open_; ///< one per rule
    int64_t cumErrors_ = 0;
    int64_t cumTotal_ = 0;
    bool finished_ = false;
};

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_SLO_HH
