/**
 * @file
 * Telemetry sink: JSON-lines output, one record per line.
 *
 * The characterization runner writes one "iteration" record per
 * measured training step (loss, simulated time, kernel counts, a full
 * metrics snapshot) and one "manifest" record per run (config, seed,
 * thread count, figure aggregates). Everything except fields whose
 * names mark them as wall-clock ("wall_time_*", "host_*") is
 * deterministic for a fixed seed and thread count, which is what lets
 * bench_diff gate regressions on two telemetry files.
 */

#ifndef GNNMARK_OBS_TELEMETRY_HH
#define GNNMARK_OBS_TELEMETRY_HH

#include <fstream>
#include <string>

#include "obs/metrics.hh"

namespace gnnmark {
namespace obs {

/** Append-only JSONL writer; one JSON object per writeRecord call. */
class TelemetrySink
{
  public:
    /** Opens (truncates) `path`; throws IoError on failure. */
    explicit TelemetrySink(const std::string &path);

    /** Write one JSON object as a line (caller provides the object). */
    void writeRecord(const std::string &json_object);

    /** Flush and report stream health. */
    bool good();

    int64_t recordCount() const { return records_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    int64_t records_ = 0;
};

/**
 * Append `snapshot` under the current writer position as
 * {"counters":{...},"gauges":{...},"histograms":{"name":[b,...]}}.
 * Histogram arrays are trimmed of trailing zero buckets so quiet
 * metrics stay readable.
 */
void writeMetricsSnapshot(class JsonWriter &w,
                          const MetricsSnapshot &snapshot);

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_TELEMETRY_HH
