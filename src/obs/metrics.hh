/**
 * @file
 * Process-wide metrics registry: counters, gauges, and log2-bucket
 * histograms, fed by the sim (cache hits, stalls, transfers), the
 * trainer (loss, iteration time) and the fault layer (injections,
 * recoveries, rollbacks).
 *
 * Counters and histograms are sharded per thread: each thread owns a
 * dense slot array indexed by a metric id, guarded only by its own
 * uncontended mutex, and shards are summed at snapshot time. Metric
 * ids are interned once per call site (the Counter/Histogram handle
 * classes cache the id in a function-local static), so the hot path is
 * one lock + one indexed add.
 *
 * Determinism contract: summing shards is unordered, so metrics that
 * feed telemetry must either be recorded from a single thread (the
 * sim/trainer layers are — kernel emission never leaves the launching
 * thread) or carry integer-valued increments, for which floating-point
 * addition is exact and order-independent below 2^53.
 */

#ifndef GNNMARK_OBS_METRICS_HH
#define GNNMARK_OBS_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gnnmark {
namespace obs {

/** Number of log2 buckets per histogram (see histogramBucket()). */
constexpr size_t kHistogramBuckets = 64;

/** Aggregated view of every registered metric at one moment. */
struct MetricsSnapshot
{
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    /** Bucket counts; index semantics in Metrics::histogramBucket. */
    std::map<std::string, std::array<int64_t, kHistogramBuckets>>
        histograms;
};

class Metrics
{
  public:
    static Metrics &instance();

    /** Add `delta` to the named counter (interns the id per call). */
    void add(const std::string &name, double delta = 1.0);

    /**
     * Set the named gauge (last write wins). NaN and infinite values
     * are rejected with a rate-limited warn() — the previous value
     * (if any) survives — so snapshots serialize deterministically.
     */
    void setGauge(const std::string &name, double value);

    /** Record one observation into the named log2 histogram. */
    void observe(const std::string &name, double value);

    /** Aggregate all shards + gauges into one snapshot. */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every counter, gauge and histogram (ids survive) and
     * restore the default cardinality limit / dropped-name count.
     */
    void reset();

    /**
     * Cap the number of distinct metric names (counters + histograms
     * + gauges combined). Once the registry is full, new counter and
     * histogram names alias the reserved "obs.dropped_names" overflow
     * metric and new gauge names are discarded; each dropped name
     * emits a rate-limited warn(). Existing names keep working.
     * Guards against unbounded per-entity naming (e.g. one gauge per
     * replica) blowing up telemetry cardinality.
     */
    void setCardinalityLimit(size_t limit);

    /** Distinct new names rejected by the cardinality guard so far. */
    int64_t droppedNames() const;

    /**
     * Bucket index for a histogram observation: bucket 0 collects
     * v <= 0; otherwise floor(log2(v)) + 32 clamped to [1, 63], so
     * bucket 32 holds [1, 2), bucket 22 holds ~[1e-3, 2e-3), etc.
     */
    static int histogramBucket(double value);

    /** @{ Id interning for the handle classes (registry-locked). */
    size_t counterId(const std::string &name);
    size_t histogramId(const std::string &name);
    /** @} */

    /** @{ Hot-path slot updates by interned id. */
    void addById(size_t id, double delta);
    void observeById(size_t id, double value);
    /** @} */

  private:
    Metrics();

    struct Impl;
    Impl *impl_; ///< leaked on purpose: threads may outlive statics
};

/** Cached-id counter handle: `static obs::Counter c("x"); c.add();` */
class Counter
{
  public:
    explicit Counter(const char *name)
        : id_(Metrics::instance().counterId(name))
    {
    }

    void add(double delta = 1.0) { Metrics::instance().addById(id_, delta); }

  private:
    size_t id_;
};

/** Cached-id histogram handle. */
class Histogram
{
  public:
    explicit Histogram(const char *name)
        : id_(Metrics::instance().histogramId(name))
    {
    }

    void
    observe(double value)
    {
        Metrics::instance().observeById(id_, value);
    }

  private:
    size_t id_;
};

} // namespace obs
} // namespace gnnmark

#endif // GNNMARK_OBS_METRICS_HH
