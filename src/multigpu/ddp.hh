/**
 * @file
 * Simulated PyTorch DistributedDataParallel training over N GPUs, for
 * the paper's strong-scaling study (Fig. 9). Per iteration each
 * replica computes on its shard of the global batch; gradients are
 * bucketed and ring-all-reduced over NVLink. Workloads whose sampler
 * is not DDP-aware (PinSAGE) replicate the full batch on every
 * replica and pay host-link contention for the duplicated input
 * transfers — reproducing the degradation the paper observes.
 */

#ifndef GNNMARK_MULTIGPU_DDP_HH
#define GNNMARK_MULTIGPU_DDP_HH

#include "models/workload.hh"
#include "sim/gpu_config.hh"
#include "sim/interconnect.hh"

namespace gnnmark {

/** One point of the strong-scaling curve. */
struct ScalingResult
{
    int worldSize = 1;
    double epochTimeSec = 0;   ///< average simulated time per epoch
    double computeTimeSec = 0; ///< per-epoch on-GPU compute share
    double commTimeSec = 0;    ///< per-epoch all-reduce + replication
    double speedup = 0;        ///< vs. the 1-GPU epoch time
};

/** Strong-scaling measurement harness. */
class DdpTrainer
{
  public:
    DdpTrainer(GpuConfig device_config = GpuConfig::v100(),
               InterconnectConfig link_config = InterconnectConfig{});

    /**
     * Measure average time-per-epoch for `workload` on `world` GPUs.
     * A fresh device and workload state are used per call.
     *
     * @param measured_iterations training steps to time (extrapolated
     *        to the epoch length).
     */
    ScalingResult measure(Workload &workload, const WorkloadConfig &base,
                          int world, int measured_iterations = 4);

    /** Full curve over the given world sizes, with speedups. */
    std::vector<ScalingResult>
    scalingCurve(Workload &workload, const WorkloadConfig &base,
                 const std::vector<int> &world_sizes,
                 int measured_iterations = 4);

    /**
     * Weak scaling (the paper's Sec. VII future-work item): the
     * per-GPU batch stays constant while the world grows, so the
     * global batch scales with the GPU count. The reported `speedup`
     * field carries the weak-scaling *efficiency* t1/tw (1.0 =
     * perfect).
     */
    ScalingResult measureWeak(Workload &workload,
                              const WorkloadConfig &base, int world,
                              int measured_iterations = 4);

    /** Weak-scaling curve over the given world sizes. */
    std::vector<ScalingResult>
    weakScalingCurve(Workload &workload, const WorkloadConfig &base,
                     const std::vector<int> &world_sizes,
                     int measured_iterations = 4);

  private:
    GpuConfig deviceConfig_;
    Interconnect interconnect_;
};

} // namespace gnnmark

#endif // GNNMARK_MULTIGPU_DDP_HH
