/**
 * @file
 * Simulated PyTorch DistributedDataParallel training over N GPUs, for
 * the paper's strong-scaling study (Fig. 9). Per iteration each
 * replica computes on its shard of the global batch; gradients are
 * bucketed and ring-all-reduced over NVLink. Workloads whose sampler
 * is not DDP-aware (PinSAGE) replicate the full batch on every
 * replica and pay host-link contention for the duplicated input
 * transfers — reproducing the degradation the paper observes.
 */

#ifndef GNNMARK_MULTIGPU_DDP_HH
#define GNNMARK_MULTIGPU_DDP_HH

#include <string>
#include <vector>

#include "models/workload.hh"
#include "sim/fault_injector.hh"
#include "sim/gpu_config.hh"
#include "sim/interconnect.hh"
#include "sim/stream.hh"

namespace gnnmark {

class KernelObserver;

/** One point of the strong-scaling curve. */
struct ScalingResult
{
    int worldSize = 1;
    double epochTimeSec = 0;   ///< average simulated time per epoch
    double computeTimeSec = 0; ///< per-epoch on-GPU compute share
    double commTimeSec = 0;    ///< per-epoch all-reduce + replication
    /**
     * Per-epoch communication *not* hidden behind backward compute.
     * Equals commTimeSec under the synchronous model;
     * epochTimeSec = computeTimeSec + commExposedSec in both modes.
     */
    double commExposedSec = 0;
    /** 1 - exposed/total (0 when there is no communication). */
    double overlapFrac = 0;
    double speedup = 0; ///< vs. the 1-GPU epoch time
};

/** Communication-model knobs for DdpTrainer. */
struct DdpOptions
{
    /**
     * Overlap the bucketed gradient all-reduce with backward compute
     * on a dedicated comm stream (stream/event model). When false the
     * legacy fully-serialized cost model is reproduced bit-exactly.
     */
    bool overlapComm = true;
    /**
     * Overlap-path bucket sizing. At reproduction scale every
     * workload's gradients fit a single 25 MB PyTorch bucket, whose
     * one ready event would fire only when backward finishes — making
     * overlap vacuous — so the comm stream drains finer buckets:
     * roughly bytes/targetBuckets each, clamped to
     * [minBucketBytes, 25 MB]. The synchronous path is unaffected.
     */
    int targetBuckets = 4;
    double minBucketBytes = 16.0 * 1024;
};

/**
 * Cost-model helpers shared by every DDP pricing path (measure,
 * measureWeak, the fault engine, tests). Single source of truth for
 * the bucketed-all-reduce formula — previously inlined three times.
 */
namespace ddp {

/** DDP gradient bucket size (PyTorch default 25 MB). */
constexpr double kBucketBytes = 25.0 * 1024 * 1024;

/** Fixed per-iteration DDP bookkeeping (hooks, bucket ready checks). */
constexpr double kDdpOverheadSec = 40e-6;

/** Number of legacy 25 MB gradient buckets covering `bytes`. */
int bucketCount(double bytes);

/**
 * Per-iteration synchronous gradient-sync cost on `world` replicas:
 * ring all-reduce plus per-bucket launch latency plus fixed DDP
 * bookkeeping. 0 when world <= 1.
 */
double syncCommCost(const Interconnect &interconnect, double bytes,
                    int world);

/** Equal-split overlap-path bucket layout (see DdpOptions). */
std::vector<double> overlapBucketSizes(double bytes,
                                       const DdpOptions &options);

/** Total/exposed split of one overlapped iteration's gradient sync. */
struct CommCost
{
    double totalSec = 0;   ///< comm-stream occupancy + bookkeeping
    double exposedSec = 0; ///< share serialized after backward
};

/**
 * Price one iteration's gradient sync against its kernel timeline:
 * buckets become ready at backward-kernel completion points, a comm
 * stream drains them in order, and only
 * max(0, comm_finish - backward_finish) (plus the host-side
 * bookkeeping) extends the iteration. Invariants:
 * exposedSec <= totalSec, and with no backward window the cost
 * degenerates to fully exposed.
 */
CommCost overlapCommCost(const Interconnect &interconnect, double bytes,
                         int world, const IterationTimeline &timeline,
                         const DdpOptions &options);

/**
 * Price a scaling curve offline from recorded per-iteration kernel
 * timelines (e.g. a trace replay's ReplayResult::iterations): the
 * recorded stream is the fixed per-GPU work, so the curve has
 * weak-scaling semantics — compute stays `epoch_compute_sec` at every
 * world size, communication grows with `world`, and `speedup` carries
 * the weak-scaling efficiency t1/tw. With overlapComm the recorded
 * backward windows feed overlapCommCost(); otherwise the synchronous
 * model prices each point.
 */
std::vector<ScalingResult> scalingFromTimelines(
    const Interconnect &interconnect,
    const std::vector<IterationTimeline> &timelines,
    double epoch_compute_sec, double iterations_per_epoch,
    double parameter_bytes, bool sampler_ddp_compatible,
    const std::vector<int> &world_sizes, const DdpOptions &options);

} // namespace ddp

/** Knobs for a fault-tolerant DDP training run. */
struct FaultRecoveryOptions
{
    /** Training iterations the run must complete. */
    int iterations = 48;
    /**
     * Iterations between durable checkpoints; 0 disables periodic
     * checkpoints, in which case a crash rolls back to iteration 0.
     */
    int checkpointInterval = 12;
    /** All-reduce timeout that flags a dead/stuck replica. */
    double allReduceTimeoutSec = 30e-3;
    /** Failed-all-reduce retries before the world is shrunk. */
    int maxRetries = 2;
    /** First retry backoff; doubles per retry (exponential). */
    double backoffBaseSec = 10e-3;
    /** Bandwidth to stable checkpoint storage. */
    double checkpointBandwidth = 4e9;
    /** Fixed per-checkpoint-write (and read) latency. */
    double checkpointLatencySec = 1e-3;
    /** Process-group re-initialisation cost after a world change. */
    double commReinitSec = 200e-3;
};

/** Simulated-time accounting for one recovered fault. */
struct FaultRecord
{
    FaultKind kind = FaultKind::ReplicaCrash;
    /** Simulated time at which the run noticed the fault. */
    double simTimeSec = 0;
    int replica = 0;
    /** @{ Overhead breakdown, in simulated seconds. */
    double detectionSec = 0; ///< timeout + retry backoff
    double rollbackSec = 0;  ///< checkpoint read / retried compute
    double reshardSec = 0;   ///< re-init + re-broadcast + re-shard
    double slowdownSec = 0;  ///< straggler/degraded-link drag
    /** @} */
    /** Iterations discarded by the rollback (replayed afterwards). */
    int lostIterations = 0;
    int worldBefore = 0;
    int worldAfter = 0;
};

/** Outcome of a fault-injected training run (one per workload). */
struct FaultToleranceResult
{
    std::string workload;
    int worldStart = 0;
    int worldEnd = 0; ///< surviving replicas at completion
    int targetIterations = 0;
    /** Iterations actually computed, including replays. */
    int executedIterations = 0;
    /** Of those, iterations re-run after a rollback. */
    int replayedIterations = 0;
    /** Fault-free, checkpoint-free time for the same work. */
    double idealTimeSec = 0;
    /** Simulated wall time of the faulty run. */
    double totalTimeSec = 0;
    double checkpointTimeSec = 0; ///< spent writing checkpoints
    double recoveryTimeSec = 0;   ///< detection + rollback + re-shard
    /** idealTimeSec / totalTimeSec; 1.0 = no overhead. */
    double goodput = 0;
    std::vector<FaultRecord> events;
};

/** Strong-scaling measurement harness. */
class DdpTrainer
{
  public:
    DdpTrainer(GpuConfig device_config = GpuConfig::v100(),
               InterconnectConfig link_config = InterconnectConfig{},
               DdpOptions options = DdpOptions{});

    /**
     * Measure average time-per-epoch for `workload` on `world` GPUs.
     * A fresh device and workload state are used per call.
     *
     * @param measured_iterations training steps to time (extrapolated
     *        to the epoch length).
     */
    ScalingResult measure(Workload &workload, const WorkloadConfig &base,
                          int world, int measured_iterations = 4);

    /** Full curve over the given world sizes, with speedups. */
    std::vector<ScalingResult>
    scalingCurve(Workload &workload, const WorkloadConfig &base,
                 const std::vector<int> &world_sizes,
                 int measured_iterations = 4);

    /**
     * Weak scaling (the paper's Sec. VII future-work item): the
     * per-GPU batch stays constant while the world grows, so the
     * global batch scales with the GPU count. The reported `speedup`
     * field carries the weak-scaling *efficiency* t1/tw (1.0 =
     * perfect).
     */
    ScalingResult measureWeak(Workload &workload,
                              const WorkloadConfig &base, int world,
                              int measured_iterations = 4);

    /** Weak-scaling curve over the given world sizes. */
    std::vector<ScalingResult>
    weakScalingCurve(Workload &workload, const WorkloadConfig &base,
                     const std::vector<int> &world_sizes,
                     int measured_iterations = 4);

    /**
     * Train `workload` on `world` replicas under an injected fault
     * plan, recovering elastically: an all-reduce that times out on a
     * crashed replica is retried with exponential backoff, then the
     * world shrinks to the survivors, the global batch is re-sharded,
     * and training rolls back to the last durable checkpoint. Each
     * recovery's detection / rollback / re-shard overheads are
     * itemised in simulated seconds. Deterministic: the same seed and
     * plan produce an identical result.
     *
     * The fault-free, checkpoint-free baseline (idealTimeSec) is
     * measured internally on a fresh workload state, so goodput is
     * directly comparable.
     */
    FaultToleranceResult
    runWithFaults(Workload &workload, const WorkloadConfig &base,
                  int world, const FaultPlan &plan,
                  const FaultRecoveryOptions &options =
                      FaultRecoveryOptions{});

    /**
     * Attach an extra observer (e.g. a ChromeTraceWriter) to every
     * device this trainer creates, so rank-0's kernel stream is
     * captured alongside the scaling/fault measurements. Not owned;
     * must outlive the trainer's measurement calls.
     */
    void setExtraObserver(KernelObserver *observer)
    {
        extraObserver_ = observer;
    }

    const DdpOptions &options() const { return options_; }

  private:
    struct EngineOutcome;

    EngineOutcome runEngine(Workload &workload,
                            const WorkloadConfig &base, int world,
                            const FaultInjector &injector,
                            const FaultRecoveryOptions &options,
                            bool with_checkpoints);

    /** Shared body of measure()/measureWeak(); see their docs. */
    ScalingResult measureImpl(Workload &workload,
                              const WorkloadConfig &base, int world,
                              int measured_iterations, bool weak);

    GpuConfig deviceConfig_;
    Interconnect interconnect_;
    DdpOptions options_;
    KernelObserver *extraObserver_ = nullptr;
};

} // namespace gnnmark

#endif // GNNMARK_MULTIGPU_DDP_HH
