#include "multigpu/ddp.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/logging.hh"
#include "core/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

namespace {

/** Device-side detection latency for a failed (transient) kernel. */
constexpr double kTransientDetectSec = 0.5e-3;

} // namespace

namespace ddp {

int
bucketCount(double bytes)
{
    return std::max(
        1,
        static_cast<int>((bytes + kBucketBytes - 1) / kBucketBytes));
}

double
syncCommCost(const Interconnect &interconnect, double bytes, int world)
{
    if (world <= 1)
        return 0;
    return interconnect.allReduceTime(bytes, world) +
           bucketCount(bytes) *
               interconnect.config().messageLatencySec +
           kDdpOverheadSec;
}

std::vector<double>
overlapBucketSizes(double bytes, const DdpOptions &options)
{
    if (bytes <= 0)
        return {};
    const double target =
        bytes / static_cast<double>(std::max(1, options.targetBuckets));
    const double size = std::min(
        kBucketBytes, std::max(target, options.minBucketBytes));
    const int count =
        std::max(1, static_cast<int>(std::ceil(bytes / size)));
    return std::vector<double>(static_cast<size_t>(count),
                               bytes / count);
}

CommCost
overlapCommCost(const Interconnect &interconnect, double bytes,
                int world, const IterationTimeline &timeline,
                const DdpOptions &options)
{
    CommCost out;
    if (world <= 1 || bytes <= 0)
        return out;

    const double lat = interconnect.config().messageLatencySec;
    const double steps = 2.0 * (static_cast<double>(world) - 1.0);
    const std::vector<double> sizes =
        overlapBucketSizes(bytes, options);
    const int count = static_cast<int>(sizes.size());

    // Optimizer kernels can only start once all gradients are both
    // produced and reduced, so exposure is measured against the end
    // of the backward window (the iteration past that point is the
    // update step, which waits on comm anyway).
    const double bwd_finish = timeline.hasBackward()
        ? timeline.wallAtKernelTime(timeline.backwardEndKernelSec)
        : timeline.wallAtKernelTime(timeline.kernelSec);

    SimStream comm("ddp.comm");
    for (int i = 0; i < count; ++i) {
        const double ready = timeline.bucketReadySec(i, count);
        // Bandwidth share of this bucket's ring pass, via the same
        // Interconnect model the sync path prices with.
        double cost = std::max(
            0.0, interconnect.allReduceTime(sizes[static_cast<size_t>(i)],
                                            world) -
                     steps * lat);
        cost += lat; // per-bucket collective launch
        if (i == 0) {
            // The ring's per-step latencies pipeline across buckets;
            // charge the fill once, to the first bucket, where it can
            // still hide behind backward.
            cost += steps * lat;
        }
        comm.enqueue("allreduce.bucket", ready, cost);
    }

    double occupancy = 0;
    for (const StreamOp &op : comm.ops())
        occupancy += op.endSec - op.startSec;
    out.totalSec = occupancy + kDdpOverheadSec;
    out.exposedSec = std::max(0.0, comm.cursorSec() - bwd_finish) +
                     kDdpOverheadSec;
    return out;
}

std::vector<ScalingResult>
scalingFromTimelines(const Interconnect &interconnect,
                     const std::vector<IterationTimeline> &timelines,
                     double epoch_compute_sec,
                     double iterations_per_epoch,
                     double parameter_bytes,
                     bool sampler_ddp_compatible,
                     const std::vector<int> &world_sizes,
                     const DdpOptions &options)
{
    double iter_transfer = 0;
    if (!timelines.empty()) {
        for (const IterationTimeline &t : timelines)
            iter_transfer += t.transferSec;
        iter_transfer /= static_cast<double>(timelines.size());
    }

    std::vector<ScalingResult> out;
    for (int world : world_sizes) {
        GNN_ASSERT(world >= 1, "world size must be >= 1");
        double iter_comm = 0;
        double iter_exposed = 0;
        if (world > 1) {
            double penalty = 0;
            if (!sampler_ddp_compatible)
                penalty = iter_transfer * (world - 1);
            if (options.overlapComm && !timelines.empty()) {
                double total = 0;
                double exposed = 0;
                for (const IterationTimeline &t : timelines) {
                    CommCost c = overlapCommCost(
                        interconnect, parameter_bytes, world, t,
                        options);
                    total += c.totalSec;
                    exposed += c.exposedSec;
                }
                const double n =
                    static_cast<double>(timelines.size());
                iter_comm = total / n + penalty;
                iter_exposed = exposed / n + penalty;
            } else {
                iter_comm = syncCommCost(interconnect, parameter_bytes,
                                         world) +
                            penalty;
                iter_exposed = iter_comm;
            }
        }
        ScalingResult res;
        res.worldSize = world;
        res.computeTimeSec = epoch_compute_sec;
        res.commTimeSec = iter_comm * iterations_per_epoch;
        res.commExposedSec = iter_exposed * iterations_per_epoch;
        res.epochTimeSec = res.computeTimeSec + res.commExposedSec;
        res.overlapFrac =
            res.commTimeSec > 0
                ? 1.0 - res.commExposedSec / res.commTimeSec
                : 0;
        out.push_back(res);
    }

    // Weak-scaling efficiency against the single-GPU point, with the
    // same fallback as weakScalingCurve: per-GPU work is constant, so
    // the first measured point is its own reference.
    double base_time = 0;
    for (const ScalingResult &r : out) {
        if (r.worldSize == 1)
            base_time = r.epochTimeSec;
    }
    if (base_time == 0 && !out.empty())
        base_time = out.front().epochTimeSec;
    for (ScalingResult &r : out) {
        r.speedup = base_time > 0 && r.epochTimeSec > 0
                        ? base_time / r.epochTimeSec
                        : 0;
    }
    return out;
}

} // namespace ddp

DdpTrainer::DdpTrainer(GpuConfig device_config,
                       InterconnectConfig link_config,
                       DdpOptions options)
    : deviceConfig_(device_config), interconnect_(link_config),
      options_(options)
{
}

ScalingResult
DdpTrainer::measureImpl(Workload &workload, const WorkloadConfig &base,
                        int world, int measured_iterations, bool weak)
{
    GNN_ASSERT(world >= 1, "world size must be >= 1");
    GNN_ASSERT(measured_iterations >= 1, "need at least one iteration");

    // Weak scaling keeps the per-GPU work at the full single-GPU
    // batch: run with worldSize 1 for the compute, then charge the
    // world-sized communication.
    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = weak ? 1 : world;

    GpuDevice device(deviceConfig_,
                     base.seed + (weak ? 100 + world : world));
    TimelineCollector timelines(deviceConfig_.launchOverheadSec);
    device.addObserver(&timelines);
    if (extraObserver_ != nullptr)
        device.addObserver(extraObserver_);
    workload.setup(cfg);

    ContextGuard guard(&device);
    workload.trainIteration(); // warm up sampling caches
    device.resetTimers();

    for (int i = 0; i < measured_iterations; ++i) {
        device.markIterationBegin();
        workload.trainIteration();
    }

    const double iter_compute =
        device.wallTimeSec() / measured_iterations;
    const double iter_transfer =
        device.transferTimeSec() / measured_iterations;

    double iter_comm = 0;
    double iter_exposed = 0;
    if (world > 1) {
        const double bytes = workload.parameterBytes();
        // Replicated batches: every replica pulls the full input over
        // the shared host link, serialising the copies. Charged on
        // both scaling modes (weak scaling used to skip it, silently
        // flattering replication-pathological workloads).
        double penalty = 0;
        if (!workload.samplerDdpCompatible())
            penalty = iter_transfer * (world - 1);

        const auto &its = timelines.iterations();
        if (options_.overlapComm && !its.empty()) {
            // Bucketed ring all-reduce drained by a comm stream that
            // overlaps the backward window of each measured
            // iteration's kernel timeline.
            double total = 0;
            double exposed = 0;
            for (const IterationTimeline &t : its) {
                ddp::CommCost c = ddp::overlapCommCost(
                    interconnect_, bytes, world, t, options_);
                total += c.totalSec;
                exposed += c.exposedSec;
            }
            const double n = static_cast<double>(its.size());
            iter_comm = total / n + penalty;
            iter_exposed = exposed / n + penalty;
        } else {
            // Legacy synchronous model: the bucketed all-reduce fully
            // serializes after compute.
            iter_comm =
                ddp::syncCommCost(interconnect_, bytes, world) + penalty;
            iter_exposed = iter_comm;
        }
    }

    ScalingResult res;
    res.worldSize = world;
    const double iters =
        static_cast<double>(workload.iterationsPerEpoch());
    res.computeTimeSec = iter_compute * iters;
    res.commTimeSec = iter_comm * iters;
    res.commExposedSec = iter_exposed * iters;
    res.epochTimeSec = res.computeTimeSec + res.commExposedSec;
    res.overlapFrac =
        res.commTimeSec > 0
            ? 1.0 - res.commExposedSec / res.commTimeSec
            : 0;

    obs::Metrics &metrics = obs::Metrics::instance();
    metrics.setGauge("ddp.comm_total_sec", res.commTimeSec);
    metrics.setGauge("ddp.comm_exposed_sec", res.commExposedSec);
    metrics.setGauge("ddp.overlap_frac", res.overlapFrac);
    return res;
}

ScalingResult
DdpTrainer::measure(Workload &workload, const WorkloadConfig &base,
                    int world, int measured_iterations)
{
    GNN_SPAN("ddp.measure");
    return measureImpl(workload, base, world, measured_iterations,
                       /*weak=*/false);
}

ScalingResult
DdpTrainer::measureWeak(Workload &workload, const WorkloadConfig &base,
                        int world, int measured_iterations)
{
    GNN_SPAN("ddp.measure_weak");
    return measureImpl(workload, base, world, measured_iterations,
                       /*weak=*/true);
}

std::vector<ScalingResult>
DdpTrainer::weakScalingCurve(Workload &workload,
                             const WorkloadConfig &base,
                             const std::vector<int> &world_sizes,
                             int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measureWeak(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; per-GPU work is
        // constant under weak scaling, so the first measured point is
        // itself the single-GPU reference.
        base_time = out.front().epochTimeSec;
    }
    for (ScalingResult &r : out) {
        // Weak-scaling efficiency: constant per-GPU time is 1.0.
        r.speedup = base_time > 0 && r.epochTimeSec > 0
                        ? base_time / r.epochTimeSec
                        : 0;
    }
    return out;
}

std::vector<ScalingResult>
DdpTrainer::scalingCurve(Workload &workload, const WorkloadConfig &base,
                         const std::vector<int> &world_sizes,
                         int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measure(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; extrapolate the
        // single-GPU time from the first point assuming ideal linear
        // scaling, so speedups stay relative to one GPU.
        base_time = out.front().epochTimeSec * out.front().worldSize;
    }
    for (ScalingResult &r : out) {
        r.speedup =
            base_time > 0 && r.epochTimeSec > 0
                ? base_time / r.epochTimeSec : 0;
    }
    return out;
}

/** Accumulators for one fault-injected engine run. */
struct DdpTrainer::EngineOutcome
{
    double totalTimeSec = 0;
    double checkpointTimeSec = 0;
    double recoveryTimeSec = 0;
    int executedIterations = 0;
    int replayedIterations = 0;
    int worldEnd = 0;
    std::vector<FaultRecord> events;
};

DdpTrainer::EngineOutcome
DdpTrainer::runEngine(Workload &workload, const WorkloadConfig &base,
                      int world, const FaultInjector &injector,
                      const FaultRecoveryOptions &options,
                      bool with_checkpoints)
{
    GNN_SPAN("ddp.run_engine");
    GNN_ASSERT(world >= 1, "world size must be >= 1");
    GNN_ASSERT(options.iterations >= 1, "need at least one iteration");
    GNN_ASSERT(options.checkpointInterval >= 0,
               "checkpoint interval must be >= 0");

    EngineOutcome out;

    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = world;

    // Both the ideal and the faulty pass seed the device identically,
    // so idealTimeSec and totalTimeSec share the same compute model.
    GpuDevice device(deviceConfig_, base.seed + 1000 + world);
    if (extraObserver_ != nullptr)
        device.addObserver(extraObserver_);
    workload.setup(cfg);
    ContextGuard guard(&device);

    const std::vector<FaultEvent> &events = injector.plan().events();
    std::vector<char> consumed(events.size(), 0);
    std::map<size_t, size_t> record_of_event;

    std::vector<char> alive(static_cast<size_t>(world), 1);
    int alive_count = world;
    double sim_time = 0;

    auto activeAt = [](const FaultEvent &e, double t) {
        if (t < e.timeSec)
            return false;
        return e.durationSec <= 0 || t < e.timeSec + e.durationSec;
    };
    auto recordFor = [&](size_t idx) -> FaultRecord & {
        auto it = record_of_event.find(idx);
        if (it == record_of_event.end()) {
            FaultRecord rec;
            rec.kind = events[idx].kind;
            rec.simTimeSec = sim_time;
            rec.replica = events[idx].replica;
            rec.worldBefore = alive_count;
            rec.worldAfter = alive_count;
            out.events.push_back(rec);
            it = record_of_event
                     .emplace(idx, out.events.size() - 1)
                     .first;
        }
        return out.events[it->second];
    };

    const bool can_restore =
        with_checkpoints && workload.supportsCheckpoint();
    Checkpoint ckpt;
    bool have_ckpt = false;
    if (can_restore) {
        // Step-0 image: a crash before the first periodic checkpoint
        // rolls back to the exact initial state. Captured before the
        // simulated clock starts, so it costs nothing.
        ckpt = captureCheckpoint(workload, 0);
        have_ckpt = true;
    }
    auto ckptIoSec = [&]() {
        return ckpt.sizeBytes() / options.checkpointBandwidth +
               options.checkpointLatencySec;
    };

    int completed = 0;
    while (completed < options.iterations && alive_count > 0) {
        const double t0 = sim_time;

        const double wall_before = device.wallTimeSec();
        const double xfer_before = device.transferTimeSec();
        workload.trainIteration();
        const double compute = device.wallTimeSec() - wall_before;
        const double transfer =
            device.transferTimeSec() - xfer_before;
        ++out.executedIterations;

        // The iteration finishes when the slowest alive replica does.
        double strag_factor = 1.0;
        size_t strag_event = events.size();
        for (size_t i = 0; i < events.size(); ++i) {
            const FaultEvent &e = events[i];
            if (e.kind != FaultKind::Straggler || !activeAt(e, t0))
                continue;
            if (e.replica < 0 || e.replica >= world ||
                !alive[static_cast<size_t>(e.replica)]) {
                continue;
            }
            if (e.magnitude > strag_factor) {
                strag_factor = e.magnitude;
                strag_event = i;
            }
        }
        const double iter_compute = compute * strag_factor;
        if (strag_event != events.size()) {
            FaultRecord &rec = recordFor(strag_event);
            rec.slowdownSec += compute * (strag_factor - 1.0);
        }

        // Gradient sync, with any active link degradation applied.
        double comm = 0;
        if (alive_count > 1) {
            const double bytes = workload.parameterBytes();
            double healthy =
                ddp::syncCommCost(interconnect_, bytes, alive_count);
            comm = healthy;
            const double link = injector.linkFactor(t0);
            if (link < 1.0) {
                InterconnectConfig slow_cfg = interconnect_.config();
                slow_cfg.degradedHopFactor =
                    std::min(slow_cfg.degradedHopFactor, link);
                Interconnect slow(slow_cfg);
                comm = ddp::syncCommCost(slow, bytes, alive_count);
                for (size_t i = 0; i < events.size(); ++i) {
                    const FaultEvent &e = events[i];
                    if (e.kind == FaultKind::DegradedLink &&
                        activeAt(e, t0) && e.magnitude <= link) {
                        recordFor(i).slowdownSec += comm - healthy;
                        break;
                    }
                }
            }
            if (!workload.samplerDdpCompatible()) {
                // Replicated batches serialise their host copies.
                comm += transfer * (alive_count - 1);
            }
        }

        sim_time += iter_compute + comm;

        // Transient kernel failures due by now (a failure that lands
        // in a checkpoint/recovery gap surfaces in the next
        // iteration): detected on the device, the iteration is
        // recomputed.
        for (size_t i = 0; i < events.size(); ++i) {
            const FaultEvent &e = events[i];
            if (e.kind != FaultKind::TransientKernel || consumed[i])
                continue;
            if (e.timeSec <= sim_time) {
                consumed[i] = 1;
                FaultRecord &rec = recordFor(i);
                rec.detectionSec += kTransientDetectSec;
                rec.rollbackSec += iter_compute;
                out.recoveryTimeSec +=
                    kTransientDetectSec + iter_compute;
                sim_time += kTransientDetectSec + iter_compute;
                static obs::Counter transients(
                    "fault.transient_recovered");
                transients.add();
            }
        }

        // Earliest unhandled crash of a live replica: the all-reduce
        // times out, is retried with exponential backoff, then the
        // world shrinks and training rolls back to the last durable
        // checkpoint. One incident per loop pass; detection requires a
        // peer, so a sole survivor cannot observe further crashes.
        size_t crash = events.size();
        if (alive_count > 1) {
            for (size_t i = 0; i < events.size(); ++i) {
                const FaultEvent &e = events[i];
                if (e.kind != FaultKind::ReplicaCrash || consumed[i] ||
                    e.timeSec > sim_time) {
                    continue;
                }
                consumed[i] = 1;
                if (e.replica < 0 || e.replica >= world ||
                    !alive[static_cast<size_t>(e.replica)]) {
                    continue; // stale target: nothing to recover
                }
                crash = i;
                break;
            }
        }
        if (crash == events.size()) {
            ++completed;
            if (with_checkpoints && workload.supportsCheckpoint() &&
                options.checkpointInterval > 0 &&
                completed % options.checkpointInterval == 0 &&
                completed < options.iterations) {
                ckpt = captureCheckpoint(
                    workload, static_cast<uint64_t>(completed));
                have_ckpt = true;
                const double io = ckptIoSec();
                out.checkpointTimeSec += io;
                sim_time += io;
                static obs::Counter ckpts(
                    "fault.checkpoints_written");
                ckpts.add();
            }
            continue;
        }

        // The in-flight iteration never syncs; it is not counted.
        const FaultEvent &e = events[crash];
        FaultRecord &rec = recordFor(crash);

        double detection = options.allReduceTimeoutSec;
        double backoff = options.backoffBaseSec;
        for (int r = 0; r < options.maxRetries; ++r) {
            detection += backoff + options.allReduceTimeoutSec;
            backoff *= 2;
        }

        alive[static_cast<size_t>(e.replica)] = 0;
        --alive_count;
        rec.worldBefore = alive_count + 1;
        rec.worldAfter = alive_count;
        rec.simTimeSec = sim_time;
        rec.detectionSec += detection;

        const int rollback_to =
            have_ckpt ? static_cast<int>(ckpt.step) : 0;
        rec.lostIterations = completed - rollback_to;
        out.replayedIterations += rec.lostIterations;

        double rollback = 0;
        double reshard = 0;
        if (alive_count > 0) {
            // Survivors re-shard the batch over the shrunken world and
            // reload parameters from stable storage.
            cfg.worldSize = alive_count;
            workload.setup(cfg);
            if (have_ckpt) {
                rollback = ckptIoSec();
                restoreCheckpoint(workload, ckpt);
            }
            completed = rollback_to;
            reshard = options.commReinitSec;
            if (alive_count > 1) {
                reshard += interconnect_.broadcastTime(
                    workload.parameterBytes(), alive_count);
            }
        }
        rec.rollbackSec += rollback;
        rec.reshardSec += reshard;
        const double overhead = detection + rollback + reshard;
        out.recoveryTimeSec += overhead;
        sim_time += overhead;
        static obs::Counter crashes("fault.crash_recovered");
        static obs::Counter lost("fault.rollback_iterations");
        crashes.add();
        lost.add(rec.lostIterations);
    }

    if (alive_count == 0) {
        warn("fault plan killed every replica; run stopped after %d "
             "of %d iterations",
             completed, options.iterations);
    }

    out.totalTimeSec = sim_time;
    out.worldEnd = alive_count;
    return out;
}

FaultToleranceResult
DdpTrainer::runWithFaults(Workload &workload, const WorkloadConfig &base,
                          int world, const FaultPlan &plan,
                          const FaultRecoveryOptions &options)
{
    // Fault-free, checkpoint-free pass first: same device seed and
    // initial workload state, so the two clocks are comparable.
    EngineOutcome ideal = runEngine(workload, base, world,
                                    FaultInjector{}, options, false);
    EngineOutcome faulty = runEngine(workload, base, world,
                                     FaultInjector(plan), options, true);

    FaultToleranceResult res;
    res.workload = workload.name();
    res.worldStart = world;
    res.worldEnd = faulty.worldEnd;
    res.targetIterations = options.iterations;
    res.executedIterations = faulty.executedIterations;
    res.replayedIterations = faulty.replayedIterations;
    res.idealTimeSec = ideal.totalTimeSec;
    res.totalTimeSec = faulty.totalTimeSec;
    res.checkpointTimeSec = faulty.checkpointTimeSec;
    res.recoveryTimeSec = faulty.recoveryTimeSec;
    res.goodput = faulty.totalTimeSec > 0
                      ? ideal.totalTimeSec / faulty.totalTimeSec
                      : 0;
    res.events = std::move(faulty.events);
    return res;
}

} // namespace gnnmark
